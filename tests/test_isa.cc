/** @file Unit tests for the ISA: traits, hint encodings, disasm. */

#include <gtest/gtest.h>

#include "isa/hint.hh"
#include "isa/static_inst.hh"

namespace siq
{
namespace
{

TEST(OpTraits, TotalAndConsistent)
{
    for (int i = 0; i < numOpcodes; i++) {
        const auto op = static_cast<Opcode>(i);
        const auto &t = opTraits(op);
        EXPECT_FALSE(t.mnemonic.empty());
        EXPECT_GE(t.latency, 1);
        if (t.isLoad || t.isStore) {
            EXPECT_EQ(t.fu, FuClass::MemPort);
        }
        if (t.isBranch) {
            EXPECT_FALSE(t.writesDst);
        }
    }
}

TEST(OpTraits, Table1Latencies)
{
    EXPECT_EQ(opTraits(Opcode::Add).latency, 1);
    EXPECT_EQ(opTraits(Opcode::Mul).latency, 3);
    EXPECT_EQ(opTraits(Opcode::FAdd).latency, 2);
    EXPECT_EQ(opTraits(Opcode::FMul).latency, 4);
    EXPECT_EQ(opTraits(Opcode::FDiv).latency, 12);
    EXPECT_EQ(opTraits(Opcode::Mul).fu, FuClass::IntMul);
    EXPECT_EQ(opTraits(Opcode::FAdd).fu, FuClass::FpAlu);
    EXPECT_EQ(opTraits(Opcode::FMul).fu, FuClass::FpMulDiv);
}

TEST(OpTraits, DividesAreNotPipelined)
{
    EXPECT_FALSE(opTraits(Opcode::Div).pipelined);
    EXPECT_FALSE(opTraits(Opcode::FDiv).pipelined);
    EXPECT_TRUE(opTraits(Opcode::Mul).pipelined);
    EXPECT_TRUE(opTraits(Opcode::FMul).pipelined);
}

TEST(OpTraits, ControlClassification)
{
    EXPECT_TRUE(isControl(Opcode::Beq));
    EXPECT_TRUE(isControl(Opcode::Jump));
    EXPECT_TRUE(isControl(Opcode::Call));
    EXPECT_TRUE(isControl(Opcode::Ret));
    EXPECT_TRUE(isControl(Opcode::IJump));
    EXPECT_FALSE(isControl(Opcode::Add));
    EXPECT_FALSE(isControl(Opcode::Halt));
    EXPECT_TRUE(isMem(Opcode::Load));
    EXPECT_TRUE(isMem(Opcode::FStore));
    EXPECT_FALSE(isMem(Opcode::Nop));
}

TEST(HintEncoding, NoopRoundTrip)
{
    for (std::uint16_t v : {0, 1, 4, 17, 80, 255}) {
        const auto word = encodeHintNoop(v);
        const auto decoded = decodeHintNoop(word);
        ASSERT_TRUE(decoded.has_value()) << "value " << v;
        EXPECT_EQ(*decoded, v);
    }
}

TEST(HintEncoding, NonHintWordsRejected)
{
    EXPECT_FALSE(decodeHintNoop(0x00000012u).has_value());
    EXPECT_FALSE(decodeHintNoop(0xFFFFFFFFu).has_value());
}

TEST(HintEncoding, TagRoundTripPreservesInstructionBits)
{
    const std::uint32_t inst = 0x00ABCDEF;
    for (std::uint16_t v : {1, 42, 80, 255}) {
        const auto tagged = encodeTag(inst, v);
        EXPECT_EQ(decodeTag(tagged), v);
        // low bits (the instruction proper) survive
        EXPECT_EQ(tagged & 0x00FFFFFF, inst & 0x00FFFFFF);
    }
    EXPECT_EQ(decodeTag(inst), 0u) << "untagged word decodes to 0";
}

TEST(StaticInst, WritesLiveRegRespectsZeroRegister)
{
    EXPECT_TRUE(makeAdd(3, 1, 2).writesLiveReg());
    EXPECT_FALSE(makeAdd(zeroReg, 1, 2).writesLiveReg());
    EXPECT_FALSE(makeStore(1, 2, 0).writesLiveReg());
}

TEST(StaticInst, DisasmGolden)
{
    EXPECT_EQ(makeAdd(3, 1, 2).disasm(), "add r3, r1, r2");
    EXPECT_EQ(makeMovImm(5, 42).disasm(), "movi r5, 42");
    EXPECT_EQ(makeLoad(4, 7, 3).disasm(), "ld r4, [r7+3]");
    EXPECT_EQ(makeStore(7, 4, -1).disasm(), "st [r7+-1], r4");
    EXPECT_EQ(makeBlt(1, 2, 9).disasm(), "blt r1, r2, b9");
    EXPECT_EQ(makeHint(24).disasm(), "hint #24");
    EXPECT_EQ(makeFAdd(fpRegBase + 1, fpRegBase + 2, fpRegBase + 3)
                  .disasm(),
              "fadd f1, f2, f3");
    StaticInst tagged = makeAdd(3, 1, 2);
    tagged.tagHint = 12;
    EXPECT_EQ(tagged.disasm(), "add r3, r1, r2 {iq=12}");
}

} // namespace
} // namespace siq
