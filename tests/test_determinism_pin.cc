/**
 * @file
 * Golden-fingerprint pin for the simulated behavior of the whole
 * stack: the canonical sweep JSON for a small but full-coverage grid
 * (every built-in technique × a cache-friendly and a memory-bound
 * workload × 2 replica seeds) is hashed and compared against a
 * checked-in digest.
 *
 * This is the guard rail for hot-path refactors of the core model:
 * any change to architectural counters, event counts, seed mixing,
 * aggregation or export formatting moves the digest. If a change is
 * *supposed* to alter simulated behavior or the export schema,
 * regenerate the digest by running this test and copying the
 * "actual" value from the failure message into kGoldenDigest, and
 * say so in the PR; a refactor that only claims to make the
 * simulator faster must keep this test green untouched.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/report.hh"
#include "sim/sweep.hh"
#include "workloads/family.hh"

namespace siq
{
namespace
{

/** FNV-1a 64-bit over the canonical JSON bytes. */
std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
hex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << std::setfill('0') << std::setw(16) << v;
    return os.str();
}

/**
 * The pinned grid. Budgets are tiny (the pin guards *behavior*, not
 * statistics): 6 techniques × 2 benchmarks × 2 seeds at 2k+10k
 * instructions simulates under a third of a million instructions.
 */
sim::SweepSpec
pinnedSpec()
{
    sim::SweepSpec spec;
    spec.benchmarks = {"gzip", "mcf"};
    spec.techniques = {"baseline", "noop",   "extension",
                       "improved", "abella", "folegnani"};
    spec.base.workload.repDivisor = 40;
    spec.base.warmupInsts = 2000;
    spec.base.measureInsts = 10000;
    spec.seeds = 2;
    spec.jobs = 2;
    return spec;
}

/** Generated at the pre-refactor commit of PR 4 (after the
 *  Student-t ci95 change, before the event-wheel refactor). */
constexpr std::uint64_t kGoldenDigest = 0x4039315e5bf964b3ull;

TEST(DeterminismPin, CanonicalSweepJsonMatchesGoldenDigest)
{
    sim::ExperimentRunner runner;
    sim::SweepResult result = runner.run(pinnedSpec());
    sim::canonicalize(result);

    std::ostringstream json;
    sim::writeJson(json, result);
    const std::uint64_t digest = fnv1a64(json.str());

    EXPECT_EQ(digest, kGoldenDigest)
        << "canonical sweep JSON changed: actual digest is "
        << hex(digest) << " (golden " << hex(kGoldenDigest) << ").\n"
        << "If this change intentionally alters simulated behavior "
           "or the export schema, update kGoldenDigest and call it "
           "out in the PR; a perf-only refactor must not get here.";
}

/** The digest is a pure function of the spec: a second run through a
 *  fresh runner (fresh caches, different scheduling) must reproduce
 *  it bit-for-bit — otherwise a digest mismatch above could be mere
 *  nondeterminism instead of a behavior change. */
TEST(DeterminismPin, DigestIsReproducibleAcrossRunnersAndJobs)
{
    auto spec = pinnedSpec();
    sim::ExperimentRunner a;
    sim::SweepResult ra = a.run(spec);
    sim::canonicalize(ra);
    std::ostringstream ja;
    sim::writeJson(ja, ra);

    spec.jobs = 1;
    sim::ExperimentRunner b;
    sim::SweepResult rb = b.run(spec);
    sim::canonicalize(rb);
    std::ostringstream jb;
    sim::writeJson(jb, rb);

    EXPECT_EQ(fnv1a64(ja.str()), fnv1a64(jb.str()));
    EXPECT_EQ(ja.str(), jb.str());
}

/**
 * Second pinned grid: the parameterized families (specfp/server/
 * phased) at their registry-default parameters, which the original
 * pin predates. Same tiny budgets, same regeneration policy as
 * kGoldenDigest.
 */
sim::SweepSpec
parameterizedPinnedSpec()
{
    sim::SweepSpec spec = pinnedSpec();
    spec.benchmarks = {"specfp", "server", "phased"};
    return spec;
}

/** Generated at the PR 8 commit that introduced this pin (oracle
 *  front end; the families themselves predate it unchanged). */
constexpr std::uint64_t kParameterizedGoldenDigest =
    0x0aa6f08251d3a7efull;

TEST(DeterminismPin, ParameterizedFamiliesMatchGoldenDigest)
{
    sim::ExperimentRunner runner;
    sim::SweepResult result = runner.run(parameterizedPinnedSpec());
    sim::canonicalize(result);

    std::ostringstream json;
    sim::writeJson(json, result);
    const std::uint64_t digest = fnv1a64(json.str());

    EXPECT_EQ(digest, kParameterizedGoldenDigest)
        << "canonical sweep JSON changed: actual digest is "
        << hex(digest) << " (golden "
        << hex(kParameterizedGoldenDigest) << ").\n"
        << "Same policy as kGoldenDigest: update only for intended "
           "behavior/schema changes, and call it out in the PR.";
}

// --------------------------------------------------------------------
// Speculative front end: not digest-pinned (its counters are new),
// but it must be exactly as deterministic as the oracle mode.
// --------------------------------------------------------------------

sim::SweepSpec
speculativeSpec()
{
    sim::SweepSpec spec = pinnedSpec();
    spec.base.core.specFrontEnd = true;
    return spec;
}

std::string
canonicalJson(const sim::SweepResult &r)
{
    sim::SweepResult copy = r;
    sim::canonicalize(copy);
    std::ostringstream json;
    sim::writeJson(json, copy);
    return json.str();
}

/** Wrong-path fetch, squash recovery and the speculation counters
 *  must be a pure function of the spec — worker count must not leak
 *  into them (the same property the oracle digest pin enforces). */
TEST(DeterminismPin, SpeculativeModeIsSeedDeterministicAcrossJobs)
{
    auto spec = speculativeSpec();
    spec.jobs = 1;
    sim::ExperimentRunner a;
    const std::string ja = canonicalJson(a.run(spec));

    spec.jobs = 4;
    sim::ExperimentRunner b;
    const std::string jb = canonicalJson(b.run(spec));

    EXPECT_EQ(fnv1a64(ja), fnv1a64(jb));
    EXPECT_EQ(ja, jb);
}

/** Replaying a recorded functional trace must be measurement-
 *  indistinguishable from direct interpretation in speculative mode
 *  too — wrong-path fetch never consumes the functional stream, so
 *  the trace substitution stays invisible. */
TEST(DeterminismPin, SpeculativeModeTraceReplayMatchesDirect)
{
    const char *old = std::getenv("SIQSIM_TRACE");
    const std::string saved = old ? old : "";

    ::setenv("SIQSIM_TRACE", "0", 1);
    sim::ExperimentRunner direct;
    const std::string jd = canonicalJson(direct.run(speculativeSpec()));

    ::setenv("SIQSIM_TRACE", "1", 1);
    sim::ExperimentRunner replay;
    const std::string jr = canonicalJson(replay.run(speculativeSpec()));

    if (old)
        ::setenv("SIQSIM_TRACE", saved.c_str(), 1);
    else
        ::unsetenv("SIQSIM_TRACE");

    EXPECT_EQ(jd, jr);
}

/** Every registered family must run to completion under the real
 *  front end with every technique, and every technique must actually
 *  speculate over the sweep: nonzero mispredicts, wrong-path fetches
 *  and squashes in the measured region. (Per-cell nonzero would be
 *  wrong: specfp and phased are regular loop nests whose branches the
 *  warmed hybrid predicts perfectly at these budgets — their zero
 *  mispredict counts are real behavior, not missing coverage.) */
TEST(DeterminismPin, SpeculativeSweepCoversAllFamiliesWithSquashes)
{
    sim::SweepSpec spec = speculativeSpec();
    spec.benchmarks = workloads::familyNames();
    spec.seeds = 1;
    spec.jobs = 4;
    sim::ExperimentRunner runner;
    const sim::SweepResult result = runner.run(spec);

    ASSERT_EQ(result.cells.size(),
              spec.benchmarks.size() * spec.techniques.size());
    std::map<std::string, CoreStats> byTech;
    for (const sim::RunResult &r : result.cells) {
        SCOPED_TRACE(r.benchmark + "/" + r.technique);
        EXPECT_GT(r.stats.committed, 0u);
        // one checkpointed recovery per mispredicted branch — up to
        // off-by-one at each end of the measured region (a mispredict
        // armed before the post-warmup stats reset resolves inside
        // it, and one armed near the end may not resolve at all; at
        // most one mispredict is ever outstanding)
        const std::uint64_t hi =
            std::max(r.stats.squashes, r.stats.branchMispredicts);
        const std::uint64_t lo =
            std::min(r.stats.squashes, r.stats.branchMispredicts);
        EXPECT_LE(hi - lo, 1u);
        CoreStats &t = byTech[r.technique];
        t.branchMispredicts += r.stats.branchMispredicts;
        t.wrongPathFetched += r.stats.wrongPathFetched;
        t.squashes += r.stats.squashes;
        t.squashedInsts += r.stats.squashedInsts;
    }
    ASSERT_EQ(byTech.size(), spec.techniques.size());
    for (const auto &[tech, t] : byTech) {
        SCOPED_TRACE(tech);
        EXPECT_GT(t.branchMispredicts, 0u);
        EXPECT_GT(t.wrongPathFetched, 0u);
        EXPECT_GT(t.squashes, 0u);
        EXPECT_GT(t.squashedInsts, 0u);
    }
}

} // namespace
} // namespace siq
