/**
 * @file
 * Golden-fingerprint pin for the simulated behavior of the whole
 * stack: the canonical sweep JSON for a small but full-coverage grid
 * (every built-in technique × a cache-friendly and a memory-bound
 * workload × 2 replica seeds) is hashed and compared against a
 * checked-in digest.
 *
 * This is the guard rail for hot-path refactors of the core model:
 * any change to architectural counters, event counts, seed mixing,
 * aggregation or export formatting moves the digest. If a change is
 * *supposed* to alter simulated behavior or the export schema,
 * regenerate the digest by running this test and copying the
 * "actual" value from the failure message into kGoldenDigest, and
 * say so in the PR; a refactor that only claims to make the
 * simulator faster must keep this test green untouched.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/report.hh"
#include "sim/sweep.hh"

namespace siq
{
namespace
{

/** FNV-1a 64-bit over the canonical JSON bytes. */
std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
hex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << std::setfill('0') << std::setw(16) << v;
    return os.str();
}

/**
 * The pinned grid. Budgets are tiny (the pin guards *behavior*, not
 * statistics): 6 techniques × 2 benchmarks × 2 seeds at 2k+10k
 * instructions simulates under a third of a million instructions.
 */
sim::SweepSpec
pinnedSpec()
{
    sim::SweepSpec spec;
    spec.benchmarks = {"gzip", "mcf"};
    spec.techniques = {"baseline", "noop",   "extension",
                       "improved", "abella", "folegnani"};
    spec.base.workload.repDivisor = 40;
    spec.base.warmupInsts = 2000;
    spec.base.measureInsts = 10000;
    spec.seeds = 2;
    spec.jobs = 2;
    return spec;
}

/** Generated at the pre-refactor commit of PR 4 (after the
 *  Student-t ci95 change, before the event-wheel refactor). */
constexpr std::uint64_t kGoldenDigest = 0x4039315e5bf964b3ull;

TEST(DeterminismPin, CanonicalSweepJsonMatchesGoldenDigest)
{
    sim::ExperimentRunner runner;
    sim::SweepResult result = runner.run(pinnedSpec());
    sim::canonicalize(result);

    std::ostringstream json;
    sim::writeJson(json, result);
    const std::uint64_t digest = fnv1a64(json.str());

    EXPECT_EQ(digest, kGoldenDigest)
        << "canonical sweep JSON changed: actual digest is "
        << hex(digest) << " (golden " << hex(kGoldenDigest) << ").\n"
        << "If this change intentionally alters simulated behavior "
           "or the export schema, update kGoldenDigest and call it "
           "out in the PR; a perf-only refactor must not get here.";
}

/** The digest is a pure function of the spec: a second run through a
 *  fresh runner (fresh caches, different scheduling) must reproduce
 *  it bit-for-bit — otherwise a digest mismatch above could be mere
 *  nondeterminism instead of a behavior change. */
TEST(DeterminismPin, DigestIsReproducibleAcrossRunnersAndJobs)
{
    auto spec = pinnedSpec();
    sim::ExperimentRunner a;
    sim::SweepResult ra = a.run(spec);
    sim::canonicalize(ra);
    std::ostringstream ja;
    sim::writeJson(ja, ra);

    spec.jobs = 1;
    sim::ExperimentRunner b;
    sim::SweepResult rb = b.run(spec);
    sim::canonicalize(rb);
    std::ostringstream jb;
    sim::writeJson(jb, rb);

    EXPECT_EQ(fnv1a64(ja.str()), fnv1a64(jb.str()));
    EXPECT_EQ(ja.str(), jb.str());
}

} // namespace
} // namespace siq
