/**
 * @file
 * Issue queue mechanics: the paper's figure 2 (new_head and
 * max_new_range), head/tail movement over holes, bank gating and
 * wake-up accounting.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "cpu/iq.hh"

namespace siq
{
namespace
{

IqConfig
smallIq()
{
    IqConfig cfg;
    cfg.numEntries = 16;
    cfg.bankSize = 4;
    return cfg;
}

TEST(IssueQueue, DispatchFillsTail)
{
    IssueQueue iq(smallIq());
    const int s0 = iq.dispatch(0, -1, true, -1, true, 0);
    const int s1 = iq.dispatch(1, -1, true, -1, true, 1);
    EXPECT_EQ(s0, 0);
    EXPECT_EQ(s1, 1);
    EXPECT_EQ(iq.validCount(), 2);
    EXPECT_EQ(iq.regionSize(), 2);
}

TEST(IssueQueue, RegionFullEvenWithHoles)
{
    IqConfig cfg = smallIq();
    IssueQueue iq(cfg);
    for (int i = 0; i < cfg.numEntries; i++)
        iq.dispatch(i, -1, true, -1, true, i);
    EXPECT_TRUE(iq.regionFull());
    // issue something in the middle: still full (non-collapsible)
    iq.markIssued(5);
    EXPECT_TRUE(iq.regionFull());
    EXPECT_EQ(iq.validCount(), cfg.numEntries - 1);
    // issuing the head frees region space (head skips the hole at 5)
    iq.markIssued(0);
    EXPECT_FALSE(iq.regionFull());
}

TEST(IssueQueue, HeadSkipsHolesUpToNextValid)
{
    IssueQueue iq(smallIq());
    for (int i = 0; i < 6; i++)
        iq.dispatch(i, -1, true, -1, true, i);
    iq.markIssued(1);
    iq.markIssued(2);
    EXPECT_EQ(iq.headSlot(), 0);
    iq.markIssued(0);
    EXPECT_EQ(iq.headSlot(), 3) << "head advances over the holes";
    EXPECT_EQ(iq.regionSize(), 3);
}

TEST(IssueQueue, Figure2NewHeadOperation)
{
    // figure 2: max_new_range = 4; entries a,[holes],d in the new
    // region; when a issues, new_head moves up to d and three more
    // instructions may dispatch
    IqConfig cfg;
    cfg.numEntries = 16;
    cfg.bankSize = 4;
    IssueQueue iq(cfg);
    iq.applyHint(4);
    const int a = iq.dispatch(0, -1, true, -1, true, 0); // a
    const int bSlot = iq.dispatch(1, -1, true, -1, true, 1);
    const int c = iq.dispatch(2, -1, true, -1, true, 2);
    iq.dispatch(3, -1, true, -1, true, 3);               // d
    EXPECT_TRUE(iq.rangeBlocked()) << "four entries in range 4";
    EXPECT_FALSE(iq.canDispatch());
    // b and c issued earlier, leaving holes (figure 2(a))
    iq.markIssued(bSlot);
    iq.markIssued(c);
    EXPECT_TRUE(iq.rangeBlocked())
        << "holes still count against the range";
    // a issues: new_head moves three slots, up to d
    iq.markIssued(a);
    EXPECT_EQ(iq.newHeadSlot(), 3);
    EXPECT_EQ(iq.distNewHeadToTail(), 1);
    // so up to three more instructions can be dispatched (e, f, g)
    for (int i = 4; i < 7; i++) {
        EXPECT_TRUE(iq.canDispatch()) << "entry " << i;
        iq.dispatch(i, -1, true, -1, true, i);
    }
    EXPECT_TRUE(iq.rangeBlocked());
}

TEST(IssueQueue, HintResetsNewHeadToTail)
{
    IssueQueue iq(smallIq());
    for (int i = 0; i < 5; i++)
        iq.dispatch(i, -1, true, -1, true, i);
    iq.applyHint(2);
    EXPECT_EQ(iq.distNewHeadToTail(), 0)
        << "older instructions no longer count against the range";
    iq.dispatch(5, -1, true, -1, true, 5);
    iq.dispatch(6, -1, true, -1, true, 6);
    EXPECT_TRUE(iq.rangeBlocked());
    EXPECT_EQ(iq.validCount(), 7);
}

TEST(IssueQueue, HintValueClamped)
{
    IssueQueue iq(smallIq());
    iq.applyHint(0);
    EXPECT_EQ(iq.currentRange(), 1);
    iq.applyHint(1000);
    EXPECT_EQ(iq.currentRange(), 16);
}

TEST(IssueQueue, WakeupSetsReadyAndCounts)
{
    IssueQueue iq(smallIq());
    iq.dispatch(0, 7, false, 9, false, 0);
    iq.dispatch(1, 7, false, -1, true, 1);
    iq.wakeup(7);
    auto &ev = iq.events;
    EXPECT_EQ(ev.broadcasts, 1u);
    // three non-ready operands compared (entry0: two, entry1: one)
    EXPECT_EQ(ev.cmpGated, 3u);
    // conventional CAM: 2 operands x 16 slots
    EXPECT_EQ(ev.cmpConventional, 32u);
    // one powered bank (both entries in bank 0): 2 x 4 slots
    EXPECT_EQ(ev.cmpPowered, 8u);
    std::vector<IssueQueue::Candidate> ready;
    iq.collectReady(ready);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].robIdx, 1) << "entry 0 still waits on tag 9";
    iq.wakeup(9);
    iq.collectReady(ready);
    EXPECT_EQ(ready.size(), 2u);
}

TEST(IssueQueue, BankGatingFollowsOccupancy)
{
    IqConfig cfg = smallIq(); // 4 banks of 4
    IssueQueue iq(cfg);
    EXPECT_EQ(iq.poweredBanks(), 0);
    std::vector<int> slots;
    for (int i = 0; i < 9; i++)
        slots.push_back(iq.dispatch(i, -1, true, -1, true, i));
    EXPECT_EQ(iq.poweredBanks(), 3); // slots 0..8 span 3 banks
    for (int i = 0; i < 4; i++)
        iq.markIssued(slots[static_cast<std::size_t>(i)]);
    EXPECT_EQ(iq.poweredBanks(), 2) << "bank 0 empties and gates off";
}

TEST(IssueQueue, CollectReadyIsOldestFirst)
{
    IssueQueue iq(smallIq());
    iq.dispatch(10, -1, true, -1, true, 100);
    iq.dispatch(11, -1, true, -1, true, 101);
    iq.dispatch(12, -1, true, -1, true, 102);
    std::vector<IssueQueue::Candidate> ready;
    iq.collectReady(ready);
    ASSERT_EQ(ready.size(), 3u);
    EXPECT_EQ(ready[0].robIdx, 10);
    EXPECT_EQ(ready[1].robIdx, 11);
    EXPECT_EQ(ready[2].robIdx, 12);
    EXPECT_EQ(ready[0].distFromHead, 0);
    EXPECT_EQ(ready[2].distFromHead, 2);
}

TEST(IssueQueue, WrapAroundKeepsInvariants)
{
    IqConfig cfg = smallIq();
    IssueQueue iq(cfg);
    // repeatedly fill and drain across the wrap point
    std::uint64_t seq = 0;
    for (int round = 0; round < 10; round++) {
        std::vector<int> slots;
        for (int i = 0; i < 12; i++) {
            ASSERT_TRUE(iq.canDispatch());
            slots.push_back(
                iq.dispatch(static_cast<int>(seq % 128), -1, true,
                            -1, true, seq));
            seq++;
        }
        // issue out of order: odd then even
        for (std::size_t i = 1; i < slots.size(); i += 2)
            iq.markIssued(slots[i]);
        for (std::size_t i = 0; i < slots.size(); i += 2)
            iq.markIssued(slots[i]);
        EXPECT_EQ(iq.validCount(), 0);
        EXPECT_EQ(iq.regionSize(), 0);
    }
}

/**
 * Randomized stress for the bank-skipping wakeup/collectReady fast
 * path: a naive shadow model (full-region walk, the pre-optimization
 * semantics) must agree with the queue on every event count, ready
 * bit and selection candidate across thousands of mixed operations.
 */
TEST(IssueQueue, FastPathMatchesNaiveReference)
{
    struct ShadowEntry
    {
        int robIdx;
        int psrc1, psrc2;
        bool ready1, ready2;
        int slot;
    };

    IqConfig cfg;
    cfg.numEntries = 80;
    cfg.bankSize = 8;
    IssueQueue iq(cfg);
    std::vector<ShadowEntry> shadow; // oldest-first valid entries

    Rng rng(2024);
    std::uint64_t seq = 0;
    std::uint64_t expectedGated = 0;

    for (int step = 0; step < 20000; step++) {
        const int action = static_cast<int>(rng.range(0, 9));
        if (action < 4 && iq.canDispatch()) {
            const int p1 = rng.chance(0.2)
                               ? -1
                               : static_cast<int>(rng.range(0, 30));
            const int p2 = rng.chance(0.2)
                               ? -1
                               : static_cast<int>(rng.range(0, 30));
            const bool r1 = p1 < 0 || rng.chance(0.4);
            const bool r2 = p2 < 0 || rng.chance(0.4);
            const int slot = iq.dispatch(static_cast<int>(seq % 128),
                                         p1, r1, p2, r2, seq);
            shadow.push_back({static_cast<int>(seq % 128), p1, p2,
                              r1 || p1 < 0, r2 || p2 < 0, slot});
            seq++;
        } else if (action < 7) {
            const int tag = static_cast<int>(rng.range(0, 30));
            for (auto &e : shadow) {
                if (!e.ready1) {
                    expectedGated++;
                    if (e.psrc1 == tag)
                        e.ready1 = true;
                }
                if (!e.ready2) {
                    expectedGated++;
                    if (e.psrc2 == tag)
                        e.ready2 = true;
                }
            }
            iq.wakeup(tag);
            ASSERT_EQ(iq.events.cmpGated, expectedGated)
                << "step " << step;
        } else if (action < 8 && !shadow.empty()) {
            // issue a random *ready* entry, as the core would
            std::vector<std::size_t> readyIdx;
            for (std::size_t i = 0; i < shadow.size(); i++) {
                if (shadow[i].ready1 && shadow[i].ready2)
                    readyIdx.push_back(i);
            }
            if (!readyIdx.empty()) {
                const std::size_t pick = static_cast<std::size_t>(
                    rng.range(0,
                              static_cast<std::int64_t>(
                                  readyIdx.size()) -
                                  1));
                const std::size_t victim = readyIdx[pick];
                iq.markIssued(shadow[victim].slot);
                shadow.erase(shadow.begin() +
                             static_cast<std::ptrdiff_t>(victim));
            }
        } else if (action < 9 && !shadow.empty()) {
            // remove an arbitrary entry, ready or not (the direct
            // markIssued/squash path): pending-operand bookkeeping
            // must survive retiring unready operands
            const std::size_t victim = static_cast<std::size_t>(
                rng.range(0,
                          static_cast<std::int64_t>(shadow.size()) -
                              1));
            iq.markIssued(shadow[victim].slot);
            shadow.erase(shadow.begin() +
                         static_cast<std::ptrdiff_t>(victim));
        } else if (rng.chance(0.3)) {
            iq.applyHint(static_cast<int>(rng.range(1, 80)));
        }

        std::vector<IssueQueue::Candidate> got;
        iq.collectReady(got);
        std::vector<int> want;
        for (const auto &e : shadow) {
            if (e.ready1 && e.ready2)
                want.push_back(e.robIdx);
        }
        ASSERT_EQ(got.size(), want.size()) << "step " << step;
        for (std::size_t i = 0; i < got.size(); i++)
            ASSERT_EQ(got[i].robIdx, want[i]) << "step " << step;
        ASSERT_EQ(iq.validCount(),
                  static_cast<int>(shadow.size()));
    }
}

TEST(IssueQueue, TickStatsAccumulate)
{
    IssueQueue iq(smallIq());
    iq.dispatch(0, -1, true, -1, true, 0);
    iq.tickStats();
    iq.tickStats();
    EXPECT_EQ(iq.events.cycles, 2u);
    EXPECT_EQ(iq.events.occupancySum, 2u);
    EXPECT_EQ(iq.events.poweredBankCycles, 2u);
    EXPECT_EQ(iq.events.totalBankCycles, 8u);
}

} // namespace
} // namespace siq
