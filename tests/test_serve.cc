/**
 * @file
 * Tests for the simulation service (sim/serve.hh): malformed-request
 * recovery, cross-request in-flight dedupe, cancellation draining,
 * and the byte-identity of a streamed export with a batch run.
 *
 * The concurrency tests gate a test-local workload family's generator
 * on a condition variable: with jobs=1 the engine's single worker
 * provably sits inside the generator while the test lines up a second
 * client or a cancel, making the dedupe/drain outcomes deterministic
 * rather than timing-dependent.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "sim/report.hh"
#include "sim/serve.hh"
#include "sim/sweep.hh"
#include "workloads/family.hh"
#include "workloads/workloads.hh"

namespace siq
{
namespace
{

sim::SweepSpec
baseSpec(std::vector<std::string> benches)
{
    sim::SweepSpec spec;
    spec.benchmarks = std::move(benches);
    spec.techniques = {"baseline"};
    spec.base.workload.repDivisor = 40;
    spec.base.warmupInsts = 2000;
    spec.base.measureInsts = 20000;
    spec.seeds = 1;
    spec.jobs = 1;
    return spec;
}

std::string
requestLine(const std::string &id, const sim::SweepSpec &spec)
{
    std::string sj = sim::toJson(spec);
    while (!sj.empty() && sj.back() == '\n')
        sj.pop_back();
    return "{\"id\":" + json::quote(id) + ",\"spec\":" + sj + "}";
}

std::string
jsonOf(sim::SweepResult s)
{
    sim::canonicalize(s);
    std::ostringstream os;
    sim::writeJson(os, s);
    return os.str();
}

/** Drain a finished client's stream into parsed records. */
std::vector<json::Value>
drain(sim::ServeEngine::Client &client)
{
    std::vector<json::Value> recs;
    std::string line;
    while (client.nextRecord(line))
        recs.push_back(json::parse(line));
    return recs;
}

const json::Value &
field(const json::Value &rec, const std::string &key)
{
    return rec.at(key);
}

std::string
eventOf(const json::Value &rec)
{
    return field(rec, "event").asString();
}

/** One-shot gate a family generator blocks on; `entered` tells the
 *  test the worker is provably inside the generator. */
struct Gate
{
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;
    std::atomic<int> entered{0};

    void
    pass()
    {
        entered.fetch_add(1);
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return open; });
    }

    void
    release()
    {
        std::lock_guard lock(mu);
        open = true;
        cv.notify_all();
    }

    void
    awaitEntered(int n)
    {
        while (entered.load() < n)
            std::this_thread::yield();
    }
};

/** Register `serve-gate`: gzip's generator behind @p gate. */
workloads::FamilyDef
gatedFamily(Gate &gate)
{
    workloads::FamilyDef def;
    def.name = "serve-gate";
    def.summary = "gzip gated on a test condition variable";
    def.generate = [&gate](const workloads::WorkloadParams &wp,
                           const workloads::FamilyParams &) {
        gate.pass();
        return workloads::genGzip(wp);
    };
    return def;
}

TEST(Serve, MalformedRequestsRecoverPerClient)
{
    sim::ServeEngine engine({});
    auto client = engine.connect();

    client->submitLine("{\"bad json");
    client->submitLine("[1,2,3]");
    client->submitLine("{\"id\":\"r0\"}");
    client->submitLine(
        "{\"id\":\"rx\",\"spec\":{\"benchmarks\":[\"nosuch\"],"
        "\"techniques\":[\"baseline\"]}}");
    // the same client's next request must still run to completion
    const auto spec = baseSpec({"gzip"});
    client->submitLine(requestLine("r1", spec));
    client->endOfInput();

    const auto recs = drain(*client);
    ASSERT_EQ(recs.size(), 7u);
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(eventOf(recs[i]), "error") << i;
    // unattributable garbage carries a null id
    EXPECT_EQ(field(recs[0], "id").kind, json::Value::Kind::Null);
    EXPECT_EQ(field(recs[3], "id").asString(), "rx");

    EXPECT_EQ(eventOf(recs[4]), "accepted");
    EXPECT_EQ(field(recs[4], "cells").asU64(), 1u);
    EXPECT_EQ(eventOf(recs[5]), "cell");
    EXPECT_EQ(eventOf(recs[6]), "done");
    EXPECT_EQ(field(recs[6], "cellsSimulated").asU64(), 1u);
    EXPECT_EQ(field(recs[6], "cancelled").asBool(), false);

    // the streamed export is byte-identical to a batch run
    sim::ExperimentRunner plain;
    EXPECT_EQ(field(recs[6], "export").asString(),
              jsonOf(plain.run(spec)));

    EXPECT_EQ(engine.stats().errors, 4u);
    EXPECT_EQ(engine.stats().requests, 1u);
}

TEST(Serve, DuplicateIdIsRejectedWhileInFlight)
{
    Gate gate;
    workloads::ScopedFamily scoped(gatedFamily(gate));
    sim::ServeEngine engine({});
    auto client = engine.connect();

    const auto spec = baseSpec({"serve-gate"});
    client->submitLine(requestLine("dup", spec));
    gate.awaitEntered(1);
    client->submitLine(requestLine("dup", spec));
    gate.release();
    client->endOfInput();

    const auto recs = drain(*client);
    // accepted, then the duplicate's error, then cell + done
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(eventOf(recs[0]), "accepted");
    EXPECT_EQ(eventOf(recs[1]), "error");
    EXPECT_EQ(field(recs[1], "id").asString(), "dup");
    EXPECT_EQ(eventOf(recs[3]), "done");
}

TEST(Serve, ConcurrentClientsShareOneInFlightCell)
{
    Gate gate;
    workloads::ScopedFamily scoped(gatedFamily(gate));
    sim::ServeEngine::Options opts;
    opts.resultCacheCap = 0; // force the in-flight path, not the LRU
    sim::ServeEngine engine(opts);

    // client A sweeps {serve-gate, gzip}; jobs=1 means its single
    // worker blocks inside serve-gate's generator while the gzip cell
    // is claimed-but-unstarted — exactly when client B asks for gzip
    const auto specA = baseSpec({"serve-gate", "gzip"});
    const auto specB = baseSpec({"gzip"});

    auto a = engine.connect();
    auto b = engine.connect();
    a->submitLine(requestLine("a", specA));
    gate.awaitEntered(1);
    b->submitLine(requestLine("b", specB));
    b->endOfInput();

    // B's upfront pass attaches to A's claimed gzip flight and then
    // blocks until A simulates it; release the gate and drain B first
    // to prove the fan-out path (not B's own simulation) feeds it
    gate.release();
    const auto recsB = drain(*b);
    a->endOfInput();
    const auto recsA = drain(*a);

    ASSERT_EQ(recsB.size(), 3u);
    EXPECT_EQ(eventOf(recsB[1]), "cell");
    EXPECT_EQ(eventOf(recsB[2]), "done");
    EXPECT_EQ(field(recsB[2], "cellsSimulated").asU64(), 0u);
    EXPECT_EQ(field(recsB[2], "cellsShared").asU64(), 1u);

    ASSERT_EQ(recsA.size(), 4u);
    EXPECT_EQ(eventOf(recsA[3]), "done");
    EXPECT_EQ(field(recsA[3], "cellsSimulated").asU64(), 2u);

    const auto s = engine.stats();
    EXPECT_EQ(s.cellsSimulated, 2u);
    EXPECT_EQ(s.cellsShared, 1u);
    EXPECT_EQ(s.cellsCached, 0u);

    // both exports are byte-identical to batch runs of their specs
    sim::ExperimentRunner plain;
    EXPECT_EQ(field(recsB[2], "export").asString(),
              jsonOf(plain.run(specB)));
    EXPECT_EQ(field(recsA[3], "export").asString(),
              jsonOf(plain.run(specA)));
}

TEST(Serve, CompletedCellsServeFromTheResultCache)
{
    sim::ServeEngine engine({});
    auto client = engine.connect();
    const auto spec = baseSpec({"gzip"});
    client->submitLine(requestLine("r1", spec));
    // r1 has fully drained by the time r2 parses, so r2's only cell
    // must come from the completed-cell LRU without simulating
    std::string line;
    std::vector<json::Value> recs;
    while (recs.size() < 3 && client->nextRecord(line))
        recs.push_back(json::parse(line));
    ASSERT_EQ(recs.size(), 3u);
    ASSERT_EQ(eventOf(recs[2]), "done");

    client->submitLine(requestLine("r2", spec));
    client->endOfInput();
    const auto rest = drain(*client);
    ASSERT_EQ(rest.size(), 3u);
    EXPECT_EQ(eventOf(rest[2]), "done");
    EXPECT_EQ(field(rest[2], "cellsSimulated").asU64(), 0u);
    EXPECT_EQ(field(rest[2], "cellsCached").asU64(), 1u);
    EXPECT_EQ(field(rest[2], "export").asString(),
              field(recs[2], "export").asString());
    EXPECT_EQ(engine.stats().cellsSimulated, 1u);
    EXPECT_EQ(engine.stats().cellsCached, 1u);
}

TEST(Serve, OversizedRequestLineGetsAnErrorRecord)
{
    sim::ServeEngine engine({});
    auto client = engine.connect();
    // 16 MiB + 1 of garbage: rejected by the size cap before the
    // JSON parser ever sees it
    client->submitLine(std::string((16u << 20) + 1, 'x'));
    client->endOfInput();
    const auto recs = drain(*client);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(eventOf(recs[0]), "error");
    EXPECT_NE(field(recs[0], "error").asString().find("exceeds"),
              std::string::npos);
    EXPECT_EQ(engine.stats().errors, 1u);
}

TEST(Serve, CancelWithReplicaWorkersDrainsEachCellOnce)
{
    // seeds=2, jobs=2: both workers are inside cell 0's replicas
    // when the cancel lands, and afterwards both hit cell 1's
    // shouldRun near-simultaneously — the execution-time drain
    // decision must be made exactly once (no double-counted
    // nCancelled, no torn plan/flight state)
    Gate gate;
    workloads::ScopedFamily scoped(gatedFamily(gate));
    sim::ServeEngine engine({});
    auto client = engine.connect();

    auto spec = baseSpec({"serve-gate", "gzip"});
    spec.seeds = 2;
    spec.jobs = 2;
    client->submitLine(requestLine("c1", spec));
    gate.awaitEntered(1);
    client->submitLine("{\"cancel\":\"c1\"}");
    gate.release();
    client->endOfInput();

    const auto recs = drain(*client);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(eventOf(recs[0]), "accepted");
    EXPECT_EQ(eventOf(recs[1]), "done");
    EXPECT_EQ(field(recs[1], "cancelled").asBool(), true);
    EXPECT_EQ(field(recs[1], "cellsSimulated").asU64(), 1u);
    EXPECT_EQ(field(recs[1], "cellsCancelled").asU64(), 1u);
    EXPECT_EQ(engine.stats().cellsCancelled, 1u);
}

TEST(Serve, SlowWaiterIsHardClosedNotStalledOn)
{
    // B attaches to A's in-flight gzip cell but never reads its
    // stream; with queueCap=1 its queue is already full (accepted
    // record), so A's fan-out must time out and hard-close B instead
    // of parking A's worker forever (pre-fix this test hangs)
    Gate gate;
    workloads::ScopedFamily scoped(gatedFamily(gate));
    sim::ServeEngine::Options opts;
    opts.queueCap = 1;
    opts.resultCacheCap = 0;
    opts.fanoutWaitMs = 50;
    sim::ServeEngine engine(opts);

    const auto specA = baseSpec({"serve-gate", "gzip"});
    const auto specB = baseSpec({"gzip"});
    auto a = engine.connect();
    auto b = engine.connect();
    a->submitLine(requestLine("a", specA));
    gate.awaitEntered(1); // A's up-front pass claimed both cells
    b->submitLine(requestLine("b", specB));
    gate.release();
    a->endOfInput();

    // A must run to completion even though B never drains
    const auto recsA = drain(*a);
    ASSERT_EQ(recsA.size(), 4u);
    EXPECT_EQ(eventOf(recsA[3]), "done");
    EXPECT_EQ(field(recsA[3], "cellsSimulated").asU64(), 2u);
    EXPECT_EQ(engine.stats().cellsShared, 1u);

    // B was hard-closed: its queue is discarded and just ends
    const auto recsB = drain(*b);
    EXPECT_TRUE(recsB.empty());
}

TEST(Serve, SequentialRequestsReapFinishedThreads)
{
    // a long-lived connection submitting many requests must not
    // accumulate joinable threads: each submitLine reaps the
    // previous requests' handles (asserted structurally by TSan /
    // ASan cleanliness; functionally every request still completes)
    sim::ServeEngine engine({});
    auto client = engine.connect();
    const auto spec = baseSpec({"gzip"});
    std::string line;
    std::size_t done = 0;
    for (int r = 0; r < 6; r++) {
        client->submitLine(requestLine("r" + std::to_string(r),
                                       spec));
        while (client->nextRecord(line)) {
            if (json::parse(line).at("event").asString() == "done") {
                done++;
                break;
            }
        }
    }
    client->endOfInput();
    EXPECT_EQ(done, 6u);
    EXPECT_EQ(engine.stats().cellsSimulated, 1u);
    EXPECT_EQ(engine.stats().cellsCached, 5u);
}

TEST(Serve, CancelDrainsUnstartedCellsAndSuppressesExport)
{
    Gate gate;
    workloads::ScopedFamily scoped(gatedFamily(gate));
    sim::ServeEngine engine({});
    auto client = engine.connect();

    // jobs=1: the worker blocks inside cell 0 (serve-gate) while
    // cell 1 (gzip) is claimed but unstarted. Cancelling now must let
    // cell 0 finish (it is already executing) and drain cell 1.
    const auto spec = baseSpec({"serve-gate", "gzip"});
    client->submitLine(requestLine("c1", spec));
    gate.awaitEntered(1);
    client->submitLine("{\"cancel\":\"c1\"}");
    gate.release();
    client->endOfInput();

    const auto recs = drain(*client);
    // cancelled requests stream no cell records and no export
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(eventOf(recs[0]), "accepted");
    EXPECT_EQ(eventOf(recs[1]), "done");
    EXPECT_EQ(field(recs[1], "cancelled").asBool(), true);
    EXPECT_EQ(field(recs[1], "cellsSimulated").asU64(), 1u);
    EXPECT_EQ(field(recs[1], "cellsCancelled").asU64(), 1u);
    EXPECT_EQ(recs[1].find("export"), nullptr)
        << "cancelled done record must not carry an export";

    EXPECT_EQ(engine.stats().cellsCancelled, 1u);
    EXPECT_EQ(engine.stats().cellsSimulated, 1u);

    // cancelling an unknown id is an error record, not a crash
    auto late = engine.connect();
    late->submitLine("{\"cancel\":\"c1\"}");
    late->endOfInput();
    const auto lateRecs = drain(*late);
    ASSERT_EQ(lateRecs.size(), 1u);
    EXPECT_EQ(eventOf(lateRecs[0]), "error");
}

} // namespace
} // namespace siq
