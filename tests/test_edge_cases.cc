/**
 * @file
 * Edge cases across modules: interpreter corner semantics, indirect
 * jump prediction economics, hint interactions at region boundaries
 * and tag placement for loop entries.
 */

#include <gtest/gtest.h>

#include "compiler/pass.hh"
#include "cpu/core.hh"
#include "ir/cfg.hh"
#include "ir/exec.hh"
#include "isa/hint.hh"
#include "workloads/builder.hh"
#include "workloads/workloads.hh"

namespace siq
{
namespace
{

TEST(ExecEdge, DivideByZeroYieldsZero)
{
    ProgramBuilder b("div0", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 42));
    b.emit(makeMovImm(2, 0));
    b.emit(makeDiv(3, 1, 2));
    b.emit(makeFMovImm(fpRegBase + 1, 5));
    b.emit(makeFMovImm(fpRegBase + 2, 0));
    b.emit(makeFDiv(fpRegBase + 3, fpRegBase + 1, fpRegBase + 2));
    b.emit(makeHalt());
    const Program prog = b.build();
    ExecContext ctx(prog);
    while (!ctx.halted())
        ctx.step();
    EXPECT_EQ(ctx.intReg(3), 0);
    EXPECT_EQ(ctx.fpReg(fpRegBase + 3), 0.0);
}

TEST(ExecEdge, ReturnFromEntryProcedureHalts)
{
    ProgramBuilder b("ret", 64);
    b.newProc("main");
    b.emit(makeAddImm(1, 1, 1));
    b.emit(makeRet());
    const Program prog = b.build();
    ExecContext ctx(prog);
    ctx.step();
    const auto res = ctx.step();
    EXPECT_TRUE(res.halted);
    EXPECT_TRUE(ctx.halted());
}

TEST(ExecEdge, NegativeIndirectIndexWraps)
{
    ProgramBuilder b("neg", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, -1)); // wraps to the last case
    auto sw = b.beginSwitch(1, 3);
    for (int c = 0; c < 3; c++) {
        b.switchTo(sw.cases[static_cast<std::size_t>(c)]);
        b.emit(makeMovImm(9, c));
        b.jumpTo(sw.join);
    }
    b.switchTo(sw.join);
    b.emit(makeHalt());
    const Program prog = b.build();
    ExecContext ctx(prog);
    while (!ctx.halted())
        ctx.step();
    EXPECT_EQ(ctx.intReg(9), 2);
}

TEST(ExecEdge, FpLoadStoreRoundTripsBits)
{
    ProgramBuilder b("fp", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 16));
    b.emit(makeFMovImm(fpRegBase + 1, 7));
    b.emit(makeFStore(1, fpRegBase + 1, 0));
    b.emit(makeFLoad(fpRegBase + 2, 1, 0));
    b.emit(makeFAdd(fpRegBase + 3, fpRegBase + 1, fpRegBase + 2));
    b.emit(makeHalt());
    const Program prog = b.build();
    ExecContext ctx(prog);
    while (!ctx.halted())
        ctx.step();
    EXPECT_EQ(ctx.fpReg(fpRegBase + 2), 7.0);
    EXPECT_EQ(ctx.fpReg(fpRegBase + 3), 14.0);
}

TEST(CoreEdge, IndirectJumpsWithVaryingTargetsMispredict)
{
    // alternating switch targets defeat the BTB's last-target scheme
    auto build = [](bool alternating) {
        ProgramBuilder b("ijmp", 256);
        b.newProc("main");
        b.emit(makeMovImm(1, 0));
        b.emit(makeMovImm(2, 2000));
        auto loop = b.beginLoop(1, 2);
        if (alternating) {
            b.emit(makeMovImm(3, 1));
            b.emit(makeAnd(4, 1, 3));
        } else {
            b.emit(makeMovImm(4, 0));
        }
        auto sw = b.beginSwitch(4, 2);
        for (int c = 0; c < 2; c++) {
            b.switchTo(sw.cases[static_cast<std::size_t>(c)]);
            b.emit(makeAddImm(9, 9, c + 1));
            b.jumpTo(sw.join);
        }
        b.switchTo(sw.join);
        b.endLoop(loop);
        b.emit(makeHalt());
        return b.build();
    };
    const Program fixed = build(false);
    Core cFixed(fixed, CoreConfig{});
    cFixed.run(1u << 24);
    const Program alt = build(true);
    Core cAlt(alt, CoreConfig{});
    cAlt.run(1u << 24);
    EXPECT_GT(cAlt.stats().branchMispredicts,
              cFixed.stats().branchMispredicts + 500);
    EXPECT_LT(cAlt.stats().ipc(), cFixed.stats().ipc());
}

TEST(CoreEdge, BackToBackHintsLastOneWins)
{
    ProgramBuilder b("hh", 64);
    b.newProc("main");
    b.emit(makeHint(40));
    b.emit(makeHint(7));
    b.emit(makeAddImm(1, 1, 1));
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, CoreConfig{});
    core.run(1u << 20);
    EXPECT_EQ(core.issueQueue().currentRange(), 7);
    EXPECT_EQ(core.stats().hintsApplied, 2u);
}

TEST(CoreEdge, LsqFullStallsDispatchNotCorrectness)
{
    CoreConfig cfg;
    cfg.lsq.numEntries = 2;
    ProgramBuilder b("lsq", 256);
    b.newProc("main");
    b.emit(makeMovImm(1, 32));
    for (int i = 0; i < 16; i++)
        b.emit(makeStore(1, 1, i));
    for (int i = 0; i < 16; i++)
        b.emit(makeLoad(4, 1, i));
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, cfg);
    core.run(1u << 20);
    ASSERT_TRUE(core.done());
    EXPECT_GT(core.stats().dispatchStallLsq, 0u);
    EXPECT_EQ(core.exec().intReg(4), 32);
}

TEST(CoreEdge, TinyRegisterFileStallsRename)
{
    CoreConfig cfg;
    cfg.intRegs.numPhys = 40; // 8 rename registers only
    ProgramBuilder b("regs", 64);
    b.newProc("main");
    // a single renamed destination inside a hot loop: each rename
    // only returns its previous physical register at commit, so once
    // the icache is warm an 8-entry free list cannot keep up with
    // 8-wide dispatch
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(3, 40));
    auto loop = b.beginLoop(1, 3);
    for (int i = 0; i < 16; i++)
        b.emit(makeAddImm(2, 4, 1));
    b.endLoop(loop);
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, cfg);
    core.run(1u << 20);
    ASSERT_TRUE(core.done());
    EXPECT_GT(core.stats().dispatchStallRegs, 0u);
}

TEST(CompilerEdge, LoopEntryTagRidesThePredecessor)
{
    ProgramBuilder b("looptag", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 50));
    auto loop = b.beginLoop(1, 2);
    b.emit(makeMul(3, 3, 1));
    b.endLoop(loop);
    b.emit(makeHalt());
    Program prog = b.build();
    compiler::CompilerConfig cfg;
    cfg.scheme = compiler::HintScheme::Tag;
    cfg.elideRedundant = false;
    compiler::annotate(prog, cfg);
    // the loop-entry hint must be tagged on the block that falls
    // into the header, not on any block inside the loop (a hint in
    // the loop would reset new_head every iteration)
    const auto loops = findNaturalLoops(prog.procs[0]);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_NE(prog.procs[0].blocks[0].insts.back().tagHint, 0);
    for (int blk : loops[0].blocks)
        for (const auto &inst : prog.procs[0].blocks[blk].insts)
            EXPECT_NE(inst.op, Opcode::Hint)
                << "no hint NOOP may live inside the loop region";
}

TEST(CompilerEdge, AnnotateTwiceIsRejectedGracefully)
{
    // annotating an already-annotated program must not crash; hint
    // NOOPs are FuClass::None and analysis treats them as free
    Program prog = workloads::generate("gzip", {});
    compiler::CompilerConfig cfg;
    compiler::annotate(prog, cfg);
    const auto second = compiler::annotate(prog, cfg);
    EXPECT_GT(second.blocksAnalyzed, 0u);
}

TEST(CompilerEdge, HintValuesFitTheBinaryEncoding)
{
    Program prog = workloads::generate("perlbmk", {});
    compiler::CompilerConfig cfg;
    compiler::annotate(prog, cfg);
    for (const auto &proc : prog.procs) {
        for (const auto &block : proc.blocks) {
            for (const auto &inst : block.insts) {
                if (inst.op == Opcode::Hint) {
                    EXPECT_LE(inst.hintValue,
                              (1u << hintPayloadBits) - 1);
                }
            }
        }
    }
}

} // namespace
} // namespace siq
