#!/usr/bin/env bash
# End-to-end exercise of the siqsim CLI's headline guarantee: a
# 2-shard checkpointed run merges to byte-identical JSON/CSV against
# the same spec run unsharded, and a resumed run re-simulates nothing.
#
# Usage: cli_shard_smoke.sh /path/to/siqsim
set -euo pipefail

SIQSIM=${1:?usage: cli_shard_smoke.sh /path/to/siqsim}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/siqsim_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

"$SIQSIM" spec --benchmarks gzip,mcf --techniques baseline,noop \
    --warmup 2000 --measure 10000 --rep-divisor 40 --seeds 2 \
    --out spec.json

"$SIQSIM" run --spec spec.json --json unsharded.json --csv unsharded.csv \
    --power-csv unsharded_power.csv 2> run_unsharded.log
# the run summary reports cache hit rates, trace cache included
grep -q "caches: workloads .* traces " run_unsharded.log

"$SIQSIM" run --spec spec.json --shard 0/2 --ckpt ckpt

# status on a half-run directory: exit 3, per-shard breakdown shows
# shard 0 done and shard 1 missing
set +e
"$SIQSIM" status ckpt --shards 2 > status_partial.log
rc=$?
set -e
test "$rc" -eq 3
grep -q "checkpointed: 2/4" status_partial.log
grep -q "shard 0/2: 2/2 done" status_partial.log
grep -q "shard 1/2: 0/2 done" status_partial.log
grep -q "missing cells:" status_partial.log

"$SIQSIM" run --spec spec.json --shard 1/2 --ckpt ckpt \
    --json merged_inline.json

# status on the complete directory: exit 0; --cache reports the
# per-shard counter files published by the checkpointed runs
"$SIQSIM" status ckpt --cache > status_done.log
grep -q "checkpointed: 4/4" status_done.log
grep -q "complete" status_done.log
grep -q "cache_shard_0_of_2.json: workloads " status_done.log
grep -q "cache_shard_1_of_2.json: .* traces " status_done.log
"$SIQSIM" merge ckpt --json merged.json --csv merged.csv \
    --power-csv merged_power.csv

cmp unsharded.json merged.json
cmp unsharded.csv merged.csv
cmp unsharded_power.csv merged_power.csv
# the shard that completes the matrix emits the same canonical bytes
cmp unsharded.json merged_inline.json

# resume: delete one checkpoint, re-run the shard, expect exactly one
# cell simulated and identical merged output
rm ckpt/cells/cell_00000_*.json
"$SIQSIM" run --spec spec.json --shard 0/2 --ckpt ckpt 2> resume.log \
    --json resumed.json
grep -q "resumed 1, simulated 1" resume.log
cmp unsharded.json resumed.json

# a different spec must be rejected by the run directory
"$SIQSIM" spec --benchmarks gzip --techniques baseline --out other.json
if "$SIQSIM" run --spec other.json --ckpt ckpt 2> mismatch.log; then
    echo "expected spec mismatch to fail" >&2
    exit 1
fi
grep -q "does not match this spec" mismatch.log

# unknown workload names fail at spec time (exit 1, not a bare
# fatal): the error names the bad family and lists every registered
# one so the fix is in the message
set +e
"$SIQSIM" spec --workloads gzip,oltp --techniques baseline \
    2> unknown.log
rc=$?
set -e
test "$rc" -eq 1
grep -q "unknown workload family 'oltp'" unknown.log
grep -q "registered families:" unknown.log
grep -q "phased" unknown.log

# out-of-range family parameters are rejected the same way
set +e
"$SIQSIM" spec --workloads phased:duty=99 --techniques baseline \
    2> range.log
rc=$?
set -e
test "$rc" -eq 1
grep -q "duty=99 outside" range.log

# parameterized-family end-to-end: a spec embedding family params
# (written in non-canonical order) runs sharded and merges
# byte-identical to the unsharded run
"$SIQSIM" spec --workloads phased:duty=30:period=2000,gzip \
    --techniques baseline,noop \
    --warmup 2000 --measure 8000 --rep-divisor 40 --seeds 2 \
    --out param_spec.json
grep -q '"family":"phased","params":{"period":2000,"duty":30}' \
    param_spec.json

"$SIQSIM" run --spec param_spec.json --json param_unsharded.json
"$SIQSIM" run --spec param_spec.json --shard 0/2 --ckpt param_ckpt
"$SIQSIM" run --spec param_spec.json --shard 1/2 --ckpt param_ckpt
"$SIQSIM" merge param_ckpt --json param_merged.json
cmp param_unsharded.json param_merged.json
# cells carry the canonical workload spelling
grep -q '"benchmark":"phased:period=2000:duty=30"' param_merged.json

echo "cli_shard_smoke: OK"
