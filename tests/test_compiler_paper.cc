/**
 * @file
 * Golden tests taken directly from the paper's worked examples:
 *  - figure 1: the 6-instruction basic block runs full speed with
 *    only 2 IQ entries, and the limited queue causes 10 wake-ups
 *    against the baseline's 18;
 *  - figure 3: the DAG analysis needs 4 entries;
 *  - figure 4: the loop equations give b = a(i+1), c,d = a(i+2),
 *    e,f = a(i+3) and 15 IQ entries.
 */

#include <gtest/gtest.h>

#include "compiler/loop_analysis.hh"
#include "compiler/pseudo_iq.hh"
#include "ir/ddg.hh"

namespace siq::compiler
{
namespace
{

PseudoInst
alu()
{
    PseudoInst pi;
    pi.latency = 1;
    pi.fu = FuClass::IntAlu;
    return pi;
}

/**
 * Figure 1: a,b independent; c<-a, d<-b, e<-{c,d}, f<-{b,d}
 * (add/add/mul/mul/add/add; all sources of a and b already
 * available).
 */
struct Fig1
{
    std::vector<PseudoInst> insts;
    std::vector<PseudoDep> deps;

    Fig1()
    {
        PseudoInst mul = alu();
        mul.fu = FuClass::IntMul;
        // the paper's example assumes one-cycle execution for every
        // instruction ("each instruction takes one cycle to execute")
        mul.latency = 1;
        insts = {alu(), alu(), mul, mul, alu(), alu()};
        deps = {{0, 2}, {1, 3}, {2, 4}, {3, 4}, {1, 5}, {3, 5}};
    }
};

TEST(PaperFigure1, TwoEntriesRunFullSpeed)
{
    Fig1 fig;
    PseudoIqConfig cfg;
    // paper: dispatch width 8, plenty of units
    const int unconstrained =
        simulatePseudoIq(fig.insts, fig.deps, cfg, {}, cfg.iqSize)
            .drainCycles;
    const int limited =
        simulatePseudoIq(fig.insts, fig.deps, cfg, {}, 2).drainCycles;
    EXPECT_EQ(unconstrained, limited)
        << "the paper's figure 1(d): limiting to 2 entries causes "
           "no slowdown";
    EXPECT_EQ(minimalRange(fig.insts, fig.deps, cfg), 2);
}

TEST(PaperFigure1, PairsIssueInConsecutiveCycles)
{
    Fig1 fig;
    PseudoIqConfig cfg;
    const auto res =
        simulatePseudoIq(fig.insts, fig.deps, cfg, {}, 2);
    // a,b in one cycle; c,d next; e,f last (figure 1(d))
    EXPECT_EQ(res.issueCycle[0], res.issueCycle[1]);
    EXPECT_EQ(res.issueCycle[2], res.issueCycle[3]);
    EXPECT_EQ(res.issueCycle[4], res.issueCycle[5]);
    EXPECT_EQ(res.issueCycle[2], res.issueCycle[0] + 1);
    EXPECT_EQ(res.issueCycle[4], res.issueCycle[2] + 1);
}

/**
 * Figure 3: six instructions a..f; a issues alone, then b,d, then
 * c,e,f; the block needs 4 entries.
 */
struct Fig3
{
    std::vector<PseudoInst> insts;
    std::vector<PseudoDep> deps;

    Fig3()
    {
        insts.assign(6, alu());
        // a -> b, a -> d (iteration 1: b and d issue)
        // b -> c, d -> e, d -> f (iteration 2: c, e, f issue)
        deps = {{0, 1}, {0, 3}, {1, 2}, {3, 4}, {3, 5}};
    }
};

TEST(PaperFigure3, IssueWavesMatchTheFigure)
{
    Fig3 fig;
    PseudoIqConfig cfg;
    const auto res = simulatePseudoIq(fig.insts, fig.deps, cfg, {},
                                      cfg.iqSize);
    // iteration 0: a; iteration 1: b, d; iteration 2: c, e, f
    EXPECT_EQ(res.issueCycle[1], res.issueCycle[0] + 1);
    EXPECT_EQ(res.issueCycle[3], res.issueCycle[0] + 1);
    EXPECT_EQ(res.issueCycle[2], res.issueCycle[0] + 2);
    EXPECT_EQ(res.issueCycle[4], res.issueCycle[0] + 2);
    EXPECT_EQ(res.issueCycle[5], res.issueCycle[0] + 2);
}

TEST(PaperFigure3, NeedsFourEntries)
{
    Fig3 fig;
    PseudoIqConfig cfg;
    // the paper's per-cycle counting: iteration 1 spans b..d (3),
    // iteration 2 spans c..f (4)
    const auto res = simulatePseudoIq(fig.insts, fig.deps, cfg, {},
                                      cfg.iqSize);
    EXPECT_EQ(res.entriesNeeded, 4);
    // and the minimal non-degrading range agrees
    EXPECT_EQ(minimalRange(fig.insts, fig.deps, cfg), 4);
}

/**
 * Figure 4: loop body a..f with a depending on itself across
 * iterations: a(i) <- a(i-1); b <- a; c <- b; d <- b; e <- d; f <- c.
 * All latencies 1.
 */
Ddg
fig4Ddg(std::vector<StaticInst> &storage)
{
    // the Ddg only reads latencies through its nodes, so synthesize
    // instructions directly
    storage.assign(6, makeAddImm(1, 1, 1));
    Ddg ddg;
    for (int i = 0; i < 6; i++)
        ddg.addNode({&storage[static_cast<std::size_t>(i)], 0, i, 1});
    ddg.addEdge(0, 0, 1, 1); // a -> a, next iteration
    ddg.addEdge(0, 1, 1, 0); // b <- a
    ddg.addEdge(1, 2, 1, 0); // c <- b
    ddg.addEdge(1, 3, 1, 0); // d <- b
    ddg.addEdge(3, 4, 1, 0); // e <- d
    ddg.addEdge(2, 5, 1, 0); // f <- c
    return ddg;
}

TEST(PaperFigure4, EquationsMatchTheWorkedExample)
{
    std::vector<StaticInst> storage;
    const Ddg ddg = fig4Ddg(storage);
    const auto cds = analyzeCds(ddg);
    ASSERT_TRUE(cds.has_value());
    EXPECT_NEAR(cds->period, 1.0, 1e-3);
    EXPECT_EQ(cds->anchor, 0) << "a is the cyclic dependence set";
    // figure 4(c): b = a(i+1); c,d = a(i+2); e,f = a(i+3)
    EXPECT_EQ(cds->iterationOffset[1], 1);
    EXPECT_EQ(cds->iterationOffset[2], 2);
    EXPECT_EQ(cds->iterationOffset[3], 2);
    EXPECT_EQ(cds->iterationOffset[4], 3);
    EXPECT_EQ(cds->iterationOffset[5], 3);
}

TEST(PaperFigure4, FifteenEntries)
{
    std::vector<StaticInst> storage;
    const Ddg ddg = fig4Ddg(storage);
    const auto cds = analyzeCds(ddg);
    ASSERT_TRUE(cds.has_value());
    // "15 entries need to be available ... e and f from iteration i,
    // 12 instructions from iterations i+1 and i+2, and a from
    // iteration i+3"
    EXPECT_EQ(cds->entries, 15);
}

} // namespace
} // namespace siq::compiler
