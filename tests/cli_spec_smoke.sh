#!/usr/bin/env bash
# End-to-end smoke for the speculative front end through the CLI: one
# speculative-mode cell per technique, run through the checkpointed
# path, with every export round-tripping byte-exactly — and the
# --speculative toggle actually speculating (nonzero squash counters
# in the JSON) while leaving oracle-mode spec bytes untouched.
#
# Usage: cli_spec_smoke.sh /path/to/siqsim
set -euo pipefail

SIQSIM=${1:?usage: cli_spec_smoke.sh /path/to/siqsim}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/siqsim_spec_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

# --speculative is carried in the spec JSON; without the flag the
# spec must not mention it at all (schema evolution: oracle-mode
# exports keep their historical bytes)
"$SIQSIM" spec --workloads perlbmk --techniques all \
    --warmup 2000 --measure 10000 --rep-divisor 40 \
    --out oracle_spec.json
if grep -q specFrontEnd oracle_spec.json; then
    echo "oracle spec must not carry specFrontEnd" >&2
    exit 1
fi

"$SIQSIM" spec --workloads perlbmk --techniques all \
    --warmup 2000 --measure 10000 --rep-divisor 40 --speculative \
    --out spec.json
grep -q '"specFrontEnd":true' spec.json

# one speculative cell per technique: direct run vs checkpointed run
# + merge must produce byte-identical canonical exports
"$SIQSIM" run --spec spec.json --json direct.json --csv direct.csv \
    --power-csv direct_power.csv
"$SIQSIM" run --spec spec.json --ckpt ckpt
"$SIQSIM" merge ckpt --json merged.json --csv merged.csv \
    --power-csv merged_power.csv
cmp direct.json merged.json
cmp direct.csv merged.csv
cmp direct_power.csv merged_power.csv

# every technique's cell actually speculated: perlbmk's indirect
# dispatch guarantees mispredicts, so each of the 6 cells must carry
# nonzero wrong-path and squash counters
test "$(grep -o '"wrongPathFetched":[1-9]' direct.json | wc -l)" -eq 6
test "$(grep -o '"squashes":[1-9]' direct.json | wc -l)" -eq 6
test "$(grep -o '"squashedInsts":[1-9]' direct.json | wc -l)" -eq 6
# and the CSV carries the speculation columns
grep -q 'stats_wrongPathFetched' direct.csv

# oracle-mode exports must not mention speculation at all
"$SIQSIM" run --spec oracle_spec.json --json oracle.json \
    --csv oracle.csv
if grep -q 'wrongPathFetched\|"squashes"' oracle.json oracle.csv; then
    echo "oracle-mode exports must not carry speculation fields" >&2
    exit 1
fi

echo "cli_spec_smoke: OK"
