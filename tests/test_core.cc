/**
 * @file
 * End-to-end core tests on small hand-built programs: functional
 * equivalence with the reference interpreter, timing sanity, hint
 * semantics (including the range invariant), mispredict penalties and
 * non-pipelined FU occupancy.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/core.hh"
#include "ir/exec.hh"
#include "workloads/builder.hh"

namespace siq
{
namespace
{

/** Run both the interpreter and the core; compare checksum memory. */
void
expectFunctionalMatch(const Program &prog,
                      const CoreConfig &cfg = CoreConfig{})
{
    ExecContext ref(prog);
    while (!ref.halted())
        ref.step();

    Core core(prog, cfg);
    core.run(1u << 24);
    ASSERT_TRUE(core.done());
    for (std::uint64_t a = 0; a < 32; a++)
        EXPECT_EQ(core.exec().readMem(a), ref.readMem(a))
            << "word " << a;
}

Program
sumLoop(int iters)
{
    ProgramBuilder b("sum", 256);
    b.newProc("main");
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, iters));
    auto loop = b.beginLoop(1, 2);
    b.emit(makeAdd(3, 3, 1));
    b.endLoop(loop);
    b.emit(makeMovImm(4, 8));
    b.emit(makeStore(4, 3, 0));
    b.emit(makeHalt());
    return b.build();
}

TEST(Core, SumLoopFunctionalAndTerminates)
{
    expectFunctionalMatch(sumLoop(100));
}

TEST(Core, IpcWithinPhysicalBounds)
{
    const Program prog = sumLoop(2000);
    Core core(prog, CoreConfig{});
    core.run(1u << 24);
    const auto &s = core.stats();
    EXPECT_GT(s.ipc(), 0.5);
    EXPECT_LE(s.ipc(), 8.0);
    EXPECT_EQ(s.committed, core.exec().instsExecuted());
}

TEST(Core, HintNoopConsumesDispatchSlotButNeverCommits)
{
    ProgramBuilder b("hints", 64);
    b.newProc("main");
    for (int i = 0; i < 4; i++) {
        b.emit(makeHint(8));
        b.emit(makeAddImm(1, 1, 1));
    }
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, CoreConfig{});
    core.run(1u << 20);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.stats().hintsApplied, 4u);
    // 4 adds + halt commit; hints do not
    EXPECT_EQ(core.stats().committed, 5u);
    EXPECT_EQ(core.exec().intReg(1), 4);
}

TEST(Core, TagHintAppliesWithoutDispatchSlot)
{
    ProgramBuilder b("tags", 64);
    b.newProc("main");
    StaticInst tagged = makeAddImm(1, 1, 1);
    tagged.tagHint = 6;
    b.emit(tagged);
    b.emit(makeAddImm(1, 1, 1));
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, CoreConfig{});
    core.run(1u << 20);
    EXPECT_EQ(core.stats().hintsApplied, 1u);
    EXPECT_EQ(core.exec().intReg(1), 2);
    EXPECT_EQ(core.issueQueue().currentRange(), 6);
}

/** A long chain of dependent adds behind a tiny range. */
TEST(Core, TinyRangeThrottlesButNeverDeadlocks)
{
    ProgramBuilder b("tiny", 64);
    b.newProc("main");
    b.emit(makeHint(1)); // pathological: one entry at a time
    for (int i = 0; i < 64; i++)
        b.emit(makeAddImm(1, 1, 1));
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, CoreConfig{});
    core.run(1u << 22);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.exec().intReg(1), 64);
    EXPECT_GT(core.stats().dispatchStallRange, 0u);
}

TEST(Core, RangeInvariantHoldsEveryCycle)
{
    // run a hinted program tick by tick and check the hardware
    // invariant dist(new_head, tail) <= max_new_range
    ProgramBuilder b("inv", 256);
    b.newProc("main");
    b.emit(makeHint(5));
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 200));
    auto loop = b.beginLoop(1, 2);
    b.emit(makeMul(3, 1, 1));
    b.emit(makeAdd(4, 4, 3));
    b.endLoop(loop);
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, CoreConfig{});
    while (!core.done()) {
        core.tick();
        EXPECT_LE(core.issueQueue().distNewHeadToTail(),
                  core.issueQueue().currentRange());
        ASSERT_LT(core.cycle(), 100000u);
    }
}

TEST(Core, MispredictsCostCycles)
{
    // data-dependent 50/50 branch on LCG noise vs the same amount of
    // work with an always-taken pattern
    auto build = [](bool noisy) {
        ProgramBuilder b("br", 256);
        b.newProc("main");
        b.emit(makeMovImm(4, 12345));
        b.emit(makeMovImm(1, 0));
        b.emit(makeMovImm(2, 3000));
        auto loop = b.beginLoop(1, 2);
        b.emit(makeMovImm(5, 6364136223846793005ll));
        b.emit(makeMul(4, 4, 5));
        b.emit(makeAddImm(4, 4, 1442695040888963407ll));
        b.emit(makeShr(6, 4, 62));
        if (noisy) {
            b.emit(makeMovImm(7, 2));
        } else {
            b.emit(makeMovImm(7, 100)); // never below: predictable
        }
        auto d = b.beginIf(makeBlt(6, 7, -1));
        b.emit(makeAddImm(8, 8, 1));
        b.elseBranch(d);
        b.emit(makeAddImm(8, 8, 2));
        b.joinUp(d);
        b.endLoop(loop);
        b.emit(makeHalt());
        return b.build();
    };
    const Program predictableProg = build(false);
    Core predictable(predictableProg, CoreConfig{});
    predictable.run(1u << 24);
    const Program noisyProg = build(true);
    Core noisy(noisyProg, CoreConfig{});
    noisy.run(1u << 24);
    EXPECT_GT(noisy.stats().branchMispredicts,
              predictable.stats().branchMispredicts + 100);
    EXPECT_LT(noisy.stats().ipc(), predictable.stats().ipc());
}

TEST(Core, NonPipelinedDividesSerializeOnUnits)
{
    // 8 independent divides on 3 IntMul units: at most 3 in flight,
    // so the run needs at least ceil(8/3) * 12 cycles
    ProgramBuilder b("div", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 1000));
    b.emit(makeMovImm(2, 7));
    for (int i = 0; i < 8; i++)
        b.emit(makeDiv(10 + i, 1, 2));
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, CoreConfig{});
    core.run(1u << 20);
    ASSERT_TRUE(core.done());
    EXPECT_GE(core.cycle(), 3u * 12u);
    EXPECT_EQ(core.exec().intReg(10), 142);
}

TEST(Core, StoreToLoadForwardingHappens)
{
    ProgramBuilder b("fwd", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 16));
    b.emit(makeMovImm(2, 99));
    b.emit(makeStore(1, 2, 0));
    b.emit(makeLoad(3, 1, 0)); // same address: forwards
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, CoreConfig{});
    core.run(1u << 20);
    EXPECT_EQ(core.exec().intReg(3), 99);
    EXPECT_EQ(core.stats().loadForwards, 1u);
}

TEST(Core, CallsReturnThroughRas)
{
    ProgramBuilder b("ras", 64);
    const int leaf = b.newProc("leaf");
    b.emit(makeAddImm(9, 9, 1));
    b.emit(makeRet());
    const int mainP = b.newProc("main");
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 50));
    auto loop = b.beginLoop(1, 2);
    b.callProc(leaf);
    b.endLoop(loop);
    b.emit(makeHalt());
    Program prog = b.build();
    prog.entryProc = mainP;
    Core core(prog, CoreConfig{});
    core.run(1u << 22);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.exec().intReg(9), 50);
    // after warm-up the RAS should predict nearly every return
    EXPECT_LT(core.stats().branchMispredicts, 10u);
}

TEST(Core, ResetStatsPreservesArchState)
{
    const Program prog = sumLoop(500);
    Core core(prog, CoreConfig{});
    core.run(200);
    core.resetStats();
    EXPECT_EQ(core.stats().committed, 0u);
    core.run(1u << 24);
    ASSERT_TRUE(core.done());
    ExecContext ref(prog);
    while (!ref.halted())
        ref.step();
    EXPECT_EQ(core.exec().readMem(8), ref.readMem(8));
}

TEST(Core, FunctionalMatchUnderManyConfigs)
{
    const Program prog = sumLoop(300);
    for (int iqSize : {16, 40, 80}) {
        CoreConfig cfg;
        cfg.iq.numEntries = iqSize;
        cfg.iq.bankSize = 8;
        expectFunctionalMatch(prog, cfg);
    }
    CoreConfig narrow;
    narrow.fetchWidth = 2;
    narrow.dispatchWidth = 2;
    narrow.issueWidth = 2;
    narrow.commitWidth = 2;
    expectFunctionalMatch(prog, narrow);
}

/** Project popped completions onto their ROB indices. */
std::vector<int>
poppedIdxs(const std::vector<CompletionWheel::Completion> &out)
{
    std::vector<int> idxs;
    for (const auto &c : out)
        idxs.push_back(c.robIdx);
    return idxs;
}

TEST(CompletionWheel, PreservesSchedulingOrderWithinACycle)
{
    CompletionWheel w;
    w.init(12);
    std::vector<CompletionWheel::Completion> out;
    w.schedule(3, 7, 0);
    w.schedule(3, 1, 0);
    w.schedule(5, 2, 0);
    w.popDue(2, out);
    EXPECT_TRUE(out.empty());
    w.popDue(3, out);
    EXPECT_EQ(poppedIdxs(out), (std::vector<int>{7, 1}));
    w.popDue(4, out);
    EXPECT_TRUE(out.empty());
    w.popDue(5, out);
    EXPECT_EQ(poppedIdxs(out), (std::vector<int>{2}));
}

TEST(CompletionWheel, BeyondHorizonEventsPopOnTheRightLap)
{
    CompletionWheel w;
    w.init(4); // bit_ceil(6) = 8 slots
    ASSERT_EQ(w.numSlots(), 8);
    std::vector<CompletionWheel::Completion> out;
    // a near event and an event three laps out share slot 3
    w.schedule(3, 11, 0);
    w.schedule(3 + 8 * 3, 9, 0);
    w.popDue(3, out);
    EXPECT_EQ(poppedIdxs(out), (std::vector<int>{11}))
        << "the far event must survive its slot's earlier laps";
    for (std::uint64_t c = 4; c < 27; c++) {
        w.popDue(c, out);
        EXPECT_TRUE(out.empty()) << "cycle " << c;
    }
    w.popDue(27, out);
    EXPECT_EQ(poppedIdxs(out), (std::vector<int>{9}));
}

TEST(CompletionWheel, GenerationsRoundTripForConsumerValidation)
{
    // the wheel never interprets generations — it hands each one back
    // with its event so the consumer can reject stale (squashed)
    // completions, including events of the very cycle a squash runs
    CompletionWheel w;
    w.init(8);
    std::vector<CompletionWheel::Completion> out;
    w.schedule(4, 5, 1);
    w.schedule(4, 5, 2); // same entry, re-dispatched under a new gen
    w.schedule(4, 6, 7);
    w.popDue(4, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].robIdx, 5);
    EXPECT_EQ(out[0].gen, 1u);
    EXPECT_EQ(out[1].robIdx, 5);
    EXPECT_EQ(out[1].gen, 2u);
    EXPECT_EQ(out[2].robIdx, 6);
    EXPECT_EQ(out[2].gen, 7u);
    EXPECT_TRUE(w.empty());
}

TEST(CompletionWheel, LongLatencyConfigStillSimulatesCorrectly)
{
    // a memory latency far beyond the 4096-slot cap exercises the
    // multi-lap path end-to-end: functional results must not change
    Program prog = sumLoop(64);
    CoreConfig cfg;
    cfg.mem.memLatency = 9000;
    expectFunctionalMatch(prog, cfg);
}

// ------------------------------------------------------------------
// Speculative front end (CoreConfig::specFrontEnd, DESIGN.md §14)
// ------------------------------------------------------------------

/** Data-dependent 50/50 branches on LCG noise: a mispredict mill. */
Program
noisyBranches(int iters)
{
    ProgramBuilder b("noisy", 256);
    b.newProc("main");
    b.emit(makeMovImm(4, 12345));
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, iters));
    auto loop = b.beginLoop(1, 2);
    b.emit(makeMovImm(5, 6364136223846793005ll));
    b.emit(makeMul(4, 4, 5));
    b.emit(makeAddImm(4, 4, 1442695040888963407ll));
    b.emit(makeShr(6, 4, 62));
    b.emit(makeMovImm(7, 2));
    auto d = b.beginIf(makeBlt(6, 7, -1));
    b.emit(makeAddImm(8, 8, 1));
    b.elseBranch(d);
    b.emit(makeAddImm(8, 8, 2));
    b.joinUp(d);
    b.endLoop(loop);
    b.emit(makeMovImm(9, 8));
    b.emit(makeStore(9, 8, 0));
    b.emit(makeHalt());
    return b.build();
}

/** LCG-driven indirect jumps, calls/returns, noisy branches and
 *  stores: every mispredict flavour (direction, RAS, BTB) plus
 *  wrong-path memory traffic. */
Program
mixedMispredicts(int iters)
{
    ProgramBuilder b("mixed", 4096);
    const int leaf = b.newProc("leaf");
    b.emit(makeAddImm(9, 9, 1));
    b.emit(makeRet());
    const int mainP = b.newProc("main");
    b.emit(makeMovImm(4, 99999));
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, iters));
    b.emit(makeMovImm(10, 64)); // store base
    auto loop = b.beginLoop(1, 2);
    b.emit(makeMovImm(5, 6364136223846793005ll));
    b.emit(makeMul(4, 4, 5));
    b.emit(makeAddImm(4, 4, 1442695040888963407ll));
    b.emit(makeShr(6, 4, 62)); // 0..3
    auto sw = b.beginSwitch(6, 4);
    for (std::size_t c = 0; c < sw.cases.size(); c++) {
        b.switchTo(sw.cases[c]);
        b.emit(makeAddImm(8, 8, static_cast<std::int64_t>(c) + 1));
        b.emit(makeStore(10, 8, static_cast<std::int64_t>(c)));
        b.emit(makeLoad(11, 10, static_cast<std::int64_t>(c)));
        b.jumpTo(sw.join);
    }
    b.switchTo(sw.join);
    b.callProc(leaf);
    b.emit(makeMovImm(7, 2));
    auto d = b.beginIf(makeBlt(6, 7, -1));
    b.emit(makeAddImm(8, 8, 1));
    b.elseBranch(d);
    b.emit(makeAddImm(8, 8, 2));
    b.joinUp(d);
    b.endLoop(loop);
    b.emit(makeStore(10, 8, 100));
    b.emit(makeHalt());
    Program prog = b.build();
    prog.entryProc = mainP;
    return prog;
}

TEST(SpecFrontEnd, FunctionalMatchWithNonzeroSpeculationCounters)
{
    CoreConfig cfg;
    cfg.specFrontEnd = true;
    const Program prog = noisyBranches(2000);
    expectFunctionalMatch(prog, cfg);

    Core core(prog, cfg);
    core.run(1u << 24);
    ASSERT_TRUE(core.done());
    const auto &s = core.stats();
    EXPECT_GT(s.squashes, 100u);
    EXPECT_GT(s.wrongPathFetched, 0u);
    EXPECT_GT(s.wrongPathDispatched, 0u);
    EXPECT_GT(s.wrongPathIssued, 0u);
    EXPECT_GT(s.squashCycles, s.squashes)
        << "resolution takes more than one cycle per mispredict";
    EXPECT_GT(s.squashedInsts, 0u);
}

TEST(SpecFrontEnd, ArchitecturalCountersMatchOracleExactly)
{
    // wrong-path work must be invisible to every architectural
    // counter: the squash restores the predictor (history + RAS,
    // and the BTB is never trained on the wrong path), so the
    // correct-path prediction sequence — and with it each of these
    // counters — is the oracle's, bit for bit
    const Program prog = mixedMispredicts(600);
    CoreConfig oracleCfg;
    Core oracle(prog, oracleCfg);
    oracle.run(1u << 24);
    CoreConfig specCfg;
    specCfg.specFrontEnd = true;
    Core spec(prog, specCfg);
    spec.run(1u << 24);
    ASSERT_TRUE(oracle.done());
    ASSERT_TRUE(spec.done());
    const auto &o = oracle.stats();
    const auto &s = spec.stats();
    EXPECT_EQ(s.committed, o.committed);
    EXPECT_EQ(s.fetched, o.fetched);
    EXPECT_EQ(s.dispatched, o.dispatched);
    EXPECT_EQ(s.issued, o.issued);
    EXPECT_EQ(s.loads, o.loads);
    EXPECT_EQ(s.stores, o.stores);
    EXPECT_EQ(s.hintsApplied, o.hintsApplied);
    EXPECT_EQ(s.condBranches, o.condBranches);
    EXPECT_EQ(s.branchMispredicts, o.branchMispredicts);
    EXPECT_EQ(s.frontRedirects, o.frontRedirects);
    EXPECT_EQ(s.squashes, s.branchMispredicts)
        << "every resolved mispredict squashes exactly once";
    EXPECT_EQ(o.wrongPathFetched, 0u);
    EXPECT_EQ(o.squashes, 0u);
}

/** Squash-visible machine state, digested at each squash. */
struct SquashObs
{
    std::uint64_t cycle;
    std::uint64_t committed;
    std::uint64_t squashedInsts;
    int robEntries;
    int fqEntries;
    int iqValid;
    int lsqSize;
    int intFree;
    int fpFree;

    bool operator==(const SquashObs &) const = default;
};

/** Tick @p core until done, auditing the rename/free-list/queue
 *  invariants every cycle and recording machine state at each
 *  squash. */
std::vector<SquashObs>
runAudited(Core &core, std::uint64_t maxCycles)
{
    std::vector<SquashObs> obs;
    std::uint64_t squashes = 0;
    while (!core.done()) {
        core.tick();
        core.auditArchState();
        const auto &s = core.stats();
        if (s.squashes != squashes) {
            squashes = s.squashes;
            obs.push_back({core.cycle(), s.committed, s.squashedInsts,
                           core.robEntries(),
                           core.fetchQueueEntries(),
                           core.issueQueue().validCount(),
                           core.loadStoreQueue().size(),
                           core.intRegFile().freeRegs(),
                           core.fpRegFile().freeRegs()});
        }
        if (core.cycle() >= maxCycles)
            break;
    }
    return obs;
}

TEST(SpecFrontEnd, SquashRecoveryInvariantsHoldOverAThousandSquashes)
{
    // after every squash (randomized by LCG-driven direction, RAS and
    // BTB mispredicts) the rename maps, free lists and queues must be
    // exactly consistent — and a from-scratch replay must pass
    // through identical machine states at every squash point
    CoreConfig cfg;
    cfg.specFrontEnd = true;
    std::uint64_t totalSquashes = 0;
    for (const Program &prog :
         {noisyBranches(1200), mixedMispredicts(700)}) {
        Core first(prog, cfg);
        const auto obs1 = runAudited(first, 1u << 22);
        ASSERT_TRUE(first.done());
        totalSquashes += obs1.size();

        Core again(prog, cfg);
        const auto obs2 = runAudited(again, 1u << 22);
        ASSERT_EQ(obs1.size(), obs2.size());
        for (std::size_t i = 0; i < obs1.size(); i++) {
            EXPECT_EQ(obs1[i], obs2[i]) << "squash " << i;
        }

        // recovery is complete: the drained machine holds nothing
        EXPECT_EQ(first.robEntries(), 0);
        EXPECT_EQ(first.fetchQueueEntries(), 0);
        EXPECT_EQ(first.loadStoreQueue().size(), 0);
        EXPECT_EQ(first.issueQueue().validCount(), 0);
    }
    EXPECT_GE(totalSquashes, 1000u);
}

TEST(SpecFrontEnd, ReplayedTraceMatchesDirectInterpretation)
{
    // trace-replay and direct interpretation must stay measurement-
    // identical with speculation on: wrong-path fetch never consumes
    // the functional stream
    const auto prog =
        std::make_shared<const Program>(noisyBranches(800));
    CoreConfig cfg;
    cfg.specFrontEnd = true;

    FuncTrace trace(prog);
    Core direct(*prog, cfg);
    direct.run(1u << 24);
    Core replayed(*prog, cfg, nullptr, &trace);
    replayed.run(1u << 24);
    ASSERT_TRUE(direct.done());
    ASSERT_TRUE(replayed.done());
    EXPECT_TRUE(direct.stats() == replayed.stats());
    EXPECT_EQ(direct.cycle(), replayed.cycle());
}

} // namespace
} // namespace siq
