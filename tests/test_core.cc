/**
 * @file
 * End-to-end core tests on small hand-built programs: functional
 * equivalence with the reference interpreter, timing sanity, hint
 * semantics (including the range invariant), mispredict penalties and
 * non-pipelined FU occupancy.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "ir/exec.hh"
#include "workloads/builder.hh"

namespace siq
{
namespace
{

/** Run both the interpreter and the core; compare checksum memory. */
void
expectFunctionalMatch(const Program &prog,
                      const CoreConfig &cfg = CoreConfig{})
{
    ExecContext ref(prog);
    while (!ref.halted())
        ref.step();

    Core core(prog, cfg);
    core.run(1u << 24);
    ASSERT_TRUE(core.done());
    for (std::uint64_t a = 0; a < 32; a++)
        EXPECT_EQ(core.exec().readMem(a), ref.readMem(a))
            << "word " << a;
}

Program
sumLoop(int iters)
{
    ProgramBuilder b("sum", 256);
    b.newProc("main");
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, iters));
    auto loop = b.beginLoop(1, 2);
    b.emit(makeAdd(3, 3, 1));
    b.endLoop(loop);
    b.emit(makeMovImm(4, 8));
    b.emit(makeStore(4, 3, 0));
    b.emit(makeHalt());
    return b.build();
}

TEST(Core, SumLoopFunctionalAndTerminates)
{
    expectFunctionalMatch(sumLoop(100));
}

TEST(Core, IpcWithinPhysicalBounds)
{
    const Program prog = sumLoop(2000);
    Core core(prog, CoreConfig{});
    core.run(1u << 24);
    const auto &s = core.stats();
    EXPECT_GT(s.ipc(), 0.5);
    EXPECT_LE(s.ipc(), 8.0);
    EXPECT_EQ(s.committed, core.exec().instsExecuted());
}

TEST(Core, HintNoopConsumesDispatchSlotButNeverCommits)
{
    ProgramBuilder b("hints", 64);
    b.newProc("main");
    for (int i = 0; i < 4; i++) {
        b.emit(makeHint(8));
        b.emit(makeAddImm(1, 1, 1));
    }
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, CoreConfig{});
    core.run(1u << 20);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.stats().hintsApplied, 4u);
    // 4 adds + halt commit; hints do not
    EXPECT_EQ(core.stats().committed, 5u);
    EXPECT_EQ(core.exec().intReg(1), 4);
}

TEST(Core, TagHintAppliesWithoutDispatchSlot)
{
    ProgramBuilder b("tags", 64);
    b.newProc("main");
    StaticInst tagged = makeAddImm(1, 1, 1);
    tagged.tagHint = 6;
    b.emit(tagged);
    b.emit(makeAddImm(1, 1, 1));
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, CoreConfig{});
    core.run(1u << 20);
    EXPECT_EQ(core.stats().hintsApplied, 1u);
    EXPECT_EQ(core.exec().intReg(1), 2);
    EXPECT_EQ(core.issueQueue().currentRange(), 6);
}

/** A long chain of dependent adds behind a tiny range. */
TEST(Core, TinyRangeThrottlesButNeverDeadlocks)
{
    ProgramBuilder b("tiny", 64);
    b.newProc("main");
    b.emit(makeHint(1)); // pathological: one entry at a time
    for (int i = 0; i < 64; i++)
        b.emit(makeAddImm(1, 1, 1));
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, CoreConfig{});
    core.run(1u << 22);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.exec().intReg(1), 64);
    EXPECT_GT(core.stats().dispatchStallRange, 0u);
}

TEST(Core, RangeInvariantHoldsEveryCycle)
{
    // run a hinted program tick by tick and check the hardware
    // invariant dist(new_head, tail) <= max_new_range
    ProgramBuilder b("inv", 256);
    b.newProc("main");
    b.emit(makeHint(5));
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 200));
    auto loop = b.beginLoop(1, 2);
    b.emit(makeMul(3, 1, 1));
    b.emit(makeAdd(4, 4, 3));
    b.endLoop(loop);
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, CoreConfig{});
    while (!core.done()) {
        core.tick();
        EXPECT_LE(core.issueQueue().distNewHeadToTail(),
                  core.issueQueue().currentRange());
        ASSERT_LT(core.cycle(), 100000u);
    }
}

TEST(Core, MispredictsCostCycles)
{
    // data-dependent 50/50 branch on LCG noise vs the same amount of
    // work with an always-taken pattern
    auto build = [](bool noisy) {
        ProgramBuilder b("br", 256);
        b.newProc("main");
        b.emit(makeMovImm(4, 12345));
        b.emit(makeMovImm(1, 0));
        b.emit(makeMovImm(2, 3000));
        auto loop = b.beginLoop(1, 2);
        b.emit(makeMovImm(5, 6364136223846793005ll));
        b.emit(makeMul(4, 4, 5));
        b.emit(makeAddImm(4, 4, 1442695040888963407ll));
        b.emit(makeShr(6, 4, 62));
        if (noisy) {
            b.emit(makeMovImm(7, 2));
        } else {
            b.emit(makeMovImm(7, 100)); // never below: predictable
        }
        auto d = b.beginIf(makeBlt(6, 7, -1));
        b.emit(makeAddImm(8, 8, 1));
        b.elseBranch(d);
        b.emit(makeAddImm(8, 8, 2));
        b.joinUp(d);
        b.endLoop(loop);
        b.emit(makeHalt());
        return b.build();
    };
    const Program predictableProg = build(false);
    Core predictable(predictableProg, CoreConfig{});
    predictable.run(1u << 24);
    const Program noisyProg = build(true);
    Core noisy(noisyProg, CoreConfig{});
    noisy.run(1u << 24);
    EXPECT_GT(noisy.stats().branchMispredicts,
              predictable.stats().branchMispredicts + 100);
    EXPECT_LT(noisy.stats().ipc(), predictable.stats().ipc());
}

TEST(Core, NonPipelinedDividesSerializeOnUnits)
{
    // 8 independent divides on 3 IntMul units: at most 3 in flight,
    // so the run needs at least ceil(8/3) * 12 cycles
    ProgramBuilder b("div", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 1000));
    b.emit(makeMovImm(2, 7));
    for (int i = 0; i < 8; i++)
        b.emit(makeDiv(10 + i, 1, 2));
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, CoreConfig{});
    core.run(1u << 20);
    ASSERT_TRUE(core.done());
    EXPECT_GE(core.cycle(), 3u * 12u);
    EXPECT_EQ(core.exec().intReg(10), 142);
}

TEST(Core, StoreToLoadForwardingHappens)
{
    ProgramBuilder b("fwd", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 16));
    b.emit(makeMovImm(2, 99));
    b.emit(makeStore(1, 2, 0));
    b.emit(makeLoad(3, 1, 0)); // same address: forwards
    b.emit(makeHalt());
    const Program prog = b.build();
    Core core(prog, CoreConfig{});
    core.run(1u << 20);
    EXPECT_EQ(core.exec().intReg(3), 99);
    EXPECT_EQ(core.stats().loadForwards, 1u);
}

TEST(Core, CallsReturnThroughRas)
{
    ProgramBuilder b("ras", 64);
    const int leaf = b.newProc("leaf");
    b.emit(makeAddImm(9, 9, 1));
    b.emit(makeRet());
    const int mainP = b.newProc("main");
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 50));
    auto loop = b.beginLoop(1, 2);
    b.callProc(leaf);
    b.endLoop(loop);
    b.emit(makeHalt());
    Program prog = b.build();
    prog.entryProc = mainP;
    Core core(prog, CoreConfig{});
    core.run(1u << 22);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.exec().intReg(9), 50);
    // after warm-up the RAS should predict nearly every return
    EXPECT_LT(core.stats().branchMispredicts, 10u);
}

TEST(Core, ResetStatsPreservesArchState)
{
    const Program prog = sumLoop(500);
    Core core(prog, CoreConfig{});
    core.run(200);
    core.resetStats();
    EXPECT_EQ(core.stats().committed, 0u);
    core.run(1u << 24);
    ASSERT_TRUE(core.done());
    ExecContext ref(prog);
    while (!ref.halted())
        ref.step();
    EXPECT_EQ(core.exec().readMem(8), ref.readMem(8));
}

TEST(Core, FunctionalMatchUnderManyConfigs)
{
    const Program prog = sumLoop(300);
    for (int iqSize : {16, 40, 80}) {
        CoreConfig cfg;
        cfg.iq.numEntries = iqSize;
        cfg.iq.bankSize = 8;
        expectFunctionalMatch(prog, cfg);
    }
    CoreConfig narrow;
    narrow.fetchWidth = 2;
    narrow.dispatchWidth = 2;
    narrow.issueWidth = 2;
    narrow.commitWidth = 2;
    expectFunctionalMatch(prog, narrow);
}

TEST(CompletionWheel, PreservesSchedulingOrderWithinACycle)
{
    CompletionWheel w;
    w.init(12);
    std::vector<int> out;
    w.schedule(3, 7);
    w.schedule(3, 1);
    w.schedule(5, 2);
    w.popDue(2, out);
    EXPECT_TRUE(out.empty());
    w.popDue(3, out);
    EXPECT_EQ(out, (std::vector<int>{7, 1}));
    w.popDue(4, out);
    EXPECT_TRUE(out.empty());
    w.popDue(5, out);
    EXPECT_EQ(out, (std::vector<int>{2}));
}

TEST(CompletionWheel, BeyondHorizonEventsPopOnTheRightLap)
{
    CompletionWheel w;
    w.init(4); // bit_ceil(6) = 8 slots
    ASSERT_EQ(w.numSlots(), 8);
    std::vector<int> out;
    // a near event and an event three laps out share slot 3
    w.schedule(3, 11);
    w.schedule(3 + 8 * 3, 9);
    w.popDue(3, out);
    EXPECT_EQ(out, (std::vector<int>{11}))
        << "the far event must survive its slot's earlier laps";
    for (std::uint64_t c = 4; c < 27; c++) {
        w.popDue(c, out);
        EXPECT_TRUE(out.empty()) << "cycle " << c;
    }
    w.popDue(27, out);
    EXPECT_EQ(out, (std::vector<int>{9}));
}

TEST(CompletionWheel, LongLatencyConfigStillSimulatesCorrectly)
{
    // a memory latency far beyond the 4096-slot cap exercises the
    // multi-lap path end-to-end: functional results must not change
    Program prog = sumLoop(64);
    CoreConfig cfg;
    cfg.mem.memLatency = 9000;
    expectFunctionalMatch(prog, cfg);
}

} // namespace
} // namespace siq
