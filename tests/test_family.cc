/**
 * @file
 * Tests for the workload-family subsystem (workloads/family.hh,
 * DESIGN.md §10): registry contents, WorkloadSpec parsing and
 * canonicalization, the structured spec-JSON round trip, the engine
 * integration (canonical cell identity, per-parameter-set caching,
 * shard-merge byte-identity with embedded parameters), the
 * six-technique coverage of the new families, and the phased
 * family's per-phase IQ occupancy split.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "sim/checkpoint.hh"
#include "sim/report.hh"
#include "sim/sweep.hh"
#include "sim/technique.hh"
#include "workloads/family.hh"

namespace siq
{
namespace
{

namespace fs = std::filesystem;
using workloads::WorkloadSpec;

/** Per-test scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("siq_family_test_" + tag + "_" +
                std::to_string(::getpid())))
    {
        fs::remove_all(path);
    }

    ~ScratchDir() { fs::remove_all(path); }

    const fs::path path;
};

/** Immediate-field sum: a cheap structural observable that moves
 *  when loop bounds (scale, boosts) change. */
std::uint64_t
immSum(const Program &prog)
{
    std::uint64_t sum = 0;
    for (const auto &proc : prog.procs) {
        for (const auto &block : proc.blocks) {
            for (const auto &inst : block.insts)
                sum += static_cast<std::uint64_t>(inst.imm);
        }
    }
    return sum;
}

std::string
jsonOf(sim::SweepResult s)
{
    sim::canonicalize(s);
    std::ostringstream os;
    sim::writeJson(os, s);
    return os.str();
}

TEST(FamilyRegistry, PaperBenchmarksFirstThenParameterized)
{
    const auto names = workloads::familyNames();
    const auto &paper = workloads::benchmarkNames();
    ASSERT_GE(names.size(), paper.size() + 3);
    // the paper's eleven lead, in figure order, so existing consumers
    // of the registration order see no change
    for (std::size_t i = 0; i < paper.size(); i++)
        EXPECT_EQ(names[i], paper[i]);
    for (const char *fam : {"specfp", "server", "phased"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), fam),
                  names.end())
            << fam;
        const auto *def = workloads::findFamily(fam);
        ASSERT_NE(def, nullptr) << fam;
        EXPECT_FALSE(def->params.empty()) << fam;
        EXPECT_FALSE(def->summary.empty()) << fam;
    }
    // the paper profiles are parameterless families
    for (const auto &name : paper) {
        const auto *def = workloads::findFamily(name);
        ASSERT_NE(def, nullptr) << name;
        EXPECT_TRUE(def->params.empty()) << name;
    }
}

TEST(WorkloadSpecParse, PlainAndParameterized)
{
    const auto plain = WorkloadSpec::parse("gzip");
    EXPECT_EQ(plain.family, "gzip");
    EXPECT_TRUE(plain.params.empty());
    EXPECT_EQ(plain.canonical(), "gzip");

    const auto p = WorkloadSpec::parse("phased:period=60000:duty=20");
    EXPECT_EQ(p.family, "phased");
    ASSERT_EQ(p.params.size(), 2u);
    EXPECT_EQ(p.params[0],
              (std::pair<std::string, std::int64_t>{"period", 60000}));
    EXPECT_EQ(p.params[1],
              (std::pair<std::string, std::int64_t>{"duty", 20}));
}

TEST(WorkloadSpecParse, CanonicalizationIsOrderAndDefaultBlind)
{
    // overrides reorder into declaration order
    EXPECT_EQ(workloads::canonicalWorkload("phased:duty=20:period=60000"),
              "phased:period=60000:duty=20");
    // values equal to the default elide
    EXPECT_EQ(workloads::canonicalWorkload("phased:period=4000"),
              "phased");
    EXPECT_EQ(workloads::canonicalWorkload(
                  "server:hotPct=0:probeDepth=4"),
              "server:probeDepth=4");
    // a hand-built spec normalizes the same way a parsed one does
    WorkloadSpec hand;
    hand.family = "phased";
    hand.params = {{"duty", 20}, {"period", 4000}};
    EXPECT_EQ(hand.canonical(), "phased:duty=20");
}

TEST(WorkloadSpecParse, RejectsBadSpecs)
{
    // unknown family: the message lists every registered family
    try {
        WorkloadSpec::parse("oltp:probeDepth=3");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        for (const auto &name : workloads::familyNames())
            EXPECT_NE(msg.find(name), std::string::npos) << name;
    }
    // unknown parameter: the message lists the family's parameters
    try {
        WorkloadSpec::parse("phased:cadence=7");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("period"),
                  std::string::npos);
    }
    for (const char *bad :
         {"phased:period", "phased:=5", "phased:period=",
          "phased:period=abc", "phased:period=20e3",
          "phased:period=4000:period=4000", "phased:period=63",
          "phased:duty=96", "", "gzip:scale=2"})
        EXPECT_THROW(WorkloadSpec::parse(bad), FatalError) << bad;
}

TEST(WorkloadSpecJson, ParameterizedSpecRoundTripsExactly)
{
    sim::SweepSpec spec;
    spec.benchmarks = {"gzip", "phased:period=60000:duty=20",
                       "server:footprintLog2=16", "specfp"};
    spec.techniques = {"baseline", "noop"};
    spec.seeds = 2;
    spec.base.workload.repDivisor = 40;

    std::stringstream ss;
    sim::writeSpecJson(ss, spec);
    // the structured form carries the parameters
    EXPECT_NE(ss.str().find("{\"family\":\"phased\",\"params\":"
                            "{\"period\":60000,\"duty\":20}}"),
              std::string::npos)
        << ss.str();

    const sim::SweepSpec back = sim::readSpecJson(ss);
    EXPECT_EQ(back.benchmarks, spec.benchmarks);
    EXPECT_EQ(sim::toJson(back), sim::toJson(spec));
}

TEST(WorkloadSpecJson, AcceptsPlainStringsAndNormalizes)
{
    // hand-written specs may use plain strings and any override
    // order; reading canonicalizes both
    std::stringstream hand;
    sim::SweepSpec tmpl;
    tmpl.benchmarks = {"gzip"};
    tmpl.techniques = {"baseline"};
    std::stringstream proto;
    sim::writeSpecJson(proto, tmpl);
    std::string text = proto.str();
    const std::string needle = "{\"family\":\"gzip\"}";
    const auto at = text.find(needle);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, needle.size(),
                 "\"phased:duty=20:period=4000\"");
    hand << text;
    const sim::SweepSpec back = sim::readSpecJson(hand);
    ASSERT_EQ(back.benchmarks.size(), 1u);
    EXPECT_EQ(back.benchmarks[0], "phased:duty=20");
}

TEST(WorkloadSpecJson, UnknownFamilyOrParamIsFatal)
{
    sim::SweepSpec spec;
    spec.benchmarks = {"gzip"};
    spec.techniques = {"baseline"};
    std::stringstream os;
    sim::writeSpecJson(os, spec);
    for (const auto &[from, to] :
         std::vector<std::pair<std::string, std::string>>{
             {"{\"family\":\"gzip\"}", "{\"family\":\"oltp\"}"},
             {"{\"family\":\"gzip\"}",
              "{\"family\":\"phased\",\"params\":{\"cadence\":7}}"},
             {"{\"family\":\"gzip\"}",
              "{\"family\":\"phased\",\"params\":{\"period\":63}}"}}) {
        std::string text = os.str();
        const auto at = text.find(from);
        ASSERT_NE(at, std::string::npos);
        text.replace(at, from.size(), to);
        std::stringstream is(text);
        EXPECT_THROW(sim::readSpecJson(is), FatalError) << to;
    }
}

/** A small parameterized grid shared by the engine-level tests. */
sim::SweepSpec
familySpec()
{
    sim::SweepSpec spec;
    spec.benchmarks = {"phased:period=2000:duty=30", "gzip",
                       "server:footprintLog2=14"};
    spec.techniques = {"baseline", "noop"};
    spec.base.workload.repDivisor = 40;
    spec.base.warmupInsts = 2000;
    spec.base.measureInsts = 10000;
    spec.jobs = 2;
    return spec;
}

TEST(FamilySweep, CellsCarryCanonicalWorkloadNames)
{
    auto spec = familySpec();
    // a non-canonical spelling (reordered, default-valued override)
    spec.benchmarks[0] = "phased:duty=30:period=2000:memStride=8209";
    sim::ExperimentRunner runner;
    const auto result = runner.run(spec);
    EXPECT_EQ(result.benchmarks[0], "phased:period=2000:duty=30");
    EXPECT_EQ(result.cells[0].benchmark, "phased:period=2000:duty=30");
    // distinct parameter sets are distinct workload-cache entries,
    // shared across the technique axis
    EXPECT_EQ(result.cache.workloadBuilds, 3u);
    EXPECT_EQ(result.cache.workloadHits, 3u);
}

TEST(FamilySweep, UnknownFamilyFailsFastWithTheRegistryList)
{
    auto spec = familySpec();
    spec.benchmarks.push_back("oltp");
    sim::ExperimentRunner runner;
    EXPECT_THROW(runner.run(spec), FatalError);
}

TEST(FamilySweep, ShardMergeIsByteIdenticalWithEmbeddedParams)
{
    // the headline distribution guarantee must survive parameterized
    // workloads: spec JSON -> 2 sharded runs -> merge == unsharded
    auto spec = familySpec();
    std::stringstream ss;
    sim::writeSpecJson(ss, spec);
    const sim::SweepSpec loaded = sim::readSpecJson(ss);

    sim::ExperimentRunner plain;
    const std::string unsharded = jsonOf(plain.run(loaded));

    ScratchDir dir("param_shards");
    for (int s = 0; s < 2; s++) {
        sim::ExperimentRunner runner;
        sim::runWithCheckpoints(runner, loaded, {s, 2}, dir.path);
    }
    const std::string merged = jsonOf(sim::mergeCheckpoints({dir.path}));
    EXPECT_EQ(unsharded, merged);
}

TEST(FamilySweep, NewFamiliesRunUnderAllSixTechniques)
{
    // acceptance: every new family simulates under every built-in
    // technique through the same figure-sweep path
    sim::SweepSpec spec;
    spec.benchmarks = {"specfp", "server", "phased"};
    spec.techniques = sim::techniqueNames();
    spec.base.workload.repDivisor = 40;
    spec.base.warmupInsts = 2000;
    spec.base.measureInsts = 8000;
    spec.jobs = 2;
    ASSERT_EQ(spec.techniques.size(), 6u);

    sim::ExperimentRunner runner;
    const auto result = runner.run(spec);
    for (std::size_t t = 0; t < spec.techniques.size(); t++) {
        for (std::size_t b = 0; b < spec.benchmarks.size(); b++) {
            const auto &cell = result.at(t, b);
            EXPECT_GT(cell.stats.committed, 0u)
                << spec.techniques[t] << "/" << spec.benchmarks[b];
            EXPECT_GT(cell.iq.cycles, 0u)
                << spec.techniques[t] << "/" << spec.benchmarks[b];
        }
    }
}

TEST(FamilyRegistry, ScopedFamilyRegistersAndUnregisters)
{
    // process-local families behave exactly like built-ins (and like
    // sim::ScopedTechnique variants) for the scope's lifetime
    ASSERT_EQ(workloads::findFamily("gzip-x2"), nullptr);
    {
        workloads::FamilyDef def;
        def.name = "gzip-x2";
        def.summary = "gzip at a parameterized scale";
        def.params = {{"boost", 2, 1, 4, "extra scale factor"}};
        def.generate = [](const workloads::WorkloadParams &wp,
                          const workloads::FamilyParams &fp) {
            workloads::WorkloadParams scaled = wp;
            scaled.scale = wp.scale * static_cast<int>(fp.at("boost"));
            return workloads::genGzip(scaled);
        };
        workloads::ScopedFamily scoped(std::move(def));

        ASSERT_NE(workloads::findFamily("gzip-x2"), nullptr);
        EXPECT_EQ(workloads::canonicalWorkload("gzip-x2:boost=2"),
                  "gzip-x2");
        const Program a = workloads::generate(
            "gzip-x2:boost=1", {1, 40, 12345});
        const Program b = workloads::generate(
            "gzip-x2:boost=4", {1, 40, 12345});
        EXPECT_GT(b.instCount(), 0u);
        EXPECT_NE(immSum(a), immSum(b));
    }
    EXPECT_EQ(workloads::findFamily("gzip-x2"), nullptr);
    EXPECT_THROW(workloads::generate("gzip-x2", {}), FatalError);
}

TEST(PhasedProfile, OccupancySwingsAcrossPhases)
{
    // acceptance: the phased family must show measurably different IQ
    // occupancy across its phases. Sample the occupancy counters in
    // fixed committed-instruction windows; windows inside the
    // high-ILP phase drain the queue, windows inside the serial chase
    // fill it (observed ~17 vs ~40 entries on the default machine).
    workloads::WorkloadParams wp;
    wp.repDivisor = 20;
    const Program prog = workloads::generate("phased", wp);
    Core core(prog, CoreConfig{});

    std::vector<double> occ;
    std::uint64_t lastSum = 0, lastCycles = 0;
    for (int w = 0; w < 24 && !core.done(); w++) {
        core.run(4000);
        const auto &iq = core.iqEvents();
        const std::uint64_t cycles = iq.cycles - lastCycles;
        if (cycles == 0)
            break;
        occ.push_back(
            static_cast<double>(iq.occupancySum - lastSum) /
            static_cast<double>(cycles));
        lastSum = iq.occupancySum;
        lastCycles = iq.cycles;
    }
    ASSERT_GE(occ.size(), 8u) << "phased ended before both phases ran";
    const double lo = *std::min_element(occ.begin(), occ.end());
    const double hi = *std::max_element(occ.begin(), occ.end());
    EXPECT_GT(lo, 0.0);
    EXPECT_GT(hi, 1.5 * lo)
        << "phases are indistinguishable: min " << lo << ", max " << hi;
}

TEST(PhasedProfile, DutyShiftsTheOccupancyMix)
{
    // more time in the serial phase => higher average occupancy and
    // lower IPC: the parameter visibly steers the dynamic profile
    auto runAvg = [](const std::string &spec) {
        workloads::WorkloadParams wp;
        wp.repDivisor = 40;
        const Program prog = workloads::generate(spec, wp);
        Core core(prog, CoreConfig{});
        core.run(1u << 22);
        return std::pair(core.stats().ipc(),
                         static_cast<double>(
                             core.iqEvents().occupancySum) /
                             static_cast<double>(
                                 core.iqEvents().cycles + 1));
    };
    const auto [ipcHighIlp, occHighIlp] = runAvg("phased:duty=90");
    const auto [ipcMemory, occMemory] = runAvg("phased:duty=10");
    EXPECT_GT(ipcHighIlp, 2.0 * ipcMemory);
    EXPECT_GT(occMemory, occHighIlp);
}

} // namespace
} // namespace siq
