/**
 * @file
 * Shadow-model property tests for the speculative front end's
 * predictor components (cpu/bpred.hh). Each component is driven with
 * randomized operation streams against a deliberately naive reference
 * implementation — a formula-level replica of the hybrid direction
 * predictor, a map-plus-recency-list BTB, and a deque RAS — including
 * the edge cases the core's wrong-path machinery leans on: RAS
 * overflow (oldest entry shed) and underflow (pop of an empty stack
 * returns 0, a front-end gate), BTB set aliasing and LRU eviction,
 * and the speculate-then-restore history round trip that squash
 * recovery performs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/random.hh"
#include "cpu/bpred.hh"

namespace siq
{
namespace
{

// --------------------------------------------------------------------
// Direction predictor vs a formula replica
// --------------------------------------------------------------------

/**
 * Naive re-statement of the documented hybrid: gshare indexed by
 * (pc>>2)^history, bimodal and selector by pc>>2, 2-bit saturating
 * counters, selector trained only on disagreement, history shifted by
 * every update (masked to the gshare index width).
 */
struct DirRef
{
    std::vector<int> gshare, bimodal, selector;
    std::uint64_t history = 0;

    DirRef(std::size_t g, std::size_t b, std::size_t s)
        : gshare(g, 1), bimodal(b, 1), selector(s, 2)
    {
    }

    static int
    bump(int ctr, bool taken)
    {
        if (taken)
            return ctr < 3 ? ctr + 1 : 3;
        return ctr > 0 ? ctr - 1 : 0;
    }

    bool
    predict(std::uint64_t pc) const
    {
        const std::uint64_t idx = pc >> 2;
        const int g = gshare[(idx ^ history) % gshare.size()];
        const int b = bimodal[idx % bimodal.size()];
        const int s = selector[idx % selector.size()];
        return (s >= 2 ? g : b) >= 2;
    }

    void
    shift(bool taken)
    {
        history =
            ((history << 1) | (taken ? 1 : 0)) & (gshare.size() - 1);
    }

    void
    update(std::uint64_t pc, bool taken)
    {
        const std::uint64_t idx = pc >> 2;
        int &g = gshare[(idx ^ history) % gshare.size()];
        int &b = bimodal[idx % bimodal.size()];
        int &s = selector[idx % selector.size()];
        const bool gRight = (g >= 2) == taken;
        const bool bRight = (b >= 2) == taken;
        if (gRight != bRight)
            s = bump(s, gRight);
        g = bump(g, taken);
        b = bump(b, taken);
        shift(taken);
    }
};

TEST(BpredShadow, DirectionPredictorMatchesFormulaReplica)
{
    // small tables so indices alias heavily and the selector is
    // exercised on conflicting per-pc histories
    DirectionPredictor dut(64, 32, 16);
    DirRef ref(64, 32, 16);
    Rng rng(0xd1f1u);
    // a handful of hot pcs plus a cold uniform stream
    std::vector<std::uint64_t> hot;
    for (int i = 0; i < 12; i++)
        hot.push_back((rng.next() & 0xffffu) << 2);
    for (int step = 0; step < 20000; step++) {
        const std::uint64_t pc =
            rng.chance(0.75) ? rng.pick(hot) : ((rng.next() & 0xffffu) << 2);
        ASSERT_EQ(dut.predict(pc), ref.predict(pc))
            << "step " << step << " pc " << pc;
        // mix correlated (history-dependent) and random outcomes
        const bool taken = rng.chance(0.5)
                               ? ((ref.history & 3) == 0)
                               : rng.chance(0.5);
        dut.update(pc, taken);
        ref.update(pc, taken);
        ASSERT_EQ(dut.historyBits(), ref.history) << "step " << step;
    }
}

TEST(BpredShadow, SpeculateShiftsHistoryWithoutTrainingTables)
{
    DirectionPredictor dut(64, 32, 16);
    DirRef ref(64, 32, 16);
    Rng rng(0x5becu);
    for (int step = 0; step < 5000; step++) {
        const std::uint64_t pc = (rng.next() & 0x3ffu) << 2;
        if (rng.chance(0.3)) {
            // wrong-path style: shift by the prediction, tables alone
            const bool predicted = dut.predict(pc);
            ASSERT_EQ(predicted, ref.predict(pc));
            dut.speculate(predicted);
            ref.shift(predicted);
        } else {
            const bool taken = rng.chance(0.5);
            dut.update(pc, taken);
            ref.update(pc, taken);
        }
        ASSERT_EQ(dut.historyBits(), ref.history) << "step " << step;
    }
}

TEST(BpredShadow, HistorySetRestoreRoundTripsAfterSpeculation)
{
    DirectionPredictor dut(128, 128, 64);
    Rng rng(0x9157u);
    for (int round = 0; round < 200; round++) {
        // warm the tables on the correct path
        for (int i = 0; i < 20; i++)
            dut.update((rng.next() & 0xfffu) << 2, rng.chance(0.5));
        const std::uint64_t saved = dut.historyBits();
        // record predictions the correct path would make next
        std::vector<std::uint64_t> probePcs;
        std::vector<bool> expected;
        for (int i = 0; i < 8; i++) {
            probePcs.push_back((rng.next() & 0xfffu) << 2);
            expected.push_back(dut.predict(probePcs.back()));
        }
        // a burst of wrong-path speculation...
        for (int i = 0; i < static_cast<int>(rng.range(1, 40)); i++)
            dut.speculate(rng.chance(0.5));
        // ...then squash: history restore must bring every
        // prediction back exactly (tables were never touched)
        dut.setHistory(saved);
        ASSERT_EQ(dut.historyBits(), saved);
        for (std::size_t i = 0; i < probePcs.size(); i++)
            ASSERT_EQ(dut.predict(probePcs[i]), expected[i])
                << "round " << round << " probe " << i;
    }
}

// --------------------------------------------------------------------
// BTB vs a map-plus-recency reference
// --------------------------------------------------------------------

/** True-LRU set-associative BTB restated over std::map + use stamps. */
struct BtbRef
{
    struct Entry
    {
        std::uint64_t target = 0;
        std::uint64_t lastUse = 0;
    };

    std::size_t sets, assoc;
    /** per-set tag → entry; size capped at assoc by LRU eviction */
    std::vector<std::map<std::uint64_t, Entry>> table;
    std::uint64_t use = 0;

    BtbRef(std::size_t numEntries, std::size_t a)
        : sets(numEntries / a), assoc(a), table(sets)
    {
    }

    std::uint64_t
    lookup(std::uint64_t pc) const
    {
        const auto &set = table[(pc >> 2) % sets];
        const auto it = set.find((pc >> 2) / sets);
        return it == set.end() ? 0 : it->second.target;
    }

    void
    update(std::uint64_t pc, std::uint64_t target)
    {
        auto &set = table[(pc >> 2) % sets];
        const std::uint64_t tag = (pc >> 2) / sets;
        use++;
        const auto it = set.find(tag);
        if (it != set.end()) {
            it->second = {target, use};
            return;
        }
        if (set.size() == assoc) {
            auto victim = set.begin();
            for (auto w = set.begin(); w != set.end(); ++w)
                if (w->second.lastUse < victim->second.lastUse)
                    victim = w;
            set.erase(victim);
        }
        set[tag] = {target, use};
    }
};

TEST(BpredShadow, BtbMatchesMapReferenceUnderAliasing)
{
    // 8 sets x 2 ways and a pc pool far larger than the BTB, so tag
    // aliasing onto the same set and LRU eviction happen constantly
    Btb dut(16, 2);
    BtbRef ref(16, 2);
    Rng rng(0xb7bu);
    for (int step = 0; step < 30000; step++) {
        const std::uint64_t pc = (rng.next() & 0x1ffu) << 2;
        if (rng.chance(0.5)) {
            const std::uint64_t target = 0x4000 + (rng.next() & 0xfffu);
            dut.update(pc, target);
            ref.update(pc, target);
        }
        ASSERT_EQ(dut.lookup(pc), ref.lookup(pc)) << "step " << step;
    }
}

TEST(BpredShadow, BtbLookupIsPureEvenOnHits)
{
    // lookup must not refresh recency (it is const — the wrong-path
    // front end probes the BTB without perturbing correct-path state):
    // A and B fill a 2-way set, A is looked up many times, and C must
    // still evict A (the older *update*), not B
    Btb dut(2, 2); // one set, two ways
    const std::uint64_t a = 0x1 << 2, b = (0x1 + 1) << 2,
                        c = (0x1 + 2) << 2; // sets==1: all alias
    dut.update(a, 0xa000);
    dut.update(b, 0xb000);
    for (int i = 0; i < 100; i++)
        ASSERT_EQ(dut.lookup(a), 0xa000u);
    dut.update(c, 0xc000);
    EXPECT_EQ(dut.lookup(a), 0u) << "A must be the LRU victim";
    EXPECT_EQ(dut.lookup(b), 0xb000u);
    EXPECT_EQ(dut.lookup(c), 0xc000u);
}

// --------------------------------------------------------------------
// RAS vs a deque reference
// --------------------------------------------------------------------

/** Bounded stack over std::deque: overflow sheds the oldest entry,
 *  underflow pops 0. */
struct RasRef
{
    std::size_t cap;
    std::deque<std::uint64_t> stack; // back = top

    explicit RasRef(std::size_t c) : cap(c) {}

    void
    push(std::uint64_t pc)
    {
        stack.push_back(pc);
        if (stack.size() > cap)
            stack.pop_front(); // oldest lost
    }

    std::uint64_t
    pop()
    {
        if (stack.empty())
            return 0;
        const std::uint64_t pc = stack.back();
        stack.pop_back();
        return pc;
    }
};

TEST(BpredShadow, RasMatchesDequeReferenceIncludingOverflowUnderflow)
{
    Ras dut(4);
    RasRef ref(4);
    Rng rng(0x4a5u);
    for (int step = 0; step < 20000; step++) {
        // push-heavy and pop-heavy phases so deep overflow (many
        // sheds in a row) and repeated underflow both occur
        const double pushBias = (step / 500) % 2 == 0 ? 0.8 : 0.2;
        if (rng.chance(pushBias)) {
            const std::uint64_t pc = 0x1000 + (rng.next() & 0xffffu);
            dut.push(pc);
            ref.push(pc);
        } else {
            ASSERT_EQ(dut.pop(), ref.pop()) << "step " << step;
        }
        ASSERT_EQ(dut.depth(), ref.stack.size()) << "step " << step;
    }
}

TEST(BpredShadow, RasOverflowShedsOldestAndUnderflowReturnsZero)
{
    Ras ras(3);
    ras.push(1);
    ras.push(2);
    ras.push(3);
    ras.push(4); // overflow: 1 is shed
    EXPECT_EQ(ras.depth(), 3u);
    EXPECT_EQ(ras.pop(), 4u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), 0u) << "underflow must predict 0 (a gate)";
    EXPECT_EQ(ras.pop(), 0u) << "and stay empty";
    EXPECT_EQ(ras.depth(), 0u);
}

TEST(BpredShadow, RasSnapshotRestoreRoundTripsThroughWrongPathOps)
{
    Ras dut(4);
    RasRef ref(4);
    Rng rng(0x57acu);
    for (int round = 0; round < 500; round++) {
        // correct-path prefix
        for (int i = 0; i < static_cast<int>(rng.range(0, 6)); i++) {
            if (rng.chance(0.6)) {
                const std::uint64_t pc = rng.next() & 0xffffu;
                dut.push(pc);
                ref.push(pc);
            } else {
                ASSERT_EQ(dut.pop(), ref.pop());
            }
        }
        Ras::Snapshot snap;
        dut.save(snap);
        // wrong-path calls/returns mangle the stack arbitrarily,
        // including through overflow and underflow...
        for (int i = 0; i < static_cast<int>(rng.range(1, 10)); i++) {
            if (rng.chance(0.5))
                dut.push(rng.next() & 0xffffu);
            else
                dut.pop();
        }
        // ...and restore realigns it with the never-squashed reference
        dut.restore(snap);
        ASSERT_EQ(dut.depth(), ref.stack.size()) << "round " << round;
        // drain both to compare full contents, then rebuild
        std::vector<std::uint64_t> got, want;
        while (dut.depth() > 0)
            got.push_back(dut.pop());
        while (!ref.stack.empty())
            want.push_back(ref.pop());
        ASSERT_EQ(got, want) << "round " << round;
        for (auto it = got.rbegin(); it != got.rend(); ++it) {
            dut.push(*it);
            ref.push(*it);
        }
    }
}

// --------------------------------------------------------------------
// Facade-level snapshot round trip
// --------------------------------------------------------------------

TEST(BpredShadow, FacadeSnapshotRestoresHistoryAndRasExactly)
{
    BpredConfig cfg;
    cfg.gshareEntries = 64;
    cfg.bimodalEntries = 64;
    cfg.selectorEntries = 32;
    cfg.btbEntries = 16;
    cfg.btbAssoc = 2;
    cfg.rasEntries = 4;
    Bpred bp(cfg);
    Rng rng(0xfacadeu);
    for (int round = 0; round < 300; round++) {
        // correct-path traffic trains everything
        for (int i = 0; i < 10; i++) {
            const std::uint64_t pc = (rng.next() & 0xffu) << 2;
            bp.updateDirection(pc, rng.chance(0.5));
            if (rng.chance(0.3))
                bp.btbUpdate(pc, 0x4000 + (rng.next() & 0xffu));
            if (rng.chance(0.2))
                bp.rasPush(rng.next() & 0xffffu);
            if (rng.chance(0.2))
                bp.rasPop();
        }
        BpredSnapshot snap;
        bp.save(snap);
        std::vector<std::uint64_t> probePcs;
        std::vector<bool> dirExpected;
        std::vector<std::uint64_t> btbExpected;
        for (int i = 0; i < 8; i++) {
            probePcs.push_back((rng.next() & 0xffu) << 2);
            dirExpected.push_back(bp.predictDirection(probePcs.back()));
            btbExpected.push_back(bp.btbLookup(probePcs.back()));
        }
        // wrong-path traffic: speculate + RAS only (exactly the
        // operations the core's wrong-path fetch performs)
        for (int i = 0; i < static_cast<int>(rng.range(1, 20)); i++) {
            const int op = static_cast<int>(rng.range(0, 2));
            if (op == 0)
                bp.speculateDirection((rng.next() & 0xffu) << 2);
            else if (op == 1)
                bp.rasPush(rng.next() & 0xffffu);
            else
                bp.rasPop();
        }
        bp.restore(snap);
        for (std::size_t i = 0; i < probePcs.size(); i++) {
            ASSERT_EQ(bp.predictDirection(probePcs[i]), dirExpected[i])
                << "round " << round << " probe " << i;
            ASSERT_EQ(bp.btbLookup(probePcs[i]), btbExpected[i])
                << "round " << round << " probe " << i;
        }
    }
}

} // namespace
} // namespace siq
