/**
 * @file
 * Tests for the distributed-execution layer (sim/checkpoint.hh):
 * shard partitioning, SweepSpec JSON round-tripping, atomic per-cell
 * checkpoints, resume-without-rerun, and the headline guarantee that
 * merging N shard directories is byte-identical to running the same
 * spec unsharded.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/checkpoint.hh"
#include "sim/report.hh"
#include "sim/sweep.hh"
#include "sim/technique.hh"

namespace siq
{
namespace
{

namespace fs = std::filesystem;

/** Spec small enough that every test stays in the smoke budget. */
sim::SweepSpec
tinySpec()
{
    sim::SweepSpec spec;
    spec.benchmarks = {"gzip", "mcf"};
    spec.techniques = {"baseline", "noop"};
    spec.base.workload.repDivisor = 40;
    spec.base.warmupInsts = 2000;
    spec.base.measureInsts = 20000;
    spec.seeds = 2;
    spec.jobs = 2;
    return spec;
}

std::string
jsonOf(sim::SweepResult s)
{
    sim::canonicalize(s);
    std::ostringstream os;
    sim::writeJson(os, s);
    return os.str();
}

std::string
csvOf(sim::SweepResult s)
{
    sim::canonicalize(s);
    std::ostringstream os;
    sim::writeCsv(os, s);
    return os.str();
}

/** Per-test scratch directory, removed on destruction. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("siq_ckpt_test_" + tag + "_" +
                std::to_string(::getpid())))
    {
        fs::remove_all(path);
    }

    ~ScratchDir() { fs::remove_all(path); }

    const fs::path path;
};

TEST(ShardPlan, ParseAndPrint)
{
    const auto plan = sim::parseShard("2/5");
    EXPECT_EQ(plan.index, 2);
    EXPECT_EQ(plan.count, 5);
    EXPECT_EQ(sim::toString(plan), "2/5");
    EXPECT_EQ(sim::parseShard("0/1"), (sim::ShardPlan{0, 1}));

    for (const char *bad :
         {"", "3", "/4", "3/", "a/4", "3/b", "1/2/3", "2/2", "-1/4",
          "1/0", "1/-2"})
        EXPECT_THROW(sim::parseShard(bad), FatalError) << bad;
}

TEST(ShardPlan, PartitionCoversEveryCellExactlyOnce)
{
    for (int count : {1, 2, 3, 7}) {
        for (std::size_t cell = 0; cell < 40; cell++) {
            int owners = 0;
            for (int i = 0; i < count; i++)
                owners += sim::ownsCell({i, count}, cell) ? 1 : 0;
            EXPECT_EQ(owners, 1)
                << "cell " << cell << " of " << count << " shards";
        }
    }
}

TEST(SpecJson, ExactRoundTrip)
{
    // non-default everything that serializes, nested configs included
    sim::SweepSpec spec;
    spec.benchmarks = {"gzip", "mcf", "vpr"};
    spec.techniques = {"noop", "abella"};
    spec.jobs = 5;
    spec.seeds = 4;
    spec.base.workload.scale = 3;
    spec.base.workload.repDivisor = 17;
    spec.base.workload.seed = 0xdeadbeefcafeull;
    spec.base.warmupInsts = 123456;
    spec.base.measureInsts = 7890123;
    spec.base.minHint = 9;
    spec.base.elideRedundant = false;
    spec.base.unrollFactor = 2;
    spec.base.core.fetchWidth = 4;
    spec.base.core.robSize = 96;
    spec.base.core.iq.numEntries = 64;
    spec.base.core.iq.bankSize = 4;
    spec.base.core.lsq.numEntries = 48;
    spec.base.core.intRegs = {96, 31, 4};
    spec.base.core.fuCounts = {7, 5, 4, 3, 2, 1};
    spec.base.core.bpred.gshareEntries = 512;
    spec.base.core.bpred.rasEntries = 16;
    spec.base.core.mem.l1d.sizeBytes = 32 * 1024;
    spec.base.core.mem.l1d.name = "little-l1d";
    spec.base.core.mem.memLatency = 87;
    spec.base.abella.portion = 4;
    spec.base.abella.stallFractionToGrow = 0.037;
    spec.base.abella.intervalCycles = 4096;
    spec.base.folegnani.contributionThreshold = 9;
    spec.base.folegnani.expandPeriod = 2;

    std::stringstream ss;
    sim::writeSpecJson(ss, spec);
    const sim::SweepSpec back = sim::readSpecJson(ss);

    EXPECT_EQ(back.benchmarks, spec.benchmarks);
    EXPECT_EQ(back.techniques, spec.techniques);
    EXPECT_EQ(back.jobs, spec.jobs);
    EXPECT_EQ(back.seeds, spec.seeds);
    EXPECT_EQ(back.base.workload.seed, spec.base.workload.seed);
    EXPECT_EQ(back.base.elideRedundant, spec.base.elideRedundant);
    EXPECT_EQ(back.base.core.fuCounts, spec.base.core.fuCounts);
    EXPECT_EQ(back.base.core.mem.l1d.name, "little-l1d");
    EXPECT_EQ(back.base.abella.stallFractionToGrow,
              spec.base.abella.stallFractionToGrow);
    EXPECT_FALSE(back.perCell);
    // re-serialization is the full-field equality check: every
    // serialized field is byte-identical through the round trip
    EXPECT_EQ(sim::toJson(back), sim::toJson(spec));
}

TEST(SpecJson, UnknownTechniqueIsFatal)
{
    auto spec = tinySpec();
    spec.techniques = {"baseline", "definitely-not-registered"};
    std::stringstream ss;
    sim::writeSpecJson(ss, spec);
    EXPECT_THROW(sim::readSpecJson(ss), FatalError);
}

TEST(CheckpointJson, RoundTripWithAndWithoutAggregate)
{
    sim::RunConfig cfg;
    cfg.workload.repDivisor = 40;
    cfg.warmupInsts = 2000;
    cfg.measureInsts = 20000;
    const auto run = sim::runOne("gzip", cfg);

    sim::CellCheckpoint plain;
    plain.index = 7;
    plain.cell = run;
    const auto plainBack = sim::cellCheckpointFromJson(toJson(plain));
    EXPECT_EQ(plainBack.index, 7u);
    EXPECT_EQ(plainBack.seeds, 1);
    EXPECT_TRUE(sim::identicalMeasurement(plainBack.cell, run));

    sim::CellCheckpoint rep;
    rep.index = 3;
    rep.seeds = 2;
    rep.cell = run;
    rep.aggregate.n = 2;
    rep.aggregate.ipc = {1.25, 0.5, 0.75};
    rep.aggregate.stats_cycles = {40000.0, 12.5, 1e-3};
    const auto repBack = sim::cellCheckpointFromJson(toJson(rep));
    EXPECT_EQ(repBack.seeds, 2);
    EXPECT_EQ(repBack.aggregate, rep.aggregate);
    EXPECT_EQ(toJson(repBack), toJson(rep));
}

TEST(CellHooks, FilterSkipsAndCallbackFiresOncePerCell)
{
    auto spec = tinySpec();
    spec.seeds = 3;
    std::atomic<int> calls{0};
    sim::CellHooks hooks;
    hooks.shouldRun = [](std::size_t i) { return i % 2 == 0; };
    hooks.onCellDone = [&](std::size_t i, const sim::CellKey &key,
                           const sim::RunResult &rep0,
                           const sim::CellAggregate *agg) {
        EXPECT_EQ(i % 2, 0u);
        EXPECT_EQ(key.benchmark, rep0.benchmark);
        ASSERT_NE(agg, nullptr);
        EXPECT_EQ(agg->n, 3u);
        calls++;
    };
    sim::ExperimentRunner runner;
    const auto sweep = runner.run(spec, hooks);
    EXPECT_EQ(calls.load(), 2); // cells 0 and 2 of 4
    // skipped cells keep default-constructed slots
    EXPECT_TRUE(sweep.cells[1].benchmark.empty());
    EXPECT_EQ(sweep.cells[1].stats.cycles, 0u);
    EXPECT_FALSE(sweep.cells[0].benchmark.empty());
}

TEST(Checkpoint, ThreeShardMergeByteIdenticalToUnsharded)
{
    const auto spec = tinySpec();
    sim::ExperimentRunner plain;
    const auto unsharded = plain.run(spec);
    const std::string wantJson = jsonOf(unsharded);
    const std::string wantCsv = csvOf(unsharded);

    // one directory per shard, merged afterwards (the cross-host
    // workflow); a fresh runner per shard like separate processes
    ScratchDir scratch("threeshard");
    std::vector<fs::path> dirs;
    for (int i = 0; i < 3; i++) {
        sim::ExperimentRunner shardRunner;
        const fs::path dir = scratch.path / ("shard" + std::to_string(i));
        const auto outcome = sim::runWithCheckpoints(
            shardRunner, spec, {i, 3}, dir);
        EXPECT_FALSE(outcome.complete)
            << "separate dirs each hold only their own cells";
        EXPECT_EQ(outcome.cellsRun, outcome.cellsOwned);
        dirs.push_back(dir);
    }
    const auto merged = sim::mergeCheckpoints(dirs);
    EXPECT_EQ(jsonOf(merged), wantJson);
    EXPECT_EQ(csvOf(merged), wantCsv);

    // the single-shared-directory workflow: the shard that finishes
    // the matrix gets the merged result straight back
    ScratchDir shared("shareddir");
    sim::ShardRunOutcome last;
    for (int i = 0; i < 3; i++) {
        sim::ExperimentRunner shardRunner;
        last = sim::runWithCheckpoints(shardRunner, spec, {i, 3},
                                       shared.path);
    }
    EXPECT_TRUE(last.complete);
    EXPECT_EQ(jsonOf(last.merged), wantJson);
    EXPECT_EQ(csvOf(last.merged), wantCsv);
}

TEST(Checkpoint, ResumeSkipsFinishedCells)
{
    const auto spec = tinySpec();
    ScratchDir scratch("resume");

    // first pass: only shard 0/2 runs, simulating a killed run that
    // got half the matrix checkpointed
    sim::ExperimentRunner first;
    const auto partial = sim::runWithCheckpoints(first, spec, {0, 2},
                                                 scratch.path);
    EXPECT_FALSE(partial.complete);
    EXPECT_EQ(partial.cellsResumed, 0u);
    EXPECT_EQ(partial.cellsRun, partial.cellsOwned);

    // second pass: the full matrix over the same directory must only
    // simulate the cells the first pass did not finish
    sim::ExperimentRunner second;
    const auto resumed = sim::runWithCheckpoints(second, spec, {0, 1},
                                                 scratch.path);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.cellsOwned, resumed.cellsTotal);
    EXPECT_EQ(resumed.cellsResumed, partial.cellsRun);
    EXPECT_EQ(resumed.cellsRun,
              resumed.cellsTotal - partial.cellsRun);
    // the workload cache confirms no re-simulation: shard 0/2 owns
    // the two gzip cells, so the resume pass only ever built the two
    // mcf replica programs
    EXPECT_EQ(second.cacheStats().workloadBuilds, 2u);

    sim::ExperimentRunner plain;
    EXPECT_EQ(jsonOf(resumed.merged), jsonOf(plain.run(spec)));
}

TEST(Checkpoint, MismatchedSpecIsFatal)
{
    const auto spec = tinySpec();
    ScratchDir scratch("mismatch");
    sim::initRunDir(scratch.path, spec);

    auto other = spec;
    other.base.measureInsts = 999999;
    EXPECT_THROW(sim::initRunDir(scratch.path, other), FatalError);
    sim::ExperimentRunner runner;
    EXPECT_THROW(sim::runWithCheckpoints(runner, other, {0, 1},
                                         scratch.path),
                 FatalError);
}

TEST(Checkpoint, JobsAreSchedulingNotIdentity)
{
    auto spec = tinySpec();
    ScratchDir scratch("jobsid");
    sim::initRunDir(scratch.path, spec);
    spec.jobs = 16; // resuming with a different worker count is fine
    EXPECT_NO_THROW(sim::initRunDir(scratch.path, spec));
}

TEST(Checkpoint, LeftoverTmpFilesAreInvisible)
{
    const auto spec = tinySpec();
    ScratchDir scratch("tmpfiles");
    sim::initRunDir(scratch.path, spec);
    // a kill mid-write leaves a .tmp the atomic-rename protocol never
    // published; scans and merges must not see it
    std::ofstream(scratch.path / "cells" /
                  (sim::checkpointFileName(spec, 0) + ".tmp"))
        << "half-writ";
    const auto have = sim::scanCheckpoints(scratch.path, spec);
    for (bool h : have)
        EXPECT_FALSE(h);
}

TEST(Checkpoint, CorruptOrConflictingCheckpointsAreFatal)
{
    const auto spec = tinySpec();
    ScratchDir scratch("corrupt");
    sim::ExperimentRunner runner;
    const auto outcome = sim::runWithCheckpoints(runner, spec, {0, 1},
                                                 scratch.path);
    ASSERT_TRUE(outcome.complete);

    // corrupt one published checkpoint: merge must refuse loudly
    // rather than silently re-running or mixing garbage
    const fs::path victim =
        scratch.path / "cells" / sim::checkpointFileName(spec, 1);
    {
        std::ofstream os(victim, std::ios::trunc);
        os << "{\"not\":\"a checkpoint\"}";
    }
    EXPECT_THROW(sim::mergeCheckpoints({scratch.path}), FatalError);

    // conflicting duplicate across two dirs: also fatal
    ScratchDir copy("conflict");
    fs::create_directories(copy.path);
    fs::copy(scratch.path, copy.path, fs::copy_options::recursive);
    sim::ExperimentRunner again;
    // heal the corrupt copy in dir 1 by re-running just that cell
    fs::remove(victim);
    sim::CellHooks hooks;
    hooks.shouldRun = [](std::size_t i) { return i == 1; };
    hooks.onCellDone = [&](std::size_t i, const sim::CellKey &,
                           const sim::RunResult &rep0,
                           const sim::CellAggregate *agg) {
        sim::CellCheckpoint ckpt;
        ckpt.index = i;
        ckpt.seeds = agg ? static_cast<int>(agg->n) : 1;
        ckpt.cell = rep0;
        if (agg)
            ckpt.aggregate = *agg;
        sim::writeCellCheckpoint(scratch.path, spec, ckpt);
    };
    again.run(spec, hooks);
    EXPECT_THROW(sim::mergeCheckpoints({scratch.path, copy.path}),
                 FatalError);
}

TEST(Checkpoint, TruncatedCheckpointIsReRunNotMerged)
{
    // a power cut after rename but before the data hit disk can leave
    // a published checkpoint truncated; resume must treat it as
    // missing and re-simulate that one cell, never merge garbage
    const auto spec = tinySpec();
    ScratchDir scratch("truncated");
    sim::ExperimentRunner first;
    const auto full = sim::runWithCheckpoints(first, spec, {0, 1},
                                              scratch.path);
    ASSERT_TRUE(full.complete);

    const fs::path victim =
        scratch.path / "cells" / sim::checkpointFileName(spec, 2);
    const auto size = fs::file_size(victim);
    fs::resize_file(victim, size / 2);

    // the scan sees every cell except the damaged one
    const auto have = sim::scanCheckpoints(scratch.path, spec);
    ASSERT_EQ(have.size(), 4u);
    for (std::size_t i = 0; i < have.size(); i++)
        EXPECT_EQ(have[i], i != 2u) << "cell " << i;

    // resume re-runs exactly that cell and the merge is byte-equal
    // to an unsharded run
    sim::ExperimentRunner second;
    const auto resumed = sim::runWithCheckpoints(second, spec, {0, 1},
                                                 scratch.path);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.cellsRun, 1u);
    EXPECT_EQ(resumed.cellsResumed, 3u);
    sim::ExperimentRunner plain;
    EXPECT_EQ(jsonOf(resumed.merged), jsonOf(plain.run(spec)));
}

TEST(Checkpoint, StaleTmpFilesOfDeadProcessesAreReaped)
{
    const auto spec = tinySpec();
    ScratchDir scratch("staletmp");
    sim::initRunDir(scratch.path, spec);
    const fs::path cells = scratch.path / "cells";
    fs::create_directories(cells);

    // 99999999 exceeds the kernel's pid_max; kill(pid, 0) => ESRCH,
    // so the scan classifies its leftovers as a crashed shard's
    const fs::path dead =
        cells / (sim::checkpointFileName(spec, 0) + ".tmp.99999999.0");
    // our own pid is alive: a concurrent shard mid-write, keep it
    const fs::path live =
        cells / (sim::checkpointFileName(spec, 1) + ".tmp." +
                 std::to_string(::getpid()) + ".0");
    // unparseable pid field: leave it alone rather than guess
    const fs::path odd =
        cells / (sim::checkpointFileName(spec, 2) + ".tmp.x.0");
    for (const auto &p : {dead, live, odd})
        std::ofstream(p) << "half-writ";

    const auto have = sim::scanCheckpoints(scratch.path, spec);
    for (bool h : have)
        EXPECT_FALSE(h); // tmp files are never published cells
    EXPECT_FALSE(fs::exists(dead));
    EXPECT_TRUE(fs::exists(live));
    EXPECT_TRUE(fs::exists(odd));
}

TEST(Checkpoint, MissingCellsAreFatal)
{
    const auto spec = tinySpec();
    ScratchDir scratch("missing");
    sim::ExperimentRunner runner;
    sim::runWithCheckpoints(runner, spec, {0, 2}, scratch.path);
    EXPECT_THROW(sim::mergeCheckpoints({scratch.path}), FatalError);
}

} // namespace
} // namespace siq
