/**
 * @file
 * Functional-trace unit tests: program content hashing, lazy chunked
 * production, replay-vs-interpret equivalence of the timing model,
 * and the bounded trace cache's accounting and eviction policy.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/core.hh"
#include "cpu/trace.hh"
#include "sim/trace_cache.hh"
#include "workloads/builder.hh"
#include "workloads/workloads.hh"

namespace siq
{
namespace
{

workloads::WorkloadParams
smallParams(std::uint64_t seed = 12345)
{
    workloads::WorkloadParams wp;
    wp.repDivisor = 40; // shrink loop trip counts: tests, not figures
    wp.seed = seed;
    return wp;
}

std::shared_ptr<const Program>
generateShared(const std::string &bench, std::uint64_t seed = 12345)
{
    return std::make_shared<const Program>(
        workloads::generate(bench, smallParams(seed)));
}

TEST(ContentHash, DeterministicAndSeedSensitive)
{
    const auto a = generateShared("gzip");
    const auto b = generateShared("gzip");
    EXPECT_NE(a->contentHash, 0u);
    // separately generated, identical content -> identical hash
    EXPECT_EQ(a->contentHash, b->contentHash);
    EXPECT_NE(a->contentHash, generateShared("gzip", 999)->contentHash);
    EXPECT_NE(a->contentHash, generateShared("mcf")->contentHash);
}

TEST(FuncTrace, LazyChunkedProductionEndsAtHalt)
{
    ProgramBuilder b("tiny", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 7));
    b.emit(makeAddImm(1, 1, 1));
    b.emit(makeHalt());
    auto prog = std::make_shared<const Program>(b.build());

    FuncTrace trace(prog);
    EXPECT_EQ(trace.producedRecords(), 0u);
    EXPECT_EQ(trace.bytes(), 0u);

    TraceCursor cur(&trace);
    const TraceRecord &r0 = cur.at(0);
    EXPECT_EQ(r0.si->op, Opcode::MovImm);
    EXPECT_EQ(r0.flags, 0);
    // one request produced the whole (short) program: production
    // batches to the chunk end but stops at the halt record
    EXPECT_EQ(trace.producedRecords(), 3u);
    EXPECT_EQ(trace.bytes(),
              FuncTrace::chunkRecords * sizeof(TraceRecord));

    const TraceRecord &r2 = cur.at(2);
    EXPECT_TRUE(r2.si->traits().isHalt);
    EXPECT_NE(r2.flags & traceFlagHalted, 0);
    EXPECT_EQ(r2.nextPc, 0u);
    // records are stable across cursors
    TraceCursor cur2(&trace);
    EXPECT_EQ(&cur2.at(1), &cur.at(1));
}

/** Replaying a trace must reproduce every architectural counter the
 *  direct-interpreting core produces, bit for bit, under multiple
 *  timing configurations of the same trace. */
TEST(FuncTrace, ReplayBitIdenticalToDirectInterpretation)
{
    for (const char *bench : {"gzip", "mcf", "crafty"}) {
        const auto prog = generateShared(bench);
        FuncTrace trace(prog);

        CoreConfig narrow;
        narrow.fetchWidth = 2;
        narrow.iq.numEntries = 32;
        for (const CoreConfig &cfg : {CoreConfig{}, narrow}) {
            Core direct(*prog, cfg);
            direct.run(20000);
            Core replayed(*prog, cfg, nullptr, &trace);
            replayed.run(20000);
            EXPECT_EQ(direct.stats(), replayed.stats())
                << bench << " fetchWidth=" << cfg.fetchWidth;
            EXPECT_EQ(direct.iqEvents(), replayed.iqEvents())
                << bench << " fetchWidth=" << cfg.fetchWidth;
        }
    }
}

/** A second replayer with a larger budget extends the shared trace
 *  past the first one's frontier (lazy growth: the instruction budget
 *  is not part of the trace identity). */
TEST(FuncTrace, BudgetsExtendSharedTrace)
{
    const auto prog = generateShared("gzip");
    FuncTrace trace(prog);

    CoreConfig cfg;
    Core small(*prog, cfg, nullptr, &trace);
    small.run(2000);
    const std::uint64_t frontier = trace.producedRecords();
    ASSERT_GT(frontier, 0u);

    Core big(*prog, cfg, nullptr, &trace);
    big.run(20000);
    EXPECT_GT(trace.producedRecords(), frontier);

    Core direct(*prog, cfg);
    direct.run(20000);
    EXPECT_EQ(direct.stats(), big.stats());
}

TEST(TraceCache, HitAndBuildAccountingExact)
{
    sim::TraceCache cache(512ull << 20);
    const auto gzip = generateShared("gzip");
    const auto gzipAgain = generateShared("gzip");
    const auto mcf = generateShared("mcf");

    const auto t1 = cache.get(gzip);
    // a different Program object with identical content is a hit
    const auto t2 = cache.get(gzipAgain);
    EXPECT_EQ(t1.get(), t2.get());
    const auto t3 = cache.get(mcf);
    EXPECT_NE(t1.get(), t3.get());
    cache.get(mcf);

    EXPECT_EQ(cache.builds(), 2u);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.evicted(), 0u);
}

TEST(TraceCache, EvictsLruUnreferencedWhenOverCap)
{
    // cap below one chunk: any second resident trace forces eviction
    sim::TraceCache cache(1);
    auto t1 = cache.get(generateShared("gzip"));
    TraceCursor(&*t1).at(0); // allocate a chunk
    ASSERT_GT(t1->bytes(), 1u);

    // t1 is still referenced: inserting mcf must not evict it
    auto t2 = cache.get(generateShared("mcf"));
    TraceCursor(&*t2).at(0);
    EXPECT_EQ(cache.evicted(), 0u);
    EXPECT_GE(cache.residentBytes(), t1->bytes());

    // dropping a handle re-enforces the cap the moment the entry
    // becomes evictable — traces grow while pinned, so insertion-time
    // enforcement alone would leave the cache over the cap for good
    t1.reset();
    EXPECT_EQ(cache.evicted(), 1u);
    t2.reset();
    EXPECT_EQ(cache.evicted(), 2u);

    auto t3 = cache.get(generateShared("crafty"));
    TraceCursor(&*t3).at(0);
    EXPECT_LE(cache.residentBytes(), t3->bytes());

    // an evicted program rebuilds (a fresh trace, not a stale pointer)
    EXPECT_EQ(cache.builds(), 3u);
    cache.get(generateShared("gzip"));
    EXPECT_EQ(cache.builds(), 4u);

    // once the last handle drops, resident bytes fall under the cap
    t3.reset();
    EXPECT_LE(cache.residentBytes(), 1u);
}

} // namespace
} // namespace siq
