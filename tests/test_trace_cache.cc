/**
 * @file
 * Regression tests for the trace cache's handle-lifetime contract
 * (sim/trace_cache.hh): handles co-own their traces and must survive
 * cache destruction, and the running resident-bytes counter must stay
 * exact under concurrent get/touch/release churn. Run these under
 * ASan/TSan — the bugs they pin down are use-after-free and counter
 * races, which only the sanitizers surface reliably.
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "cpu/trace.hh"
#include "sim/trace_cache.hh"
#include "workloads/workloads.hh"

namespace siq
{
namespace
{

std::shared_ptr<const Program>
generateShared(const std::string &bench, std::uint64_t seed = 12345)
{
    workloads::WorkloadParams wp;
    wp.repDivisor = 40; // shrink loop trip counts: tests, not figures
    wp.seed = seed;
    return std::make_shared<const Program>(
        workloads::generate(bench, wp));
}

/** Force production of a prefix so the trace owns arena bytes. */
std::uint64_t
touch(const std::shared_ptr<FuncTrace> &trace, std::size_t upTo = 64)
{
    TraceCursor cur(trace.get());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < upTo; i++) {
        const TraceRecord &r = cur.at(i);
        sum += r.nextPc;
        if (r.flags & traceFlagHalted)
            break;
    }
    return sum;
}

TEST(TraceCacheLifetime, HandlesOutliveTheCache)
{
    // a serve-daemon restart destroys the cache while tenant workers
    // still hold trace handles; those traces must stay alive (and the
    // late releases must not touch freed cache state)
    auto cache = std::make_unique<sim::TraceCache>(512ull << 20);
    auto gzip = cache->get(generateShared("gzip"));
    auto mcf = cache->get(generateShared("mcf"));
    const std::uint64_t before = touch(gzip);
    ASSERT_TRUE(gzip && mcf);

    cache.reset(); // destroy with two live handles (warns, not fatal)

    // handles still read and still produce: the trace is co-owned
    EXPECT_EQ(touch(gzip), before);
    EXPECT_GT(touch(mcf, 256), 0u);
    gzip.reset(); // late deleters find the cache state expired
    mcf.reset();
}

TEST(TraceCacheLifetime, RebuildAfterEvictionIsIndependent)
{
    // an evicted-but-pinned scenario: the cache drops its slot (cap
    // exceeded) while a handle pins the trace; a later get must build
    // a fresh trace without disturbing the orphaned one
    sim::TraceCache cache(1); // everything is over this cap
    auto prog = generateShared("gzip");
    auto first = cache.get(prog);
    touch(first);
    auto second = cache.get(prog); // same entry while pinned
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.hits(), 1u);
    first.reset();
    second.reset(); // last release: entry evicted (over cap)
    EXPECT_EQ(cache.pinnedEntries(), 0u);
    EXPECT_EQ(cache.residentBytes(), 0u);

    auto rebuilt = cache.get(prog);
    EXPECT_EQ(cache.builds(), 2u);
    EXPECT_GT(touch(rebuilt), 0u);
}

TEST(TraceCacheLifetime, FourThreadHammerKeepsAccountingExact)
{
    // four threads churn get/touch/release over four programs with a
    // cap small enough to evict constantly; under TSan this exercises
    // the release/enforceCap/refreshBytes lock discipline, under ASan
    // the deleter-after-evict path
    sim::TraceCache cache(64 << 10);
    const std::vector<std::shared_ptr<const Program>> progs = {
        generateShared("gzip"), generateShared("mcf"),
        generateShared("crafty"), generateShared("vpr")};

    constexpr int kIters = 40;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; i++) {
                auto h = cache.get(progs[(t + i) % progs.size()]);
                touch(h, 32 + static_cast<std::size_t>(i));
                if (i % 3 == 0) {
                    // overlapping pins on the same entry
                    auto again =
                        cache.get(progs[(t + i) % progs.size()]);
                    EXPECT_EQ(h.get(), again.get());
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();

    // drained: every pin released, counter exact, cap enforced
    EXPECT_EQ(cache.pinnedEntries(), 0u);
    EXPECT_LE(cache.residentBytes(), 64u << 10);
    // every get either hit or built
    EXPECT_EQ(cache.builds() + cache.hits(),
              static_cast<std::uint64_t>(4 * kIters +
                                         4 * ((kIters + 2) / 3)));
}

} // namespace
} // namespace siq
