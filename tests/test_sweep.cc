/**
 * @file
 * Tests for the experiment engine: the technique registry, the
 * threaded sweep runner's determinism (bit-identical to serial
 * runOne), exact cache accounting, and JSON/CSV round-tripping.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>

#include "common/stats.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "sim/technique.hh"
#include "workloads/workloads.hh"

namespace siq
{
namespace
{

using sim::Technique;

const std::vector<std::string> someBenches = {"gzip", "mcf", "vortex"};
const std::vector<std::string> someTechs = {"baseline", "noop",
                                            "abella"};

sim::SweepSpec
smallSpec()
{
    sim::SweepSpec spec;
    spec.benchmarks = someBenches;
    spec.techniques = someTechs;
    spec.base.workload.repDivisor = 8;
    spec.base.warmupInsts = 5000;
    spec.base.measureInsts = 60000;
    spec.seeds = 1; // independent of any ambient SIQSIM_SEEDS
    return spec;
}

/** Canonical form: byte-level comparisons only see measurements (the
 *  one legitimate run-to-run difference is wall-clock metadata). */
sim::SweepResult
normalized(sim::SweepResult s)
{
    sim::canonicalize(s);
    return s;
}

std::string
jsonOf(const sim::SweepResult &s)
{
    std::ostringstream os;
    sim::writeJson(os, s);
    return os.str();
}

TEST(TechniqueRegistry, BuiltinsAreRegistered)
{
    const auto names = sim::techniqueNames();
    for (const char *name : {"baseline", "noop", "extension",
                             "improved", "abella", "folegnani"}) {
        EXPECT_NE(sim::findTechnique(name), nullptr) << name;
        bool listed = false;
        for (const auto &n : names)
            listed = listed || n == name;
        EXPECT_TRUE(listed) << name;
    }
    EXPECT_EQ(sim::findTechnique("no-such-technique"), nullptr);
}

TEST(TechniqueRegistry, EnumNameRoundTrip)
{
    for (auto tech :
         {Technique::Baseline, Technique::Noop, Technique::Extension,
          Technique::Improved, Technique::Abella,
          Technique::Folegnani}) {
        const auto back =
            sim::techniqueFromName(sim::techniqueName(tech));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, tech);
        EXPECT_EQ(sim::techniqueDef(tech).name,
                  sim::techniqueName(tech));
    }
    EXPECT_FALSE(sim::techniqueFromName("nope").has_value());
}

TEST(TechniqueRegistry, FactoriesMatchLegacyMapping)
{
    sim::RunConfig cfg;
    EXPECT_FALSE(
        sim::compilerConfigFor(Technique::Baseline, cfg).has_value());
    const auto noop = sim::compilerConfigFor(Technique::Noop, cfg);
    ASSERT_TRUE(noop.has_value());
    EXPECT_EQ(noop->scheme, compiler::HintScheme::Noop);
    EXPECT_FALSE(noop->interprocFu);
    const auto improved =
        sim::compilerConfigFor(Technique::Improved, cfg);
    ASSERT_TRUE(improved.has_value());
    EXPECT_EQ(improved->scheme, compiler::HintScheme::Tag);
    EXPECT_TRUE(improved->interprocFu);
}

TEST(TechniqueRegistry, ScopedVariantRegistersAndUnregisters)
{
    {
        sim::ScopedTechnique variant({
            "noop-floor16",
            Technique::Noop,
            "noop scheme with a 16-entry hint floor",
            [](const sim::RunConfig &cfg) {
                auto cc = *sim::compilerConfigFor(Technique::Noop, cfg);
                cc.minHint = 16;
                return std::optional(cc);
            },
            nullptr,
        });
        ASSERT_NE(sim::findTechnique("noop-floor16"), nullptr);

        sim::RunConfig cfg;
        cfg.workload.repDivisor = 40;
        cfg.warmupInsts = 2000;
        cfg.measureInsts = 20000;
        const auto r = sim::runOne("gzip", "noop-floor16", cfg);
        EXPECT_EQ(r.technique, "noop-floor16");
        EXPECT_EQ(r.tech, Technique::Noop);
        EXPECT_GT(r.ipc(), 0.0);
    }
    EXPECT_EQ(sim::findTechnique("noop-floor16"), nullptr);
}

TEST(ExperimentRunner, ThreadedIsBitIdenticalToSerial)
{
    auto spec = smallSpec();
    spec.jobs = 4;
    sim::ExperimentRunner runner;
    const auto sweep = runner.run(spec);

    ASSERT_EQ(sweep.cells.size(), 9u);
    EXPECT_EQ(sweep.jobsUsed, 4);

    for (std::size_t t = 0; t < spec.techniques.size(); t++) {
        for (std::size_t b = 0; b < spec.benchmarks.size(); b++) {
            sim::RunConfig cfg = spec.base;
            cfg.tech = *sim::techniqueFromName(spec.techniques[t]);
            const auto serial =
                sim::runOne(spec.benchmarks[b], cfg);
            const auto &cell = sweep.at(t, b);
            EXPECT_EQ(cell.benchmark, spec.benchmarks[b]);
            EXPECT_EQ(cell.technique, spec.techniques[t]);
            EXPECT_TRUE(sim::identicalMeasurement(serial, cell))
                << spec.benchmarks[b] << "/" << spec.techniques[t];
        }
    }
}

TEST(ExperimentRunner, JobsCountDoesNotChangeResults)
{
    auto spec = smallSpec();
    spec.jobs = 1;
    sim::ExperimentRunner serialRunner;
    const auto serial = serialRunner.run(spec);

    spec.jobs = 7;
    sim::ExperimentRunner threadedRunner;
    const auto threaded = threadedRunner.run(spec);

    ASSERT_EQ(serial.cells.size(), threaded.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); i++) {
        EXPECT_TRUE(sim::identicalMeasurement(serial.cells[i],
                                              threaded.cells[i]))
            << "cell " << i;
    }
}

TEST(ExperimentRunner, WorkloadsAreBuiltExactlyOnce)
{
    auto spec = smallSpec();
    spec.jobs = 4;
    sim::ExperimentRunner runner;
    const auto sweep = runner.run(spec);

    // 9 cells over 3 benchmarks: 3 workload builds, 6 shared hits.
    // Only "noop" compiles, once per benchmark, with no reuse inside
    // one sweep (each (benchmark, config) pair is requested once).
    EXPECT_EQ(sweep.cache.workloadBuilds, 3u);
    EXPECT_EQ(sweep.cache.workloadHits, 6u);
    EXPECT_EQ(sweep.cache.compileBuilds, 3u);
    EXPECT_EQ(sweep.cache.compileHits, 0u);

    // a second identical sweep on the same runner is all cache hits
    const auto again = runner.run(spec);
    EXPECT_EQ(again.cache.workloadBuilds, 3u);
    EXPECT_EQ(again.cache.workloadHits, 15u);
    EXPECT_EQ(again.cache.compileBuilds, 3u);
    EXPECT_EQ(again.cache.compileHits, 3u);
    for (std::size_t i = 0; i < sweep.cells.size(); i++) {
        EXPECT_TRUE(sim::identicalMeasurement(sweep.cells[i],
                                              again.cells[i]));
    }
}

TEST(ExperimentRunner, PerCellOverridesApply)
{
    auto spec = smallSpec();
    spec.benchmarks = {"gzip"};
    spec.techniques = {"baseline"};
    spec.perCell = [](sim::RunConfig &cfg, const sim::CellKey &key) {
        EXPECT_EQ(key.benchmark, "gzip");
        EXPECT_EQ(key.technique, "baseline");
        cfg.measureInsts = 30000;
    };
    sim::ExperimentRunner runner;
    const auto sweep = runner.run(spec);
    ASSERT_EQ(sweep.cells.size(), 1u);
    EXPECT_GE(sweep.cells[0].stats.committed, 29000u);
    EXPECT_LT(sweep.cells[0].stats.committed, 45000u);
}

TEST(ExperimentRunner, UnknownTechniqueIsFatal)
{
    auto spec = smallSpec();
    spec.techniques = {"baseline", "definitely-not-registered"};
    sim::ExperimentRunner runner;
    EXPECT_THROW(runner.run(spec), FatalError);
}

TEST(ExperimentRunner, MixSeedIsDeterministicAndSpreads)
{
    using Runner = sim::ExperimentRunner;
    EXPECT_EQ(Runner::mixSeed(1, 2, 3), Runner::mixSeed(1, 2, 3));
    EXPECT_NE(Runner::mixSeed(1, 2, 3), Runner::mixSeed(1, 3, 2));
    EXPECT_NE(Runner::mixSeed(1, 2, 3), Runner::mixSeed(2, 2, 3));
}

TEST(Replication, ReplicaZeroMatchesUnreplicatedSweep)
{
    auto spec = smallSpec();
    sim::ExperimentRunner plainRunner;
    const auto plain = plainRunner.run(spec);
    EXPECT_EQ(plain.seeds, 1);
    EXPECT_TRUE(plain.aggregates.empty());

    spec.seeds = 3;
    spec.jobs = 4;
    sim::ExperimentRunner runner;
    const auto rep = runner.run(spec);
    EXPECT_EQ(rep.seeds, 3);
    ASSERT_EQ(rep.cells.size(), plain.cells.size());
    ASSERT_EQ(rep.aggregates.size(), rep.cells.size());
    for (std::size_t i = 0; i < rep.cells.size(); i++) {
        EXPECT_TRUE(sim::identicalMeasurement(plain.cells[i],
                                              rep.cells[i]))
            << "replica 0 must be the configured-seed run, cell " << i;
        EXPECT_EQ(rep.aggregates[i].n, 3u);
    }
}

TEST(Replication, AggregatesMatchSerialRunOneFolds)
{
    sim::SweepSpec spec;
    spec.benchmarks = {"gzip"};
    spec.techniques = {"baseline", "noop"};
    spec.base.workload.repDivisor = 40;
    spec.base.warmupInsts = 2000;
    spec.base.measureInsts = 20000;
    spec.seeds = 3;
    spec.jobs = 4;
    sim::ExperimentRunner runner;
    const auto sweep = runner.run(spec);

    for (std::size_t t = 0; t < spec.techniques.size(); t++) {
        stats::RunningStats cycles, ipc, broadcasts;
        for (std::size_t r = 0; r < 3; r++) {
            sim::RunConfig cfg = spec.base;
            cfg.tech = *sim::techniqueFromName(spec.techniques[t]);
            if (r > 0) {
                cfg.workload.seed = sim::ExperimentRunner::mixSeed(
                    cfg.workload.seed, r, 0);
            }
            const auto run = sim::runOne("gzip", cfg);
            cycles.sample(static_cast<double>(run.stats.cycles));
            broadcasts.sample(static_cast<double>(run.iq.broadcasts));
            ipc.sample(run.ipc());
        }
        const auto &agg = sweep.aggAt(t, 0);
        // same fold order, same accumulator: bit-exact agreement
        EXPECT_EQ(agg.stats_cycles.mean, cycles.mean());
        EXPECT_EQ(agg.stats_cycles.stddev, cycles.stddev());
        EXPECT_EQ(agg.stats_cycles.ci95, cycles.ci95());
        EXPECT_EQ(agg.iq_broadcasts.mean, broadcasts.mean());
        EXPECT_EQ(agg.ipc.mean, ipc.mean());
        EXPECT_EQ(agg.ipc.ci95, ipc.ci95());
        EXPECT_GT(agg.stats_cycles.stddev, 0.0)
            << "decorrelated replicas must actually vary";
    }
}

TEST(Replication, ReplicasShareWorkloadsAcrossTechniques)
{
    auto spec = smallSpec();
    spec.seeds = 3;
    spec.jobs = 4;
    sim::ExperimentRunner runner;
    const auto sweep = runner.run(spec);
    // replica seeds depend only on the replica index, so 3 benchmarks
    // x 3 seeds = 9 distinct workloads, each shared by 3 techniques
    EXPECT_EQ(sweep.cache.workloadBuilds, 9u);
    EXPECT_EQ(sweep.cache.workloadHits, 18u);
    EXPECT_EQ(sweep.cache.compileBuilds, 9u);
    EXPECT_EQ(sweep.cache.compileHits, 0u);
}

TEST(Replication, JsonExportByteIdenticalAcrossJobsAtSeeds3)
{
    auto spec = smallSpec();
    spec.seeds = 3;

    spec.jobs = 1;
    sim::ExperimentRunner serialRunner;
    const auto serial = serialRunner.run(spec);

    spec.jobs = 4;
    sim::ExperimentRunner threadedRunner;
    const auto threaded = threadedRunner.run(spec);

    EXPECT_EQ(jsonOf(normalized(serial)), jsonOf(normalized(threaded)))
        << "jobs=1 and jobs=4 must export byte-identical JSON";
}

TEST(Replication, SeedsZeroDefersToEnvironment)
{
    auto spec = smallSpec();
    spec.benchmarks = {"gzip"};
    spec.techniques = {"baseline"};
    spec.base.workload.repDivisor = 40;
    spec.base.warmupInsts = 2000;
    spec.base.measureInsts = 20000;
    spec.seeds = 0;

    ASSERT_EQ(setenv("SIQSIM_SEEDS", "2", 1), 0);
    sim::ExperimentRunner runner;
    const auto sweep = runner.run(spec);
    ASSERT_EQ(unsetenv("SIQSIM_SEEDS"), 0);
    EXPECT_EQ(sweep.seeds, 2);
    ASSERT_EQ(sweep.aggregates.size(), 1u);
    EXPECT_EQ(sweep.aggregates[0].n, 2u);

    sim::ExperimentRunner plain;
    const auto unset = plain.run(spec);
    EXPECT_EQ(unset.seeds, 1);
    EXPECT_TRUE(unset.aggregates.empty());
}

/** The trace-replay grid: every built-in technique over structurally
 *  diverse workload families (loops, FP, calls, phase changes), with
 *  replica seeds so replay covers decorrelated workloads too. */
sim::SweepSpec
traceSpec()
{
    sim::SweepSpec spec;
    spec.benchmarks = {"gzip", "specfp", "server", "phased"};
    spec.techniques = {"baseline", "noop",   "extension",
                       "improved", "abella", "folegnani"};
    spec.base.workload.repDivisor = 40;
    spec.base.warmupInsts = 2000;
    spec.base.measureInsts = 10000;
    spec.seeds = 2;
    spec.jobs = 4;
    return spec;
}

/** Randomized end-to-end equivalence: a sweep replaying shared
 *  functional traces (the default) must export canonical JSON
 *  byte-identical to the same sweep interpreting every cell directly
 *  (SIQSIM_TRACE=0). */
TEST(TraceReplay, ByteIdenticalToDirectInterpretation)
{
    const auto spec = traceSpec();
    sim::ExperimentRunner replayRunner; // tracing is on by default
    const auto replayed = replayRunner.run(spec);
    EXPECT_GT(replayed.cache.traceBuilds, 0u);
    EXPECT_GT(replayed.cache.traceBytes, 0u);

    ASSERT_EQ(setenv("SIQSIM_TRACE", "0", 1), 0);
    sim::ExperimentRunner directRunner; // env is read at construction
    ASSERT_EQ(unsetenv("SIQSIM_TRACE"), 0);
    const auto direct = directRunner.run(spec);
    EXPECT_EQ(direct.cache.traceBuilds, 0u);
    EXPECT_EQ(direct.cache.traceBytes, 0u);

    EXPECT_EQ(jsonOf(normalized(replayed)), jsonOf(normalized(direct)))
        << "trace replay changed simulated behavior";
}

/** Exact accounting: one trace build per distinct annotated-program
 *  content, one hit for every other (cell, replica); the distinct set
 *  is recomputed here independently of the cache. */
TEST(TraceReplay, CacheAccountingMatchesDistinctPrograms)
{
    const auto spec = traceSpec();
    sim::ExperimentRunner runner;
    const auto sweep = runner.run(spec);

    std::set<std::uint64_t> distinct;
    std::uint64_t gets = 0;
    for (const auto &bench : spec.benchmarks) {
        for (int rep = 0; rep < spec.seeds; rep++) {
            auto wp = spec.base.workload;
            if (rep > 0) {
                wp.seed =
                    sim::ExperimentRunner::mixSeed(wp.seed, rep, 0);
            }
            const Program raw = workloads::generate(bench, wp);
            for (const auto &tech : spec.techniques) {
                sim::RunConfig cfg = spec.base;
                cfg.tech = *sim::techniqueFromName(tech);
                gets++;
                const auto cc = sim::compilerConfigFor(cfg.tech, cfg);
                if (cc) {
                    Program annotated = raw;
                    compiler::annotate(annotated, *cc);
                    distinct.insert(annotated.contentHash);
                } else {
                    distinct.insert(raw.contentHash);
                }
            }
        }
    }
    EXPECT_EQ(sweep.cache.traceBuilds, distinct.size());
    EXPECT_EQ(sweep.cache.traceHits, gets - distinct.size());
    EXPECT_EQ(sweep.cache.traceEvicted, 0u);
    EXPECT_GT(sweep.cache.traceBytes, 0u);
}

/** An over-subscribed byte cap evicts instead of growing without
 *  bound, and eviction (rebuilding traces) never changes results. */
TEST(TraceReplay, CacheRespectsByteCapUnderOverCapSweep)
{
    auto spec = traceSpec();
    spec.jobs = 1; // deterministic LRU order and final resident set

    ASSERT_EQ(setenv("SIQSIM_TRACE_CACHE_MB", "1", 1), 0);
    sim::ExperimentRunner capped;
    ASSERT_EQ(unsetenv("SIQSIM_TRACE_CACHE_MB"), 0);
    const auto sweep = capped.run(spec);
    EXPECT_GT(sweep.cache.traceEvicted, 0u);
    EXPECT_LE(sweep.cache.traceBytes, 1ull << 20);

    sim::ExperimentRunner unbounded;
    const auto reference = unbounded.run(spec);
    EXPECT_EQ(reference.cache.traceEvicted, 0u);
    EXPECT_EQ(jsonOf(normalized(sweep)), jsonOf(normalized(reference)))
        << "trace eviction changed simulated behavior";
}

class ReportRoundTrip : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto spec = smallSpec();
        spec.base.workload.repDivisor = 40;
        spec.base.warmupInsts = 2000;
        spec.base.measureInsts = 20000;
        sim::ExperimentRunner runner;
        sweep = runner.run(spec);
    }

    static void
    expectFullyEqual(const sim::SweepResult &a,
                     const sim::SweepResult &b)
    {
        ASSERT_EQ(a.benchmarks, b.benchmarks);
        ASSERT_EQ(a.techniques, b.techniques);
        ASSERT_EQ(a.cells.size(), b.cells.size());
        for (std::size_t i = 0; i < a.cells.size(); i++) {
            const auto &x = a.cells[i];
            const auto &y = b.cells[i];
            EXPECT_TRUE(sim::identicalMeasurement(x, y)) << i;
            // wall-clock fields round-trip exactly too (%.17g)
            EXPECT_EQ(x.generateSeconds, y.generateSeconds) << i;
            EXPECT_EQ(x.compile.seconds, y.compile.seconds) << i;
        }
    }

    sim::SweepResult sweep;
};

TEST_F(ReportRoundTrip, Json)
{
    std::stringstream ss;
    sim::writeJson(ss, sweep);
    const auto back = sim::readJson(ss);
    expectFullyEqual(sweep, back);
    EXPECT_EQ(back.cache, sweep.cache);
    EXPECT_EQ(back.jobsUsed, sweep.jobsUsed);
    EXPECT_EQ(back.wallSeconds, sweep.wallSeconds);
}

TEST_F(ReportRoundTrip, Csv)
{
    std::stringstream ss;
    sim::writeCsv(ss, sweep);
    const auto back = sim::readCsv(ss);
    expectFullyEqual(sweep, back);
}

TEST_F(ReportRoundTrip, PowerCsvHasEveryNonBaselineCell)
{
    std::stringstream ss;
    sim::writePowerCsv(ss, sweep);
    std::string line;
    std::size_t rows = 0;
    ASSERT_TRUE(std::getline(ss, line)); // header
    while (std::getline(ss, line))
        rows += line.empty() ? 0 : 1;
    EXPECT_EQ(rows, sweep.benchmarks.size() *
                        (sweep.techniques.size() - 1));
}

TEST_F(ReportRoundTrip, LegacySchemaWhenUnreplicated)
{
    // seeds == 1 must keep the pre-replication export byte format
    const std::string json = jsonOf(sweep);
    EXPECT_EQ(json.find("\"seeds\""), std::string::npos);
    EXPECT_EQ(json.find("\"aggregates\""), std::string::npos);
    std::stringstream ss;
    sim::writeCsv(ss, sweep);
    std::string header;
    ASSERT_TRUE(std::getline(ss, header));
    EXPECT_EQ(header.find(",n"), std::string::npos);
    EXPECT_EQ(header.find("_ci95"), std::string::npos);
}

class ReplicatedRoundTrip : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto spec = smallSpec();
        spec.base.workload.repDivisor = 40;
        spec.base.warmupInsts = 2000;
        spec.base.measureInsts = 20000;
        spec.seeds = 3;
        sim::ExperimentRunner runner;
        sweep = runner.run(spec);
    }

    sim::SweepResult sweep;
};

TEST_F(ReplicatedRoundTrip, JsonPreservesAggregatesExactly)
{
    std::stringstream ss;
    sim::writeJson(ss, sweep);
    const auto back = sim::readJson(ss);
    EXPECT_EQ(back.seeds, 3);
    ASSERT_EQ(back.aggregates.size(), sweep.aggregates.size());
    for (std::size_t i = 0; i < sweep.aggregates.size(); i++) {
        // %.17g doubles round-trip bit-exactly, so default == holds
        EXPECT_EQ(back.aggregates[i], sweep.aggregates[i])
            << "cell " << i;
    }
    for (std::size_t i = 0; i < sweep.cells.size(); i++) {
        EXPECT_TRUE(sim::identicalMeasurement(back.cells[i],
                                              sweep.cells[i]));
    }
}

TEST_F(ReplicatedRoundTrip, CsvPreservesAggregatesExactly)
{
    std::stringstream ss;
    sim::writeCsv(ss, sweep);
    const auto back = sim::readCsv(ss);
    EXPECT_EQ(back.seeds, 3);
    ASSERT_EQ(back.aggregates.size(), sweep.aggregates.size());
    for (std::size_t i = 0; i < sweep.aggregates.size(); i++)
        EXPECT_EQ(back.aggregates[i], sweep.aggregates[i])
            << "cell " << i;
}

TEST_F(ReplicatedRoundTrip, AggregateLookupByTechniqueName)
{
    const auto &agg = sweep.aggAt("noop", 1);
    EXPECT_EQ(agg.n, 3u);
    EXPECT_GT(agg.ipc.mean, 0.0);
    EXPECT_THROW(sweep.aggAt("definitely-not-registered", 0),
                 FatalError);
    sim::SweepResult unreplicated;
    unreplicated.techniques = {"baseline"};
    unreplicated.benchmarks = {"gzip"};
    EXPECT_THROW(unreplicated.aggAt("baseline", 0), FatalError);
}

TEST_F(ReportRoundTrip, SingleResultJsonParses)
{
    const std::string json = sim::toJson(sweep.cells[0]);
    EXPECT_NE(json.find("\"benchmark\":\"gzip\""), std::string::npos);
    const auto cmp =
        sim::comparePower(sweep.at("baseline", 0), sweep.at("noop", 0));
    const std::string cmpJson = sim::toJson(cmp);
    EXPECT_NE(cmpJson.find("iqDynamicSaving"), std::string::npos);
}

} // namespace
} // namespace siq
