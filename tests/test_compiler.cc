/**
 * @file
 * Compiler pass tests beyond the paper goldens: pseudo-IQ behaviour,
 * minimal-range properties, hint placement rules (per-block, loop
 * entry, procedure entry, call continuation, library call), elision
 * and the tag scheme.
 */

#include <gtest/gtest.h>

#include <set>

#include "compiler/pass.hh"
#include "workloads/builder.hh"
#include "workloads/workloads.hh"

namespace siq::compiler
{
namespace
{

PseudoInst
alu(int latency = 1)
{
    PseudoInst pi;
    pi.latency = latency;
    pi.fu = FuClass::IntAlu;
    return pi;
}

TEST(PseudoIq, DispatchWidthLimitsEntry)
{
    // 16 independent ops with no unit constraint, dispatch 8/cycle:
    // the second batch issues one cycle later
    PseudoInst free;
    free.fu = FuClass::None;
    std::vector<PseudoInst> insts(16, free);
    PseudoIqConfig cfg;
    const auto res = simulatePseudoIq(insts, {}, cfg, {}, cfg.iqSize);
    EXPECT_EQ(res.issueCycle[0], 1);
    EXPECT_EQ(res.issueCycle[8], 2);
    EXPECT_EQ(res.drainCycles, 3);
}

TEST(PseudoIq, AluCountBoundsIssueWaves)
{
    // 16 single-cycle ALU ops on 6 units: three issue waves
    std::vector<PseudoInst> insts(16, alu());
    PseudoIqConfig cfg;
    const auto res = simulatePseudoIq(insts, {}, cfg, {}, cfg.iqSize);
    EXPECT_EQ(res.drainCycles, 4);
    EXPECT_EQ(res.issueCycle[5], res.issueCycle[0]);
    EXPECT_EQ(res.issueCycle[6], res.issueCycle[0] + 1);
}

TEST(PseudoIq, FuContentionSerializes)
{
    // 6 multiplies on 3 units: two issue waves
    std::vector<PseudoInst> insts;
    for (int i = 0; i < 6; i++) {
        PseudoInst pi = alu(3);
        pi.fu = FuClass::IntMul;
        insts.push_back(pi);
    }
    PseudoIqConfig cfg;
    const auto res = simulatePseudoIq(insts, {}, cfg, {}, cfg.iqSize);
    EXPECT_EQ(res.issueCycle[2], res.issueCycle[0]);
    EXPECT_EQ(res.issueCycle[3], res.issueCycle[0] + 1);
}

TEST(PseudoIq, NonPipelinedOpsHoldUnits)
{
    // 4 divides on 3 units: the fourth waits a full latency
    std::vector<PseudoInst> insts;
    for (int i = 0; i < 4; i++) {
        PseudoInst pi = alu(12);
        pi.fu = FuClass::IntMul;
        pi.pipelined = false;
        insts.push_back(pi);
    }
    PseudoIqConfig cfg;
    const auto res = simulatePseudoIq(insts, {}, cfg, {}, cfg.iqSize);
    EXPECT_EQ(res.issueCycle[2], res.issueCycle[0]);
    EXPECT_EQ(res.issueCycle[3], res.issueCycle[0] + 12);
}

TEST(PseudoIq, ExternalReadinessDelaysIssue)
{
    std::vector<PseudoInst> insts(2, alu());
    insts[1].externalReady = 10;
    PseudoIqConfig cfg;
    const auto res = simulatePseudoIq(insts, {}, cfg, {}, cfg.iqSize);
    EXPECT_EQ(res.issueCycle[0], 1);
    EXPECT_EQ(res.issueCycle[1], 10);
}

TEST(PseudoIq, FuBusyUntilDelaysClass)
{
    std::vector<PseudoInst> insts = {alu()};
    PseudoIqConfig cfg;
    std::array<int, numFuClasses> busy{};
    busy[static_cast<int>(FuClass::IntAlu)] = 7;
    const auto res = simulatePseudoIq(insts, {}, cfg, busy,
                                      cfg.iqSize);
    EXPECT_EQ(res.issueCycle[0], 7);
}

TEST(MinimalRange, MonotoneAndBounded)
{
    // serial chain: range 1 already runs at full (serial) speed
    std::vector<PseudoInst> chain(20, alu());
    std::vector<PseudoDep> deps;
    for (int i = 1; i < 20; i++)
        deps.push_back({i - 1, i});
    PseudoIqConfig cfg;
    EXPECT_LE(minimalRange(chain, deps, cfg), 2);

    // fully parallel ALU work: bounded by the 6 ALU units
    std::vector<PseudoInst> par(64, alu());
    const int r = minimalRange(par, {}, cfg);
    const int alus =
        cfg.fuCounts[static_cast<int>(FuClass::IntAlu)];
    EXPECT_GE(r, alus - 1);
    EXPECT_LE(r, alus + 3);
}

TEST(MinimalRange, StrictModeProtectsIssueTimes)
{
    // a late independent divide can be delayed without changing the
    // drain (it hides under an earlier longer chain), but strict mode
    // must keep its issue time
    std::vector<PseudoInst> insts;
    std::vector<PseudoDep> deps;
    // chain of 16 dependent alus (drain driver)
    for (int i = 0; i < 16; i++) {
        insts.push_back(alu());
        if (i > 0)
            deps.push_back({i - 1, i});
    }
    PseudoInst div = alu(12);
    div.fu = FuClass::IntMul;
    div.pipelined = false;
    insts.push_back(div); // position 16, independent
    PseudoIqConfig cfg;
    const int relaxed = minimalRange(insts, deps, cfg, {}, 0, false);
    const int strict = minimalRange(insts, deps, cfg, {}, 0, true);
    EXPECT_GT(strict, relaxed);
}

TEST(LoopAnalysis, SerialLoopNeedsFewEntries)
{
    // body: r1 += 1 (self-carried); 6 independent consumers
    ProgramBuilder b("serial", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 100));
    auto loop = b.beginLoop(1, 2);
    // r3 carries across iterations: a true 9-cycle recurrence
    b.emit(makeMul(3, 3, 1));
    b.emit(makeMul(3, 3, 3));
    b.emit(makeMul(3, 3, 3));
    b.endLoop(loop);
    b.emit(makeHalt());
    const Program prog = b.build();
    const auto loops = findNaturalLoops(prog.procs[0]);
    ASSERT_EQ(loops.size(), 1u);
    std::vector<const BasicBlock *> blocks;
    for (int blk : loops[0].blocks)
        blocks.push_back(&prog.procs[0].blocks[blk]);
    const Ddg ddg = buildDdg(blocks, true);
    const auto la = analyzeLoop(ddg, PseudoIqConfig{});
    EXPECT_LE(la.entries, 16)
        << "a 9-cycle serial recurrence cannot use a big window";
    EXPECT_TRUE(la.hadCds);
}

TEST(LoopAnalysis, ParallelLoopWantsManyEntries)
{
    // independent iterations: only resources bound the window
    ProgramBuilder b("parallel", 1 << 12);
    b.newProc("main");
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 100));
    b.emit(makeMovImm(6, 64));
    auto loop = b.beginLoop(1, 2);
    b.emit(makeAdd(3, 6, 1));
    b.emit(makeLoad(4, 3, 0));
    b.emit(makeLoad(5, 3, 1));
    b.emit(makeAdd(7, 4, 5));
    b.emit(makeMul(8, 7, 7));
    b.emit(makeStore(3, 8, 2));
    b.endLoop(loop);
    b.emit(makeHalt());
    const Program prog = b.build();
    const auto loops = findNaturalLoops(prog.procs[0]);
    ASSERT_EQ(loops.size(), 1u);
    std::vector<const BasicBlock *> blocks;
    for (int blk : loops[0].blocks)
        blocks.push_back(&prog.procs[0].blocks[blk]);
    const Ddg ddg = buildDdg(blocks, true);
    const auto la = analyzeLoop(ddg, PseudoIqConfig{});
    EXPECT_GT(la.entries, 20);
}

/** Tiny two-procedure program exercising every placement rule. */
Program
placementProgram()
{
    ProgramBuilder b("place", 256);
    const int lib = b.newProc("libfun", /*isLibrary=*/true);
    b.emit(makeAddImm(9, 9, 1));
    b.emit(makeRet());
    const int mainP = b.newProc("main");
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 10));
    auto loop = b.beginLoop(1, 2);
    b.emit(makeAdd(3, 3, 1));
    b.endLoop(loop);
    b.callProc(lib); // library call from a non-loop block
    b.emit(makeAddImm(4, 4, 1));
    b.emit(makeHalt());
    Program prog = b.build();
    prog.entryProc = mainP;
    return prog;
}

TEST(HintPlacement, NoopSchemeRules)
{
    Program prog = placementProgram();
    CompilerConfig cfg;
    cfg.elideRedundant = false;
    const auto stats = annotate(prog, cfg);
    EXPECT_GT(stats.hintNoopsInserted, 0u);
    EXPECT_EQ(stats.tagsApplied, 0u);

    const Procedure &mainProc = prog.procs[1];
    // block 0 (procedure entry, outside loops) starts with a hint
    EXPECT_EQ(mainProc.blocks[0].insts.front().op, Opcode::Hint);
    // the loop-entry hint sits at the end of the preheader-side
    // block, before its terminator if any: find a hint in block 0's
    // tail (block 0 falls into the loop header)
    EXPECT_EQ(mainProc.blocks[0].insts.back().op, Opcode::Hint)
        << "loop-entry hint before entering the header";
    // library call: the calling block ends with hint #iqSize then
    // the call
    const StaticInst *libHint = nullptr;
    for (const auto &block : mainProc.blocks) {
        const StaticInst *term = block.terminator();
        if (term != nullptr && term->traits().isCall &&
            block.insts.size() >= 2) {
            libHint = &block.insts[block.insts.size() - 2];
        }
    }
    ASSERT_NE(libHint, nullptr);
    EXPECT_EQ(libHint->op, Opcode::Hint);
    EXPECT_EQ(libHint->hintValue, cfg.machine.iqSize)
        << "library calls max the IQ (paper section 4.4)";
    // no hint inside the loop body blocks (they are one region)
    const auto loops = findNaturalLoops(mainProc);
    ASSERT_EQ(loops.size(), 1u);
    for (int blk : loops[0].blocks) {
        for (const auto &inst : mainProc.blocks[blk].insts)
            EXPECT_NE(inst.op, Opcode::Hint)
                << "block " << blk << " is inside the loop region";
    }
}

TEST(HintPlacement, TagSchemeUsesNoDispatchSlots)
{
    Program prog = placementProgram();
    CompilerConfig cfg;
    cfg.scheme = HintScheme::Tag;
    cfg.elideRedundant = false;
    const auto stats = annotate(prog, cfg);
    EXPECT_GT(stats.tagsApplied, 0u);
    std::size_t hintInsts = 0;
    for (const auto &proc : prog.procs)
        for (const auto &block : proc.blocks)
            for (const auto &inst : block.insts)
                if (inst.op == Opcode::Hint)
                    hintInsts++;
    EXPECT_EQ(hintInsts, stats.hintNoopsInserted)
        << "tags only fall back to NOOPs for empty blocks";
}

TEST(HintPlacement, CallContinuationGetsHint)
{
    ProgramBuilder b("cont", 64);
    const int callee = b.newProc("callee");
    b.emit(makeAddImm(9, 9, 1));
    b.emit(makeRet());
    const int mainP = b.newProc("main");
    b.emit(makeAddImm(1, 1, 1));
    b.callProc(callee);
    b.emit(makeAddImm(2, 2, 1)); // continuation block
    b.emit(makeHalt());
    Program prog = b.build();
    prog.entryProc = mainP;
    CompilerConfig cfg;
    cfg.elideRedundant = false;
    annotate(prog, cfg);
    // the continuation block (fallthrough of the call) starts with a
    // hint: the callee's hints invalidated the caller's range
    const Procedure &mainProc = prog.procs[1];
    int contBlock = -1;
    for (const auto &block : mainProc.blocks) {
        const StaticInst *term = block.terminator();
        if (term != nullptr && term->traits().isCall)
            contBlock = block.fallthrough;
    }
    ASSERT_GE(contBlock, 0);
    EXPECT_EQ(mainProc.blocks[contBlock].insts.front().op,
              Opcode::Hint);
}

TEST(HintPlacement, ElisionRemovesRedundantHints)
{
    Program withElide = placementProgram();
    Program without = placementProgram();
    CompilerConfig cfg;
    cfg.elideRedundant = true;
    const auto statsElide = annotate(withElide, cfg);
    cfg.elideRedundant = false;
    const auto statsFull = annotate(without, cfg);
    EXPECT_LE(statsElide.hintNoopsInserted,
              statsFull.hintNoopsInserted);
}

TEST(HintValues, ClampedToConfiguredBounds)
{
    Program prog = workloads::generate("gzip", {});
    CompilerConfig cfg;
    cfg.minHint = 6;
    annotate(prog, cfg);
    for (const auto &proc : prog.procs) {
        for (const auto &block : proc.blocks) {
            for (const auto &inst : block.insts) {
                if (inst.op == Opcode::Hint) {
                    EXPECT_GE(inst.hintValue, 6);
                    EXPECT_LE(inst.hintValue, cfg.machine.iqSize);
                }
                if (inst.tagHint != 0) {
                    EXPECT_GE(inst.tagHint, 6);
                    EXPECT_LE(inst.tagHint, cfg.machine.iqSize);
                }
            }
        }
    }
}

TEST(Improved, RaisesValuesForCalledProcedures)
{
    Program prog = workloads::generate("vortex", {});
    CompilerConfig plain;
    plain.scheme = HintScheme::Tag;
    CompilerConfig improved = plain;
    improved.interprocFu = true;
    // accessor procedures (called, divide-bearing) must not shrink
    // under the strict criterion
    for (int p = 0; p < 8; p++) {
        const auto pa = analyzeProcedure(prog, p, plain);
        const auto pi = analyzeProcedure(prog, p, improved);
        EXPECT_GE(pi.dagNeed[0], pa.dagNeed[0]) << "proc " << p;
    }
}

TEST(CompileStats, CountsAndTimes)
{
    Program prog = workloads::generate("gcc", {});
    CompilerConfig cfg;
    const auto stats = annotate(prog, cfg);
    EXPECT_EQ(stats.proceduresAnalyzed, prog.procs.size());
    EXPECT_GT(stats.blocksAnalyzed, 100u);
    EXPECT_GT(stats.loopsAnalyzed, 0u);
    EXPECT_GT(stats.seconds, 0.0);
}

TEST(PathEnumeration, GccConservativeFallbackStillAnnotates)
{
    // gcc's dispatcher loop exceeds the path cap; the pass must still
    // produce valid hints everywhere
    Program prog = workloads::generate("gcc", {});
    CompilerConfig cfg;
    cfg.maxLoopPaths = 4; // force fallbacks
    const auto stats = annotate(prog, cfg);
    EXPECT_GT(stats.hintNoopsInserted, 0u);
}

} // namespace
} // namespace siq::compiler
