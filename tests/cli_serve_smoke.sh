#!/usr/bin/env bash
# End-to-end exercise of `siqsim serve`: a unix-socket daemon serves
# two overlapping clients whose streamed exports are byte-identical
# to batch `siqsim run --json` output, survives a client vanishing
# mid-request, and reports malformed requests without dying.
#
# Usage: cli_serve_smoke.sh /path/to/siqsim /path/to/python3
set -euo pipefail

SIQSIM=${1:?usage: cli_serve_smoke.sh /path/to/siqsim /path/to/python3}
PYTHON=${2:-python3}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/siqsim_serve.XXXXXX")
DAEMON=
cleanup() {
    [ -n "$DAEMON" ] && kill "$DAEMON" 2> /dev/null || true
    [ -n "$DAEMON" ] && wait "$DAEMON" 2> /dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"

cat > client.py << 'EOF'
"""Send one request over the serve socket, write its export."""
import json, socket, sys

path, reqid, specfile, outfile = sys.argv[1:5]
spec = json.load(open(specfile))
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(path)
s.sendall((json.dumps({"id": reqid, "spec": spec}) + "\n").encode())
events = []
for line in s.makefile("r"):
    rec = json.loads(line)
    if rec.get("id") != reqid:
        continue
    events.append(rec["event"])
    if rec["event"] == "error":
        sys.exit("server error: " + rec["error"])
    if rec["event"] == "done":
        assert events[0] == "accepted", events
        assert "cell" in events, events
        assert rec["cancelled"] is False, rec
        open(outfile, "w").write(rec["export"])
        break
else:
    sys.exit("connection closed before done record")
s.close()
EOF

cat > vanish.py << 'EOF'
"""Submit a request, read the accepted record, hang up mid-flight."""
import json, socket, sys

path, specfile = sys.argv[1:3]
spec = json.load(open(specfile))
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(path)
s.sendall((json.dumps({"id": "doomed", "spec": spec}) + "\n").encode())
line = s.makefile("r").readline()
assert json.loads(line)["event"] == "accepted", line
s.close()  # reader gone: the daemon must hard-close, not die
EOF

cat > badline.py << 'EOF'
"""Malformed input must yield an error record, then a clean EOF."""
import json, socket, sys

path = sys.argv[1]
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(path)
s.sendall(b'{"definitely not json\n')
s.shutdown(socket.SHUT_WR)
recs = [json.loads(l) for l in s.makefile("r")]
assert len(recs) == 1 and recs[0]["event"] == "error", recs
assert recs[0]["id"] is None, recs
s.close()
EOF

"$SIQSIM" spec --benchmarks gzip,mcf --techniques baseline,noop \
    --warmup 2000 --measure 10000 --rep-divisor 40 --seeds 2 \
    --out specA.json
"$SIQSIM" spec --benchmarks gzip --techniques baseline \
    --warmup 2000 --measure 10000 --rep-divisor 40 --seeds 2 \
    --out specB.json

# the batch baselines the daemon's exports must reproduce exactly
"$SIQSIM" run --spec specA.json --json batchA.json
"$SIQSIM" run --spec specB.json --json batchB.json

SOCK=$WORK/serve.sock
"$SIQSIM" serve --socket "$SOCK" 2> serve.log &
DAEMON=$!
for _ in $(seq 100); do
    [ -S "$SOCK" ] && break
    kill -0 "$DAEMON" 2> /dev/null || { cat serve.log; exit 1; }
    sleep 0.1
done
[ -S "$SOCK" ]
grep -q "listening on $SOCK" serve.log

# two overlapping clients: B's only cell is a sub-grid of A's, so the
# daemon serves it from A's in-flight simulation or the result cache
# — either way both exports must be byte-identical to the batch runs
"$PYTHON" client.py "$SOCK" ra specA.json serveA.json &
CA=$!
"$PYTHON" client.py "$SOCK" rb specB.json serveB.json &
CB=$!
wait "$CA"
wait "$CB"
cmp batchA.json serveA.json
cmp batchB.json serveB.json

# a client that hangs up mid-request must not take the daemon down
"$PYTHON" vanish.py "$SOCK" specA.json
kill -0 "$DAEMON"

# nor must a malformed request line
"$PYTHON" badline.py "$SOCK"
kill -0 "$DAEMON"

# the daemon still serves correct results after both abuses
"$PYTHON" client.py "$SOCK" again specB.json serveB2.json
cmp batchB.json serveB2.json

kill "$DAEMON"
wait "$DAEMON" 2> /dev/null || true
DAEMON=

echo "cli_serve_smoke: OK"
