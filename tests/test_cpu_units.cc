/** @file Branch predictor, register file, LSQ and cache unit tests. */

#include <gtest/gtest.h>

#include <deque>
#include <numeric>
#include <set>
#include <vector>

#include "common/random.hh"
#include "cpu/bpred.hh"
#include "cpu/lsq.hh"
#include "cpu/regfile.hh"
#include "mem/cache.hh"

namespace siq
{
namespace
{

TEST(Bpred, LearnsAlwaysTaken)
{
    Bpred bp(BpredConfig{});
    const std::uint64_t pc = 0x1000;
    for (int i = 0; i < 8; i++)
        bp.updateDirection(pc, true);
    EXPECT_TRUE(bp.predictDirection(pc));
}

TEST(Bpred, LearnsAlternatingPatternViaGshare)
{
    Bpred bp(BpredConfig{});
    const std::uint64_t pc = 0x2000;
    // train: taken iff previous outcome was not-taken (period 2)
    for (int i = 0; i < 4096; i++)
        bp.updateDirection(pc, i % 2 == 0);
    int correct = 0;
    for (int i = 0; i < 100; i++) {
        const bool actual = i % 2 == 0;
        correct += bp.predictDirection(pc) == actual ? 1 : 0;
        bp.updateDirection(pc, actual);
    }
    EXPECT_GT(correct, 95) << "history-based side must capture period-2";
}

TEST(Bpred, BtbStoresAndEvicts)
{
    BpredConfig cfg;
    cfg.btbEntries = 8;
    cfg.btbAssoc = 2;
    Bpred bp(cfg);
    EXPECT_EQ(bp.btbLookup(0x4000), 0u);
    bp.btbUpdate(0x4000, 0x9000);
    EXPECT_EQ(bp.btbLookup(0x4000), 0x9000u);
    bp.btbUpdate(0x4000, 0x9004);
    EXPECT_EQ(bp.btbLookup(0x4000), 0x9004u) << "target refresh";
    // force conflict evictions in one set (4 sets, 2 ways)
    for (std::uint64_t i = 1; i <= 4; i++)
        bp.btbUpdate(0x4000 + i * 4 * 4, 0x1111 * i);
    // original entry eventually evicted
    bool stillThere = bp.btbLookup(0x4000) == 0x9004u;
    EXPECT_FALSE(stillThere);
}

TEST(Bpred, RasPushPopLifo)
{
    Bpred bp(BpredConfig{});
    bp.rasPush(0x100);
    bp.rasPush(0x200);
    EXPECT_EQ(bp.rasPop(), 0x200u);
    EXPECT_EQ(bp.rasPop(), 0x100u);
    EXPECT_EQ(bp.rasPop(), 0u) << "empty stack predicts 0";
}

TEST(Bpred, RasOverflowDropsOldest)
{
    BpredConfig cfg;
    cfg.rasEntries = 2;
    Bpred bp(cfg);
    bp.rasPush(1);
    bp.rasPush(2);
    bp.rasPush(3); // pushes 1 out
    EXPECT_EQ(bp.rasPop(), 3u);
    EXPECT_EQ(bp.rasPop(), 2u);
    EXPECT_EQ(bp.rasPop(), 0u);
}

TEST(RegFile, RenameAllocatesLowestFreeFirst)
{
    RegFile rf(RegFileConfig{112, 32, 8});
    const auto [fresh, old] = rf.rename(5);
    EXPECT_EQ(old, 5) << "initial mapping is identity";
    EXPECT_EQ(fresh, 32) << "lowest free physical register";
    EXPECT_FALSE(rf.isReady(fresh));
    rf.setReady(fresh);
    EXPECT_TRUE(rf.isReady(fresh));
    EXPECT_EQ(rf.lookup(5), fresh);
}

TEST(RegFile, ReleaseRecyclesIntoLowSlots)
{
    RegFile rf(RegFileConfig{112, 32, 8});
    const auto [p1, o1] = rf.rename(1);
    rf.release(o1); // free phys 1
    const auto [p2, o2] = rf.rename(2);
    EXPECT_EQ(p2, 1) << "min-heap free list reuses the low register";
    (void)p1;
    (void)o2;
}

TEST(RegFile, BankLivenessTracksAllocations)
{
    RegFile rf(RegFileConfig{112, 32, 8});
    EXPECT_EQ(rf.poweredBanks(), 4) << "32 arch regs fill 4 banks";
    EXPECT_EQ(rf.liveRegs(), 32);
    std::vector<int> olds;
    for (int i = 0; i < 9; i++) {
        const auto [fresh, old] = rf.rename(i);
        olds.push_back(old);
        (void)fresh;
    }
    EXPECT_EQ(rf.poweredBanks(), 6) << "phys 32..40 span two banks";
    for (int old : olds)
        rf.release(old);
    EXPECT_EQ(rf.liveRegs(), 32);
}

TEST(RegFile, ExhaustionDetected)
{
    RegFile rf(RegFileConfig{40, 32, 8});
    for (int i = 0; i < 8; i++) {
        ASSERT_TRUE(rf.hasFree());
        rf.rename(i % 32);
    }
    EXPECT_FALSE(rf.hasFree());
}

/**
 * Randomized shadow-model stress for the register file, mirroring the
 * IQ fast-path test in test_cpu_iq.cc: a naive reference (map table
 * as an array, free list as an ordered set, bank liveness recounted
 * from scratch) must agree with the RegFile on every observable —
 * mapping, readiness, live count, powered banks — across thousands of
 * randomized rename/writeback/commit operations.
 */
TEST(RegFile, RandomizedShadowModelAgrees)
{
    const RegFileConfig cfg{48, 32, 8}; // 6 banks, 16 rename headroom
    RegFile rf(cfg);

    std::vector<int> map(static_cast<std::size_t>(cfg.numArch));
    std::iota(map.begin(), map.end(), 0);
    std::set<int> freeSet;
    for (int p = cfg.numArch; p < cfg.numPhys; p++)
        freeSet.insert(p);
    std::vector<bool> ready(static_cast<std::size_t>(cfg.numPhys),
                            false);
    for (int a = 0; a < cfg.numArch; a++)
        ready[static_cast<std::size_t>(a)] = true;
    // previous mappings awaiting release at their redefiner's commit
    std::vector<int> pendingRelease;

    Rng rng(4242);
    for (int step = 0; step < 20000; step++) {
        const int action = static_cast<int>(rng.range(0, 9));
        if (action < 4 && !freeSet.empty()) {
            const int arch = static_cast<int>(
                rng.range(0, cfg.numArch - 1));
            const auto [fresh, old] = rf.rename(arch);
            ASSERT_EQ(fresh, *freeSet.begin())
                << "min-heap free list must pack the lowest bank";
            ASSERT_EQ(old, map[static_cast<std::size_t>(arch)]);
            freeSet.erase(freeSet.begin());
            map[static_cast<std::size_t>(arch)] = fresh;
            ready[static_cast<std::size_t>(fresh)] = false;
            pendingRelease.push_back(old);
        } else if (action < 6 && !pendingRelease.empty()) {
            // commit a random redefiner: its old mapping dies
            const std::size_t pick = static_cast<std::size_t>(
                rng.range(0,
                          static_cast<std::int64_t>(
                              pendingRelease.size()) -
                              1));
            const int phys = pendingRelease[pick];
            pendingRelease.erase(
                pendingRelease.begin() +
                static_cast<std::ptrdiff_t>(pick));
            rf.release(phys);
            freeSet.insert(phys);
            ready[static_cast<std::size_t>(phys)] = false;
        } else if (action < 8) {
            // writeback: the current mapping's value arrives
            const int arch = static_cast<int>(
                rng.range(0, cfg.numArch - 1));
            const int phys = map[static_cast<std::size_t>(arch)];
            rf.setReady(phys);
            ready[static_cast<std::size_t>(phys)] = true;
        }

        const int live = cfg.numPhys -
                         static_cast<int>(freeSet.size());
        ASSERT_EQ(rf.liveRegs(), live) << "step " << step;
        ASSERT_EQ(rf.hasFree(), !freeSet.empty()) << "step " << step;

        // recount powered banks from scratch: a bank is live when
        // any non-free register lives in it
        std::vector<int> bankLive(
            static_cast<std::size_t>(rf.numBanks()), 0);
        for (int p = 0; p < cfg.numPhys; p++) {
            if (freeSet.find(p) == freeSet.end())
                bankLive[static_cast<std::size_t>(
                    p / cfg.bankSize)]++;
        }
        int powered = 0;
        for (int n : bankLive)
            powered += n > 0 ? 1 : 0;
        ASSERT_EQ(rf.poweredBanks(), powered) << "step " << step;

        for (int a = 0; a < cfg.numArch; a++) {
            const int phys = map[static_cast<std::size_t>(a)];
            ASSERT_EQ(rf.lookup(a), phys) << "step " << step;
            ASSERT_EQ(rf.isReady(phys),
                      ready[static_cast<std::size_t>(phys)])
                << "step " << step << " arch " << a;
        }
    }
}

TEST(Lsq, LoadBlockedByIncompleteOlderStoreSameAddress)
{
    Lsq lsq(LsqConfig{8});
    const int st = lsq.allocate(true, 100, 0);
    const int ld = lsq.allocate(false, 100, 1);
    EXPECT_TRUE(lsq.loadBlocked(ld));
    lsq.markIssued(st);
    EXPECT_TRUE(lsq.loadBlocked(ld)) << "issued is not completed";
    lsq.markCompleted(st);
    EXPECT_FALSE(lsq.loadBlocked(ld));
    EXPECT_TRUE(lsq.loadForwards(ld));
}

TEST(Lsq, DifferentAddressesDoNotBlock)
{
    Lsq lsq(LsqConfig{8});
    lsq.allocate(true, 100, 0);
    const int ld = lsq.allocate(false, 104, 1);
    EXPECT_FALSE(lsq.loadBlocked(ld));
    EXPECT_FALSE(lsq.loadForwards(ld));
}

TEST(Lsq, YoungestMatchingStoreForwards)
{
    Lsq lsq(LsqConfig{8});
    const int s1 = lsq.allocate(true, 100, 0);
    const int s2 = lsq.allocate(true, 100, 1);
    const int ld = lsq.allocate(false, 100, 2);
    lsq.markIssued(s1);
    lsq.markCompleted(s1);
    EXPECT_TRUE(lsq.loadBlocked(ld)) << "s2 still pending";
    lsq.markIssued(s2);
    lsq.markCompleted(s2);
    EXPECT_TRUE(lsq.loadForwards(ld));
}

TEST(Lsq, ReleaseInCommitOrderAndWrap)
{
    Lsq lsq(LsqConfig{4});
    for (int round = 0; round < 5; round++) {
        const int a = lsq.allocate(false, 1, 0);
        const int b = lsq.allocate(true, 2, 1);
        lsq.releaseHead(a);
        lsq.releaseHead(b);
        EXPECT_EQ(lsq.size(), 0);
    }
    EXPECT_FALSE(lsq.full());
}

/**
 * Randomized shadow-model stress for the LSQ: a naive program-order
 * reference must agree on loadBlocked/loadForwards (walk all older
 * entries, youngest matching store decides) and on the size/full
 * observables, across randomized allocate/issue/complete/commit
 * streams with heavy address aliasing.
 */
TEST(Lsq, RandomizedShadowModelAgrees)
{
    struct ShadowEntry
    {
        bool isStore;
        std::uint64_t addr;
        bool completed = false;
        int idx; ///< the Lsq's entry index
    };

    const LsqConfig cfg{16};
    Lsq lsq(cfg);
    std::deque<ShadowEntry> shadow; // oldest (head) first

    Rng rng(9090);
    for (int step = 0; step < 30000; step++) {
        const int action = static_cast<int>(rng.range(0, 9));
        if (action < 4 && !lsq.full()) {
            const bool isStore = rng.chance(0.4);
            // 8 addresses only, to force constant aliasing
            const auto addr =
                static_cast<std::uint64_t>(rng.range(0, 7));
            const int idx = lsq.allocate(isStore, addr, step);
            shadow.push_back({isStore, addr, false, idx});
        } else if (action < 7 && !shadow.empty()) {
            // drive a random entry one step through issue/complete
            const std::size_t pick = static_cast<std::size_t>(
                rng.range(0,
                          static_cast<std::int64_t>(shadow.size()) -
                              1));
            auto &e = shadow[pick];
            if (!e.completed && rng.chance(0.5)) {
                lsq.markIssued(e.idx);
            } else if (!e.completed) {
                lsq.markIssued(e.idx);
                lsq.markCompleted(e.idx);
                e.completed = true;
            }
        } else if (action < 9 && !shadow.empty()) {
            // commit: release the head entry
            lsq.releaseHead(shadow.front().idx);
            shadow.pop_front();
        }

        ASSERT_EQ(lsq.size(), static_cast<int>(shadow.size()))
            << "step " << step;
        ASSERT_EQ(lsq.full(),
                  static_cast<int>(shadow.size()) == cfg.numEntries)
            << "step " << step;

        for (std::size_t i = 0; i < shadow.size(); i++) {
            if (shadow[i].isStore)
                continue;
            // blocked: ANY older same-address store not yet complete;
            // forwards: the YOUNGEST older same-address store exists
            // and has completed
            bool blocked = false;
            bool forwards = false;
            bool sawMatch = false;
            for (std::size_t k = i; k-- > 0;) {
                const auto &older = shadow[k];
                if (!older.isStore || older.addr != shadow[i].addr)
                    continue;
                blocked = blocked || !older.completed;
                if (!sawMatch) {
                    sawMatch = true;
                    forwards = older.completed;
                }
            }
            ASSERT_EQ(lsq.loadBlocked(shadow[i].idx), blocked)
                << "step " << step << " entry " << i;
            ASSERT_EQ(lsq.loadForwards(shadow[i].idx), forwards)
                << "step " << step << " entry " << i;
        }
    }
}

TEST(Cache, HitAfterMiss)
{
    Cache cache(CacheConfig{"t", 1024, 2, 32, 1});
    EXPECT_FALSE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x11C)) << "same 32B line";
    EXPECT_FALSE(cache.access(0x120)) << "next line";
    EXPECT_EQ(cache.accesses(), 4u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2 ways, 32B lines, 2 sets: set stride 64
    Cache cache(CacheConfig{"t", 128, 2, 32, 1});
    cache.access(0);   // set 0, way A
    cache.access(128); // set 0, way B
    cache.access(0);   // touch A so B is LRU
    cache.access(256); // evicts B
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(128));
    EXPECT_TRUE(cache.probe(256));
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache cache(CacheConfig{"t", 1024, 2, 32, 1});
    EXPECT_FALSE(cache.probe(0x40));
    EXPECT_FALSE(cache.probe(0x40));
    EXPECT_EQ(cache.accesses(), 0u);
}

TEST(MemHierarchy, LatenciesFollowTable1)
{
    MemHierarchy mem((MemHierarchyConfig()));
    const std::uint64_t addr = 0x12340;
    EXPECT_EQ(mem.dataAccess(addr), 50) << "cold: main memory";
    EXPECT_EQ(mem.dataAccess(addr), 2) << "L1D hit";
    // evict nothing; a new address next to it hits the same L2 line
    // but misses L1 (different L1 line? same 32B line hits)
    EXPECT_EQ(mem.dataAccess(addr + 32), 10)
        << "L1 miss, L2 hit (64B L2 line already filled)";
    EXPECT_EQ(mem.instAccess(0x999000), 50);
    EXPECT_EQ(mem.instAccess(0x999000), 1) << "L1I hit";
}

} // namespace
} // namespace siq
