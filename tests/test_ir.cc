/** @file IR tests: CFG building, exec semantics, dominators, loops,
 *  DDG construction and SCC discovery. */

#include <gtest/gtest.h>

#include "ir/cfg.hh"
#include "ir/ddg.hh"
#include "ir/exec.hh"
#include "workloads/builder.hh"

namespace siq
{
namespace
{

/** main: r1 = 5; r2 = r1 + 3; mem[4] = r2; halt */
Program
straightLine()
{
    ProgramBuilder b("straight", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 5));
    b.emit(makeAddImm(2, 1, 3));
    b.emit(makeMovImm(3, 4));
    b.emit(makeStore(3, 2, 0));
    b.emit(makeHalt());
    return b.build();
}

TEST(Exec, StraightLineSemantics)
{
    const Program prog = straightLine();
    ExecContext ctx(prog);
    while (!ctx.halted())
        ctx.step();
    EXPECT_EQ(ctx.intReg(1), 5);
    EXPECT_EQ(ctx.intReg(2), 8);
    EXPECT_EQ(ctx.readMem(4), 8);
    EXPECT_EQ(ctx.instsExecuted(), 5u);
}

TEST(Exec, ZeroRegisterReadsZeroAndIgnoresWrites)
{
    ProgramBuilder b("zero", 64);
    b.newProc("main");
    b.emit(makeMovImm(0, 99)); // discarded
    b.emit(makeAddImm(1, 0, 7));
    b.emit(makeHalt());
    const Program prog = b.build();
    ExecContext ctx(prog);
    while (!ctx.halted())
        ctx.step();
    EXPECT_EQ(ctx.intReg(0), 0);
    EXPECT_EQ(ctx.intReg(1), 7);
}

TEST(Exec, LoopRunsToCompletion)
{
    ProgramBuilder b("loop", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 10));
    auto loop = b.beginLoop(1, 2);
    b.emit(makeAddImm(3, 3, 2)); // r3 += 2 each iteration
    b.endLoop(loop);
    b.emit(makeHalt());
    const Program prog = b.build();
    ExecContext ctx(prog);
    while (!ctx.halted())
        ctx.step();
    EXPECT_EQ(ctx.intReg(3), 20);
    EXPECT_EQ(ctx.intReg(1), 10);
}

TEST(Exec, CallAndReturnThroughNestedProcedures)
{
    ProgramBuilder b("calls", 64);
    const int inner = b.newProc("inner");
    b.emit(makeAddImm(5, 5, 1));
    b.emit(makeRet());
    const int outer = b.newProc("outer");
    b.callProc(inner);
    b.callProc(inner);
    b.emit(makeRet());
    const int mainP = b.newProc("main");
    b.callProc(outer);
    b.emit(makeHalt());
    (void)mainP;
    Program prog = b.build();
    prog.entryProc = mainP;
    ExecContext ctx(prog);
    while (!ctx.halted())
        ctx.step();
    EXPECT_EQ(ctx.intReg(5), 2);
    EXPECT_EQ(ctx.callDepth(), 0u);
    (void)outer;
}

TEST(Exec, IndirectJumpSelectsByRegister)
{
    ProgramBuilder b("switch", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 2)); // select case 2
    auto sw = b.beginSwitch(1, 3);
    for (int c = 0; c < 3; c++) {
        b.switchTo(sw.cases[static_cast<std::size_t>(c)]);
        b.emit(makeMovImm(9, 100 + c));
        b.jumpTo(sw.join);
    }
    b.switchTo(sw.join);
    b.emit(makeHalt());
    const Program prog = b.build();
    ExecContext ctx(prog);
    while (!ctx.halted())
        ctx.step();
    EXPECT_EQ(ctx.intReg(9), 102);
}

TEST(Exec, AddressesWrapModuloMemory)
{
    ProgramBuilder b("wrap", 16);
    b.newProc("main");
    b.emit(makeMovImm(1, 16 + 3)); // wraps to word 3
    b.emit(makeMovImm(2, 77));
    b.emit(makeStore(1, 2, 0));
    b.emit(makeHalt());
    const Program prog = b.build();
    ExecContext ctx(prog);
    while (!ctx.halted())
        ctx.step();
    EXPECT_EQ(ctx.readMem(3), 77);
}

TEST(Program, FinalizeBuildsCfgEdges)
{
    ProgramBuilder b("cfg", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 0));
    auto d = b.beginIf(makeBeq(1, 0, -1));
    b.emit(makeAddImm(2, 2, 1));
    b.elseBranch(d);
    b.emit(makeAddImm(2, 2, 2));
    b.joinUp(d);
    b.emit(makeHalt());
    const Program prog = b.build();
    const auto &blocks = prog.procs[0].blocks;
    // entry: branch to then, fallthrough to else
    ASSERT_EQ(blocks[0].succs.size(), 2u);
    // join has two predecessors
    EXPECT_EQ(blocks[d.join].preds.size(), 2u);
}

TEST(Program, PcsAreUniqueAndIncreasing)
{
    const Program prog = straightLine();
    std::uint64_t last = 0;
    for (const auto &inst : prog.procs[0].blocks[0].insts) {
        EXPECT_GT(inst.pc, last);
        last = inst.pc;
    }
}

/** Diamond with a loop around it for dominator/loop tests. */
Program
loopDiamond()
{
    ProgramBuilder b("ld", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 8));
    auto loop = b.beginLoop(1, 2);
    auto d = b.beginIf(makeBeq(1, 0, -1));
    b.emit(makeAddImm(3, 3, 1));
    b.elseBranch(d);
    b.emit(makeAddImm(3, 3, 2));
    b.joinUp(d);
    b.endLoop(loop);
    b.emit(makeHalt());
    return b.build();
}

TEST(Dominators, EntryDominatesEverything)
{
    const Program prog = loopDiamond();
    const auto idom = immediateDominators(prog.procs[0]);
    for (std::size_t bIdx = 0; bIdx < prog.procs[0].blocks.size();
         bIdx++) {
        if (idom[bIdx] < 0)
            continue; // unreachable
        EXPECT_TRUE(dominates(idom, 0, static_cast<int>(bIdx)));
    }
}

TEST(Dominators, BranchArmsDoNotDominateJoin)
{
    const Program prog = loopDiamond();
    const Procedure &proc = prog.procs[0];
    const auto idom = immediateDominators(proc);
    // find the join: a block with two predecessors inside the loop
    for (const auto &block : proc.blocks) {
        if (block.preds.size() == 2) {
            for (int p : block.preds)
                EXPECT_FALSE(dominates(idom, p, block.id) &&
                             proc.blocks[p].preds.size() == 1 &&
                             false);
            // the branch head dominates the join
            EXPECT_TRUE(dominates(idom,
                                  idom[block.id], block.id));
        }
    }
}

TEST(NaturalLoops, FindsSingleLoopWithDiamondBody)
{
    const Program prog = loopDiamond();
    const auto loops = findNaturalLoops(prog.procs[0]);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].depth, 1);
    // header + then + else + join + latch at least
    EXPECT_GE(loops[0].blocks.size(), 5u);
}

TEST(NaturalLoops, NestingResolved)
{
    ProgramBuilder b("nest", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 4));
    auto outer = b.beginLoop(1, 2);
    b.emit(makeMovImm(3, 0));
    b.emit(makeMovImm(4, 4));
    auto inner = b.beginLoop(3, 4);
    b.emit(makeAddImm(5, 5, 1));
    b.endLoop(inner);
    b.endLoop(outer);
    b.emit(makeHalt());
    const Program prog = b.build();
    const auto loops = findNaturalLoops(prog.procs[0]);
    ASSERT_EQ(loops.size(), 2u);
    const auto &a = loops[0].blocks.size() > loops[1].blocks.size()
                        ? loops[0]
                        : loops[1];
    const auto &c = loops[0].blocks.size() > loops[1].blocks.size()
                        ? loops[1]
                        : loops[0];
    EXPECT_EQ(a.depth, 1);
    EXPECT_EQ(c.depth, 2);
    ASSERT_EQ(a.children.size(), 1u);
    // exclusive blocks of the outer loop exclude the inner body
    const auto excl = a.exclusiveBlocks(loops);
    for (int blk : excl)
        EXPECT_FALSE(c.contains(blk));
}

TEST(Ddg, RawEdgesTrackLastDef)
{
    ProgramBuilder b("ddg", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 1));    // 0
    b.emit(makeMovImm(1, 2));    // 1 redefines r1
    b.emit(makeAddImm(2, 1, 0)); // 2 reads r1 -> depends on 1 only
    b.emit(makeHalt());
    const Program prog = b.build();
    const std::vector<const BasicBlock *> blocks = {
        &prog.procs[0].blocks[0]};
    const Ddg ddg = buildDdg(blocks, false);
    ASSERT_EQ(ddg.edges.size(), 1u);
    EXPECT_EQ(ddg.edges[0].from, 1);
    EXPECT_EQ(ddg.edges[0].to, 2);
}

TEST(Ddg, StaticMemoryDependence)
{
    ProgramBuilder b("mem", 64);
    b.newProc("main");
    b.emit(makeMovImm(1, 8));
    b.emit(makeStore(1, 2, 0)); // 1: st [r1]
    b.emit(makeLoad(3, 1, 0));  // 2: ld [r1] same address
    b.emit(makeLoad(4, 1, 4));  // 3: different offset: no edge
    b.emit(makeHalt());
    const Program prog = b.build();
    const std::vector<const BasicBlock *> blocks = {
        &prog.procs[0].blocks[0]};
    const Ddg ddg = buildDdg(blocks, false);
    bool storeToLoad = false, storeToOther = false;
    for (const auto &e : ddg.edges) {
        if (e.from == 1 && e.to == 2)
            storeToLoad = true;
        if (e.from == 1 && e.to == 3)
            storeToOther = true;
    }
    EXPECT_TRUE(storeToLoad);
    EXPECT_FALSE(storeToOther);
}

TEST(Ddg, LoopCarriedDistanceOneEdges)
{
    ProgramBuilder b("carry", 64);
    b.newProc("main");
    b.emit(makeAddImm(1, 1, 1)); // r1 depends on itself across iters
    b.emit(makeAddImm(2, 1, 0)); // same-iteration use
    b.emit(makeHalt());
    const Program prog = b.build();
    const std::vector<const BasicBlock *> blocks = {
        &prog.procs[0].blocks[0]};
    const Ddg ddg = buildDdg(blocks, true);
    bool selfCarried = false;
    for (const auto &e : ddg.edges)
        if (e.from == 0 && e.to == 0 && e.distance == 1)
            selfCarried = true;
    EXPECT_TRUE(selfCarried);
}

TEST(Ddg, CyclicDependenceSetsFindSelfLoopOnly)
{
    ProgramBuilder b("cds", 64);
    b.newProc("main");
    b.emit(makeAddImm(1, 1, 1)); // cyclic
    b.emit(makeAddImm(2, 3, 1)); // r2 from r3: acyclic
    b.emit(makeHalt());
    const Program prog = b.build();
    const std::vector<const BasicBlock *> blocks = {
        &prog.procs[0].blocks[0]};
    const Ddg ddg = buildDdg(blocks, true);
    const auto sets = cyclicDependenceSets(ddg);
    ASSERT_EQ(sets.size(), 1u);
    EXPECT_EQ(sets[0], std::vector<int>{0});
}

TEST(Ddg, LoadLatencyUsesL1Hit)
{
    const StaticInst load = makeLoad(1, 2, 0);
    EXPECT_EQ(defaultCompilerLatency(load, 2), 2);
    const StaticInst add = makeAdd(1, 2, 3);
    EXPECT_EQ(defaultCompilerLatency(add, 2), 1);
}

TEST(Rpo, EntryFirstTopologicalOnDags)
{
    const Program prog = loopDiamond();
    const auto rpo = reversePostOrder(prog.procs[0]);
    ASSERT_FALSE(rpo.empty());
    EXPECT_EQ(rpo.front(), 0);
}

} // namespace
} // namespace siq
