/**
 * @file
 * Cross-module integration and property tests, parameterized over the
 * full benchmark suite:
 *  - functional outputs are invariant across every technique (the
 *    hints may never change semantics);
 *  - hinted runs never deadlock and never raise occupancy;
 *  - a fuzzer that sprays random tag hints over a program still gets
 *    the right answer (hint safety is unconditional);
 *  - the simulator facade produces sane figures.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "ir/exec.hh"
#include "sim/simulator.hh"

namespace siq
{
namespace
{

workloads::WorkloadParams
tiny()
{
    workloads::WorkloadParams wp;
    wp.repDivisor = 40;
    return wp;
}

class BenchmarkSuite : public ::testing::TestWithParam<std::string>
{};

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkSuite,
    ::testing::ValuesIn(workloads::benchmarkNames()),
    [](const auto &info) { return info.param; });

/** Reference memory image after natural completion. */
std::vector<std::int64_t>
referenceImage(const Program &prog)
{
    ExecContext ctx(prog);
    while (!ctx.halted())
        ctx.step();
    std::vector<std::int64_t> image;
    for (std::uint64_t a = 0; a < 64; a++)
        image.push_back(ctx.readMem(a));
    return image;
}

TEST_P(BenchmarkSuite, TechniquesPreserveFunctionalBehaviour)
{
    const Program plain = workloads::generate(GetParam(), tiny());
    const auto ref = referenceImage(plain);

    for (auto tech :
         {sim::Technique::Noop, sim::Technique::Extension,
          sim::Technique::Improved}) {
        Program prog = workloads::generate(GetParam(), tiny());
        sim::RunConfig rc;
        const auto cc = sim::compilerConfigFor(tech, rc);
        ASSERT_TRUE(cc.has_value());
        compiler::annotate(prog, *cc);

        Core core(prog, CoreConfig{});
        core.run(1u << 24);
        ASSERT_TRUE(core.done())
            << GetParam() << " did not finish under "
            << sim::techniqueName(tech);
        for (std::uint64_t a = 0; a < 64; a++)
            ASSERT_EQ(core.exec().readMem(a),
                      ref[static_cast<std::size_t>(a)])
                << GetParam() << "/" << sim::techniqueName(tech)
                << " word " << a;
    }
}

TEST_P(BenchmarkSuite, HintsNeverRaiseOccupancy)
{
    const Program plain = workloads::generate(GetParam(), tiny());
    Core base(plain, CoreConfig{});
    base.run(1u << 24);
    const double baseOcc =
        static_cast<double>(base.iqEvents().occupancySum) /
        static_cast<double>(base.iqEvents().cycles);

    Program hinted = workloads::generate(GetParam(), tiny());
    sim::RunConfig rc;
    compiler::annotate(
        hinted, *sim::compilerConfigFor(sim::Technique::Noop, rc));
    Core noop(hinted, CoreConfig{});
    noop.run(1u << 24);
    const double noopOcc =
        static_cast<double>(noop.iqEvents().occupancySum) /
        static_cast<double>(noop.iqEvents().cycles);
    EXPECT_LE(noopOcc, baseOcc * 1.02 + 0.5) << GetParam();
}

TEST_P(BenchmarkSuite, AdaptiveControllersRunToCompletion)
{
    for (auto tech :
         {sim::Technique::Abella, sim::Technique::Folegnani}) {
        sim::RunConfig cfg;
        cfg.tech = tech;
        cfg.workload = tiny();
        cfg.warmupInsts = 2000;
        cfg.measureInsts = 40000;
        const auto result = sim::runOne(GetParam(), cfg);
        EXPECT_GT(result.ipc(), 0.01) << sim::techniqueName(tech);
        EXPECT_LE(result.ipc(), 8.0);
    }
}

TEST_P(BenchmarkSuite, RandomHintFuzzIsSafe)
{
    // spraying arbitrary tag hints over every instruction must never
    // deadlock the machine or change results: the new_head mechanism
    // only ever throttles dispatch
    Program prog = workloads::generate(GetParam(), tiny());
    const auto ref = referenceImage(prog);

    Rng rng(0xF00D + prog.instCount());
    for (auto &proc : prog.procs) {
        for (auto &block : proc.blocks) {
            for (auto &inst : block.insts) {
                if (rng.chance(0.15)) {
                    inst.tagHint = static_cast<std::uint16_t>(
                        rng.range(1, 80));
                }
            }
        }
    }
    prog.finalize();
    Core core(prog, CoreConfig{});
    core.run(1u << 24);
    ASSERT_TRUE(core.done()) << GetParam() << " fuzz deadlocked";
    for (std::uint64_t a = 0; a < 64; a++)
        ASSERT_EQ(core.exec().readMem(a),
                  ref[static_cast<std::size_t>(a)])
            << GetParam() << " fuzz word " << a;
}

TEST_P(BenchmarkSuite, FacadeProducesCoherentResults)
{
    sim::RunConfig cfg;
    cfg.workload = tiny();
    cfg.warmupInsts = 2000;
    cfg.measureInsts = 30000;
    cfg.tech = sim::Technique::Baseline;
    const auto base = sim::runOne(GetParam(), cfg);
    cfg.tech = sim::Technique::Noop;
    const auto noop = sim::runOne(GetParam(), cfg);

    EXPECT_GT(base.ipc(), 0.05);
    EXPECT_GE(noop.stats.hintsApplied, 0u);
    EXPECT_GE(base.avgIqOccupancy(), noop.avgIqOccupancy() - 1.0);
    EXPECT_GE(noop.iqBanksOffFraction(),
              base.iqBanksOffFraction() - 0.02);

    const auto cmp = sim::comparePower(base, noop);
    EXPECT_GE(cmp.iqDynamicSaving, -0.05);
    EXPECT_LE(cmp.iqDynamicSaving, 1.0);
    EXPECT_GE(cmp.iqStaticSaving, -0.05);
    EXPECT_GE(cmp.nonEmptySaving, 0.0);
}

/** Sweep structural parameters; results must stay functional. */
struct SweepConfig
{
    int iqSize;
    int bankSize;
    int width;
};

class StructuralSweep
    : public ::testing::TestWithParam<SweepConfig>
{};

INSTANTIATE_TEST_SUITE_P(
    Geometry, StructuralSweep,
    ::testing::Values(SweepConfig{16, 4, 4}, SweepConfig{32, 8, 8},
                      SweepConfig{64, 8, 4}, SweepConfig{80, 10, 8},
                      SweepConfig{80, 8, 8}, SweepConfig{128, 16, 8}),
    [](const auto &info) {
        return "iq" + std::to_string(info.param.iqSize) + "bank" +
               std::to_string(info.param.bankSize) + "w" +
               std::to_string(info.param.width);
    });

TEST_P(StructuralSweep, GzipFunctionalUnderGeometry)
{
    const auto &p = GetParam();
    CoreConfig cfg;
    cfg.iq.numEntries = p.iqSize;
    cfg.iq.bankSize = p.bankSize;
    cfg.fetchWidth = cfg.dispatchWidth = cfg.issueWidth =
        cfg.commitWidth = p.width;

    const Program prog = workloads::generate("gzip", tiny());
    const auto ref = referenceImage(prog);
    Core core(prog, cfg);
    core.run(1u << 24);
    ASSERT_TRUE(core.done());
    for (std::uint64_t a = 0; a < 16; a++)
        EXPECT_EQ(core.exec().readMem(a),
                  ref[static_cast<std::size_t>(a)]);
}

} // namespace
} // namespace siq
