/** @file Power-model arithmetic and adaptive-resizer behaviour. */

#include <gtest/gtest.h>

#include "adaptive/abella.hh"
#include "adaptive/folegnani.hh"
#include "power/power.hh"

namespace siq
{
namespace
{

IqEventCounts
sampleEvents()
{
    IqEventCounts ev;
    ev.cycles = 1000;
    ev.broadcasts = 2000;
    ev.cmpConventional = 2000 * 160; // 80 entries x 2 operands
    ev.cmpPowered = 2000 * 64;       // 4 of 10 banks powered
    ev.cmpGated = 30000;
    ev.dispatchWrites = 1500;
    ev.issueReads = 1500;
    ev.poweredBankCycles = 4000; // 4 banks average
    ev.totalBankCycles = 10000;
    ev.occupancySum = 20000;
    return ev;
}

TEST(Power, ModesOrderDynamicEnergy)
{
    const auto ev = sampleEvents();
    power::IqPowerParams params;
    const auto conv =
        power::iqPower(ev, params, power::IqMode::Conventional);
    const auto gated =
        power::iqPower(ev, params, power::IqMode::NonEmptyGated);
    const auto resized =
        power::iqPower(ev, params, power::IqMode::Resized);
    EXPECT_GT(conv.dynamicPower(), gated.dynamicPower());
    EXPECT_GT(gated.dynamicPower(), resized.dynamicPower());
    EXPECT_GT(conv.staticPower(), resized.staticPower());
}

TEST(Power, StaticScalesWithPoweredBanks)
{
    auto ev = sampleEvents();
    power::IqPowerParams params;
    const auto before =
        power::iqPower(ev, params, power::IqMode::Resized);
    ev.poweredBankCycles = 2000; // 2 banks average
    const auto after =
        power::iqPower(ev, params, power::IqMode::Resized);
    EXPECT_LT(after.staticPower(), before.staticPower());
    // floor leakage keeps the saving below the bank ratio
    EXPECT_GT(after.staticPower(),
              before.staticPower() * 2000.0 / 4000.0);
}

TEST(Power, SavingHelper)
{
    EXPECT_DOUBLE_EQ(power::saving(100.0, 53.0), 0.47);
    EXPECT_DOUBLE_EQ(power::saving(0.0, 10.0), 0.0);
}

TEST(Power, RfGatingOnlyAffectsBankTerms)
{
    power::RfEventCounts ev;
    ev.cycles = 1000;
    ev.reads = 3000;
    ev.writes = 2000;
    ev.poweredBankCycles = 7000;
    ev.totalBankCycles = 14000;
    power::RfPowerParams params;
    const auto gated = power::rfPower(ev, params, true);
    const auto ungated = power::rfPower(ev, params, false);
    EXPECT_LT(gated.dynamicPower(), ungated.dynamicPower());
    EXPECT_LT(gated.staticPower(), ungated.staticPower());
    const double accessEnergy =
        params.readEnergy * 3000 + params.writeEnergy * 2000;
    EXPECT_NEAR(ungated.dynamicEnergy - gated.dynamicEnergy,
                params.bankClockEnergyPerCycle * 7000, 1e-9);
    EXPECT_GT(gated.dynamicEnergy, accessEnergy);
}

ResizeSignals
idleCycle(std::uint64_t cycle, int occupancy)
{
    ResizeSignals s;
    s.cycle = cycle;
    s.iqValid = occupancy;
    s.iqRegionLen = occupancy;
    s.issuedTotal = 2;
    s.issuedFromYoungestBank = 0;
    return s;
}

TEST(Abella, ShrinksOnLowAverageOccupancy)
{
    AbellaConfig cfg;
    AbellaResizer resizer(cfg);
    EXPECT_EQ(resizer.iqLimit(), cfg.iqSize);
    for (std::uint64_t c = 0; c < cfg.intervalCycles + 1; c++)
        resizer.tick(idleCycle(c, 10));
    EXPECT_LT(resizer.iqLimit(), cfg.iqSize);
    EXPECT_GE(resizer.iqLimit(), cfg.minIq);
}

TEST(Abella, GrowsUnderLimitPressure)
{
    AbellaConfig cfg;
    AbellaResizer resizer(cfg);
    // shrink twice
    for (std::uint64_t c = 0; c < 2 * cfg.intervalCycles + 2; c++)
        resizer.tick(idleCycle(c, 4));
    const int shrunk = resizer.iqLimit();
    ASSERT_LT(shrunk, cfg.iqSize);
    // now saturate with limit-induced stalls
    for (std::uint64_t c = 0; c < cfg.intervalCycles + 1; c++) {
        auto s = idleCycle(c, shrunk);
        s.dispatchStalledByLimit = true;
        resizer.tick(s);
    }
    EXPECT_GT(resizer.iqLimit(), shrunk);
}

TEST(Abella, RobLimitHasFloor64)
{
    AbellaConfig cfg;
    AbellaResizer resizer(cfg);
    // shrink to the minimum
    for (int interval = 0; interval < 20; interval++)
        for (std::uint64_t c = 0; c < cfg.intervalCycles + 1; c++)
            resizer.tick(idleCycle(c, 2));
    EXPECT_EQ(resizer.iqLimit(), cfg.minIq);
    EXPECT_GE(resizer.robLimit(), 64)
        << "the IqRob64 floor must hold";
}

TEST(Folegnani, ShrinksWhenYoungestPortionIdle)
{
    FolegnaniConfig cfg;
    FolegnaniResizer resizer(cfg);
    for (std::uint64_t c = 0; c < cfg.intervalCycles + 1; c++)
        resizer.tick(idleCycle(c, 40));
    EXPECT_EQ(resizer.iqLimit(), cfg.iqSize - cfg.portion);
}

TEST(Folegnani, PeriodicallyReexpands)
{
    FolegnaniConfig cfg;
    FolegnaniResizer resizer(cfg);
    // several idle intervals shrink it; expansion fires every
    // expandPeriod intervals so the limit saw-tooths above minSize
    for (int interval = 0; interval < 40; interval++)
        for (std::uint64_t c = 0; c < cfg.intervalCycles; c++)
            resizer.tick(idleCycle(c, 40));
    EXPECT_GE(resizer.iqLimit(), cfg.minSize);
    // one more interval with busy youngest portion: no shrink
    const int before = resizer.iqLimit();
    for (std::uint64_t c = 0; c < cfg.intervalCycles; c++) {
        auto s = idleCycle(c, 40);
        s.issuedFromYoungestBank = 4;
        resizer.tick(s);
    }
    EXPECT_GE(resizer.iqLimit(), before - cfg.portion);
}

} // namespace
} // namespace siq
