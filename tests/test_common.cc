/** @file Unit tests for the common support library. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace siq
{
namespace
{

TEST(Json, ParseNestingDepthIsBounded)
{
    // a nesting bomb must surface as a recoverable FatalError — the
    // serve daemon feeds untrusted socket bytes into this parser and
    // catches FatalError at the request boundary — never as a
    // stack overflow that kills every tenant
    EXPECT_THROW(json::parse(std::string(100000, '[')), FatalError);
    std::string objBomb;
    for (int i = 0; i < 100000; i++)
        objBomb += "{\"k\":";
    EXPECT_THROW(json::parse(objBomb), FatalError);

    // legitimate nesting well under the cap still parses
    const std::string ok =
        std::string(200, '[') + "1" + std::string(200, ']');
    EXPECT_EQ(json::parse(ok).kind, json::Value::Kind::Array);
}

TEST(Stats, ScalarCountsAndResets)
{
    stats::Scalar s;
    EXPECT_EQ(s.value(), 0u);
    s++;
    ++s;
    s += 5;
    EXPECT_EQ(s.value(), 7u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, AverageMean)
{
    stats::Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
}

TEST(RunningStats, EmptyAccumulatorIsAllZero)
{
    stats::RunningStats w;
    EXPECT_EQ(w.count(), 0u);
    EXPECT_DOUBLE_EQ(w.mean(), 0.0);
    EXPECT_DOUBLE_EQ(w.variance(), 0.0);
    EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(w.ci95(), 0.0);
}

TEST(RunningStats, SingleSampleHasZeroSpread)
{
    stats::RunningStats w;
    w.sample(42.5);
    EXPECT_EQ(w.count(), 1u);
    EXPECT_DOUBLE_EQ(w.mean(), 42.5);
    EXPECT_DOUBLE_EQ(w.variance(), 0.0)
        << "sample variance is undefined at n=1; report 0";
    EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(w.ci95(), 0.0);
}

TEST(RunningStats, MatchesClosedFormValues)
{
    // {1..5}: mean 3, sample variance 2.5, and the small-sample CI
    // uses the Student-t quantile t(0.975, df=4) = 2.776
    stats::RunningStats w;
    for (int i = 1; i <= 5; i++)
        w.sample(i);
    EXPECT_EQ(w.count(), 5u);
    EXPECT_DOUBLE_EQ(w.mean(), 3.0);
    EXPECT_NEAR(w.variance(), 2.5, 1e-12);
    EXPECT_NEAR(w.stddev(), std::sqrt(2.5), 1e-12);
    EXPECT_NEAR(w.ci95(), 2.776 * std::sqrt(2.5 / 5.0), 1e-12);
}

TEST(RunningStats, CriticalValueUsesStudentTForSmallN)
{
    EXPECT_DOUBLE_EQ(stats::tCritical95(0), 0.0);
    EXPECT_DOUBLE_EQ(stats::tCritical95(1), 0.0);
    EXPECT_DOUBLE_EQ(stats::tCritical95(2), 12.706) << "df=1";
    EXPECT_DOUBLE_EQ(stats::tCritical95(3), 4.303) << "df=2";
    EXPECT_DOUBLE_EQ(stats::tCritical95(30), 2.045) << "df=29";
    EXPECT_DOUBLE_EQ(stats::tCritical95(31), 1.96)
        << "normal approximation beyond the table";
    EXPECT_DOUBLE_EQ(stats::tCritical95(1000), 1.96);
    // the quantile shrinks monotonically toward the normal value
    for (std::uint64_t n = 2; n <= 31; n++)
        EXPECT_GT(stats::tCritical95(n), stats::tCritical95(n + 1) - 1e-12)
            << "n=" << n;
}

TEST(RunningStats, Ci95AtTwoSamplesReflectsWideTInterval)
{
    // n=2 is the common replication floor: the half-width must use
    // t(0.975, 1) = 12.706, not 1.96 — a 6.5x wider (honest) interval
    stats::RunningStats w;
    w.sample(1.0);
    w.sample(3.0);
    // mean 2, sample variance 2, stddev sqrt(2)
    EXPECT_NEAR(w.ci95(), 12.706 * std::sqrt(2.0 / 2.0), 1e-12);
}

TEST(RunningStats, ConstantSamplesHaveZeroVariance)
{
    stats::RunningStats w;
    for (int i = 0; i < 100; i++)
        w.sample(7.25);
    EXPECT_DOUBLE_EQ(w.mean(), 7.25);
    EXPECT_DOUBLE_EQ(w.variance(), 0.0);
    EXPECT_DOUBLE_EQ(w.ci95(), 0.0);
}

TEST(RunningStats, AgreesWithNaiveTwoPassOnRandomData)
{
    Rng rng(321);
    std::vector<double> xs;
    stats::RunningStats w;
    for (int i = 0; i < 1000; i++) {
        const double v = rng.uniform() * 1e6 - 5e5;
        xs.push_back(v);
        w.sample(v);
    }
    double sum = 0.0;
    for (double v : xs)
        sum += v;
    const double mean = sum / static_cast<double>(xs.size());
    double sq = 0.0;
    for (double v : xs)
        sq += (v - mean) * (v - mean);
    const double var = sq / static_cast<double>(xs.size() - 1);
    EXPECT_NEAR(w.mean(), mean, 1e-6);
    EXPECT_NEAR(w.variance(), var, 1e-3 * var);
}

TEST(RunningStats, ResetClearsState)
{
    stats::RunningStats w;
    w.sample(1.0);
    w.sample(2.0);
    w.reset();
    EXPECT_EQ(w.count(), 0u);
    EXPECT_DOUBLE_EQ(w.mean(), 0.0);
    w.sample(9.0);
    EXPECT_DOUBLE_EQ(w.mean(), 9.0);
}

TEST(Stats, DistributionBucketsAndFraction)
{
    stats::Distribution d(0.0, 10.0, 10);
    for (int i = 0; i < 10; i++)
        d.sample(i + 0.5);
    EXPECT_EQ(d.count(), 10u);
    EXPECT_DOUBLE_EQ(d.fractionBelow(5.0), 0.5);
    EXPECT_NEAR(d.mean(), 5.0, 1e-9);
    d.sample(-1.0);
    d.sample(100.0);
    EXPECT_EQ(d.count(), 12u);
}

TEST(Stats, GroupDumpAndReset)
{
    stats::Group g("core");
    stats::Scalar s;
    s += 3;
    g.addScalar("committed", &s);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "core.committed 3\n");
    g.resetAll();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng r(7);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; i++) {
        const auto v = r.range(3, 6);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 6);
        sawLo |= v == 3;
        sawHi |= v == 6;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, ChanceIsCalibrated)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 10000; i++)
        hits += r.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Table, FormatsAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    const auto out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    // header + separator + two rows
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, PercentHelper)
{
    EXPECT_EQ(Table::pct(0.4719), "47.2%");
    EXPECT_EQ(Table::fmt(1.005, 2), "1.00");
}

TEST(Logging, FatalThrowsRecoverableError)
{
    EXPECT_THROW(fatal("bad config ", 42), FatalError);
    try {
        fatal("value=", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7");
    }
}

TEST(Logging, AssertPassesOnTrue)
{
    SIQ_ASSERT(1 + 1 == 2, "arithmetic works");
    SUCCEED();
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("broken invariant"), "panic");
}

TEST(LoggingDeathTest, AssertAborts)
{
    EXPECT_DEATH(SIQ_ASSERT(false, "must die"), "assertion failed");
}

} // namespace
} // namespace siq
