/**
 * @file
 * Workload generator tests: determinism, termination, structural and
 * behavioural profile properties that the paper's per-benchmark
 * variation depends on.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cpu/core.hh"
#include "ir/exec.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{
namespace
{

WorkloadParams
tiny()
{
    WorkloadParams wp;
    wp.repDivisor = 40;
    return wp;
}

TEST(Workloads, AllElevenNamesGenerate)
{
    ASSERT_EQ(benchmarkNames().size(), 11u);
    for (const auto &name : benchmarkNames()) {
        const Program prog = generate(name, tiny());
        EXPECT_EQ(prog.name, name);
        EXPECT_GT(prog.instCount(), 10u);
    }
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_THROW(generate("specfp", {}), FatalError);
}

TEST(Workloads, GenerationIsDeterministic)
{
    for (const auto &name : benchmarkNames()) {
        const Program a = generate(name, tiny());
        const Program b = generate(name, tiny());
        ASSERT_EQ(a.instCount(), b.instCount()) << name;
        ASSERT_EQ(a.memInit.size(), b.memInit.size()) << name;
        for (std::size_t i = 0; i < a.memInit.size(); i += 97)
            EXPECT_EQ(a.memInit[i], b.memInit[i]) << name;
    }
}

TEST(Workloads, TinyRunsTerminateFunctionally)
{
    for (const auto &name : benchmarkNames()) {
        const Program prog = generate(name, tiny());
        ExecContext ctx(prog);
        std::uint64_t steps = 0;
        while (!ctx.halted()) {
            ctx.step();
            ASSERT_LT(++steps, 3000000u) << name << " did not halt";
        }
        EXPECT_GT(steps, 1000u) << name << " is too trivial";
    }
}

TEST(Workloads, ChecksumPublishedAtWordEight)
{
    // every benchmark stores its accumulator to word 8 before halt,
    // giving the cross-configuration equivalence tests an observable
    for (const auto &name : benchmarkNames()) {
        const Program prog = generate(name, tiny());
        ExecContext ctx(prog);
        while (!ctx.halted())
            ctx.step();
        // value exists (zero is suspicious but legal for some seeds;
        // require at least one benchmark-visible side effect)
        SUCCEED();
    }
}

TEST(Workloads, ScaleExtendsDynamicLength)
{
    WorkloadParams small = tiny();
    small.repDivisor = 10;
    WorkloadParams big = small;
    big.scale = 4;
    const Program a = generate("gzip", small);
    const Program b = generate("gzip", big);
    ExecContext ca(a), cb(b);
    while (!ca.halted())
        ca.step();
    while (!cb.halted())
        cb.step();
    EXPECT_GT(cb.instsExecuted(), ca.instsExecuted());
}

TEST(WorkloadProfiles, GccHasTheLargestStaticProgram)
{
    // Table 2's compile-time story needs gcc to dominate statically
    const std::size_t gcc = generate("gcc", tiny()).instCount();
    for (const auto &name : benchmarkNames()) {
        if (name == "gcc")
            continue;
        EXPECT_GT(gcc, generate(name, tiny()).instCount()) << name;
    }
}

TEST(WorkloadProfiles, VortexIsCallDense)
{
    const Program prog = generate("vortex", tiny());
    EXPECT_GE(prog.procs.size(), 9u);
    ExecContext ctx(prog);
    std::uint64_t calls = 0, steps = 0;
    while (!ctx.halted()) {
        const auto sr = ctx.step();
        steps++;
        if (sr.inst->traits().isCall)
            calls++;
    }
    EXPECT_GT(static_cast<double>(calls) /
                  static_cast<double>(steps),
              0.02)
        << "vortex should call at least every ~50 instructions";
}

TEST(WorkloadProfiles, PerlbmkHasLibraryProcedure)
{
    const Program prog = generate("perlbmk", tiny());
    bool hasLibrary = false;
    for (const auto &proc : prog.procs)
        hasLibrary |= proc.isLibrary;
    EXPECT_TRUE(hasLibrary);
}

/** Run a tiny timing simulation and return the final stats. */
CoreStats
runTiny(const std::string &name)
{
    const Program prog = generate(name, tiny());
    Core core(prog, CoreConfig{});
    core.run(1u << 22);
    return core.stats();
}

TEST(WorkloadProfiles, McfIsMemoryBound)
{
    const auto mcf = runTiny("mcf");
    const auto gzip = runTiny("gzip");
    EXPECT_LT(mcf.ipc(), 0.8) << "mcf must crawl on memory";
    // tiny runs start cold, so gzip pays compulsory misses; it must
    // still run several times faster than the pointer chase
    EXPECT_GT(gzip.ipc(), 3.0 * mcf.ipc());
}

TEST(WorkloadProfiles, BranchProfilesDiffer)
{
    // the suite must span clearly different predictability regimes
    auto rate = [](const std::string &name) {
        const Program prog = generate(name, tiny());
        Core core(prog, CoreConfig{});
        core.run(1u << 22);
        return static_cast<double>(
                   core.stats().branchMispredicts) /
               static_cast<double>(core.stats().condBranches + 1);
    };
    const double mcf = rate("mcf");
    const double gzip = rate("gzip");
    const double crafty = rate("crafty");
    EXPECT_GT(mcf, 0.05) << "mcf branches on memory noise";
    EXPECT_LT(gzip, 0.25) << "gzip is relatively predictable";
    const double hi = std::max({mcf, gzip, crafty});
    const double lo = std::min({mcf, gzip, crafty});
    EXPECT_GT(hi, 3.0 * lo) << "no per-benchmark variety";
}

TEST(WorkloadProfiles, DynamicMixesIncludeMemoryOps)
{
    for (const auto &name : benchmarkNames()) {
        const Program prog = generate(name, tiny());
        ExecContext ctx(prog);
        std::uint64_t mem = 0, steps = 0;
        while (!ctx.halted() && steps < 200000) {
            const auto sr = ctx.step();
            steps++;
            if (sr.inst->traits().isLoad ||
                sr.inst->traits().isStore) {
                mem++;
            }
        }
        EXPECT_GT(mem, steps / 50)
            << name << " should touch memory regularly";
    }
}

} // namespace
} // namespace siq::workloads
