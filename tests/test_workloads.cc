/**
 * @file
 * Workload generator tests: determinism, termination, structural and
 * behavioural profile properties that the paper's per-benchmark
 * variation depends on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cpu/core.hh"
#include "ir/exec.hh"
#include "isa/opcode.hh"
#include "sim/sweep.hh"
#include "workloads/family.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{
namespace
{

WorkloadParams
tiny()
{
    WorkloadParams wp;
    wp.repDivisor = 40;
    return wp;
}

/** FNV-1a over every structural field of a program, so two programs
 *  fingerprint equal iff instructions, CFG shape and the initial
 *  memory image all match. */
std::uint64_t
fingerprint(const Program &prog)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int byte = 0; byte < 8; byte++) {
            h ^= (v >> (8 * byte)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(prog.procs.size());
    mix(static_cast<std::uint64_t>(prog.entryProc));
    mix(prog.memWords);
    for (const auto &proc : prog.procs) {
        mix(proc.blocks.size());
        mix(proc.isLibrary ? 1 : 0);
        for (const auto &block : proc.blocks) {
            mix(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(block.fallthrough)));
            for (int t : block.indirectTargets)
                mix(static_cast<std::uint64_t>(t));
            mix(block.insts.size());
            for (const auto &inst : block.insts) {
                mix(static_cast<std::uint64_t>(inst.op));
                mix(static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(inst.dst)));
                mix(static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(inst.src1)));
                mix(static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(inst.src2)));
                mix(static_cast<std::uint64_t>(inst.imm));
                mix(static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(inst.target)));
                mix(inst.hintValue);
            }
        }
    }
    for (const auto &[addr, value] : prog.memInit) {
        mix(addr);
        mix(static_cast<std::uint64_t>(value));
    }
    return h;
}

/** The replica seed schedule the sweep engine uses (replica 0 keeps
 *  the base seed, replica r mixes it). */
std::uint64_t
replicaSeed(std::uint64_t base, std::size_t rep)
{
    return rep == 0 ? base
                    : sim::ExperimentRunner::mixSeed(base, rep, 0);
}

TEST(Workloads, AllElevenNamesGenerate)
{
    ASSERT_EQ(benchmarkNames().size(), 11u);
    for (const auto &name : benchmarkNames()) {
        const Program prog = generate(name, tiny());
        EXPECT_EQ(prog.name, name);
        EXPECT_GT(prog.instCount(), 10u);
    }
}

TEST(Workloads, UnknownNameIsFatal)
{
    try {
        generate("not-a-family", {});
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        // the failure must name every registered family, so a CLI
        // typo is self-correcting
        const std::string msg = e.what();
        for (const auto &name : familyNames())
            EXPECT_NE(msg.find(name), std::string::npos) << name;
    }
}

TEST(Workloads, GenerationIsDeterministic)
{
    for (const auto &name : benchmarkNames()) {
        const Program a = generate(name, tiny());
        const Program b = generate(name, tiny());
        ASSERT_EQ(a.instCount(), b.instCount()) << name;
        ASSERT_EQ(a.memInit.size(), b.memInit.size()) << name;
        for (std::size_t i = 0; i < a.memInit.size(); i += 97)
            EXPECT_EQ(a.memInit[i], b.memInit[i]) << name;
    }
}

TEST(WorkloadProperties, FingerprintDeterministicPerSeed)
{
    // full structural equality (not just counts) for every family,
    // at the base seed and at a mixed replica seed
    for (const auto &name : familyNames()) {
        for (std::size_t rep : {std::size_t{0}, std::size_t{2}}) {
            WorkloadParams wp = tiny();
            wp.seed = replicaSeed(wp.seed, rep);
            const std::uint64_t a = fingerprint(generate(name, wp));
            const std::uint64_t b = fingerprint(generate(name, wp));
            EXPECT_EQ(a, b) << name << " replica " << rep;
        }
    }
}

TEST(WorkloadProperties, DistinctAcrossMixSeedReplicas)
{
    // replicas must be decorrelated: three replica seeds, three
    // structurally distinct programs, for every family
    for (const auto &name : familyNames()) {
        std::set<std::uint64_t> prints;
        for (std::size_t rep = 0; rep < 3; rep++) {
            WorkloadParams wp = tiny();
            wp.seed = replicaSeed(wp.seed, rep);
            const Program prog = generate(name, wp);
            EXPECT_GT(prog.instCount(), 10u)
                << name << " replica " << rep;
            prints.insert(fingerprint(prog));
        }
        EXPECT_EQ(prints.size(), 3u)
            << name << " replicas are not decorrelated";
    }
}

TEST(WorkloadProperties, RegistersAndOpcodesInValidRanges)
{
    for (const auto &name : familyNames()) {
        WorkloadParams wp = tiny();
        wp.seed = replicaSeed(wp.seed, 1);
        const Program prog = generate(name, wp);
        ASSERT_FALSE(prog.procs.empty()) << name;
        for (const auto &proc : prog.procs) {
            ASSERT_FALSE(proc.blocks.empty())
                << name << " proc " << proc.name;
            for (const auto &block : proc.blocks) {
                for (const auto &inst : block.insts) {
                    ASSERT_LT(static_cast<int>(inst.op), numOpcodes)
                        << name;
                    for (int reg : {static_cast<int>(inst.dst),
                                    static_cast<int>(inst.src1),
                                    static_cast<int>(inst.src2)}) {
                        ASSERT_GE(reg, -1) << name;
                        ASSERT_LT(reg, numArchRegs) << name;
                    }
                    const auto &traits = inst.traits();
                    if (traits.isCall) {
                        // call targets name a procedure
                        ASSERT_GE(inst.target, 0) << name;
                        ASSERT_LT(static_cast<std::size_t>(
                                      inst.target),
                                  prog.procs.size())
                            << name;
                    } else if ((traits.isBranch || traits.isJump) &&
                               !traits.isIndirect &&
                               !traits.isRet) {
                        // direct branch/jump targets name a block in
                        // the same procedure
                        ASSERT_GE(inst.target, 0) << name;
                        ASSERT_LT(static_cast<std::size_t>(
                                      inst.target),
                                  proc.blocks.size())
                            << name;
                    }
                    if (traits.isIndirect && !traits.isRet) {
                        ASSERT_FALSE(block.indirectTargets.empty())
                            << name << ": IJump without a jump table";
                    }
                }
            }
        }
    }
}

TEST(Workloads, TinyRunsTerminateFunctionally)
{
    for (const auto &name : familyNames()) {
        const Program prog = generate(name, tiny());
        ExecContext ctx(prog);
        std::uint64_t steps = 0;
        while (!ctx.halted()) {
            ctx.step();
            ASSERT_LT(++steps, 3000000u) << name << " did not halt";
        }
        EXPECT_GT(steps, 1000u) << name << " is too trivial";
    }
}

TEST(Workloads, ChecksumPublishedAtWordEight)
{
    // every family stores its accumulator to word 8 before halt,
    // giving the cross-configuration equivalence tests an observable
    for (const auto &name : familyNames()) {
        const Program prog = generate(name, tiny());
        ExecContext ctx(prog);
        while (!ctx.halted())
            ctx.step();
        // value exists (zero is suspicious but legal for some seeds;
        // require at least one benchmark-visible side effect)
        SUCCEED();
    }
}

TEST(WorkloadProperties, EveryParamChangesTheFingerprint)
{
    // a parameter that does not alter the generated program would be
    // dead weight in the cache key and the canonical name: for every
    // parameterized family, nudging each parameter off its default
    // (within range) must produce a structurally different program
    for (const auto &name : familyNames()) {
        const FamilyDef *def = findFamily(name);
        ASSERT_NE(def, nullptr) << name;
        if (def->params.empty())
            continue;
        const std::uint64_t base =
            fingerprint(generate(name, tiny()));
        for (const auto &p : def->params) {
            const std::int64_t nudged = p.defaultValue < p.maxValue
                                            ? p.defaultValue + 1
                                            : p.defaultValue - 1;
            const std::string spec = name + ":" + p.name + "=" +
                                     std::to_string(nudged);
            EXPECT_NE(fingerprint(generate(spec, tiny())), base)
                << spec << " generates the same program as " << name;
        }
    }
}

TEST(Workloads, ScaleExtendsDynamicLength)
{
    WorkloadParams small = tiny();
    small.repDivisor = 10;
    WorkloadParams big = small;
    big.scale = 4;
    const Program a = generate("gzip", small);
    const Program b = generate("gzip", big);
    ExecContext ca(a), cb(b);
    while (!ca.halted())
        ca.step();
    while (!cb.halted())
        cb.step();
    EXPECT_GT(cb.instsExecuted(), ca.instsExecuted());
}

TEST(WorkloadProfiles, GccHasTheLargestStaticProgram)
{
    // Table 2's compile-time story needs gcc to dominate statically
    const std::size_t gcc = generate("gcc", tiny()).instCount();
    for (const auto &name : benchmarkNames()) {
        if (name == "gcc")
            continue;
        EXPECT_GT(gcc, generate(name, tiny()).instCount()) << name;
    }
}

TEST(WorkloadProfiles, VortexIsCallDense)
{
    const Program prog = generate("vortex", tiny());
    EXPECT_GE(prog.procs.size(), 9u);
    ExecContext ctx(prog);
    std::uint64_t calls = 0, steps = 0;
    while (!ctx.halted()) {
        const auto sr = ctx.step();
        steps++;
        if (sr.inst->traits().isCall)
            calls++;
    }
    EXPECT_GT(static_cast<double>(calls) /
                  static_cast<double>(steps),
              0.02)
        << "vortex should call at least every ~50 instructions";
}

TEST(WorkloadProfiles, PerlbmkHasLibraryProcedure)
{
    const Program prog = generate("perlbmk", tiny());
    bool hasLibrary = false;
    for (const auto &proc : prog.procs)
        hasLibrary |= proc.isLibrary;
    EXPECT_TRUE(hasLibrary);
}

/** Run a tiny timing simulation and return the final stats. */
CoreStats
runTiny(const std::string &name)
{
    const Program prog = generate(name, tiny());
    Core core(prog, CoreConfig{});
    core.run(1u << 22);
    return core.stats();
}

TEST(WorkloadProfiles, McfIsMemoryBound)
{
    const auto mcf = runTiny("mcf");
    const auto gzip = runTiny("gzip");
    EXPECT_LT(mcf.ipc(), 0.8) << "mcf must crawl on memory";
    // tiny runs start cold, so gzip pays compulsory misses; it must
    // still run several times faster than the pointer chase
    EXPECT_GT(gzip.ipc(), 3.0 * mcf.ipc());
}

TEST(WorkloadProfiles, BranchProfilesDiffer)
{
    // the suite must span clearly different predictability regimes
    auto rate = [](const std::string &name) {
        const Program prog = generate(name, tiny());
        Core core(prog, CoreConfig{});
        core.run(1u << 22);
        return static_cast<double>(
                   core.stats().branchMispredicts) /
               static_cast<double>(core.stats().condBranches + 1);
    };
    const double mcf = rate("mcf");
    const double gzip = rate("gzip");
    const double crafty = rate("crafty");
    EXPECT_GT(mcf, 0.05) << "mcf branches on memory noise";
    EXPECT_LT(gzip, 0.25) << "gzip is relatively predictable";
    const double hi = std::max({mcf, gzip, crafty});
    const double lo = std::min({mcf, gzip, crafty});
    EXPECT_GT(hi, 3.0 * lo) << "no per-benchmark variety";
}

TEST(WorkloadProfiles, DynamicMixesIncludeMemoryOps)
{
    for (const auto &name : familyNames()) {
        const Program prog = generate(name, tiny());
        ExecContext ctx(prog);
        std::uint64_t mem = 0, steps = 0;
        while (!ctx.halted() && steps < 200000) {
            const auto sr = ctx.step();
            steps++;
            if (sr.inst->traits().isLoad ||
                sr.inst->traits().isStore) {
                mem++;
            }
        }
        EXPECT_GT(mem, steps / 50)
            << name << " should touch memory regularly";
    }
}

} // namespace
} // namespace siq::workloads
