/**
 * @file
 * Full statistics dump for one benchmark under one technique —
 * pipeline bottleneck analysis (fetch/dispatch/issue rates, stall
 * breakdown, cache and predictor behaviour, IQ/RF occupancy). The
 * technique is any registered name (built-in or variant); pass
 * "--json" as the last argument to also dump the run machine-readably.
 *
 * Usage: stats_dump [benchmark] [technique] [scale] [--json]
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sim/technique.hh"

int
main(int argc, char **argv)
{
    using namespace siq;
    bool json = false;
    if (argc > 1 && std::string(argv[argc - 1]) == "--json") {
        json = true;
        argc--;
    }
    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const std::string techName = argc > 2 ? argv[2] : "baseline";
    const int scale = argc > 3 ? std::atoi(argv[3]) : 1;

    if (sim::findTechnique(techName) == nullptr) {
        std::cerr << "unknown technique '" << techName
                  << "'; registered:";
        for (const auto &name : sim::techniqueNames())
            std::cerr << ' ' << name;
        std::cerr << '\n';
        return 1;
    }

    sim::RunConfig cfg;
    cfg.workload.scale = scale;
    cfg.warmupInsts = 100000;
    cfg.measureInsts = 300000;

    const auto r = sim::runOne(bench, techName, cfg);
    const auto &s = r.stats;
    const double cyc = static_cast<double>(s.cycles);

    std::cout << bench << " / " << r.technique << "\n\n";
    Table t({"metric", "value"});
    auto row = [&](const std::string &k, const std::string &v) {
        t.addRow({k, v});
    };
    row("cycles", std::to_string(s.cycles));
    row("committed", std::to_string(s.committed));
    row("IPC", Table::fmt(s.ipc(), 3));
    row("fetch/cycle", Table::fmt(s.fetched / cyc, 2));
    row("dispatch/cycle", Table::fmt(s.dispatched / cyc, 2));
    row("issue/cycle", Table::fmt(s.issued / cyc, 2));
    row("cond branches", std::to_string(s.condBranches));
    row("mispredicts", std::to_string(s.branchMispredicts));
    row("front redirects", std::to_string(s.frontRedirects));
    row("stall: rob full", std::to_string(s.dispatchStallRob));
    row("stall: iq full", std::to_string(s.dispatchStallIqFull));
    row("stall: range", std::to_string(s.dispatchStallRange));
    row("stall: ctrl limit", std::to_string(s.dispatchStallLimit));
    row("stall: regs", std::to_string(s.dispatchStallRegs));
    row("stall: lsq", std::to_string(s.dispatchStallLsq));
    row("loads / forwards", std::to_string(s.loads) + " / " +
                                std::to_string(s.loadForwards));
    row("stores", std::to_string(s.stores));
    row("avg IQ occupancy", Table::fmt(r.avgIqOccupancy(), 1));
    row("IQ banks off", Table::pct(r.iqBanksOffFraction()));
    row("hints applied", std::to_string(s.hintsApplied));
    row("RF int live avg",
        Table::fmt(s.rfIntLiveSum / cyc, 1));
    row("RF int banks off", Table::pct(r.rfIntBanksOffFraction()));
    t.print(std::cout);

    if (json)
        std::cout << "\n" << sim::toJson(r) << "\n";
    return 0;
}
