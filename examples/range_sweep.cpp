/**
 * @file
 * Range sweep: force the compiler to believe the IQ has only R
 * entries (so every emitted hint is <= R) and measure the IPC cost on
 * the real 80-entry machine. This exposes each workload's sensitivity
 * to window size — the curve the paper's technique exploits (flat
 * curves mean free power savings; steep curves need accurate hints).
 *
 * Usage: range_sweep [benchmark ...]
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "sim/simulator.hh"

int
main(int argc, char **argv)
{
    using namespace siq;
    std::vector<std::string> benches;
    for (int i = 1; i < argc; i++)
        benches.emplace_back(argv[i]);
    if (benches.empty())
        benches = {"gzip", "mcf", "vortex", "bzip2", "gcc"};

    const std::vector<int> ranges = {4, 8, 16, 32, 48, 80};

    std::vector<std::string> headers = {"benchmark", "base IPC"};
    for (int r : ranges)
        headers.push_back("R<=" + std::to_string(r));
    Table t(headers);

    for (const auto &bench : benches) {
        sim::RunConfig cfg;
        cfg.warmupInsts = 100000;
        cfg.measureInsts = 300000;

        cfg.tech = sim::Technique::Baseline;
        const auto base = sim::runOne(bench, cfg);

        std::vector<std::string> row = {bench,
                                        Table::fmt(base.ipc(), 3)};
        for (int r : ranges) {
            Program prog =
                workloads::generate(bench, cfg.workload);
            compiler::CompilerConfig cc;
            cc.scheme = compiler::HintScheme::Tag;
            cc.minHint = 1;
            cc.machine.iqSize = r; // forces every hint <= r
            compiler::annotate(prog, cc);

            CoreConfig coreCfg;
            Core core(prog, coreCfg);
            core.run(cfg.warmupInsts);
            core.resetStats();
            core.run(cfg.measureInsts);
            const double loss =
                1.0 - core.stats().ipc() / base.ipc();
            row.push_back(Table::pct(loss) + "/" +
                          Table::fmt(core.iqEvents().occupancySum /
                                         double(core.iqEvents().cycles),
                                     0));
        }
        t.addRow(row);
    }
    std::cout << "cells: IPC loss vs baseline / avg occupancy\n";
    t.print(std::cout);
    return 0;
}
