/**
 * @file
 * Range sweep: force the compiler to believe the IQ has only R
 * entries (so every emitted hint is <= R) and measure the IPC cost on
 * the real 80-entry machine. This exposes each workload's sensitivity
 * to window size — the curve the paper's technique exploits (flat
 * curves mean free power savings; steep curves need accurate hints).
 *
 * Each R is a registered technique variant ("tag-r8", ...), so the
 * whole curve family is one engine sweep: every benchmark program is
 * synthesized once and compiled once per R, and the cells fan out
 * over the worker pool.
 *
 * Usage: range_sweep [benchmark ...]
 */

#include <iostream>
#include <memory>
#include <vector>

#include "common/table.hh"
#include "sim/sweep.hh"
#include "sim/technique.hh"

int
main(int argc, char **argv)
{
    using namespace siq;
    std::vector<std::string> benches;
    for (int i = 1; i < argc; i++)
        benches.emplace_back(argv[i]);
    if (benches.empty())
        benches = {"gzip", "mcf", "vortex", "bzip2", "gcc"};

    const std::vector<int> ranges = {4, 8, 16, 32, 48, 80};

    // register one Tag-scheme variant per forced range
    std::vector<std::unique_ptr<sim::ScopedTechnique>> variants;
    sim::SweepSpec spec;
    spec.benchmarks = benches;
    spec.techniques = {"baseline"};
    for (int r : ranges) {
        const std::string name = "tag-r" + std::to_string(r);
        variants.push_back(std::make_unique<sim::ScopedTechnique>(
            sim::TechniqueDef{
                name,
                sim::Technique::Extension,
                "tag hints clamped to a " + std::to_string(r) +
                    "-entry window",
                [r](const sim::RunConfig &cfg) {
                    auto cc = *sim::compilerConfigFor(
                        sim::Technique::Extension, cfg);
                    cc.minHint = 1;
                    cc.machine.iqSize = r; // forces every hint <= r
                    return std::optional(cc);
                },
                nullptr,
            }));
        spec.techniques.push_back(name);
    }
    spec.base.warmupInsts = 100000;
    spec.base.measureInsts = 300000;

    sim::ExperimentRunner runner;
    const auto sweep = runner.run(spec);

    std::vector<std::string> headers = {"benchmark", "base IPC"};
    for (int r : ranges)
        headers.push_back("R<=" + std::to_string(r));
    Table t(headers);

    for (std::size_t b = 0; b < benches.size(); b++) {
        const auto &base = sweep.at("baseline", b);
        std::vector<std::string> row = {benches[b],
                                        Table::fmt(base.ipc(), 3)};
        for (int r : ranges) {
            const auto &cell =
                sweep.at("tag-r" + std::to_string(r), b);
            const double loss = 1.0 - cell.ipc() / base.ipc();
            row.push_back(Table::pct(loss) + "/" +
                          Table::fmt(cell.avgIqOccupancy(), 0));
        }
        t.addRow(row);
    }
    std::cout << "cells: IPC loss vs baseline / avg occupancy ("
              << sweep.cells.size() << " runs, "
              << sweep.cache.workloadBuilds << " workloads built, "
              << sweep.jobsUsed << " thread(s))\n";
    t.print(std::cout);
    return 0;
}
