/**
 * @file
 * Side-by-side comparison of every registered technique on one
 * benchmark: the paper's whole story in a single table — baseline,
 * the three compiler schemes (NOOP / Extension / Improved) and the
 * two hardware comparators (abella, Folegnani&González) — plus any
 * variant registered with the technique registry. One engine sweep:
 * the workload is synthesized once and shared by every technique.
 *
 * Usage: adaptive_compare [benchmark] [scale]
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "sim/sweep.hh"
#include "sim/technique.hh"

int
main(int argc, char **argv)
{
    using namespace siq;
    const std::string bench = argc > 1 ? argv[1] : "vortex";
    const int scale = argc > 2 ? std::atoi(argv[2]) : 1;

    sim::SweepSpec spec;
    spec.benchmarks = {bench};
    spec.techniques = sim::techniqueNames(); // baseline first
    spec.base.workload.scale = scale;
    spec.base.warmupInsts = 120000;
    spec.base.measureInsts = 400000;

    sim::ExperimentRunner runner;
    const auto sweep = runner.run(spec);
    const auto &base = sweep.at("baseline", 0);

    std::cout << "benchmark '" << bench << "', baseline IPC "
              << Table::fmt(base.ipc(), 3) << " ("
              << sweep.cells.size() << " cells on " << sweep.jobsUsed
              << " thread(s), " << Table::fmt(sweep.wallSeconds, 1)
              << "s)\n\n";

    Table t({"technique", "IPC loss", "IQ occ", "IQ dyn", "IQ stat",
             "RF dyn", "RF stat", "banks off"});
    for (const auto &tech : spec.techniques) {
        if (tech == "baseline")
            continue;
        const auto &r = sweep.at(tech, 0);
        const auto cmp = sim::comparePower(base, r);
        t.addRow({tech, Table::pct(1.0 - r.ipc() / base.ipc()),
                  Table::fmt(r.avgIqOccupancy(), 1),
                  Table::pct(cmp.iqDynamicSaving),
                  Table::pct(cmp.iqStaticSaving),
                  Table::pct(cmp.rfDynamicSaving),
                  Table::pct(cmp.rfStaticSaving),
                  Table::pct(r.iqBanksOffFraction())});
    }
    t.print(std::cout);
    std::cout << "\nbaseline occupancy "
              << Table::fmt(base.avgIqOccupancy(), 1)
              << ", banks off "
              << Table::pct(base.iqBanksOffFraction())
              << "; paper headline: noop 2.2% loss 47%/31% IQ "
                 "savings, improved <1.3% loss 45%/30%\n";
    return 0;
}
