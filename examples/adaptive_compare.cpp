/**
 * @file
 * Side-by-side comparison of every technique on one benchmark: the
 * paper's whole story in a single table — baseline, the three
 * compiler schemes (NOOP / Extension / Improved) and the two hardware
 * comparators (abella, Folegnani&González).
 *
 * Usage: adaptive_compare [benchmark] [scale]
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "sim/simulator.hh"

int
main(int argc, char **argv)
{
    using namespace siq;
    const std::string bench = argc > 1 ? argv[1] : "vortex";
    const int scale = argc > 2 ? std::atoi(argv[2]) : 1;

    sim::RunConfig cfg;
    cfg.workload.scale = scale;
    cfg.warmupInsts = 120000;
    cfg.measureInsts = 400000;

    cfg.tech = sim::Technique::Baseline;
    const auto base = sim::runOne(bench, cfg);

    std::cout << "benchmark '" << bench << "', baseline IPC "
              << Table::fmt(base.ipc(), 3) << "\n\n";

    Table t({"technique", "IPC loss", "IQ occ", "IQ dyn", "IQ stat",
             "RF dyn", "RF stat", "banks off"});
    for (auto tech :
         {sim::Technique::Noop, sim::Technique::Extension,
          sim::Technique::Improved, sim::Technique::Abella,
          sim::Technique::Folegnani}) {
        cfg.tech = tech;
        const auto r = sim::runOne(bench, cfg);
        const auto cmp = sim::comparePower(base, r);
        t.addRow({sim::techniqueName(tech),
                  Table::pct(1.0 - r.ipc() / base.ipc()),
                  Table::fmt(r.avgIqOccupancy(), 1),
                  Table::pct(cmp.iqDynamicSaving),
                  Table::pct(cmp.iqStaticSaving),
                  Table::pct(cmp.rfDynamicSaving),
                  Table::pct(cmp.rfStaticSaving),
                  Table::pct(r.iqBanksOffFraction())});
    }
    t.print(std::cout);
    std::cout << "\nbaseline occupancy "
              << Table::fmt(base.avgIqOccupancy(), 1)
              << ", banks off "
              << Table::pct(base.iqBanksOffFraction())
              << "; paper headline: noop 2.2% loss 47%/31% IQ "
                 "savings, improved <1.3% loss 45%/30%\n";
    return 0;
}
