/**
 * @file
 * Quickstart: compile one workload with the NOOP scheme, run it next
 * to the unmodified baseline through the experiment engine, and print
 * the paper's headline metrics (IPC loss, occupancy reduction, IQ/RF
 * power savings). The workload is synthesized once and both cells run
 * in parallel when the host has the cores.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/quickstart [benchmark] [scale] [out.json]
 */

#include <fstream>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "sim/report.hh"
#include "sim/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace siq;
    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const int scale = argc > 2 ? std::atoi(argv[2]) : 1;

    sim::SweepSpec spec;
    spec.benchmarks = {bench};
    spec.techniques = {"baseline", "noop"};
    spec.base.workload.scale = scale;
    spec.base.warmupInsts = 100000;
    spec.base.measureInsts = 400000;

    std::cout << "siqsim quickstart: benchmark '" << bench
              << "', Table-1 machine (80-entry IQ, 8-wide)\n\n";

    sim::ExperimentRunner runner;
    const auto sweep = runner.run(spec);
    const auto &base = sweep.at("baseline", 0);
    const auto &noop = sweep.at("noop", 0);
    const auto power = sim::comparePower(base, noop);

    Table t({"metric", "baseline", "noop-scheme"});
    t.addRow({"IPC", Table::fmt(base.ipc(), 3),
              Table::fmt(noop.ipc(), 3)});
    t.addRow({"avg IQ occupancy", Table::fmt(base.avgIqOccupancy(), 1),
              Table::fmt(noop.avgIqOccupancy(), 1)});
    t.addRow({"IQ banks off", Table::pct(base.iqBanksOffFraction()),
              Table::pct(noop.iqBanksOffFraction())});
    t.addRow({"hints applied", "0",
              std::to_string(noop.stats.hintsApplied)});
    t.print(std::cout);

    std::cout << "\nIPC loss:            "
              << Table::pct(1.0 - noop.ipc() / base.ipc()) << '\n';
    std::cout << "IQ dynamic saving:   "
              << Table::pct(power.iqDynamicSaving) << '\n';
    std::cout << "IQ static saving:    "
              << Table::pct(power.iqStaticSaving) << '\n';
    std::cout << "RF dynamic saving:   "
              << Table::pct(power.rfDynamicSaving) << '\n';
    std::cout << "RF static saving:    "
              << Table::pct(power.rfStaticSaving) << '\n';
    std::cout << "(nonEmpty gating alone would save "
              << Table::pct(power.nonEmptySaving) << " dynamic)\n";
    if (sweep.seeds > 1) {
        // SIQSIM_SEEDS=N ran each cell over N decorrelated workloads
        const auto &aggBase = sweep.aggAt("baseline", 0);
        const auto &aggNoop = sweep.aggAt("noop", 0);
        std::cout << "replicated IPC (n=" << sweep.seeds
                  << " seeds): baseline "
                  << Table::fmt(aggBase.ipc.mean, 3) << " +/- "
                  << Table::fmt(aggBase.ipc.ci95, 3) << ", noop "
                  << Table::fmt(aggNoop.ipc.mean, 3) << " +/- "
                  << Table::fmt(aggNoop.ipc.ci95, 3) << " (ci95)\n";
    }
    std::cout << "engine: " << sweep.cells.size() << " cells, "
              << sweep.jobsUsed << " thread(s), workload built "
              << sweep.cache.workloadBuilds << "x\n";

    if (argc > 3) {
        std::ofstream os(argv[3], std::ios::trunc);
        if (os)
            sim::writeJson(os, sweep);
        os.flush();
        if (!os) {
            std::cerr << "error: could not write " << argv[3] << '\n';
            return 1;
        }
        std::cout << "wrote " << argv[3] << '\n';
    }
    return 0;
}
