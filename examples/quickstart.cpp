/**
 * @file
 * Quickstart: compile one workload with the NOOP scheme, run it next
 * to the unmodified baseline, and print the paper's headline metrics
 * (IPC loss, occupancy reduction, IQ/RF power savings).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [benchmark] [scale]
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "sim/simulator.hh"

int
main(int argc, char **argv)
{
    using namespace siq;
    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const int scale = argc > 2 ? std::atoi(argv[2]) : 1;

    sim::RunConfig cfg;
    cfg.workload.scale = scale;
    cfg.warmupInsts = 100000;
    cfg.measureInsts = 400000;

    std::cout << "siqsim quickstart: benchmark '" << bench
              << "', Table-1 machine (80-entry IQ, 8-wide)\n\n";

    cfg.tech = sim::Technique::Baseline;
    const auto base = sim::runOne(bench, cfg);

    cfg.tech = sim::Technique::Noop;
    const auto noop = sim::runOne(bench, cfg);

    const auto power = sim::comparePower(base, noop);

    Table t({"metric", "baseline", "noop-scheme"});
    t.addRow({"IPC", Table::fmt(base.ipc(), 3),
              Table::fmt(noop.ipc(), 3)});
    t.addRow({"avg IQ occupancy", Table::fmt(base.avgIqOccupancy(), 1),
              Table::fmt(noop.avgIqOccupancy(), 1)});
    t.addRow({"IQ banks off", Table::pct(base.iqBanksOffFraction()),
              Table::pct(noop.iqBanksOffFraction())});
    t.addRow({"hints applied", "0",
              std::to_string(noop.stats.hintsApplied)});
    t.print(std::cout);

    std::cout << "\nIPC loss:            "
              << Table::pct(1.0 - noop.ipc() / base.ipc()) << '\n';
    std::cout << "IQ dynamic saving:   "
              << Table::pct(power.iqDynamicSaving) << '\n';
    std::cout << "IQ static saving:    "
              << Table::pct(power.iqStaticSaving) << '\n';
    std::cout << "RF dynamic saving:   "
              << Table::pct(power.rfDynamicSaving) << '\n';
    std::cout << "RF static saving:    "
              << Table::pct(power.rfStaticSaving) << '\n';
    std::cout << "(nonEmpty gating alone would save "
              << Table::pct(power.nonEmptySaving) << " dynamic)\n";
    return 0;
}
