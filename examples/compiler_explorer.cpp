/**
 * @file
 * Compiler explorer: dump the paper's analysis products for one
 * workload — per procedure: the natural loops, the CDS equations'
 * entries and the unrolled minimal range, per-block DAG needs and the
 * final hint values, plus the inserted-hint summary for every
 * registered technique that carries a compiler configuration (the
 * three built-in schemes and any registered variant).
 *
 * Usage: compiler_explorer [benchmark] [scale]
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "compiler/pass.hh"
#include "sim/technique.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace siq;
    const std::string bench = argc > 1 ? argv[1] : "gzip";
    const int scale = argc > 2 ? std::atoi(argv[2]) : 1;

    workloads::WorkloadParams wp;
    wp.scale = scale;
    Program prog = workloads::generate(bench, wp);

    compiler::CompilerConfig cc;
    std::cout << "benchmark '" << bench << "': "
              << prog.procs.size() << " procedures, "
              << prog.instCount() << " static instructions\n\n";

    for (const auto &proc : prog.procs) {
        const auto pa =
            compiler::analyzeProcedure(prog, proc.id, cc);
        std::cout << "procedure " << proc.name << " ("
                  << proc.blocks.size() << " blocks"
                  << (proc.isLibrary ? ", library" : "") << ")\n";
        for (std::size_t l = 0; l < pa.loops.size(); l++) {
            const auto &loop = pa.loops[l];
            const auto &lr = pa.loopResults[l];
            std::cout << "  loop@b" << loop.header << " depth "
                      << loop.depth << ": entries " << lr.entries
                      << " (cds " << lr.cdsEntries << ", unrolled "
                      << lr.unrolledEntries << ", cds-found "
                      << (lr.hadCds ? "yes" : "no") << ")\n";
        }
        std::cout << "  block values:";
        for (std::size_t b = 0; b < pa.blockValue.size(); b++) {
            std::cout << " b" << b << "="
                      << pa.blockValue[b]
                      << (pa.innermostLoop[b] >= 0 ? "L" : "");
        }
        std::cout << "\n";
    }

    std::cout << "\nhint insertion summary (every registered "
                 "technique with a compiler config):\n";
    Table t({"technique", "noops", "tags", "elided", "seconds"});
    sim::RunConfig rc;
    for (const auto &name : sim::techniqueNames()) {
        const sim::TechniqueDef *def = sim::findTechnique(name);
        if (def == nullptr || !def->compilerConfig)
            continue;
        const auto cfg = def->compilerConfig(rc);
        if (!cfg)
            continue;
        Program copy = workloads::generate(bench, wp);
        const auto stats = compiler::annotate(copy, *cfg);
        t.addRow({name, std::to_string(stats.hintNoopsInserted),
                  std::to_string(stats.tagsApplied),
                  std::to_string(stats.hintsElided),
                  Table::fmt(stats.seconds, 3)});
    }
    t.print(std::cout);
    return 0;
}
