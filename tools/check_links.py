#!/usr/bin/env python3
"""Offline markdown link checker for the repo docs.

Checks every inline markdown link in the given files:
  - relative links must point at an existing file or directory
    (resolved against the linking file's directory);
  - intra- and cross-file heading anchors (#section) must match a
    heading, using GitHub's slug rules (lowercase, spaces -> dashes,
    punctuation dropped);
  - http(s) links are only syntax-checked — CI has no business
    depending on the network.

Exit status is the number of broken links (0 = all good). Run from
the repo root: python3 tools/check_links.py README.md DESIGN.md ...
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[([^\]]*)\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {slugify(m.group(1)) for m in HEADING_RE.finditer(text)}


def check_file(path: Path) -> list:
    errors = []
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(2)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        dest = path if not base else (path.parent / base)
        if not dest.exists():
            errors.append(f"{path}: broken link '{target}' "
                          f"(no such file '{dest}')")
            continue
        if anchor and dest.is_file():
            if slugify(anchor) not in anchors_of(dest):
                errors.append(f"{path}: broken anchor '{target}' "
                              f"(no heading '#{anchor}' in '{dest}')")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{name}: file to check does not exist")
            continue
        errors.extend(check_file(path))
    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        print(f"check_links: {len(argv) - 1} files OK")
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
