#!/usr/bin/env python3
"""Perf-regression guard over the bench_simspeed trajectory.

Compares the geomean Minst/s of a fresh ``bench_simspeed`` run (the
``SIQSIM_JSON`` report) against the checked-in baseline
``BENCH_simspeed.json`` and fails when the fresh geomean falls more
than the tolerated fraction below the baseline.

    check_perf.py <fresh.json> <baseline.json>

The tolerance is ``SIQSIM_PERF_TOLERANCE`` (fractional, default 0.20
= a >20% regression fails); raise it for slow or noisy runners.
Improvements never fail; a new workload present in only one file is
reported but compared on the geomean the files themselves carry, so
adding a family does not break the guard.
"""

import json
import os
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"check_perf: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"check_perf: {path} is not valid JSON: {e}")
    geomean = doc.get("geomean_minst_per_s")
    if not isinstance(geomean, (int, float)) or geomean <= 0:
        sys.exit(f"check_perf: {path} has no positive "
                 "geomean_minst_per_s")
    rates = {b["workload"]: b["minst_per_s"]
             for b in doc.get("benchmarks", [])}
    return geomean, rates


def main(argv):
    if len(argv) != 3:
        sys.exit("usage: check_perf.py <fresh.json> <baseline.json>")
    tol_text = os.environ.get("SIQSIM_PERF_TOLERANCE", "0.20")
    try:
        tolerance = float(tol_text)
    except ValueError:
        sys.exit("check_perf: SIQSIM_PERF_TOLERANCE must be a "
                 f"number, got '{tol_text}'")
    if tolerance < 0:
        sys.exit("check_perf: SIQSIM_PERF_TOLERANCE must be >= 0")

    fresh_geo, fresh = load(argv[1])
    base_geo, base = load(argv[2])

    ratio = fresh_geo / base_geo
    print(f"check_perf: geomean {fresh_geo:.3f} Minst/s vs baseline "
          f"{base_geo:.3f} ({ratio:.2f}x, tolerance -{tolerance:.0%})")
    for name in sorted(set(fresh) | set(base)):
        if name not in base:
            print(f"  {name}: {fresh[name]:.2f} (new, no baseline)")
        elif name not in fresh:
            print(f"  {name}: baseline {base[name]:.2f}, not run")
        else:
            print(f"  {name}: {fresh[name]:.2f} vs {base[name]:.2f} "
                  f"({fresh[name] / base[name]:.2f}x)")

    if ratio < 1.0 - tolerance:
        sys.exit(f"check_perf: FAIL — geomean regressed to "
                 f"{ratio:.2f}x of baseline (allowed >= "
                 f"{1.0 - tolerance:.2f}x). If the slowdown is "
                 "expected, update BENCH_simspeed.json; if the "
                 "runner is slow, raise SIQSIM_PERF_TOLERANCE.")
    print("check_perf: OK")


if __name__ == "__main__":
    main(sys.argv)
