/**
 * @file
 * Table 2: compilation times, baseline vs limited (with our analysis)
 * per benchmark, via google-benchmark. The paper reports minutes on a
 * Pentium 4 with gcc the worst (64 min -> 186 min) because "we
 * examine all control-flow paths"; the shape to reproduce is the
 * per-benchmark ordering and the baseline-to-limited ratio, with gcc
 * dominating.
 */

#include <benchmark/benchmark.h>

#include "compiler/pass.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace siq;

void
baselineCompile(benchmark::State &state, const std::string &name)
{
    for (auto _ : state) {
        Program prog = workloads::generate(name, {});
        benchmark::DoNotOptimize(prog.instCount());
    }
}

void
limitedCompile(benchmark::State &state, const std::string &name)
{
    for (auto _ : state) {
        Program prog = workloads::generate(name, {});
        compiler::CompilerConfig cfg;
        const auto stats = compiler::annotate(prog, cfg);
        benchmark::DoNotOptimize(stats.hintNoopsInserted);
    }
}

const bool registered = [] {
    for (const auto &name : workloads::benchmarkNames()) {
        benchmark::RegisterBenchmark(
            ("table2/baseline/" + name).c_str(),
            [name](benchmark::State &s) { baselineCompile(s, name); })
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            ("table2/limited/" + name).c_str(),
            [name](benchmark::State &s) { limitedCompile(s, name); })
            ->Unit(benchmark::kMillisecond);
    }
    return true;
}();

} // namespace

BENCHMARK_MAIN();
