/**
 * @file
 * Figure 10: normalised IPC loss for the Extension and Improved
 * schemes, next to NOOP and abella (paper: noop 2.2% -> extension
 * 1.7% -> improved <1.3%; abella 3.1%; vortex drops 5.4% -> 2.4%
 * under Extension; bzip2's loss vanishes under Improved; gcc barely
 * improves).
 */

#include "bench/common.hh"

int
main()
{
    using namespace siq;
    bench::header("Figure 10: IPC loss, Extension & Improved",
                  "noop 2.2% -> extension 1.7% -> improved <1.3%; "
                  "abella 3.1%");

    const auto m = bench::runMatrix(
        {sim::Technique::Baseline, sim::Technique::Noop,
         sim::Technique::Extension, sim::Technique::Improved,
         sim::Technique::Abella});

    Table t({"benchmark", "noop", "extension", "improved", "abella"});
    std::vector<double> n, e, im, a;
    for (std::size_t i = 0; i < m.benches.size(); i++) {
        const auto &base = m.at(sim::Technique::Baseline, i);
        const double ln =
            bench::ipcLoss(base, m.at(sim::Technique::Noop, i));
        const double le =
            bench::ipcLoss(base, m.at(sim::Technique::Extension, i));
        const double li =
            bench::ipcLoss(base, m.at(sim::Technique::Improved, i));
        const double la =
            bench::ipcLoss(base, m.at(sim::Technique::Abella, i));
        n.push_back(ln);
        e.push_back(le);
        im.push_back(li);
        a.push_back(la);
        t.addRow({m.benches[i], Table::pct(ln), Table::pct(le),
                  Table::pct(li), Table::pct(la)});
    }
    t.addRow({bench::suiteLabel(m.benches), Table::pct(bench::mean(n)),
              Table::pct(bench::mean(e)),
              Table::pct(bench::mean(im)),
              Table::pct(bench::mean(a))});
    t.print(std::cout);
    std::cout << "\npaper: 2.2% / 1.7% / <1.3% / 3.1%\n";
    return 0;
}
