/**
 * @file
 * Design-choice ablations (DESIGN.md §5):
 *  A1 clamp-floor sweep — how the minHint floor trades IPC for power;
 *  A2 bank granularity — 5x16 / 10x8 / 20x4 bank splits;
 *  A3 redundant-hint elision on/off (NOOP-count and IPC effect);
 *  A4 the Folegnani&González resizer next to ours and abella.
 *
 * Every ablation variant is a registered technique (sim/technique.hh)
 * swept through one shared ExperimentRunner, so the three-benchmark
 * subset is synthesized once for the whole binary and the cells run
 * in parallel. Run on a subset to keep the binary quick.
 */

#include <functional>
#include <memory>

#include "bench/common.hh"

namespace
{

using namespace siq;

const std::vector<std::string> subset = {"gzip", "vortex", "mcf"};

sim::RunConfig
quickCfg()
{
    sim::RunConfig cfg;
    cfg.warmupInsts = bench::envOr("SIQSIM_WARMUP", 80000);
    cfg.measureInsts = bench::envOr("SIQSIM_MEASURE", 250000);
    return cfg;
}

/** A noop-scheme variant with one compiler knob changed. */
sim::TechniqueDef
noopVariant(const std::string &name, const std::string &summary,
            const std::function<void(compiler::CompilerConfig &)> &tweak)
{
    return {
        name,
        sim::Technique::Noop,
        summary,
        [tweak](const sim::RunConfig &cfg) {
            auto cc = *sim::compilerConfigFor(sim::Technique::Noop, cfg);
            tweak(cc);
            return std::optional(cc);
        },
        nullptr,
    };
}

sim::SweepResult
runSubset(sim::ExperimentRunner &runner,
          const std::vector<std::string> &techniques,
          const std::function<void(sim::RunConfig &)> &tune = {})
{
    sim::SweepSpec spec;
    spec.benchmarks = subset;
    spec.techniques = techniques;
    spec.base = quickCfg();
    if (tune)
        tune(spec.base);
    return runner.run(spec);
}

void
clampSweep(sim::ExperimentRunner &runner)
{
    bench::header("A1: hint clamp floor sweep",
                  "larger floors trade power savings for IPC safety");

    const std::vector<int> floors = {4, 8, 12, 16};
    std::vector<std::unique_ptr<sim::ScopedTechnique>> variants;
    std::vector<std::string> techniques = {"baseline"};
    for (int floor : floors) {
        const std::string name =
            "noop-floor" + std::to_string(floor);
        variants.push_back(std::make_unique<sim::ScopedTechnique>(
            noopVariant(name, "noop with minHint floor",
                        [floor](compiler::CompilerConfig &cc) {
                            cc.minHint = floor;
                        })));
        techniques.push_back(name);
    }

    const auto sweep = runSubset(runner, techniques);

    Table t({"benchmark", "floor", "IPC loss", "IQ dyn saving"});
    for (std::size_t b = 0; b < subset.size(); b++) {
        const auto &base = sweep.at("baseline", b);
        for (std::size_t f = 0; f < floors.size(); f++) {
            const auto &r = sweep.at(techniques[f + 1], b);
            const auto cmp = sim::comparePower(base, r);
            t.addRow({subset[b], std::to_string(floors[f]),
                      Table::pct(bench::ipcLoss(base, r)),
                      Table::pct(cmp.iqDynamicSaving)});
        }
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
bankSweep(sim::ExperimentRunner &runner)
{
    bench::header("A2: IQ bank granularity",
                  "finer banks gate more but cost overhead per bank");
    const std::vector<int> bankSizes = {16, 8, 4};
    // bank geometry is a machine change: one sweep per geometry, but
    // the same cached workload programs serve every geometry
    std::vector<sim::SweepResult> sweeps;
    for (int bankSize : bankSizes) {
        sweeps.push_back(
            runSubset(runner, {"baseline", "noop"},
                      [bankSize](sim::RunConfig &cfg) {
                          cfg.core.iq.bankSize = bankSize;
                      }));
    }
    Table t({"benchmark", "banks", "banks off", "IQ stat saving"});
    for (std::size_t b = 0; b < subset.size(); b++) {
        for (std::size_t s = 0; s < bankSizes.size(); s++) {
            const auto &base = sweeps[s].at("baseline", b);
            const auto &r = sweeps[s].at("noop", b);
            const auto cmp = sim::comparePower(base, r);
            t.addRow({subset[b],
                      std::to_string(80 / bankSizes[s]) + "x" +
                          std::to_string(bankSizes[s]),
                      Table::pct(r.iqBanksOffFraction()),
                      Table::pct(cmp.iqStaticSaving)});
        }
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
elisionAblation(sim::ExperimentRunner &runner)
{
    bench::header("A3: redundant-hint elision",
                  "elision removes NOOPs whose value matches the "
                  "incoming range");

    sim::ScopedTechnique noElide(noopVariant(
        "noop-noelide", "noop without redundant-hint elision",
        [](compiler::CompilerConfig &cc) {
            cc.elideRedundant = false;
        }));

    const auto sweep =
        runSubset(runner, {"baseline", "noop", "noop-noelide"});

    Table t({"benchmark", "elide", "hint noops", "IPC loss"});
    for (std::size_t b = 0; b < subset.size(); b++) {
        const auto &base = sweep.at("baseline", b);
        for (const char *tech : {"noop", "noop-noelide"}) {
            const auto &r = sweep.at(tech, b);
            t.addRow({subset[b],
                      std::string(tech) == "noop" ? "on" : "off",
                      std::to_string(r.compile.hintNoopsInserted),
                      Table::pct(bench::ipcLoss(base, r))});
        }
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
folegnaniComparison(sim::ExperimentRunner &runner)
{
    bench::header("A4: Folegnani&Gonzalez resizer",
                  "the ISCA'01 heuristic vs abella vs compiler hints");

    const auto sweep = runSubset(
        runner, {"baseline", "noop", "abella", "folegnani"});

    Table t({"benchmark", "technique", "IPC loss", "IQ dyn saving"});
    for (std::size_t b = 0; b < subset.size(); b++) {
        const auto &base = sweep.at("baseline", b);
        for (const char *tech : {"noop", "abella", "folegnani"}) {
            const auto &r = sweep.at(tech, b);
            const auto cmp = sim::comparePower(base, r);
            t.addRow({subset[b], tech,
                      Table::pct(bench::ipcLoss(base, r)),
                      Table::pct(cmp.iqDynamicSaving)});
        }
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    using namespace siq;
    // one engine for the whole binary: the subset's workloads are
    // synthesized once and reused by all four ablations
    sim::ExperimentRunner runner(
        static_cast<int>(bench::envOr("SIQSIM_JOBS", 0)));
    clampSweep(runner);
    bankSweep(runner);
    elisionAblation(runner);
    folegnaniComparison(runner);
    const auto cache = runner.cacheStats();
    std::cerr << "engine cache: " << cache.workloadBuilds
              << " workload builds, " << cache.workloadHits
              << " hits; " << cache.compileBuilds
              << " compile builds, " << cache.compileHits
              << " hits\n";
    return 0;
}
