/**
 * @file
 * Design-choice ablations (DESIGN.md §5):
 *  A1 clamp-floor sweep — how the minHint floor trades IPC for power;
 *  A2 bank granularity — 5x16 / 10x8 / 20x4 bank splits;
 *  A3 redundant-hint elision on/off (NOOP-count and IPC effect);
 *  A4 the Folegnani&González resizer next to ours and abella.
 * Run on a three-benchmark subset to keep the binary quick.
 */

#include "bench/common.hh"

namespace
{

using namespace siq;

const std::vector<std::string> subset = {"gzip", "vortex", "mcf"};

sim::RunConfig
quickCfg()
{
    sim::RunConfig cfg;
    cfg.warmupInsts = bench::envOr("SIQSIM_WARMUP", 80000);
    cfg.measureInsts = bench::envOr("SIQSIM_MEASURE", 250000);
    return cfg;
}

void
clampSweep()
{
    bench::header("A1: hint clamp floor sweep",
                  "larger floors trade power savings for IPC safety");
    Table t({"benchmark", "floor", "IPC loss", "IQ dyn saving"});
    for (const auto &name : subset) {
        auto cfg = quickCfg();
        cfg.tech = sim::Technique::Baseline;
        const auto base = sim::runOne(name, cfg);
        for (int floor : {4, 8, 12, 16}) {
            cfg.tech = sim::Technique::Noop;
            cfg.minHint = floor;
            const auto r = sim::runOne(name, cfg);
            const auto cmp = sim::comparePower(base, r);
            t.addRow({name, std::to_string(floor),
                      Table::pct(bench::ipcLoss(base, r)),
                      Table::pct(cmp.iqDynamicSaving)});
        }
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
bankSweep()
{
    bench::header("A2: IQ bank granularity",
                  "finer banks gate more but cost overhead per bank");
    Table t({"benchmark", "banks", "banks off", "IQ stat saving"});
    for (const auto &name : subset) {
        for (int bankSize : {16, 8, 4}) {
            auto cfg = quickCfg();
            cfg.core.iq.bankSize = bankSize;
            cfg.tech = sim::Technique::Baseline;
            const auto base = sim::runOne(name, cfg);
            cfg.tech = sim::Technique::Noop;
            const auto r = sim::runOne(name, cfg);
            const auto cmp = sim::comparePower(base, r);
            t.addRow({name,
                      std::to_string(80 / bankSize) + "x" +
                          std::to_string(bankSize),
                      Table::pct(r.iqBanksOffFraction()),
                      Table::pct(cmp.iqStaticSaving)});
        }
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
elisionAblation()
{
    bench::header("A3: redundant-hint elision",
                  "elision removes NOOPs whose value matches the "
                  "incoming range");
    Table t({"benchmark", "elide", "hint noops", "IPC loss"});
    for (const auto &name : subset) {
        auto cfg = quickCfg();
        cfg.tech = sim::Technique::Baseline;
        const auto base = sim::runOne(name, cfg);
        for (bool elide : {true, false}) {
            cfg.tech = sim::Technique::Noop;
            cfg.elideRedundant = elide;
            const auto r = sim::runOne(name, cfg);
            t.addRow({name, elide ? "on" : "off",
                      std::to_string(r.compile.hintNoopsInserted),
                      Table::pct(bench::ipcLoss(base, r))});
        }
    }
    t.print(std::cout);
    std::cout << '\n';
}

void
folegnaniComparison()
{
    bench::header("A4: Folegnani&Gonzalez resizer",
                  "the ISCA'01 heuristic vs abella vs compiler hints");
    Table t({"benchmark", "technique", "IPC loss", "IQ dyn saving"});
    for (const auto &name : subset) {
        auto cfg = quickCfg();
        cfg.tech = sim::Technique::Baseline;
        const auto base = sim::runOne(name, cfg);
        for (auto tech : {sim::Technique::Noop,
                          sim::Technique::Abella,
                          sim::Technique::Folegnani}) {
            cfg.tech = tech;
            const auto r = sim::runOne(name, cfg);
            const auto cmp = sim::comparePower(base, r);
            t.addRow({name, sim::techniqueName(tech),
                      Table::pct(bench::ipcLoss(base, r)),
                      Table::pct(cmp.iqDynamicSaving)});
        }
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    clampSweep();
    bankSweep();
    elisionAblation();
    folegnaniComparison();
    return 0;
}
