/**
 * @file
 * Figure 8: normalised dynamic and static IQ power savings for the
 * NOOP technique, with the nonEmpty (wake-up gating only) bar and the
 * abella comparator, plus §5.2.2's banks-off fractions.
 */

#include "bench/common.hh"

int
main()
{
    using namespace siq;
    bench::header(
        "Figure 8: IQ power savings, NOOP scheme",
        "dynamic 47% / static 31% (abella 39%/30%); nonEmpty gating "
        "alone saves less than the full technique; 37% of banks off "
        "(abella 34%)");

    const auto m = bench::runMatrix({sim::Technique::Baseline,
                                     sim::Technique::Noop,
                                     sim::Technique::Abella});

    Table t({"benchmark", "noop dyn", "noop stat", "abella dyn",
             "abella stat", "banksOff noop", "banksOff abella"});
    std::vector<double> nd, ns, ad, as, nb, ab, ne;
    for (std::size_t i = 0; i < m.benches.size(); i++) {
        const auto &base = m.at(sim::Technique::Baseline, i);
        const auto &noop = m.at(sim::Technique::Noop, i);
        const auto &abella = m.at(sim::Technique::Abella, i);
        const auto cn = sim::comparePower(base, noop);
        const auto ca = sim::comparePower(base, abella);
        nd.push_back(cn.iqDynamicSaving);
        ns.push_back(cn.iqStaticSaving);
        ad.push_back(ca.iqDynamicSaving);
        as.push_back(ca.iqStaticSaving);
        ne.push_back(cn.nonEmptySaving);
        nb.push_back(noop.iqBanksOffFraction());
        ab.push_back(abella.iqBanksOffFraction());
        t.addRow({m.benches[i], Table::pct(cn.iqDynamicSaving),
                  Table::pct(cn.iqStaticSaving),
                  Table::pct(ca.iqDynamicSaving),
                  Table::pct(ca.iqStaticSaving),
                  Table::pct(noop.iqBanksOffFraction()),
                  Table::pct(abella.iqBanksOffFraction())});
    }
    t.addRow({bench::suiteLabel(m.benches), Table::pct(bench::mean(nd)),
              Table::pct(bench::mean(ns)),
              Table::pct(bench::mean(ad)),
              Table::pct(bench::mean(as)),
              Table::pct(bench::mean(nb)),
              Table::pct(bench::mean(ab))});
    t.print(std::cout);
    std::cout << "\nnonEmpty (gating only, no resizing): "
              << Table::pct(bench::mean(ne)) << " dynamic saving\n"
              << "paper: noop 47%/31%, abella 39%/30%, nonEmpty bar "
                 "below noop; banks off 37% vs 34%\n";
    return 0;
}
