/**
 * @file
 * Figure 9: normalised dynamic and static integer register file power
 * savings for the NOOP technique vs abella, plus §5.2.3's dispatch
 * reduction (6.8% vs 5.1% fewer instructions dispatched per cycle).
 */

#include "bench/common.hh"

int
main()
{
    using namespace siq;
    bench::header("Figure 9: integer RF power savings, NOOP scheme",
                  "dynamic 22% / static 21% (abella 14%/17%); 6.8% "
                  "fewer dispatches (abella 5.1%)");

    const auto m = bench::runMatrix({sim::Technique::Baseline,
                                     sim::Technique::Noop,
                                     sim::Technique::Abella});

    Table t({"benchmark", "noop dyn", "noop stat", "abella dyn",
             "abella stat"});
    std::vector<double> nd, ns, ad, as, disN, disA;
    for (std::size_t i = 0; i < m.benches.size(); i++) {
        const auto &base = m.at(sim::Technique::Baseline, i);
        const auto &noop = m.at(sim::Technique::Noop, i);
        const auto &abella = m.at(sim::Technique::Abella, i);
        const auto cn = sim::comparePower(base, noop);
        const auto ca = sim::comparePower(base, abella);
        nd.push_back(cn.rfDynamicSaving);
        ns.push_back(cn.rfStaticSaving);
        ad.push_back(ca.rfDynamicSaving);
        as.push_back(ca.rfStaticSaving);
        disN.push_back(1.0 - noop.dispatchRate() /
                                 base.dispatchRate());
        disA.push_back(1.0 - abella.dispatchRate() /
                                 base.dispatchRate());
        t.addRow({m.benches[i], Table::pct(cn.rfDynamicSaving),
                  Table::pct(cn.rfStaticSaving),
                  Table::pct(ca.rfDynamicSaving),
                  Table::pct(ca.rfStaticSaving)});
    }
    t.addRow({bench::suiteLabel(m.benches), Table::pct(bench::mean(nd)),
              Table::pct(bench::mean(ns)),
              Table::pct(bench::mean(ad)),
              Table::pct(bench::mean(as))});
    t.print(std::cout);
    std::cout << "\ndispatch-rate reduction: noop "
              << Table::pct(bench::mean(disN)) << ", abella "
              << Table::pct(bench::mean(disA))
              << " (paper: 6.8% vs 5.1%)\n"
              << "paper: noop 22%/21%, abella 14%/17%\n";
    return 0;
}
