/**
 * @file
 * A5: simulator throughput (google-benchmark).
 *
 * `simspeed/<workload>` measures raw `Core::run` throughput
 * (simulated Minst per host second) for every registered workload
 * family (default parameters) — the acceptance measurement for
 * hot-path work on the core model; the perf target of a core
 * refactor is the geomean over these per-family rates. `annotateOnly` isolates the compiler pass and
 * `sweepFig8Matrix` runs the figure-8 benchmark×technique matrix
 * through the experiment engine serially vs fanned out over the
 * worker pool (budgets scaled down so an iteration stays in the
 * milliseconds-to-seconds range).
 *
 * With `SIQSIM_JSON=<path>` the binary additionally writes a
 * machine-readable throughput report for the simspeed benchmarks
 * that ran: a `{"workload", "minst_per_s"}` array plus their geomean
 * — the cross-PR perf trajectory record (docs/ENVIRONMENT.md).
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cpu/core.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "sim/technique.hh"
#include "workloads/family.hh"

namespace
{

using namespace siq;

constexpr std::uint64_t simspeedInstsPerIter = 100000;

void
simspeed(benchmark::State &state, const std::string &name)
{
    workloads::WorkloadParams wp;
    const Program prog = workloads::generate(name, wp);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        Core core(prog, CoreConfig{});
        insts += core.run(simspeedInstsPerIter);
        benchmark::DoNotOptimize(core.stats().cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}

void
annotateOnly(benchmark::State &state, const std::string &name)
{
    for (auto _ : state) {
        Program prog = workloads::generate(name, {});
        compiler::CompilerConfig cfg;
        benchmark::DoNotOptimize(
            compiler::annotate(prog, cfg).blocksAnalyzed);
    }
}

BENCHMARK_CAPTURE(annotateOnly, gcc, std::string("gcc"))
    ->Unit(benchmark::kMillisecond);

/**
 * The fig8 matrix (full suite × baseline/noop/abella) through the
 * sweep engine. The Arg is the worker count; 0 = hardware
 * concurrency. A fresh runner per iteration, so every iteration pays
 * workload synthesis and compilation once each (as a figure binary
 * would) and the serial/threaded comparison is apples-to-apples.
 */
void
sweepFig8Matrix(benchmark::State &state)
{
    sim::SweepSpec spec;
    spec.benchmarks = workloads::benchmarkNames();
    spec.techniques = {"baseline", "noop", "abella"};
    spec.base.workload.repDivisor = 8;
    spec.base.warmupInsts = 10000;
    spec.base.measureInsts = 50000;
    spec.jobs = static_cast<int>(state.range(0));

    std::uint64_t cells = 0;
    for (auto _ : state) {
        sim::ExperimentRunner runner;
        const auto sweep = runner.run(spec);
        cells += sweep.cells.size();
        benchmark::DoNotOptimize(sweep.cells.front().stats.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cells));
    state.counters["jobs"] = static_cast<double>(
        spec.jobs > 0 ? spec.jobs
                      : std::thread::hardware_concurrency());
}

BENCHMARK(sweepFig8Matrix)
    ->Arg(1) // serial reference
    ->Arg(0) // hardware concurrency
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/**
 * The trace-replay payoff case (DESIGN.md §11): every registered
 * technique × 2 seeds over four benchmarks, serial. With tracing on
 * (the default) each distinct program is interpreted once into a
 * functional trace and every other cell replays it; with
 * SIQSIM_TRACE=0 every cell re-interprets from scratch. The ratio
 * of the two rates is the headline speedup of the trace subsystem.
 * The env var is read at runner construction, so setting it inside
 * the loop (fresh runner per iteration) is race-free; it is restored
 * to unset afterwards so later benchmarks see the default.
 */
void
sweepAllTechniques(benchmark::State &state, bool traceOn)
{
    setenv("SIQSIM_TRACE", traceOn ? "1" : "0", 1);
    sim::SweepSpec spec;
    spec.benchmarks = {"gzip", "mcf", "crafty", "specfp"};
    spec.techniques = sim::techniqueNames();
    spec.base.workload.repDivisor = 8;
    spec.base.warmupInsts = 10000;
    spec.base.measureInsts = 50000;
    spec.seeds = 2;
    spec.jobs = 1;

    std::uint64_t cells = 0;
    for (auto _ : state) {
        sim::ExperimentRunner runner;
        const auto sweep = runner.run(spec);
        cells += sweep.cells.size();
        benchmark::DoNotOptimize(sweep.cells.front().stats.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cells));
    state.counters["techniques"] =
        static_cast<double>(spec.techniques.size());
    unsetenv("SIQSIM_TRACE");
}

BENCHMARK_CAPTURE(sweepAllTechniques, replay, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(sweepAllTechniques, interpret, false)
    ->Unit(benchmark::kMillisecond);

/**
 * Console reporter that additionally captures the simspeed
 * throughput rates so main() can emit the SIQSIM_JSON report.
 */
class SimspeedReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const auto &run : reports) {
            const std::string name = run.benchmark_name();
            constexpr const char *prefix = "simspeed/";
            // skip repetition aggregates (mean/median/stddev rows):
            // the report wants one per-workload rate, not statistics
            // whose names also carry the simspeed/ prefix
            if (run.error_occurred ||
                run.run_type != Run::RT_Iteration ||
                name.rfind(prefix, 0) != 0) {
                continue;
            }
            const auto it = run.counters.find("items_per_second");
            if (it == run.counters.end())
                continue;
            record(name.substr(std::string(prefix).size()),
                   static_cast<double>(it->second) / 1e6);
        }
        ConsoleReporter::ReportRuns(reports);
    }

    const std::vector<std::pair<std::string, double>> &
    results() const
    {
        return rates;
    }

  private:
    void
    record(const std::string &workload, double minstPerS)
    {
        for (auto &[w, r] : rates) {
            if (w == workload) {
                r = minstPerS; // repetition: keep the latest
                return;
            }
        }
        rates.emplace_back(workload, minstPerS);
    }

    std::vector<std::pair<std::string, double>> rates;
};

/** `{"workload", "minst_per_s"}` array + geomean, as JSON. */
void
writeThroughputJson(
    std::ostream &os,
    const std::vector<std::pair<std::string, double>> &rates)
{
    os << "{\n  \"benchmarks\": [\n";
    double logSum = 0.0;
    for (std::size_t i = 0; i < rates.size(); i++) {
        logSum += std::log(rates[i].second);
        os << "    {\"workload\": \"" << rates[i].first
           << "\", \"minst_per_s\": " << rates[i].second << "}"
           << (i + 1 < rates.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"geomean_minst_per_s\": "
       << (rates.empty()
               ? 0.0
               : std::exp(logSum / static_cast<double>(rates.size())))
       << "\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // every registered family (the eleven SPECint profiles plus the
    // parameterized families at their defaults) gets a simspeed/
    // benchmark and a row in the SIQSIM_JSON throughput report
    for (const auto &name : workloads::familyNames()) {
        benchmark::RegisterBenchmark(
            ("simspeed/" + name).c_str(),
            [name](benchmark::State &state) { simspeed(state, name); })
            ->Unit(benchmark::kMillisecond);
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    SimspeedReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (const char *path = std::getenv("SIQSIM_JSON");
        path != nullptr && !reporter.results().empty()) {
        std::ofstream os(path, std::ios::trunc);
        writeThroughputJson(os, reporter.results());
        os.flush();
        if (!os) {
            std::cerr << "bench_simspeed: cannot write '" << path
                      << "'\n";
            return 1;
        }
        std::cerr << "wrote " << path << "\n";
    }
    return 0;
}
