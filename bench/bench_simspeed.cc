/**
 * @file
 * A5: simulator throughput (google-benchmark) — simulated
 * instructions and cycles per host second for a cache-friendly and a
 * memory-bound workload, plus the compiler pass alone.
 */

#include <benchmark/benchmark.h>

#include "cpu/core.hh"
#include "sim/simulator.hh"

namespace
{

using namespace siq;

void
simulateInsts(benchmark::State &state, const std::string &name)
{
    workloads::WorkloadParams wp;
    const Program prog = workloads::generate(name, wp);
    for (auto _ : state) {
        Core core(prog, CoreConfig{});
        core.run(100000);
        benchmark::DoNotOptimize(core.stats().cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 100000);
}

BENCHMARK_CAPTURE(simulateInsts, gzip, std::string("gzip"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(simulateInsts, mcf, std::string("mcf"))
    ->Unit(benchmark::kMillisecond);

void
annotateOnly(benchmark::State &state, const std::string &name)
{
    for (auto _ : state) {
        Program prog = workloads::generate(name, {});
        compiler::CompilerConfig cfg;
        benchmark::DoNotOptimize(
            compiler::annotate(prog, cfg).blocksAnalyzed);
    }
}

BENCHMARK_CAPTURE(annotateOnly, gcc, std::string("gcc"))
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
