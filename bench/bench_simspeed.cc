/**
 * @file
 * A5: simulator throughput (google-benchmark) — simulated
 * instructions and cycles per host second for a cache-friendly and a
 * memory-bound workload, the compiler pass alone, and the experiment
 * engine running the figure-8 benchmark×technique matrix serially vs
 * fanned out over the worker pool (the acceptance measurement for the
 * threaded sweep runner; budgets are scaled down so an iteration
 * stays in the milliseconds-to-seconds range).
 */

#include <benchmark/benchmark.h>

#include <thread>

#include "cpu/core.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"

namespace
{

using namespace siq;

void
simulateInsts(benchmark::State &state, const std::string &name)
{
    workloads::WorkloadParams wp;
    const Program prog = workloads::generate(name, wp);
    for (auto _ : state) {
        Core core(prog, CoreConfig{});
        core.run(100000);
        benchmark::DoNotOptimize(core.stats().cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 100000);
}

BENCHMARK_CAPTURE(simulateInsts, gzip, std::string("gzip"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(simulateInsts, mcf, std::string("mcf"))
    ->Unit(benchmark::kMillisecond);

void
annotateOnly(benchmark::State &state, const std::string &name)
{
    for (auto _ : state) {
        Program prog = workloads::generate(name, {});
        compiler::CompilerConfig cfg;
        benchmark::DoNotOptimize(
            compiler::annotate(prog, cfg).blocksAnalyzed);
    }
}

BENCHMARK_CAPTURE(annotateOnly, gcc, std::string("gcc"))
    ->Unit(benchmark::kMillisecond);

/**
 * The fig8 matrix (full suite × baseline/noop/abella) through the
 * sweep engine. The Arg is the worker count; 0 = hardware
 * concurrency. A fresh runner per iteration, so every iteration pays
 * workload synthesis and compilation once each (as a figure binary
 * would) and the serial/threaded comparison is apples-to-apples.
 */
void
sweepFig8Matrix(benchmark::State &state)
{
    sim::SweepSpec spec;
    spec.benchmarks = workloads::benchmarkNames();
    spec.techniques = {"baseline", "noop", "abella"};
    spec.base.workload.repDivisor = 8;
    spec.base.warmupInsts = 10000;
    spec.base.measureInsts = 50000;
    spec.jobs = static_cast<int>(state.range(0));

    std::uint64_t cells = 0;
    for (auto _ : state) {
        sim::ExperimentRunner runner;
        const auto sweep = runner.run(spec);
        cells += sweep.cells.size();
        benchmark::DoNotOptimize(sweep.cells.front().stats.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cells));
    state.counters["jobs"] = static_cast<double>(
        spec.jobs > 0 ? spec.jobs
                      : std::thread::hardware_concurrency());
}

BENCHMARK(sweepFig8Matrix)
    ->Arg(1) // serial reference
    ->Arg(0) // hardware concurrency
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
