/**
 * @file
 * Shared experiment-matrix runner for the figure/table benches. Each
 * bench binary runs exactly the techniques its figure needs over the
 * full 11-benchmark suite and prints the same rows/series the paper
 * reports, with the paper's headline values alongside.
 *
 * Budgets are scaled down from the paper's 100M+100M warm-up+measure
 * (see DESIGN.md §5); override with SIQSIM_WARMUP / SIQSIM_MEASURE
 * (instruction counts) when more fidelity is wanted.
 */

#ifndef SIQ_BENCH_COMMON_HH
#define SIQ_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/simulator.hh"

namespace siq::bench
{

inline std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr)
        return fallback;
    return std::strtoull(value, nullptr, 10);
}

/** One run per benchmark per technique, shared across figures. */
struct Matrix
{
    std::vector<std::string> benches;
    std::map<sim::Technique, std::vector<sim::RunResult>> results;

    const sim::RunResult &
    at(sim::Technique tech, std::size_t benchIdx) const
    {
        return results.at(tech)[benchIdx];
    }
};

inline Matrix
runMatrix(const std::vector<sim::Technique> &techniques)
{
    Matrix m;
    m.benches = workloads::benchmarkNames();
    sim::RunConfig cfg;
    cfg.warmupInsts = envOr("SIQSIM_WARMUP", 120000);
    cfg.measureInsts = envOr("SIQSIM_MEASURE", 400000);
    for (auto tech : techniques) {
        cfg.tech = tech;
        auto &rows = m.results[tech];
        for (const auto &bench : m.benches) {
            std::cerr << "  running " << bench << " / "
                      << sim::techniqueName(tech) << "...\n";
            rows.push_back(sim::runOne(bench, cfg));
        }
    }
    return m;
}

/** Arithmetic mean over the suite (the paper's SPECINT bar). */
inline double
mean(const std::vector<double> &values)
{
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return values.empty() ? 0.0
                          : sum / static_cast<double>(values.size());
}

inline double
ipcLoss(const sim::RunResult &base, const sim::RunResult &tech)
{
    return base.ipc() > 0.0 ? 1.0 - tech.ipc() / base.ipc() : 0.0;
}

inline void
header(const std::string &title, const std::string &paperRef)
{
    std::cout << "==== " << title << " ====\n"
              << "paper reference: " << paperRef << "\n\n";
}

} // namespace siq::bench

#endif // SIQ_BENCH_COMMON_HH
