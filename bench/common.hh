/**
 * @file
 * Shared experiment-matrix runner for the figure/table benches, built
 * on the sweep engine (sim/sweep.hh): one ExperimentRunner fans the
 * benchmark × technique matrix out over worker threads, workload
 * programs are synthesized once and shared read-only across cells,
 * and every figure binary can export its matrix machine-readably.
 *
 * Every `SIQSIM_*` environment knob the benches honour — budgets,
 * jobs, seeds, export paths, and the sharding/checkpoint variables
 * that route a figure bench through the same distributed path as the
 * `siqsim` CLI — is documented in one place: docs/ENVIRONMENT.md.
 */

#ifndef SIQ_BENCH_COMMON_HH
#define SIQ_BENCH_COMMON_HH

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/checkpoint.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "sim/technique.hh"
#include "workloads/family.hh"

namespace siq::bench
{

inline std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr)
        return fallback;
    return std::strtoull(value, nullptr, 10);
}

/** The sweep config every figure bench starts from. */
inline sim::RunConfig
defaultConfig()
{
    sim::RunConfig cfg;
    cfg.warmupInsts = envOr("SIQSIM_WARMUP", 120000);
    cfg.measureInsts = envOr("SIQSIM_MEASURE", 400000);
    return cfg;
}

/**
 * The workload axis every figure bench sweeps, selected by the
 * SIQSIM_WORKLOADS environment knob (docs/ENVIRONMENT.md):
 * unset or "all" = every registered family (the paper's eleven plus
 * the parameterized ones at their defaults), "specint" = the eleven
 * paper benchmarks only, otherwise a comma-separated list of
 * workload specs ("gzip,phased:period=60000"). Entries are validated
 * and canonicalized through the family registry, so a typo fails
 * here with the registered families listed.
 */
inline std::vector<std::string>
suiteBenchmarks()
{
    const char *v = std::getenv("SIQSIM_WORKLOADS");
    const std::string sel = v ? v : "all";
    if (sel == "all")
        return workloads::familyNames();
    if (sel == "specint")
        return workloads::benchmarkNames();
    std::vector<std::string> out;
    std::string cur;
    for (char c : sel + ",") {
        if (c != ',') {
            cur += c;
            continue;
        }
        if (!cur.empty())
            out.push_back(workloads::canonicalWorkload(cur));
        cur.clear();
    }
    if (out.empty())
        fatal("SIQSIM_WORKLOADS is set but names no workloads");
    return out;
}

/** Label of a suite-mean row: the paper's "SPECINT" bar when the
 *  suite is exactly the eleven paper benchmarks, "MEAN" otherwise. */
inline std::string
suiteLabel(const std::vector<std::string> &benches)
{
    return benches == workloads::benchmarkNames() ? "SPECINT" : "MEAN";
}

/** One run per benchmark per technique, shared across figures. */
struct Matrix
{
    std::vector<std::string> benches;
    sim::SweepResult sweep;

    const sim::RunResult &
    at(sim::Technique tech, std::size_t benchIdx) const
    {
        return sweep.at(sim::techniqueName(tech), benchIdx);
    }

    const sim::RunResult &
    at(const std::string &technique, std::size_t benchIdx) const
    {
        return sweep.at(technique, benchIdx);
    }

    /** True when the sweep ran with SIQSIM_SEEDS > 1. */
    bool replicated() const { return !sweep.aggregates.empty(); }

    const sim::CellAggregate &
    aggAt(sim::Technique tech, std::size_t benchIdx) const
    {
        return sweep.aggAt(sim::techniqueName(tech), benchIdx);
    }
};

/** Write one export file; @p what names the source (for messages). */
inline void
emitFile(const std::string &path, const char *what,
         const std::function<void(std::ostream &)> &write)
{
    std::ofstream os(path, std::ios::trunc);
    if (os)
        write(os);
    os.flush();
    if (!os)
        fatal("export to '", path, "' (", what, ") failed");
    std::cerr << "  wrote " << path << "\n";
}

/** Honour the SIQSIM_JSON / SIQSIM_CSV / SIQSIM_POWER_CSV exports. */
inline void
exportResults(const sim::SweepResult &sweep)
{
    auto emit = [&](const char *env,
                    const std::function<void(std::ostream &)> &write) {
        const char *path = std::getenv(env);
        if (path != nullptr)
            emitFile(path, env, write);
    };
    emit("SIQSIM_JSON",
         [&](std::ostream &os) { sim::writeJson(os, sweep); });
    emit("SIQSIM_CSV",
         [&](std::ostream &os) { sim::writeCsv(os, sweep); });
    emit("SIQSIM_POWER_CSV",
         [&](std::ostream &os) { sim::writePowerCsv(os, sweep); });
}

/**
 * Run a sweep through a fresh engine and report engine stats.
 *
 * Three env vars route a bench through the distributed path shared
 * with the `siqsim` CLI (docs/ENVIRONMENT.md, DESIGN.md §8):
 *  - SIQSIM_SPEC_OUT dumps the declarative spec as JSON (so the same
 *    grid can be re-run, sharded or archived via `siqsim run`);
 *  - SIQSIM_CKPT runs with per-cell checkpointing and resume in the
 *    given run directory — kill-safe long-horizon runs;
 *  - SIQSIM_SHARD ("i/N", needs SIQSIM_CKPT) runs one shard of the
 *    matrix. While the run directory is still missing cells from
 *    other shards the process exits(0) after its shard — the shard
 *    whose checkpoint completes the matrix prints the figure from
 *    the merged result.
 */
inline sim::SweepResult
runSweep(const sim::SweepSpec &spec)
{
    if (const char *path = std::getenv("SIQSIM_SPEC_OUT")) {
        emitFile(path, "SIQSIM_SPEC_OUT", [&](std::ostream &os) {
            sim::writeSpecJson(os, spec);
        });
    }

    sim::ExperimentRunner runner(
        static_cast<int>(envOr("SIQSIM_JOBS", 0)));
    std::cerr << "  sweep: " << spec.benchmarks.size() << " benchmarks x "
              << spec.techniques.size() << " techniques...\n";

    sim::SweepResult sweep;
    const char *ckpt = std::getenv("SIQSIM_CKPT");
    if (std::getenv("SIQSIM_SHARD") != nullptr && ckpt == nullptr) {
        fatal("SIQSIM_SHARD runs a partial matrix and needs "
              "SIQSIM_CKPT to publish it (docs/ENVIRONMENT.md)");
    }
    if (ckpt != nullptr) {
        sim::ShardPlan shard;
        if (const char *s = std::getenv("SIQSIM_SHARD"))
            shard = sim::parseShard(s);
        const auto outcome =
            sim::runWithCheckpoints(runner, spec, shard, ckpt);
        std::cerr << "  shard " << sim::toString(shard) << ": owns "
                  << outcome.cellsOwned << "/" << outcome.cellsTotal
                  << " cells, resumed " << outcome.cellsResumed
                  << ", simulated " << outcome.cellsRun << "\n";
        if (!outcome.complete) {
            std::cerr << "  run dir '" << ckpt << "' incomplete: run "
                      << "the remaining shards, then re-run (or "
                      << "'siqsim merge')\n";
            std::exit(0);
        }
        sweep = outcome.merged;
        std::cerr << "  " << sweep.cells.size()
                  << " cells assembled from checkpoints in '" << ckpt
                  << "'\n";
    } else {
        sweep = runner.run(spec);
        std::cerr << "  " << sweep.cells.size() << " cells in "
                  << sweep.wallSeconds << "s on " << sweep.jobsUsed
                  << " thread(s); workloads built "
                  << sweep.cache.workloadBuilds << ", cache hits "
                  << sweep.cache.workloadHits << "\n";
    }
    if (sweep.seeds > 1) {
        std::cerr << "  replication: " << sweep.seeds
                  << " decorrelated seeds per cell (mean/ci95 "
                     "aggregated)\n";
    }
    exportResults(sweep);
    return sweep;
}

/** The figure matrix: full suite × the figure's techniques. */
inline Matrix
runMatrix(const std::vector<sim::Technique> &techniques)
{
    sim::SweepSpec spec;
    spec.benchmarks = suiteBenchmarks();
    for (auto tech : techniques)
        spec.techniques.push_back(sim::techniqueName(tech));
    spec.base = defaultConfig();

    Matrix m;
    m.benches = spec.benchmarks;
    m.sweep = runSweep(spec);
    return m;
}

/** Arithmetic mean over the suite (the paper's SPECINT bar). */
inline double
mean(const std::vector<double> &values)
{
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return values.empty() ? 0.0
                          : sum / static_cast<double>(values.size());
}

inline double
ipcLoss(const sim::RunResult &base, const sim::RunResult &tech)
{
    return base.ipc() > 0.0 ? 1.0 - tech.ipc() / base.ipc() : 0.0;
}

inline void
header(const std::string &title, const std::string &paperRef)
{
    std::cout << "==== " << title << " ====\n"
              << "paper reference: " << paperRef << "\n\n";
}

} // namespace siq::bench

#endif // SIQ_BENCH_COMMON_HH
