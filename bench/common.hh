/**
 * @file
 * Shared experiment-matrix runner for the figure/table benches, built
 * on the sweep engine (sim/sweep.hh): one ExperimentRunner fans the
 * benchmark × technique matrix out over worker threads, workload
 * programs are synthesized once and shared read-only across cells,
 * and every figure binary can export its matrix machine-readably.
 *
 * Environment knobs:
 *  - SIQSIM_WARMUP / SIQSIM_MEASURE: per-cell instruction budgets,
 *    scaled down from the paper's 100M+100M (see DESIGN.md §5);
 *  - SIQSIM_JOBS: worker threads (0/unset = hardware concurrency);
 *  - SIQSIM_SEEDS: replicas per cell with decorrelated workload
 *    seeds; N > 1 grows the exports with mean/stddev/ci95 aggregates
 *    (unset/1 = single run, byte-identical output — DESIGN.md §7);
 *  - SIQSIM_JSON / SIQSIM_CSV / SIQSIM_POWER_CSV: when set to a path,
 *    the matrix (or its power-savings table) is written there after
 *    the run (see DESIGN.md §6).
 */

#ifndef SIQ_BENCH_COMMON_HH
#define SIQ_BENCH_COMMON_HH

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "sim/technique.hh"

namespace siq::bench
{

inline std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr)
        return fallback;
    return std::strtoull(value, nullptr, 10);
}

/** The sweep config every figure bench starts from. */
inline sim::RunConfig
defaultConfig()
{
    sim::RunConfig cfg;
    cfg.warmupInsts = envOr("SIQSIM_WARMUP", 120000);
    cfg.measureInsts = envOr("SIQSIM_MEASURE", 400000);
    return cfg;
}

/** One run per benchmark per technique, shared across figures. */
struct Matrix
{
    std::vector<std::string> benches;
    sim::SweepResult sweep;

    const sim::RunResult &
    at(sim::Technique tech, std::size_t benchIdx) const
    {
        return sweep.at(sim::techniqueName(tech), benchIdx);
    }

    const sim::RunResult &
    at(const std::string &technique, std::size_t benchIdx) const
    {
        return sweep.at(technique, benchIdx);
    }

    /** True when the sweep ran with SIQSIM_SEEDS > 1. */
    bool replicated() const { return !sweep.aggregates.empty(); }

    const sim::CellAggregate &
    aggAt(sim::Technique tech, std::size_t benchIdx) const
    {
        return sweep.aggAt(sim::techniqueName(tech), benchIdx);
    }
};

/** Honour the SIQSIM_JSON / SIQSIM_CSV / SIQSIM_POWER_CSV exports. */
inline void
exportResults(const sim::SweepResult &sweep)
{
    auto emit = [&](const char *env,
                    const std::function<void(std::ostream &)> &write) {
        const char *path = std::getenv(env);
        if (path == nullptr)
            return;
        std::ofstream os(path, std::ios::trunc);
        if (os)
            write(os);
        os.flush();
        if (!os)
            fatal("export to '", path, "' (", env, ") failed");
        std::cerr << "  wrote " << path << "\n";
    };
    emit("SIQSIM_JSON",
         [&](std::ostream &os) { sim::writeJson(os, sweep); });
    emit("SIQSIM_CSV",
         [&](std::ostream &os) { sim::writeCsv(os, sweep); });
    emit("SIQSIM_POWER_CSV",
         [&](std::ostream &os) { sim::writePowerCsv(os, sweep); });
}

/** Run a sweep through a fresh engine and report engine stats. */
inline sim::SweepResult
runSweep(const sim::SweepSpec &spec)
{
    sim::ExperimentRunner runner(
        static_cast<int>(envOr("SIQSIM_JOBS", 0)));
    std::cerr << "  sweep: " << spec.benchmarks.size() << " benchmarks x "
              << spec.techniques.size() << " techniques...\n";
    auto sweep = runner.run(spec);
    std::cerr << "  " << sweep.cells.size() << " cells in "
              << sweep.wallSeconds << "s on " << sweep.jobsUsed
              << " thread(s); workloads built "
              << sweep.cache.workloadBuilds << ", cache hits "
              << sweep.cache.workloadHits << "\n";
    if (sweep.seeds > 1) {
        std::cerr << "  replication: " << sweep.seeds
                  << " decorrelated seeds per cell (mean/ci95 "
                     "aggregated)\n";
    }
    exportResults(sweep);
    return sweep;
}

/** The figure matrix: full suite × the figure's techniques. */
inline Matrix
runMatrix(const std::vector<sim::Technique> &techniques)
{
    sim::SweepSpec spec;
    spec.benchmarks = workloads::benchmarkNames();
    for (auto tech : techniques)
        spec.techniques.push_back(sim::techniqueName(tech));
    spec.base = defaultConfig();

    Matrix m;
    m.benches = spec.benchmarks;
    m.sweep = runSweep(spec);
    return m;
}

/** Arithmetic mean over the suite (the paper's SPECINT bar). */
inline double
mean(const std::vector<double> &values)
{
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return values.empty() ? 0.0
                          : sum / static_cast<double>(values.size());
}

inline double
ipcLoss(const sim::RunResult &base, const sim::RunResult &tech)
{
    return base.ipc() > 0.0 ? 1.0 - tech.ipc() / base.ipc() : 0.0;
}

inline void
header(const std::string &title, const std::string &paperRef)
{
    std::cout << "==== " << title << " ====\n"
              << "paper reference: " << paperRef << "\n\n";
}

} // namespace siq::bench

#endif // SIQ_BENCH_COMMON_HH
