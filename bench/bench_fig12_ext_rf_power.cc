/**
 * @file
 * Figure 12: integer register file power savings for the Extension
 * and Improved schemes (paper: extension 21%/21%, improved 22%/20% —
 * little change from the NOOP scheme).
 */

#include "bench/common.hh"

int
main()
{
    using namespace siq;
    bench::header("Figure 12: RF power savings, Extension & Improved",
                  "extension 21% dyn / 21% stat; improved 22% / 20%");

    const auto m = bench::runMatrix(
        {sim::Technique::Baseline, sim::Technique::Extension,
         sim::Technique::Improved});

    Table t({"benchmark", "ext dyn", "ext stat", "imp dyn",
             "imp stat"});
    std::vector<double> ed, es, id, is;
    for (std::size_t i = 0; i < m.benches.size(); i++) {
        const auto &base = m.at(sim::Technique::Baseline, i);
        const auto ce = sim::comparePower(
            base, m.at(sim::Technique::Extension, i));
        const auto ci = sim::comparePower(
            base, m.at(sim::Technique::Improved, i));
        ed.push_back(ce.rfDynamicSaving);
        es.push_back(ce.rfStaticSaving);
        id.push_back(ci.rfDynamicSaving);
        is.push_back(ci.rfStaticSaving);
        t.addRow({m.benches[i], Table::pct(ce.rfDynamicSaving),
                  Table::pct(ce.rfStaticSaving),
                  Table::pct(ci.rfDynamicSaving),
                  Table::pct(ci.rfStaticSaving)});
    }
    t.addRow({bench::suiteLabel(m.benches), Table::pct(bench::mean(ed)),
              Table::pct(bench::mean(es)),
              Table::pct(bench::mean(id)),
              Table::pct(bench::mean(is))});
    t.print(std::cout);
    std::cout << "\npaper: extension 21%/21%, improved 22%/20%\n";
    return 0;
}
