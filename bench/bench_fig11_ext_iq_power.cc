/**
 * @file
 * Figure 11: IQ power savings for the Extension and Improved schemes
 * (paper: both ~45% dynamic / ~30% static, slightly below the NOOP
 * scheme's 47%/31%), plus §6's overall-processor derivation: with the
 * IQ at 22% and the integer RF at 11% of processor power, the paper
 * reports ~11% total dynamic savings.
 */

#include "bench/common.hh"

int
main()
{
    using namespace siq;
    bench::header("Figure 11: IQ power savings, Extension & Improved",
                  "both ~45% dynamic / 30% static");

    const auto m = bench::runMatrix(
        {sim::Technique::Baseline, sim::Technique::Extension,
         sim::Technique::Improved});

    Table t({"benchmark", "ext dyn", "ext stat", "imp dyn",
             "imp stat"});
    std::vector<double> ed, es, id, is, erf, irf;
    for (std::size_t i = 0; i < m.benches.size(); i++) {
        const auto &base = m.at(sim::Technique::Baseline, i);
        const auto ce = sim::comparePower(
            base, m.at(sim::Technique::Extension, i));
        const auto ci = sim::comparePower(
            base, m.at(sim::Technique::Improved, i));
        ed.push_back(ce.iqDynamicSaving);
        es.push_back(ce.iqStaticSaving);
        id.push_back(ci.iqDynamicSaving);
        is.push_back(ci.iqStaticSaving);
        erf.push_back(ce.rfDynamicSaving);
        irf.push_back(ci.rfDynamicSaving);
        t.addRow({m.benches[i], Table::pct(ce.iqDynamicSaving),
                  Table::pct(ce.iqStaticSaving),
                  Table::pct(ci.iqDynamicSaving),
                  Table::pct(ci.iqStaticSaving)});
    }
    t.addRow({bench::suiteLabel(m.benches), Table::pct(bench::mean(ed)),
              Table::pct(bench::mean(es)),
              Table::pct(bench::mean(id)),
              Table::pct(bench::mean(is))});
    t.print(std::cout);

    // paper §6: overall processor dynamic savings assuming the IQ is
    // 22% and the integer RF 11% of whole-processor power
    const double overall = 0.22 * bench::mean(id) +
                           0.11 * bench::mean(irf);
    std::cout << "\noverall processor dynamic saving (22% IQ + 11% "
                 "RF shares): "
              << Table::pct(overall) << " (paper: ~11%)\n"
              << "paper: extension/improved ~45% dyn, 30% stat\n";
    return 0;
}
