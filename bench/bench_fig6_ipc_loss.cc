/**
 * @file
 * Figure 6: normalised IPC loss for the NOOP technique, per benchmark
 * plus the SPECINT average, with the abella comparator.
 */

#include "bench/common.hh"

int
main()
{
    using namespace siq;
    bench::header("Figure 6: IPC loss, NOOP scheme",
                  "SPECINT avg 2.2% (abella 3.1%); worst vortex 5.4%, "
                  "best mcf 0.4%");

    const auto m = bench::runMatrix({sim::Technique::Baseline,
                                     sim::Technique::Noop,
                                     sim::Technique::Abella});

    Table t({"benchmark", "base IPC", "noop loss", "abella loss"});
    std::vector<double> noopLoss, abellaLoss;
    for (std::size_t i = 0; i < m.benches.size(); i++) {
        const auto &base = m.at(sim::Technique::Baseline, i);
        const double n =
            bench::ipcLoss(base, m.at(sim::Technique::Noop, i));
        const double a =
            bench::ipcLoss(base, m.at(sim::Technique::Abella, i));
        noopLoss.push_back(n);
        abellaLoss.push_back(a);
        t.addRow({m.benches[i], Table::fmt(base.ipc(), 3),
                  Table::pct(n), Table::pct(a)});
    }
    t.addRow({bench::suiteLabel(m.benches), "-", Table::pct(bench::mean(noopLoss)),
              Table::pct(bench::mean(abellaLoss))});
    t.print(std::cout);
    std::cout << "\npaper: SPECINT 2.2%, abella 3.1%\n";

    if (m.replicated()) {
        std::cout << "\nreplication (n=" << m.sweep.seeds
                  << " seeds per cell), IPC mean +/- ci95:\n";
        for (std::size_t i = 0; i < m.benches.size(); i++) {
            const auto &base =
                m.aggAt(sim::Technique::Baseline, i).ipc;
            const auto &noop = m.aggAt(sim::Technique::Noop, i).ipc;
            std::cout << "  " << m.benches[i] << ": baseline "
                      << Table::fmt(base.mean, 3) << " +/- "
                      << Table::fmt(base.ci95, 3) << ", noop "
                      << Table::fmt(noop.mean, 3) << " +/- "
                      << Table::fmt(noop.ci95, 3) << "\n";
        }
    }
    return 0;
}
