/**
 * @file
 * Mispredict-recovery figure (extension beyond the paper): every
 * technique's IQ dynamic-power saving and IPC cost measured twice —
 * under the oracle front end the paper's figures use, and under the
 * real speculative front end (gshare+BTB+RAS, wrong-path fetch,
 * checkpointed squash recovery). The comparison shows how much of
 * each scheme's saving survives wrong-path occupancy and squash
 * churn, alongside the speculation rates themselves.
 *
 * Note: both sweeps run through runSweep, so the SIQSIM_JSON/CSV
 * exports (docs/ENVIRONMENT.md) carry the *speculative* matrix (the
 * second sweep overwrites the first).
 */

#include "bench/common.hh"

int
main()
{
    using namespace siq;
    bench::header(
        "Mispredict recovery: IQ savings under a real front end",
        "extension study — oracle-front-end savings (Figs 8-12) "
        "re-measured with gshare+BTB+RAS speculation, wrong-path "
        "fetch and squash recovery");

    const std::vector<sim::Technique> techs = {
        sim::Technique::Baseline,  sim::Technique::Noop,
        sim::Technique::Extension, sim::Technique::Improved,
        sim::Technique::Abella,    sim::Technique::Folegnani};

    auto runMode = [&](bool speculative) {
        sim::SweepSpec spec;
        spec.benchmarks = bench::suiteBenchmarks();
        for (auto tech : techs)
            spec.techniques.push_back(sim::techniqueName(tech));
        spec.base = bench::defaultConfig();
        spec.base.core.specFrontEnd = speculative;
        bench::Matrix m;
        m.benches = spec.benchmarks;
        m.sweep = bench::runSweep(spec);
        return m;
    };

    std::cout << "oracle front end:\n";
    const auto oracle = runMode(false);
    std::cout << "speculative front end:\n";
    const auto spec = runMode(true);
    const std::size_t nb = oracle.benches.size();

    // suite means per technique, each mode against its own baseline
    Table t({"technique", "iq dyn (oracle)", "iq dyn (spec)",
             "ipc loss (oracle)", "ipc loss (spec)"});
    for (std::size_t ti = 1; ti < techs.size(); ti++) {
        std::vector<double> dynO, dynS, lossO, lossS;
        for (std::size_t b = 0; b < nb; b++) {
            const auto &baseO = oracle.at(sim::Technique::Baseline, b);
            const auto &baseS = spec.at(sim::Technique::Baseline, b);
            const auto &techO = oracle.at(techs[ti], b);
            const auto &techS = spec.at(techs[ti], b);
            dynO.push_back(
                sim::comparePower(baseO, techO).iqDynamicSaving);
            dynS.push_back(
                sim::comparePower(baseS, techS).iqDynamicSaving);
            lossO.push_back(bench::ipcLoss(baseO, techO));
            lossS.push_back(bench::ipcLoss(baseS, techS));
        }
        t.addRow({sim::techniqueName(techs[ti]),
                  Table::pct(bench::mean(dynO)),
                  Table::pct(bench::mean(dynS)),
                  Table::pct(bench::mean(lossO)),
                  Table::pct(bench::mean(lossS))});
    }
    t.print(std::cout);

    // the speculation itself, per benchmark (baseline cells: the
    // front end is technique-independent, so one column suffices)
    Table s({"benchmark", "mispred/kI", "squash cycles", "wrong-path "
             "fetch/squash"});
    std::vector<double> rate, frac, depth;
    for (std::size_t b = 0; b < nb; b++) {
        const auto &r = spec.at(sim::Technique::Baseline, b);
        const double committed =
            static_cast<double>(r.stats.committed);
        const double cycles = static_cast<double>(r.stats.cycles);
        const double squashes = static_cast<double>(r.stats.squashes);
        const double kRate =
            committed > 0.0
                ? 1000.0 *
                      static_cast<double>(r.stats.branchMispredicts) /
                      committed
                : 0.0;
        const double cycFrac =
            cycles > 0.0
                ? static_cast<double>(r.stats.squashCycles) / cycles
                : 0.0;
        const double wpPerSquash =
            squashes > 0.0
                ? static_cast<double>(r.stats.wrongPathFetched) /
                      squashes
                : 0.0;
        rate.push_back(kRate);
        frac.push_back(cycFrac);
        depth.push_back(wpPerSquash);
        s.addRow({spec.benches[b], Table::fmt(kRate),
                  Table::pct(cycFrac), Table::fmt(wpPerSquash)});
    }
    s.addRow({bench::suiteLabel(spec.benches),
              Table::fmt(bench::mean(rate)),
              Table::pct(bench::mean(frac)),
              Table::fmt(bench::mean(depth))});
    std::cout << "\n";
    s.print(std::cout);
    std::cout << "\nsquash cycles: fraction of baseline cycles spent "
                 "between arming a\nmispredict and its checkpointed "
                 "recovery (wrong-path fetch live)\n";
    return 0;
}
