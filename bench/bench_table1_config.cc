/**
 * @file
 * Table 1: the processor configuration. Prints the configuration the
 * simulator instantiates and validates it against the paper's table.
 */

#include <iostream>

#include "bench/common.hh"
#include "common/logging.hh"
#include "cpu/core.hh"

int
main()
{
    using namespace siq;
    bench::header("Table 1: processor configuration",
                  "8-wide fetch/decode/commit; hybrid 2K gshare + 2K "
                  "bimodal + 1K selector; BTB 2048x4; L1I 64KB/2w/32B "
                  "1cy; L1D 64KB/4w/32B 2cy; L2 512KB/8w/64B 10cy hit "
                  "50cy miss; ROB 128; IQ 80; 112 int + 112 fp regs "
                  "(14 banks of 8); 6 IntALU, 3 IntMul, 4 FpALU, 2 "
                  "FpMulDiv");

    const CoreConfig cfg;
    Table t({"parameter", "value", "paper"});
    auto row = [&](const std::string &k, const std::string &v,
                   const std::string &p) { t.addRow({k, v, p}); };
    row("fetch/decode/commit width",
        std::to_string(cfg.fetchWidth), "8");
    row("branch predictor",
        std::to_string(cfg.bpred.gshareEntries) + " gshare + " +
            std::to_string(cfg.bpred.bimodalEntries) + " bimodal + " +
            std::to_string(cfg.bpred.selectorEntries) + " selector",
        "2K/2K/1K hybrid");
    row("BTB", std::to_string(cfg.bpred.btbEntries) + " entries, " +
                   std::to_string(cfg.bpred.btbAssoc) + "-way",
        "2048, 4-way");
    row("L1 icache",
        std::to_string(cfg.mem.l1i.sizeBytes / 1024) + "KB " +
            std::to_string(cfg.mem.l1i.assoc) + "-way " +
            std::to_string(cfg.mem.l1i.hitLatency) + "cy",
        "64KB 2-way 1cy");
    row("L1 dcache",
        std::to_string(cfg.mem.l1d.sizeBytes / 1024) + "KB " +
            std::to_string(cfg.mem.l1d.assoc) + "-way " +
            std::to_string(cfg.mem.l1d.hitLatency) + "cy",
        "64KB 4-way 2cy");
    row("unified L2",
        std::to_string(cfg.mem.l2.sizeBytes / 1024) + "KB " +
            std::to_string(cfg.mem.l2.assoc) + "-way " +
            std::to_string(cfg.mem.l2.hitLatency) + "cy hit, " +
            std::to_string(cfg.mem.memLatency) + "cy miss",
        "512KB 8-way 10cy/50cy");
    row("ROB", std::to_string(cfg.robSize), "128");
    row("issue queue", std::to_string(cfg.iq.numEntries) +
                           " entries, banks of " +
                           std::to_string(cfg.iq.bankSize),
        "80 entries");
    row("int regs", std::to_string(cfg.intRegs.numPhys) + " (" +
                        std::to_string(cfg.intRegs.numPhys /
                                       cfg.intRegs.bankSize) +
                        " banks of " +
                        std::to_string(cfg.intRegs.bankSize) + ")",
        "112 (14 banks of 8)");
    row("fp regs", std::to_string(cfg.fpRegs.numPhys), "112");
    row("int FUs",
        std::to_string(
            cfg.fuCounts[static_cast<int>(FuClass::IntAlu)]) +
            " ALU, " +
            std::to_string(
                cfg.fuCounts[static_cast<int>(FuClass::IntMul)]) +
            " Mul",
        "6 ALU (1cy), 3 Mul (3cy)");
    row("fp FUs",
        std::to_string(
            cfg.fuCounts[static_cast<int>(FuClass::FpAlu)]) +
            " ALU, " +
            std::to_string(
                cfg.fuCounts[static_cast<int>(FuClass::FpMulDiv)]) +
            " MulDiv",
        "4 ALU (2cy), 2 MulDiv (4cy/12cy)");
    t.print(std::cout);

    // validate the defaults really are Table 1
    SIQ_ASSERT(cfg.fetchWidth == 8 && cfg.robSize == 128 &&
               cfg.iq.numEntries == 80 &&
               cfg.intRegs.numPhys == 112,
               "defaults drifted from Table 1");
    std::cout << "\nconfiguration matches Table 1\n";
    return 0;
}
