/**
 * @file
 * Figure 7: normalised issue queue occupancy reduction for the NOOP
 * technique (paper average: 23%).
 */

#include "bench/common.hh"

int
main()
{
    using namespace siq;
    bench::header("Figure 7: IQ occupancy reduction, NOOP scheme",
                  "average 23% fewer entries occupied");

    const auto m = bench::runMatrix(
        {sim::Technique::Baseline, sim::Technique::Noop});

    Table t({"benchmark", "base occ", "noop occ", "reduction"});
    std::vector<double> reductions;
    for (std::size_t i = 0; i < m.benches.size(); i++) {
        const auto &base = m.at(sim::Technique::Baseline, i);
        const auto &noop = m.at(sim::Technique::Noop, i);
        const double reduction =
            base.avgIqOccupancy() > 0.0
                ? 1.0 - noop.avgIqOccupancy() / base.avgIqOccupancy()
                : 0.0;
        reductions.push_back(reduction);
        t.addRow({m.benches[i], Table::fmt(base.avgIqOccupancy(), 1),
                  Table::fmt(noop.avgIqOccupancy(), 1),
                  Table::pct(reduction)});
    }
    t.addRow({bench::suiteLabel(m.benches), "-", "-",
              Table::pct(bench::mean(reductions))});
    t.print(std::cout);
    std::cout << "\npaper: average 23% reduction\n";
    return 0;
}
