#include "common/stats.hh"

#include <array>
#include <cmath>
#include <ostream>

#include "common/logging.hh"

namespace siq::stats
{

namespace
{

/** Student-t two-sided 95% quantiles t(0.975, df) for df = 1..29. */
constexpr std::array<double, 29> t95Table = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
    2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
    2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
    2.060,  2.056, 2.052, 2.048, 2.045,
};

} // namespace

double
tCritical95(std::uint64_t n)
{
    if (n < 2)
        return 0.0;
    const std::uint64_t df = n - 1;
    return df <= t95Table.size() ? t95Table[df - 1] : 1.96;
}

void
RunningStats::sample(double v)
{
    n++;
    const double delta = v - _mean;
    _mean += delta / static_cast<double>(n);
    m2 += delta * (v - _mean);
}

double
RunningStats::variance() const
{
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::ci95() const
{
    return n > 1 ? tCritical95(n) * stddev() /
                       std::sqrt(static_cast<double>(n))
                 : 0.0;
}

void
RunningStats::reset()
{
    n = 0;
    _mean = 0.0;
    m2 = 0.0;
}

void
Distribution::init(double lo_, double hi_, std::size_t buckets)
{
    SIQ_ASSERT(hi_ > lo_ && buckets > 0, "bad distribution shape");
    lo = lo_;
    hi = hi_;
    width = (hi - lo) / static_cast<double>(buckets);
    counts.assign(buckets, 0);
    underflow = overflow = 0;
    avg.reset();
}

void
Distribution::sample(double v)
{
    avg.sample(v);
    if (v < lo) {
        underflow++;
    } else if (v >= hi) {
        overflow++;
    } else {
        auto idx = static_cast<std::size_t>((v - lo) / width);
        if (idx >= counts.size())
            idx = counts.size() - 1;
        counts[idx]++;
    }
}

void
Distribution::reset()
{
    for (auto &c : counts)
        c = 0;
    underflow = overflow = 0;
    avg.reset();
}

double
Distribution::fractionBelow(double x) const
{
    if (avg.count() == 0)
        return 0.0;
    std::uint64_t below = underflow;
    for (std::size_t i = 0; i < counts.size(); i++) {
        const double bucket_hi = lo + width * static_cast<double>(i + 1);
        if (bucket_hi <= x)
            below += counts[i];
    }
    return static_cast<double>(below) /
           static_cast<double>(avg.count());
}

void
Group::addScalar(const std::string &name, Scalar *s)
{
    scalars[name] = s;
}

void
Group::addAverage(const std::string &name, Average *a)
{
    averages[name] = a;
}

void
Group::addDistribution(const std::string &name, Distribution *d)
{
    distributions[name] = d;
}

void
Group::resetAll()
{
    for (auto &[n, s] : scalars)
        s->reset();
    for (auto &[n, a] : averages)
        a->reset();
    for (auto &[n, d] : distributions)
        d->reset();
}

void
Group::dump(std::ostream &os) const
{
    for (const auto &[n, s] : scalars)
        os << _name << '.' << n << ' ' << s->value() << '\n';
    for (const auto &[n, a] : averages)
        os << _name << '.' << n << ' ' << a->mean() << '\n';
    for (const auto &[n, d] : distributions)
        os << _name << '.' << n << ".mean " << d->mean() << '\n';
}

} // namespace siq::stats
