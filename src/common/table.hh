/**
 * @file
 * ASCII table printer used by the benchmark harnesses to emit the rows
 * the paper's tables and figures report.
 */

#ifndef SIQ_COMMON_TABLE_HH
#define SIQ_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace siq
{

/** Column-aligned text table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string fmt(double v, int precision = 2);

    /** Format as a percentage string, e.g. "47.0%". */
    static std::string pct(double fraction, int precision = 1);

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace siq

#endif // SIQ_COMMON_TABLE_HH
