/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic choice in the project flows through this generator so
 * that workload synthesis and simulation are bit-reproducible from a
 * seed.
 */

#ifndef SIQ_COMMON_RANDOM_HH
#define SIQ_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace siq
{

/** xoshiro256** by Blackman & Vigna; fast, high-quality, seedable. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 seeding to spread a single word over the state
        std::uint64_t z = seed;
        for (auto &word : state) {
            z += 0x9e3779b97f4a7c15ull;
            std::uint64_t s = z;
            s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ull;
            s = (s ^ (s >> 27)) * 0x94d049bb133111ebull;
            word = s ^ (s >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [lo, hi], inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        SIQ_ASSERT(lo <= hi, "bad range ", lo, "..", hi);
        const std::uint64_t span =
            static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(next() % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Pick an element of a non-empty vector uniformly. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        SIQ_ASSERT(!v.empty(), "pick from empty vector");
        return v[static_cast<std::size_t>(range(0,
            static_cast<std::int64_t>(v.size()) - 1))];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace siq

#endif // SIQ_COMMON_RANDOM_HH
