/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic() is for internal invariant violations (simulator bugs); it
 * aborts. fatal() is for user errors (bad configuration, impossible
 * requests); it throws FatalError so tests and embedding applications
 * can recover. warn() and inform() print status without stopping.
 */

#ifndef SIQ_COMMON_LOGGING_HH
#define SIQ_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace siq
{

/** Exception thrown by fatal(): a user-level, recoverable error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{

/** Fold any streamable argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: something that should never happen happened. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl("?", 0, detail::concat(std::forward<Args>(args)...));
}

/** Stop with a user-level error (bad config, invalid argument). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print a warning; the simulation continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print an informational message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Silence or restore warn()/inform() output (used by tests/benches). */
void setQuiet(bool quiet);

} // namespace siq

/**
 * Internal-invariant check that stays on in release builds. On failure
 * it panics with the stringified condition and location.
 */
#define SIQ_ASSERT(cond, ...)                                            \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::siq::detail::panicImpl(__FILE__, __LINE__,                 \
                ::siq::detail::concat("assertion failed: " #cond " ",    \
                                      ##__VA_ARGS__));                   \
        }                                                                \
    } while (0)

#endif // SIQ_COMMON_LOGGING_HH
