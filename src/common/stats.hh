/**
 * @file
 * Lightweight statistics package: named scalar counters, averages and
 * distributions grouped per component, with reset support so that a
 * warm-up phase can be excluded from measurement (as the paper does).
 */

#ifndef SIQ_COMMON_STATS_HH
#define SIQ_COMMON_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace siq::stats
{

/**
 * Two-sided 95% critical value for a mean estimated from @p n
 * samples: the Student-t quantile t(0.975, n-1) for n <= 30 (exact
 * small-sample coverage), the normal approximation 1.96 beyond, and
 * 0 below two samples (spread is undefined).
 */
double tCritical95(std::uint64_t n);

/** A monotonically increasing event counter. */
class Scalar
{
  public:
    void operator+=(std::uint64_t n) { _value += n; }
    void operator++() { _value += 1; }
    void operator++(int) { _value += 1; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** A running sum/count pair producing a mean. */
class Average
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        _count += 1;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }

    void
    reset()
    {
        _sum = 0.0;
        _count = 0;
    }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
};

/**
 * Single-pass mean/variance accumulator (Welford's algorithm): the
 * aggregation primitive for batch-of-seeds replication. Numerically
 * stable at any sample count and stores no samples, so the sweep
 * engine can fold replicas in a fixed order and stay bit-reproducible.
 */
class RunningStats
{
  public:
    void sample(double v);

    std::uint64_t count() const { return n; }
    double mean() const { return _mean; }
    /** Unbiased sample variance (n-1 denominator); 0 below 2 samples. */
    double variance() const;
    /** Sample standard deviation; 0 below 2 samples. */
    double stddev() const;
    /**
     * Half-width of the 95% confidence interval on the mean:
     * tCritical95(n) * stddev / sqrt(n) — Student-t critical values
     * for n <= 30, 1.96 beyond; 0 below 2 samples.
     */
    double ci95() const;
    void reset();

  private:
    std::uint64_t n = 0;
    double _mean = 0.0;
    double m2 = 0.0; ///< running sum of squared deviations
};

/** A bucketed histogram over [lo, hi) with fixed-width buckets. */
class Distribution
{
  public:
    Distribution() = default;

    Distribution(double lo, double hi, std::size_t buckets)
    {
        init(lo, hi, buckets);
    }

    void init(double lo, double hi, std::size_t buckets);
    void sample(double v);
    void reset();

    double mean() const { return avg.mean(); }
    std::uint64_t count() const { return avg.count(); }
    /** Fraction of samples strictly below x. */
    double fractionBelow(double x) const;
    const std::vector<std::uint64_t> &buckets() const { return counts; }

  private:
    double lo = 0.0;
    double hi = 1.0;
    double width = 1.0;
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    Average avg;
};

/**
 * A named collection of statistics. Components own a Group, register
 * their stats into it, and dump() emits "group.stat value" lines.
 */
class Group
{
  public:
    explicit Group(std::string name) : _name(std::move(name)) {}

    void addScalar(const std::string &name, Scalar *s);
    void addAverage(const std::string &name, Average *a);
    void addDistribution(const std::string &name, Distribution *d);

    /** Zero every registered stat (end of warm-up). */
    void resetAll();

    /** Write "name.stat value" lines to os. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return _name; }

  private:
    std::string _name;
    std::map<std::string, Scalar *> scalars;
    std::map<std::string, Average *> averages;
    std::map<std::string, Distribution *> distributions;
};

} // namespace siq::stats

#endif // SIQ_COMMON_STATS_HH
