#include "common/table.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace siq
{

Table::Table(std::vector<std::string> headers_)
    : headers(std::move(headers_))
{
    SIQ_ASSERT(!headers.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    SIQ_ASSERT(cells.size() == headers.size(),
               "row width ", cells.size(), " != ", headers.size());
    rows.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::pct(double fraction, int precision)
{
    return fmt(fraction * 100.0, precision) + "%";
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); c++)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());

    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); c++) {
            os << std::left << std::setw(
                      static_cast<int>(widths[c]) + 2)
               << cells[c];
        }
        os << '\n';
    };

    line(headers);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        line(row);
}

} // namespace siq
