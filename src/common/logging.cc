#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace siq
{

namespace
{
bool quietMode = false;
} // namespace

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietMode)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace siq
