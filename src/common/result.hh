/**
 * @file
 * Result<T>: a value-or-error return type for recoverable ingestion
 * paths.
 *
 * fatal() throws FatalError, which single-request tools (the CLI, the
 * benches) catch at main() and turn into exit code 1. A long-lived,
 * multi-tenant process cannot treat every malformed input as an
 * exceptional control-flow event at a distance: the serve daemon
 * (sim/serve.hh) parses untrusted request bytes on its own threads,
 * and an error there must become an *error record on one client's
 * stream*, never a process exit and never an aborted sibling request.
 * The ingestion boundary — spec JSON parsing, workload-spec
 * validation, environment knobs — therefore exposes Result-returning
 * entry points (tryReadSpecJson, WorkloadSpec::tryParse, the
 * parse*Env helpers); the historical fatal()-style wrappers remain as
 * one-liners on top for callers that want fail-fast behaviour.
 */

#ifndef SIQ_COMMON_RESULT_HH
#define SIQ_COMMON_RESULT_HH

#include <optional>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace siq
{

/** A value or a user-facing error message, never both. */
template <typename T>
class Result
{
  public:
    /** An ok result holding @p value. */
    static Result
    ok(T value)
    {
        Result r;
        r.val.emplace(std::move(value));
        return r;
    }

    /** An error result with a human-readable message. */
    static Result
    error(std::string message)
    {
        Result r;
        r.err = std::move(message);
        return r;
    }

    /** True when the result holds a value. */
    explicit operator bool() const { return val.has_value(); }

    /// @name Value access (asserts the result is ok).
    /// @{
    T &
    value()
    {
        SIQ_ASSERT(val.has_value(), "Result::value() on an error");
        return *val;
    }

    const T &
    value() const
    {
        SIQ_ASSERT(val.has_value(), "Result::value() on an error");
        return *val;
    }
    /// @}

    /** The error message (asserts the result is an error). */
    const std::string &
    error() const
    {
        SIQ_ASSERT(!val.has_value(), "Result::error() on a value");
        return err;
    }

    /** Unwrap, converting an error into fatal() — the bridge back to
     *  the fail-fast callers. */
    T
    orFatal() &&
    {
        if (!val.has_value())
            fatal(err);
        return std::move(*val);
    }

  private:
    Result() = default;
    std::optional<T> val;
    std::string err;
};

/**
 * Run @p fn, capturing a thrown FatalError as a Result error: the
 * adapter for ingestion code that still reports through fatal()
 * internally (deep parser call chains) but must not unwind past a
 * request boundary. FatalError is documented as the recoverable
 * user-error channel (common/logging.hh); panic() — a simulator bug —
 * still aborts.
 */
template <typename Fn>
auto
asResult(Fn &&fn) -> Result<decltype(fn())>
{
    using R = Result<decltype(fn())>;
    try {
        return R::ok(fn());
    } catch (const FatalError &e) {
        return R::error(e.what());
    }
}

} // namespace siq

#endif // SIQ_COMMON_RESULT_HH
