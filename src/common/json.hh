/**
 * @file
 * Minimal JSON tree and recursive-descent parser, shared by the
 * report (de)serializers (sim/report.cc) and the serve daemon's
 * request envelope parsing (sim/serve.cc).
 *
 * Numbers keep their raw source token so integer counters convert
 * exactly (the report round-trip guarantee); strings are decoded.
 * Malformed input is reported through fatal() — i.e. a thrown
 * FatalError — so callers choose between fail-fast (the CLI) and
 * per-request recovery (asResult / the serve daemon's error records).
 */

#ifndef SIQ_COMMON_JSON_HH
#define SIQ_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace siq::json
{

/** One JSON value; object members keep source order. */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    std::string token; ///< raw number token or decoded string
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    /** Member lookup; fatal when @p key is absent. */
    const Value &at(const std::string &key) const;

    /** Optional member lookup for schema-evolution keys. */
    const Value *find(const std::string &key) const;

    /// @name Typed accessors; fatal on kind/format mismatch.
    /// @{
    std::uint64_t asU64() const;
    double asDouble() const;
    int asInt() const;
    bool asBool() const;
    const std::string &asString() const;
    /// @}
};

/** Parse one complete JSON document; fatal on malformed input or
 *  trailing bytes. */
Value parse(const std::string &text);

/// @name Whole-token numeric parsing (shared with CSV ingestion).
/// @{

/** strtoull with whole-token validation: garbage fatals, never 0.
 *  Counters are unsigned decimals, so signs (which strtoull would
 *  silently wrap) and overflow are malformed too. */
std::uint64_t parseU64(const std::string &token);

/** strtoll with whole-token validation (config ints may be signed). */
std::int64_t parseI64(const std::string &token);

/** strtod with whole-token and range validation. */
double parseDouble(const std::string &token);

/// @}

/** JSON string literal: quote and escape @p s. */
std::string quote(const std::string &s);

} // namespace siq::json

#endif // SIQ_COMMON_JSON_HH
