#include "common/json.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "common/logging.hh"

namespace siq::json
{

std::uint64_t
parseU64(const std::string &token)
{
    if (token.empty() ||
        !std::isdigit(static_cast<unsigned char>(token[0])))
        fatal("JSON: malformed integer '", token, "'");
    char *end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size() || errno == ERANGE)
        fatal("JSON: malformed integer '", token, "'");
    return v;
}

std::int64_t
parseI64(const std::string &token)
{
    if (token.empty())
        fatal("JSON: malformed integer '", token, "'");
    char *end = nullptr;
    errno = 0;
    const std::int64_t v = std::strtoll(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size() || errno == ERANGE)
        fatal("JSON: malformed integer '", token, "'");
    return v;
}

double
parseDouble(const std::string &token)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size() ||
        errno == ERANGE)
        fatal("JSON: malformed number '", token, "'");
    return v;
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':
          case '\\':
            out += '\\';
            out += c;
            break;
          // control characters would break single-line (JSONL)
          // framing; escape the ones the parser round-trips
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            out += c;
        }
    }
    return out + "\"";
}

const Value &
Value::at(const std::string &key) const
{
    for (const auto &[k, v] : object) {
        if (k == key)
            return v;
    }
    fatal("JSON: missing key '", key, "'");
}

const Value *
Value::find(const std::string &key) const
{
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::uint64_t
Value::asU64() const
{
    if (kind != Kind::Number)
        fatal("JSON: expected number");
    return parseU64(token);
}

double
Value::asDouble() const
{
    if (kind != Kind::Number)
        fatal("JSON: expected number");
    return parseDouble(token);
}

int
Value::asInt() const
{
    if (kind != Kind::Number)
        fatal("JSON: expected number");
    const std::int64_t v = parseI64(token);
    if (v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max())
        fatal("JSON: integer out of range: ", token);
    return static_cast<int>(v);
}

bool
Value::asBool() const
{
    if (kind != Kind::Bool)
        fatal("JSON: expected boolean");
    return boolean;
}

const std::string &
Value::asString() const
{
    if (kind != Kind::String)
        fatal("JSON: expected string");
    return token;
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    Value
    parse()
    {
        Value v = value();
        skipWs();
        if (pos != s.size())
            fatal("JSON: trailing data at offset ", pos);
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t' ||
                s[pos] == '\r'))
            pos++;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= s.size())
            fatal("JSON: unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fatal("JSON: expected '", c, "' at offset ", pos);
        pos++;
    }

    Value
    value()
    {
        // recursive descent over possibly untrusted bytes (the serve
        // daemon feeds socket input here): bound the recursion so a
        // deeply nested '[[[[…' line is a FatalError the request
        // boundary can catch, not a stack overflow
        if (depth >= kMaxDepth)
            fatal("JSON: nesting deeper than ", kMaxDepth,
                  " levels at offset ", pos);
        depth++;
        Value v;
        const char c = peek();
        if (c == '{')
            v = object();
        else if (c == '[')
            v = array();
        else if (c == '"')
            v = string();
        else if (c == 't' || c == 'f')
            v = boolean();
        else if (c == 'n')
            literal("null");
        else
            v = number();
        depth--;
        return v;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; p++) {
            if (pos >= s.size() || s[pos] != *p)
                fatal("JSON: bad literal at offset ", pos);
            pos++;
        }
    }

    Value
    boolean()
    {
        Value v;
        v.kind = Value::Kind::Bool;
        if (peek() == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
        }
        return v;
    }

    Value
    number()
    {
        Value v;
        v.kind = Value::Kind::Number;
        const std::size_t start = pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
                s[pos] == 'e' || s[pos] == 'E'))
            pos++;
        if (pos == start)
            fatal("JSON: bad number at offset ", pos);
        v.token = s.substr(start, pos - start);
        return v;
    }

    Value
    string()
    {
        expect('"');
        Value v;
        v.kind = Value::Kind::String;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                pos++;
                if (pos >= s.size())
                    break;
                switch (s[pos]) {
                  case '"':
                  case '\\':
                  case '/':
                    v.token += s[pos];
                    break;
                  case 'n':
                    v.token += '\n';
                    break;
                  case 't':
                    v.token += '\t';
                    break;
                  case 'r':
                    v.token += '\r';
                    break;
                  case 'b':
                    v.token += '\b';
                    break;
                  case 'f':
                    v.token += '\f';
                    break;
                  default:
                    // \uXXXX and anything else: fail loudly rather
                    // than silently mangling the string
                    fatal("JSON: unsupported escape '\\", s[pos],
                          "' at offset ", pos);
                }
                pos++;
                continue;
            }
            v.token += s[pos++];
        }
        if (pos >= s.size())
            fatal("JSON: unterminated string");
        pos++; // closing quote
        return v;
    }

    Value
    array()
    {
        expect('[');
        Value v;
        v.kind = Value::Kind::Array;
        if (peek() == ']') {
            pos++;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            const char c = peek();
            pos++;
            if (c == ']')
                return v;
            if (c != ',')
                fatal("JSON: expected ',' at offset ", pos - 1);
        }
    }

    Value
    object()
    {
        expect('{');
        Value v;
        v.kind = Value::Kind::Object;
        if (peek() == '}') {
            pos++;
            return v;
        }
        while (true) {
            Value key = string();
            expect(':');
            v.object.emplace_back(key.token, value());
            const char c = peek();
            pos++;
            if (c == '}')
                return v;
            if (c != ',')
                fatal("JSON: expected ',' at offset ", pos - 1);
        }
    }

    static constexpr int kMaxDepth = 256;

    const std::string &s;
    std::size_t pos = 0;
    int depth = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace siq::json
