/**
 * @file
 * The distributed-execution layer on top of the sweep engine: shard a
 * spec's cell list across processes/hosts, checkpoint every finished
 * cell atomically into a run directory, resume a killed run without
 * re-simulating finished cells, and merge shard directories back into
 * the canonical single-file matrix — byte-identical (after
 * canonicalize()) to the same spec run unsharded in one process.
 *
 * The unit of distribution is the *cell* (one benchmark × technique
 * pair with all of its replicas): aggregates are folds over a cell's
 * replicas, so keeping replicas together keeps every checkpoint
 * self-contained. Cells are identified by their stable
 * technique-major index — a pure function of the spec, independent
 * of scheduling, job count or which process runs them. See
 * DESIGN.md §8.
 */

#ifndef SIQ_SIM_CHECKPOINT_HH
#define SIQ_SIM_CHECKPOINT_HH

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/report.hh"
#include "sim/sweep.hh"

namespace siq::sim
{

/**
 * Deterministic 1-of-N selection over stable cell indices: shard
 * @c index of @c count owns cell @c i iff `i % count == index`.
 * Round-robin keeps expensive benchmarks (cells of one benchmark are
 * `count` apart for typical technique counts) spread across shards.
 */
struct ShardPlan
{
    int index = 0;
    int count = 1;

    bool operator==(const ShardPlan &) const = default;
};

/** Parse "i/N" (e.g. "0/4"); fatal on malformed or out-of-range. */
ShardPlan parseShard(const std::string &text);

/** "i/N" — the inverse of parseShard. */
std::string toString(const ShardPlan &plan);

/** Fatal unless 0 <= index < count and count >= 1. */
void validateShard(const ShardPlan &plan);

/** True when @p plan owns the cell with stable index @p cellIdx. */
bool ownsCell(const ShardPlan &plan, std::size_t cellIdx);

/**
 * Prepare @p dir as a checkpoint run directory: create it (and its
 * `cells/` subdirectory) if needed and write `spec.json` atomically.
 * If `spec.json` already exists it must be byte-identical to this
 * spec's serialization — resuming or sharding under a different spec
 * is fatal, because checkpointed cells would silently mix grids.
 * One exception: `jobs` is scheduling, not experiment identity, and
 * is stored as 0, so a run may be resumed with any worker count.
 */
void initRunDir(const std::filesystem::path &dir,
                const SweepSpec &spec);

/**
 * Checkpoint file name for one cell:
 * `cell_<index>_<technique>_<benchmark>.json` with the index
 * zero-padded and the names sanitized for the filesystem. The JSON
 * payload's "index" field is authoritative; the name is for humans
 * and stable ordering in directory listings.
 */
std::string checkpointFileName(const SweepSpec &spec,
                               std::size_t cellIdx);

/**
 * Atomically publish one finished cell into `dir/cells/`: the
 * payload is written to a temporary file and renamed into place, so
 * a reader (or a resume scan) never observes a half-written
 * checkpoint — a kill at any instant leaves either no file or a
 * complete one.
 */
void writeCellCheckpoint(const std::filesystem::path &dir,
                         const SweepSpec &spec,
                         const CellCheckpoint &ckpt);

/** Which cells of @p spec have a complete checkpoint in @p dir
 *  (indexed by stable cell index). */
std::vector<bool> scanCheckpoints(const std::filesystem::path &dir,
                                  const SweepSpec &spec);

/**
 * Atomically publish one invocation's cache counters into the run
 * directory as `cache.json` (unsharded) or `cache_shard_<i>_of_<n>`
 * `.json` — each shard process has its own caches, so per-shard
 * files never collide in a shared directory. Informational only:
 * merge and resume never read them; `siqsim status --cache` does.
 */
void writeCacheStatsFile(const std::filesystem::path &dir,
                         const ShardPlan &shard,
                         const SweepCacheStats &stats);

/** The cache-stats files present in @p dir, as (label, counters)
 *  pairs in sorted filename order; empty when none were written. */
std::vector<std::pair<std::string, SweepCacheStats>>
readCacheStatsFiles(const std::filesystem::path &dir);

/**
 * Fold one or more run directories (all initialized from the same
 * spec — verified byte-exactly) back into the full matrix. Every
 * cell of the spec must be checkpointed in exactly one directory, or
 * in several with identical measurements (wall-clock fields may
 * differ — re-running a pure cell reproduces its measurements, not
 * its timing); missing cells and measurement-conflicting duplicates
 * are fatal. Scheduling metadata (jobsUsed,
 * wallSeconds, cache) is meaningless for a merged result and left
 * zeroed; cells keep their checkpointed measurements, so
 * canonicalize() + writeJson/writeCsv of a merged result is
 * byte-identical to the unsharded run's canonical export.
 */
SweepResult
mergeCheckpoints(const std::vector<std::filesystem::path> &dirs);

/** What runWithCheckpoints did (and, when finished, the matrix). */
struct ShardRunOutcome
{
    std::size_t cellsTotal = 0;   ///< cells in the whole matrix
    std::size_t cellsOwned = 0;   ///< cells this shard is responsible for
    std::size_t cellsResumed = 0; ///< owned cells already checkpointed
    std::size_t cellsRun = 0;     ///< owned cells simulated this call
    /** True when every cell of the matrix (all shards) is now
     *  checkpointed in the run directory. */
    bool complete = false;
    /** mergeCheckpoints() of the run directory; only valid when
     *  complete. */
    SweepResult merged;
};

/**
 * Run @p spec's cells owned by @p shard through @p runner with
 * per-cell checkpointing into @p dir: already-checkpointed cells are
 * skipped (resume), every newly finished cell is published
 * atomically as it completes (kill-safe), and when the directory
 * ends up covering the whole matrix the merged result is returned.
 * Shards may share one run directory (their cell sets are disjoint)
 * or use separate directories merged later with mergeCheckpoints().
 */
ShardRunOutcome runWithCheckpoints(ExperimentRunner &runner,
                                   const SweepSpec &spec,
                                   const ShardPlan &shard,
                                   const std::filesystem::path &dir);

} // namespace siq::sim

#endif // SIQ_SIM_CHECKPOINT_HH
