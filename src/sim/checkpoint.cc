#include "sim/checkpoint.hh"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/logging.hh"
#include "common/result.hh"
#include "workloads/family.hh"

namespace siq::sim
{

namespace fs = std::filesystem;

namespace
{

/** Benchmark/technique names become filename fragments; anything the
 *  filesystem might object to collapses to '_'. */
std::string
sanitize(const std::string &name)
{
    std::string out;
    for (char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '-' || c == '.';
        out += ok ? c : '_';
    }
    return out;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("checkpoint: cannot read '", path.string(), "'");
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** fsync a directory so a just-renamed entry survives a crash; some
 *  filesystems refuse to sync directories (EINVAL) — warn, don't
 *  fail, since the data itself is already durable. */
void
syncDir(const fs::path &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        warn("checkpoint: cannot open directory '", dir.string(),
             "' for fsync: ", std::strerror(errno));
        return;
    }
    if (::fsync(fd) != 0 && errno != EINVAL && errno != ENOTSUP) {
        warn("checkpoint: fsync of directory '", dir.string(),
             "' failed: ", std::strerror(errno));
    }
    ::close(fd);
}

/**
 * Write-then-rename with durability: the destination either does not
 * exist or holds the complete content, never a prefix — even across a
 * power failure. The tmp file is fsynced before the rename (otherwise
 * the rename can reach disk before the data, persisting an
 * empty-but-named cell file a resume would then trust), and the
 * parent directory is fsynced after it so the new name itself is
 * durable. Rename atomicity holds within one filesystem, which a run
 * directory is. The tmp name is unique per process and call so
 * concurrent shards sharing a run directory (e.g. both racing to
 * publish spec.json) never tear each other's half-written files.
 */
void
atomicWrite(const fs::path &path, const std::string &content)
{
    static std::atomic<std::uint64_t> serial{0};
    std::ostringstream suffix;
    suffix << ".tmp." << ::getpid() << "."
           << serial.fetch_add(1, std::memory_order_relaxed);
    const fs::path tmp = path.string() + suffix.str();

    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0) {
        fatal("checkpoint: cannot create '", tmp.string(), "': ",
              std::strerror(errno));
    }
    std::size_t off = 0;
    while (off < content.size()) {
        const ssize_t n =
            ::write(fd, content.data() + off, content.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            fatal("checkpoint: write to '", tmp.string(), "' failed: ",
                  std::strerror(err));
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("checkpoint: fsync of '", tmp.string(), "' failed: ",
              std::strerror(err));
    }
    if (::close(fd) != 0) {
        fatal("checkpoint: close of '", tmp.string(), "' failed: ",
              std::strerror(errno));
    }

    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fatal("checkpoint: rename '", tmp.string(), "' -> '",
              path.string(), "' failed: ", ec.message());
    }
    syncDir(path.parent_path());
}

/**
 * Remove `.tmp.<pid>.<serial>` leftovers of crashed shards from
 * @p dir. A live pid (a concurrent shard mid-atomicWrite) keeps its
 * files: kill(pid, 0) distinguishes the two — only ESRCH (no such
 * process) marks the file stale. Unparseable tmp names are left
 * alone.
 */
void
removeStaleTmpFiles(const fs::path &dir)
{
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        const auto tag = name.find(".tmp.");
        if (tag == std::string::npos)
            continue;
        const std::string rest = name.substr(tag + 5);
        const auto dot = rest.find('.');
        if (dot == std::string::npos || dot == 0)
            continue;
        errno = 0;
        char *end = nullptr;
        const long pid = std::strtol(rest.c_str(), &end, 10);
        if (errno != 0 || end != rest.c_str() + dot || pid <= 0)
            continue;
        if (::kill(static_cast<pid_t>(pid), 0) == 0 ||
            errno != ESRCH) {
            continue; // owner alive (or unknowable): not ours to reap
        }
        std::error_code rmEc;
        if (fs::remove(entry.path(), rmEc)) {
            inform("checkpoint: removed stale tmp file '",
                   entry.path().string(), "' (pid ", pid, " is gone)");
        }
    }
}

fs::path
cellsDir(const fs::path &dir)
{
    return dir / "cells";
}

fs::path
specPath(const fs::path &dir)
{
    return dir / "spec.json";
}

std::size_t
cellCount(const SweepSpec &spec)
{
    return spec.benchmarks.size() * spec.techniques.size();
}

/**
 * The spec string stored in (and compared against) spec.json. The
 * worker-thread count is scheduling, not experiment identity — a run
 * must be resumable with a different --jobs — so it is forced to 0
 * here. Everything else, seeds included, is identity: different
 * budgets or replica counts are different experiments.
 */
std::string
specIdentity(const SweepSpec &spec)
{
    SweepSpec s = spec;
    s.jobs = 0;
    return toJson(s);
}

} // namespace

ShardPlan
parseShard(const std::string &text)
{
    const auto slash = text.find('/');
    std::size_t idxEnd = 0;
    std::size_t cntEnd = 0;
    ShardPlan plan;
    try {
        if (slash == std::string::npos || slash == 0 ||
            slash + 1 >= text.size())
            throw std::invalid_argument(text);
        plan.index = std::stoi(text.substr(0, slash), &idxEnd);
        const std::string cnt = text.substr(slash + 1);
        plan.count = std::stoi(cnt, &cntEnd);
        if (idxEnd != slash || cntEnd != cnt.size())
            throw std::invalid_argument(text);
    } catch (const std::exception &) {
        fatal("shard: expected 'i/N' (e.g. '0/4'), got '", text, "'");
    }
    validateShard(plan);
    return plan;
}

std::string
toString(const ShardPlan &plan)
{
    std::ostringstream os;
    os << plan.index << '/' << plan.count;
    return os.str();
}

void
validateShard(const ShardPlan &plan)
{
    if (plan.count < 1 || plan.index < 0 || plan.index >= plan.count) {
        fatal("shard: index must be in [0, count) with count >= 1, "
              "got ", toString(plan));
    }
}

bool
ownsCell(const ShardPlan &plan, std::size_t cellIdx)
{
    return cellIdx % static_cast<std::size_t>(plan.count) ==
           static_cast<std::size_t>(plan.index);
}

void
initRunDir(const fs::path &dir, const SweepSpec &spec)
{
    if (cellCount(spec) == 0)
        fatal("checkpoint: refusing to init a run dir for an empty "
              "matrix");
    std::error_code ec;
    fs::create_directories(cellsDir(dir), ec);
    if (ec) {
        fatal("checkpoint: cannot create '", cellsDir(dir).string(),
              "': ", ec.message());
    }
    const std::string current = specIdentity(spec);
    if (fs::exists(specPath(dir))) {
        const std::string stored = readFile(specPath(dir));
        if (stored != current) {
            fatal("checkpoint: '", specPath(dir).string(),
                  "' does not match this spec — the directory belongs "
                  "to a different experiment; use a fresh directory "
                  "(or delete the old one) instead of mixing grids");
        }
        return;
    }
    atomicWrite(specPath(dir), current);
}

std::string
checkpointFileName(const SweepSpec &spec, std::size_t cellIdx)
{
    const std::size_t nb = spec.benchmarks.size();
    if (nb == 0 || cellIdx >= cellCount(spec))
        fatal("checkpoint: cell index ", cellIdx,
              " outside the spec's matrix");
    char idx[24];
    std::snprintf(idx, sizeof(idx), "%05zu", cellIdx);
    return std::string("cell_") + idx + "_" +
           sanitize(spec.techniques[cellIdx / nb]) + "_" +
           sanitize(spec.benchmarks[cellIdx % nb]) + ".json";
}

void
writeCellCheckpoint(const fs::path &dir, const SweepSpec &spec,
                    const CellCheckpoint &ckpt)
{
    atomicWrite(cellsDir(dir) / checkpointFileName(spec, ckpt.index),
                toJson(ckpt));
}

std::vector<bool>
scanCheckpoints(const fs::path &dir, const SweepSpec &spec)
{
    // reap tmp leftovers of crashed shards first, so they never
    // accumulate and never get mistaken for anything meaningful
    removeStaleTmpFiles(dir);
    if (fs::exists(cellsDir(dir)))
        removeStaleTmpFiles(cellsDir(dir));

    const std::size_t ncells = cellCount(spec);
    std::vector<bool> have(ncells, false);
    for (std::size_t i = 0; i < ncells; i++) {
        const fs::path path = cellsDir(dir) / checkpointFileName(spec, i);
        if (!fs::exists(path))
            continue;
        // trust only files that parse and carry the right index: a
        // truncated or corrupted checkpoint (partial write on a
        // filesystem without rename durability, manual tampering)
        // counts as missing, so resume re-runs the cell and
        // atomically replaces the damaged file
        const auto ckpt = asResult(
            [&] { return cellCheckpointFromJson(readFile(path)); });
        if (!ckpt || ckpt.value().index != i) {
            warn("checkpoint: ignoring damaged cell file '",
                 path.string(), "'",
                 ckpt ? " (index mismatch)" : "",
                 "; the cell will re-run");
            continue;
        }
        have[i] = true;
    }
    return have;
}

void
writeCacheStatsFile(const fs::path &dir, const ShardPlan &shard,
                    const SweepCacheStats &stats)
{
    validateShard(shard);
    std::ostringstream name;
    if (shard.count > 1) {
        name << "cache_shard_" << shard.index << "_of_" << shard.count
             << ".json";
    } else {
        name << "cache.json";
    }
    atomicWrite(dir / name.str(), toJson(stats) + "\n");
}

std::vector<std::pair<std::string, SweepCacheStats>>
readCacheStatsFiles(const fs::path &dir)
{
    std::vector<std::string> names;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("cache", 0) == 0 && name.size() >= 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0) {
            names.push_back(name);
        }
    }
    std::sort(names.begin(), names.end());

    std::vector<std::pair<std::string, SweepCacheStats>> out;
    for (const std::string &name : names)
        out.emplace_back(name, cacheStatsFromJson(readFile(dir / name)));
    return out;
}

SweepResult
mergeCheckpoints(const std::vector<fs::path> &dirs)
{
    if (dirs.empty())
        fatal("merge: no checkpoint directories given");

    const std::string specText = readFile(specPath(dirs[0]));
    for (std::size_t d = 1; d < dirs.size(); d++) {
        if (readFile(specPath(dirs[d])) != specText) {
            fatal("merge: '", specPath(dirs[d]).string(),
                  "' differs from '", specPath(dirs[0]).string(),
                  "' — shards of one run must share one spec");
        }
    }
    std::istringstream specIs(specText);
    const SweepSpec spec = readSpecJson(specIs);
    const std::size_t ncells = cellCount(spec);

    SweepResult result;
    result.benchmarks = spec.benchmarks;
    result.techniques = spec.techniques;
    result.cells.resize(ncells);
    result.jobsUsed = 0;
    result.wallSeconds = 0.0;

    // duplicate cells (overlapping directories) must agree on every
    // measurement; wall-clock fields may differ between the runs that
    // produced them, so the comparison is semantic, not byte-level.
    // The first directory in argument order wins, making the merge
    // output a deterministic function of its inputs.
    std::vector<fs::path> sources(ncells);
    std::vector<std::size_t> missing;
    std::vector<bool> have(ncells, false);
    int seeds = 0;
    for (std::size_t i = 0; i < ncells; i++) {
        const std::string name = checkpointFileName(spec, i);
        for (const auto &dir : dirs) {
            const fs::path path = cellsDir(dir) / name;
            if (!fs::exists(path))
                continue;
            CellCheckpoint ckpt = cellCheckpointFromJson(readFile(path));
            if (ckpt.index != i) {
                fatal("merge: '", path.string(), "' carries index ",
                      ckpt.index, ", expected ", i);
            }
            if (have[i]) {
                const bool same =
                    ckpt.seeds == seeds &&
                    identicalMeasurement(ckpt.cell, result.cells[i]) &&
                    (ckpt.seeds == 1 ||
                     ckpt.aggregate == result.aggregates[i]);
                if (!same) {
                    fatal("merge: conflicting checkpoints for cell ",
                          i, ": '", sources[i].string(), "' vs '",
                          path.string(), "'");
                }
                continue;
            }
            if (seeds == 0) {
                seeds = ckpt.seeds;
            } else if (ckpt.seeds != seeds) {
                fatal("merge: cell ", i, " ran with seeds=",
                      ckpt.seeds, " but earlier cells ran with seeds=",
                      seeds,
                      " — shards must agree on the replica count");
            }
            if (ckpt.seeds > 1) {
                if (result.aggregates.empty())
                    result.aggregates.resize(ncells);
                result.aggregates[i] = ckpt.aggregate;
            }
            result.cells[i] = std::move(ckpt.cell);
            sources[i] = path;
            have[i] = true;
        }
        if (!have[i])
            missing.push_back(i);
    }
    if (!missing.empty()) {
        std::ostringstream os;
        for (std::size_t k = 0; k < missing.size() && k < 8; k++)
            os << (k ? ", " : "") << missing[k];
        fatal("merge: ", missing.size(), " of ", ncells,
              " cells have no checkpoint (first missing: ", os.str(),
              ") — run the remaining shards before merging");
    }
    result.seeds = seeds;
    return result;
}

ShardRunOutcome
runWithCheckpoints(ExperimentRunner &runner, const SweepSpec &spec_,
                   const ShardPlan &shard, const fs::path &dir)
{
    validateShard(shard);
    // spec.json, checkpoint file names and the engine's cell labels
    // must all use one spelling per workload: pin the canonical form
    // before anything touches the run directory
    SweepSpec spec = spec_;
    for (auto &b : spec.benchmarks)
        b = workloads::canonicalWorkload(b);
    initRunDir(dir, spec);

    ShardRunOutcome outcome;
    outcome.cellsTotal = cellCount(spec);
    const std::vector<bool> have = scanCheckpoints(dir, spec);
    for (std::size_t i = 0; i < have.size(); i++) {
        if (!ownsCell(shard, i))
            continue;
        outcome.cellsOwned++;
        if (have[i])
            outcome.cellsResumed++;
    }

    std::atomic<std::size_t> ran{0};
    CellHooks hooks;
    hooks.shouldRun = [&](std::size_t i) {
        return ownsCell(shard, i) && !have[i];
    };
    hooks.onCellDone = [&](std::size_t i, const CellKey &,
                           const RunResult &rep0,
                           const CellAggregate *agg) {
        CellCheckpoint ckpt;
        ckpt.index = i;
        ckpt.seeds = agg ? static_cast<int>(agg->n) : 1;
        ckpt.cell = rep0;
        if (agg)
            ckpt.aggregate = *agg;
        writeCellCheckpoint(dir, spec, ckpt);
        ran.fetch_add(1, std::memory_order_relaxed);
    };
    runner.run(spec, hooks);
    outcome.cellsRun = ran.load();

    const std::vector<bool> after = scanCheckpoints(dir, spec);
    outcome.complete = true;
    for (bool h : after)
        outcome.complete = outcome.complete && h;
    if (outcome.complete)
        outcome.merged = mergeCheckpoints({dir});
    return outcome;
}

} // namespace siq::sim
