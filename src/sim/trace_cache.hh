/**
 * @file
 * Bounded, evicting cache of functional traces keyed by program
 * content hash (DESIGN.md §11).
 *
 * Sweep cells that simulate the same generated+annotated program —
 * every replica seed of a cell, and every technique whose annotation
 * leaves the instruction stream identical — share one FuncTrace, so
 * the interpreter runs once per distinct program instead of once per
 * cell.
 *
 * Handles pin: get() returns a shared_ptr whose deleter notifies the
 * cache, so an entry some worker still holds is never evicted and the
 * byte cap is re-enforced the moment a reference drops (traces grow
 * *after* the miss that inserted them — enforcing only at insertion
 * would let a sweep finish arbitrarily far over the cap). Eviction
 * walks in LRU order over unpinned entries while resident bytes
 * exceed the cap; an over-subscribed cap therefore degrades to
 * trace-per-worker churn, never to a dangling trace. Handles must not
 * outlive the cache (the sweep runner owns both; cell workers hold
 * handles only while simulating).
 */

#ifndef SIQ_SIM_TRACE_CACHE_HH
#define SIQ_SIM_TRACE_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cpu/trace.hh"

namespace siq::sim
{

/** Thread-safe LRU trace cache with a byte cap. */
class TraceCache
{
  public:
    /** @p capBytes bounds resident arena bytes (0 = unbounded). */
    explicit TraceCache(std::uint64_t capBytes) : cap(capBytes) {}

    /**
     * The trace for @p prog's content, building it on a miss. The
     * returned handle pins the trace against eviction until every
     * copy is destroyed; it must not outlive the cache.
     */
    std::shared_ptr<FuncTrace> get(std::shared_ptr<const Program> prog);

    /// @name Accounting (sweep cache statistics).
    /// @{
    std::uint64_t builds() const;
    std::uint64_t hits() const;
    std::uint64_t evicted() const;
    /** Arena bytes currently resident across all cached traces. */
    std::uint64_t residentBytes() const;
    /// @}

  private:
    struct Entry
    {
        std::uint64_t key;
        std::shared_ptr<FuncTrace> trace;
        std::uint64_t refs = 0; ///< outstanding handles
    };

    /** Handle deleter callback: unpin @p key, re-enforce the cap. */
    void release(std::uint64_t key);

    /** Evict LRU unpinned entries while over the cap; `mu` held. */
    void enforceCap();

    const std::uint64_t cap;
    mutable std::mutex mu;
    std::list<Entry> lru; ///< front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::uint64_t _builds = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _evicted = 0;
};

} // namespace siq::sim

#endif // SIQ_SIM_TRACE_CACHE_HH
