/**
 * @file
 * Bounded, evicting cache of functional traces keyed by program
 * content hash (DESIGN.md §11).
 *
 * Sweep cells that simulate the same generated+annotated program —
 * every replica seed of a cell, and every technique whose annotation
 * leaves the instruction stream identical — share one FuncTrace, so
 * the interpreter runs once per distinct program instead of once per
 * cell.
 *
 * Handles pin: get() returns a shared_ptr whose deleter notifies the
 * cache, so an entry some worker still holds is never evicted and the
 * byte cap is re-enforced the moment a reference drops (traces grow
 * *after* the miss that inserted them — enforcing only at insertion
 * would let a sweep finish arbitrarily far over the cap). Eviction
 * walks in LRU order over unpinned entries while resident bytes
 * exceed the cap; an over-subscribed cap therefore degrades to
 * trace-per-worker churn, never to a dangling trace.
 *
 * Handle lifetime: every handle co-owns its trace *and* holds the
 * cache's bookkeeping state through a weak_ptr, so handles may
 * outlive the cache. Destroying a cache with outstanding handles
 * (a serve-daemon restart while tenants still simulate) simply orphans
 * those traces — each lives until its last handle drops, and the late
 * deleter finds the state expired instead of touching freed memory.
 *
 * Accounting: resident bytes are maintained as a running counter —
 * each entry carries the byte count last folded into the total
 * (`bytesSeen`), refreshed whenever that entry is touched (hit,
 * release). Only pinned entries can grow, and every pin ends in a
 * release, so the counter is exact whenever no handle is live and
 * lags only un-released growth otherwise. Debug builds re-verify the
 * invariant after every mutation.
 */

#ifndef SIQ_SIM_TRACE_CACHE_HH
#define SIQ_SIM_TRACE_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cpu/trace.hh"

namespace siq::sim
{

/** Thread-safe LRU trace cache with a byte cap. */
class TraceCache
{
  public:
    /** @p capBytes bounds resident arena bytes (0 = unbounded). */
    explicit TraceCache(std::uint64_t capBytes);

    /** Warns (does not abort) when handles are still outstanding;
     *  those traces stay alive until their handles drop. */
    ~TraceCache();

    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * The trace for @p prog's content, building it on a miss. The
     * returned handle pins the trace against eviction until every
     * copy is destroyed, and keeps the trace (though not the cache
     * slot) alive even if the cache is destroyed first.
     */
    std::shared_ptr<FuncTrace> get(std::shared_ptr<const Program> prog);

    /// @name Accounting (sweep cache statistics).
    /// @{
    std::uint64_t builds() const;
    std::uint64_t hits() const;
    std::uint64_t evicted() const;
    /** Arena bytes currently resident across all cached traces;
     *  refreshes pinned-entry growth, so the report is live. */
    std::uint64_t residentBytes() const;
    /** Entries currently pinned by outstanding handles. */
    std::uint64_t pinnedEntries() const;
    /// @}

  private:
    struct Entry
    {
        std::uint64_t key;
        std::shared_ptr<FuncTrace> trace;
        std::uint64_t refs = 0;      ///< outstanding handles
        std::uint64_t bytesSeen = 0; ///< bytes folded into `resident`
    };

    /**
     * All bookkeeping, held by shared_ptr so handle deleters can
     * observe cache destruction through a weak_ptr instead of
     * dereferencing a dangling `this`.
     */
    struct State
    {
        explicit State(std::uint64_t capBytes) : cap(capBytes) {}

        /** Handle deleter callback: unpin @p key, re-enforce cap. */
        void release(std::uint64_t key);

        /** Fold @p e's current size into the running counter. */
        void refreshBytes(Entry &e);

        /** Evict LRU unpinned entries while over the cap. */
        void enforceCap();

        /** Debug-only: running counter matches the recomputed sum. */
        void checkResident() const;

        const std::uint64_t cap;
        mutable std::mutex mu;
        std::list<Entry> lru; ///< front = most recently used
        std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
            index;
        std::uint64_t resident = 0; ///< running Σ bytesSeen
        std::uint64_t _builds = 0;
        std::uint64_t _hits = 0;
        std::uint64_t _evicted = 0;
    };

    std::shared_ptr<State> state;
};

} // namespace siq::sim

#endif // SIQ_SIM_TRACE_CACHE_HH
