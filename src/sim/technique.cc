#include "sim/technique.hh"

#include <mutex>
#include <utility>

#include "common/logging.hh"

namespace siq::sim
{

namespace
{

/** Shared machine-mirror setup for every compiler scheme. */
compiler::CompilerConfig
baseCompilerConfig(const RunConfig &cfg)
{
    compiler::CompilerConfig cc;
    cc.machine.issueWidth = cfg.core.issueWidth;
    cc.machine.iqSize = cfg.core.iq.numEntries;
    cc.machine.fuCounts = cfg.core.fuCounts;
    cc.machine.l1dHitLatency = cfg.core.mem.l1d.hitLatency;
    cc.minHint = cfg.minHint;
    cc.elideRedundant = cfg.elideRedundant;
    cc.unrollFactor = cfg.unrollFactor;
    return cc;
}

std::vector<TechniqueDef>
builtinDefs()
{
    std::vector<TechniqueDef> defs;

    defs.push_back({
        "baseline",
        Technique::Baseline,
        "fixed 80-entry IQ, no resizing",
        nullptr,
        nullptr,
    });

    defs.push_back({
        "noop",
        Technique::Noop,
        "compiler hints via special NOOPs (paper §5.2)",
        [](const RunConfig &cfg) {
            auto cc = baseCompilerConfig(cfg);
            cc.scheme = compiler::HintScheme::Noop;
            return std::optional(cc);
        },
        nullptr,
    });

    defs.push_back({
        "extension",
        Technique::Extension,
        "compiler hints via instruction tags (paper §5.3)",
        [](const RunConfig &cfg) {
            auto cc = baseCompilerConfig(cfg);
            cc.scheme = compiler::HintScheme::Tag;
            return std::optional(cc);
        },
        nullptr,
    });

    defs.push_back({
        "improved",
        Technique::Improved,
        "Extension + inter-procedural FU analysis (paper §5.3)",
        [](const RunConfig &cfg) {
            auto cc = baseCompilerConfig(cfg);
            cc.scheme = compiler::HintScheme::Tag;
            cc.interprocFu = true;
            return std::optional(cc);
        },
        nullptr,
    });

    defs.push_back({
        "abella",
        Technique::Abella,
        "hardware adaptive IqRob64 comparator",
        nullptr,
        [](const RunConfig &cfg) -> std::unique_ptr<IqLimitController> {
            AbellaConfig ac = cfg.abella;
            ac.iqSize = cfg.core.iq.numEntries;
            ac.robSize = cfg.core.robSize;
            return std::make_unique<AbellaResizer>(ac);
        },
    });

    defs.push_back({
        "folegnani",
        Technique::Folegnani,
        "hardware adaptive resizer (ablation A4)",
        nullptr,
        [](const RunConfig &cfg) -> std::unique_ptr<IqLimitController> {
            FolegnaniConfig fc = cfg.folegnani;
            fc.iqSize = cfg.core.iq.numEntries;
            return std::make_unique<FolegnaniResizer>(fc);
        },
    });

    return defs;
}

} // namespace

struct TechniqueRegistry::Impl
{
    mutable std::mutex mu;
    /** unique_ptr entries so find() results survive vector growth. */
    std::vector<std::unique_ptr<TechniqueDef>> defs;
};

TechniqueRegistry::TechniqueRegistry() : impl(std::make_shared<Impl>())
{
    for (auto &def : builtinDefs())
        impl->defs.push_back(
            std::make_unique<TechniqueDef>(std::move(def)));
}

TechniqueRegistry &
TechniqueRegistry::instance()
{
    static TechniqueRegistry registry;
    return registry;
}

void
TechniqueRegistry::add(TechniqueDef def)
{
    // names flow into CSV cells and JSON strings verbatim: keep them
    // token-like so the report round-trip guarantee holds
    if (def.name.empty())
        fatal("technique name must not be empty");
    for (char c : def.name) {
        if (c == ',' || c == '"' || c == '\\' ||
            static_cast<unsigned char>(c) < 0x20)
            fatal("technique name '", def.name,
                  "' contains a character that would break "
                  "CSV/JSON export");
    }

    std::lock_guard lock(impl->mu);
    for (const auto &d : impl->defs) {
        if (d->name == def.name)
            fatal("technique '", def.name, "' already registered");
    }
    impl->defs.push_back(
        std::make_unique<TechniqueDef>(std::move(def)));
}

bool
TechniqueRegistry::remove(const std::string &name)
{
    std::lock_guard lock(impl->mu);
    for (auto it = impl->defs.begin(); it != impl->defs.end(); ++it) {
        if ((*it)->name == name) {
            impl->defs.erase(it);
            return true;
        }
    }
    return false;
}

const TechniqueDef *
TechniqueRegistry::find(const std::string &name) const
{
    std::lock_guard lock(impl->mu);
    for (const auto &d : impl->defs) {
        if (d->name == name)
            return d.get();
    }
    return nullptr;
}

std::vector<std::string>
TechniqueRegistry::names() const
{
    std::lock_guard lock(impl->mu);
    std::vector<std::string> out;
    out.reserve(impl->defs.size());
    for (const auto &d : impl->defs)
        out.push_back(d->name);
    return out;
}

const TechniqueDef &
techniqueDef(Technique tech)
{
    const TechniqueDef *def =
        TechniqueRegistry::instance().find(techniqueName(tech));
    SIQ_ASSERT(def != nullptr, "builtin technique missing from registry");
    return *def;
}

const TechniqueDef *
findTechnique(const std::string &name)
{
    return TechniqueRegistry::instance().find(name);
}

std::optional<Technique>
techniqueFromName(const std::string &name)
{
    // a registry entry whose name is its own family name is a
    // builtin; variants ("noop-floor8") carry a tag but are not one
    const TechniqueDef *def = findTechnique(name);
    if (def != nullptr && techniqueName(def->tag) == name)
        return def->tag;
    return std::nullopt;
}

std::vector<std::string>
techniqueNames()
{
    return TechniqueRegistry::instance().names();
}

} // namespace siq::sim
