#include "sim/report.hh"

#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "sim/technique.hh"
#include "workloads/family.hh"

namespace siq::sim
{

namespace
{

// the JSON tree/parser and the whole-token numeric validators live in
// common/json (shared with the serve daemon's request parsing)
using JsonValue = json::Value;
using json::parseDouble;
using json::parseU64;
using json::quote;

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

// ----------------------------------------------------- field helpers

void
appendCellJson(std::ostream &os, const RunResult &r)
{
    os << "{\"benchmark\":" << quote(r.benchmark)
       << ",\"technique\":" << quote(r.technique)
       << ",\"family\":" << quote(techniqueName(r.tech))
       << ",\"generateSeconds\":" << fmtDouble(r.generateSeconds);
    // wall-clock metadata added after the v5 schema: emitted only
    // when nonzero so canonicalize()d output (which zeroes them)
    // keeps its historical bytes — the determinism pin digests those
    if (r.traceSeconds != 0.0)
        os << ",\"traceSeconds\":" << fmtDouble(r.traceSeconds);
    if (r.compileSeconds != 0.0)
        os << ",\"compileSeconds\":" << fmtDouble(r.compileSeconds);
    os << ",\"stats\":{";
    const char *sep = "";
#define X(f)                                                             \
    os << sep << "\"" #f "\":" << r.stats.f;                             \
    sep = ",";
    SIQ_CORE_STATS_FIELDS(X)
#undef X
    // speculative-front-end counters: nonzero-only, so oracle-mode
    // exports keep their historical bytes (and the determinism-pin
    // digest) — the same schema-evolution pattern as traceSeconds
#define X(f)                                                             \
    if (r.stats.f != 0)                                                  \
        os << ",\"" #f "\":" << r.stats.f;
    SIQ_CORE_SPEC_STATS_FIELDS(X)
#undef X
    os << "},\"iq\":{";
    sep = "";
#define X(f)                                                             \
    os << sep << "\"" #f "\":" << r.iq.f;                                \
    sep = ",";
    SIQ_IQ_EVENT_FIELDS(X)
#undef X
    os << "},\"compile\":{";
    sep = "";
#define X(f)                                                             \
    os << sep << "\"" #f "\":" << r.compile.f;                           \
    sep = ",";
    SIQ_COMPILE_STATS_FIELDS(X)
#undef X
    os << sep << "\"seconds\":" << fmtDouble(r.compile.seconds)
       << "}}";
}

RunResult
cellFromJson(const JsonValue &v)
{
    RunResult r;
    r.benchmark = v.at("benchmark").asString();
    r.technique = v.at("technique").asString();
    const std::string &family = v.at("family").asString();
    const auto tech = techniqueFromName(family);
    if (!tech)
        fatal("report JSON: unknown technique family '", family, "'");
    r.tech = *tech;
    r.generateSeconds = v.at("generateSeconds").asDouble();
    // optional (nonzero-only) keys — absent in pre-v6 and canonical
    // output, same schema-evolution pattern as the "seeds" key
    if (const JsonValue *ts = v.find("traceSeconds"))
        r.traceSeconds = ts->asDouble();
    if (const JsonValue *cs = v.find("compileSeconds"))
        r.compileSeconds = cs->asDouble();
    const JsonValue &stats = v.at("stats");
    const JsonValue &iq = v.at("iq");
    const JsonValue &compile = v.at("compile");
#define X(f) r.stats.f = stats.at(#f).asU64();
    SIQ_CORE_STATS_FIELDS(X)
#undef X
    // optional: absent whenever zero (always, in oracle mode)
#define X(f)                                                             \
    if (const JsonValue *sv = stats.find(#f))                            \
        r.stats.f = sv->asU64();
    SIQ_CORE_SPEC_STATS_FIELDS(X)
#undef X
#define X(f) r.iq.f = iq.at(#f).asU64();
    SIQ_IQ_EVENT_FIELDS(X)
#undef X
#define X(f)                                                             \
    r.compile.f =                                                        \
        static_cast<std::size_t>(compile.at(#f).asU64());
    SIQ_COMPILE_STATS_FIELDS(X)
#undef X
    r.compile.seconds = compile.at("seconds").asDouble();
    // pre-v6 exports carry annotation time only inside the compile
    // block; mirror it so macro-driven CSV re-export stays lossless
    if (r.compileSeconds == 0.0)
        r.compileSeconds = r.compile.seconds;
    return r;
}

void
appendMetricJson(std::ostream &os, const char *name,
                 const MetricAggregate &m)
{
    os << "\"" << name << "\":{\"mean\":" << fmtDouble(m.mean)
       << ",\"stddev\":" << fmtDouble(m.stddev)
       << ",\"ci95\":" << fmtDouble(m.ci95) << "}";
}

void
appendAggJson(std::ostream &os, const CellAggregate &agg)
{
    os << "{\"n\":" << agg.n << ",";
    appendMetricJson(os, "ipc", agg.ipc);
    os << ",\"stats\":{";
    const char *sep = "";
#define X(f)                                                             \
    os << sep;                                                           \
    appendMetricJson(os, #f, agg.stats_##f);                             \
    sep = ",";
    SIQ_CORE_STATS_FIELDS(X)
#undef X
    // spec counters are non-negative, so an all-zero replica set has
    // mean 0: gate on it to keep oracle aggregate bytes unchanged
#define X(f)                                                             \
    if (agg.stats_##f.mean != 0.0) {                                     \
        os << sep;                                                       \
        appendMetricJson(os, #f, agg.stats_##f);                         \
        sep = ",";                                                       \
    }
    SIQ_CORE_SPEC_STATS_FIELDS(X)
#undef X
    os << "},\"iq\":{";
    sep = "";
#define X(f)                                                             \
    os << sep;                                                           \
    appendMetricJson(os, #f, agg.iq_##f);                                \
    sep = ",";
    SIQ_IQ_EVENT_FIELDS(X)
#undef X
    os << "}}";
}

MetricAggregate
metricFromJson(const JsonValue &v)
{
    MetricAggregate m;
    m.mean = v.at("mean").asDouble();
    m.stddev = v.at("stddev").asDouble();
    m.ci95 = v.at("ci95").asDouble();
    return m;
}

CellAggregate
aggFromJson(const JsonValue &v)
{
    CellAggregate agg;
    agg.n = v.at("n").asU64();
    agg.ipc = metricFromJson(v.at("ipc"));
    const JsonValue &stats = v.at("stats");
    const JsonValue &iq = v.at("iq");
#define X(f) agg.stats_##f = metricFromJson(stats.at(#f));
    SIQ_CORE_STATS_FIELDS(X)
#undef X
#define X(f)                                                             \
    if (const JsonValue *sv = stats.find(#f))                            \
        agg.stats_##f = metricFromJson(*sv);
    SIQ_CORE_SPEC_STATS_FIELDS(X)
#undef X
#define X(f) agg.iq_##f = metricFromJson(iq.at(#f));
    SIQ_IQ_EVENT_FIELDS(X)
#undef X
    return agg;
}

} // namespace

// --------------------------------------------------------------- API

std::string
toJson(const RunResult &result)
{
    std::ostringstream os;
    appendCellJson(os, result);
    return os.str();
}

std::string
toJson(const PowerComparison &cmp)
{
    std::ostringstream os;
    os << "{\"iqDynamicSaving\":" << fmtDouble(cmp.iqDynamicSaving)
       << ",\"iqStaticSaving\":" << fmtDouble(cmp.iqStaticSaving)
       << ",\"rfDynamicSaving\":" << fmtDouble(cmp.rfDynamicSaving)
       << ",\"rfStaticSaving\":" << fmtDouble(cmp.rfStaticSaving)
       << ",\"nonEmptySaving\":" << fmtDouble(cmp.nonEmptySaving)
       << "}";
    return os.str();
}

void
writeJson(std::ostream &os, const SweepResult &result)
{
    os << "{\"benchmarks\":[";
    for (std::size_t i = 0; i < result.benchmarks.size(); i++)
        os << (i ? "," : "") << quote(result.benchmarks[i]);
    os << "],\"techniques\":[";
    for (std::size_t i = 0; i < result.techniques.size(); i++)
        os << (i ? "," : "") << quote(result.techniques[i]);
    os << "],\"jobs\":" << result.jobsUsed
       << ",\"wallSeconds\":" << fmtDouble(result.wallSeconds)
       << ",\"cache\":{\"workloadBuilds\":"
       << result.cache.workloadBuilds
       << ",\"workloadHits\":" << result.cache.workloadHits
       << ",\"compileBuilds\":" << result.cache.compileBuilds
       << ",\"compileHits\":" << result.cache.compileHits;
    // trace-cache counters (nonzero only with tracing on; all zeroed
    // by canonicalize()) stay out of the historical cache schema so
    // canonical bytes — and the determinism-pin digest — don't move
    if (result.cache.traceBuilds != 0 || result.cache.traceHits != 0 ||
        result.cache.traceEvicted != 0 ||
        result.cache.traceBytes != 0) {
        os << ",\"traceBuilds\":" << result.cache.traceBuilds
           << ",\"traceHits\":" << result.cache.traceHits
           << ",\"traceEvicted\":" << result.cache.traceEvicted
           << ",\"traceBytes\":" << result.cache.traceBytes;
    }
    os << "}";
    // replication block only when aggregates exist, so seeds == 1
    // output (and the empty matrix) keeps the unreplicated schema and
    // always reads back
    if (!result.aggregates.empty())
        os << ",\"seeds\":" << result.seeds;
    os << ",\"cells\":[";
    for (std::size_t i = 0; i < result.cells.size(); i++) {
        if (i)
            os << ",";
        os << "\n";
        appendCellJson(os, result.cells[i]);
    }
    os << "\n]";
    if (!result.aggregates.empty()) {
        os << ",\"aggregates\":[";
        for (std::size_t i = 0; i < result.aggregates.size(); i++) {
            if (i)
                os << ",";
            os << "\n";
            appendAggJson(os, result.aggregates[i]);
        }
        os << "\n]";
    }
    os << "}\n";
}

SweepResult
readJson(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();
    const JsonValue root = json::parse(text);

    SweepResult result;
    for (const auto &b : root.at("benchmarks").array)
        result.benchmarks.push_back(b.asString());
    for (const auto &t : root.at("techniques").array)
        result.techniques.push_back(t.asString());
    result.jobsUsed = static_cast<int>(root.at("jobs").asU64());
    result.wallSeconds = root.at("wallSeconds").asDouble();
    const JsonValue &cache = root.at("cache");
    result.cache.workloadBuilds = cache.at("workloadBuilds").asU64();
    result.cache.workloadHits = cache.at("workloadHits").asU64();
    result.cache.compileBuilds = cache.at("compileBuilds").asU64();
    result.cache.compileHits = cache.at("compileHits").asU64();
    if (const JsonValue *tb = cache.find("traceBuilds")) {
        result.cache.traceBuilds = tb->asU64();
        result.cache.traceHits = cache.at("traceHits").asU64();
        result.cache.traceEvicted = cache.at("traceEvicted").asU64();
        result.cache.traceBytes = cache.at("traceBytes").asU64();
    }
    for (const auto &cell : root.at("cells").array)
        result.cells.push_back(cellFromJson(cell));
    if (const JsonValue *seeds = root.find("seeds")) {
        result.seeds = static_cast<int>(seeds->asU64());
        for (const auto &agg : root.at("aggregates").array)
            result.aggregates.push_back(aggFromJson(agg));
        if (result.seeds < 2 ||
            result.aggregates.size() != result.cells.size())
            fatal("report JSON: aggregates do not match the matrix");
    }

    // SweepResult::at() assumes a complete technique-major matrix;
    // reject filtered, reordered or hand-edited cell arrays (the
    // same defence readCsv applies to row sets)
    const std::size_t nb = result.benchmarks.size();
    if (result.cells.size() != nb * result.techniques.size())
        fatal("report JSON: cell count does not match the matrix");
    for (std::size_t i = 0; i < result.cells.size(); i++) {
        const RunResult &r = result.cells[i];
        if (r.benchmark != result.benchmarks[i % nb] ||
            r.technique != result.techniques[i / nb])
            fatal("report JSON: cells are not in technique-major "
                  "matrix order (cell ", i, ")");
    }
    return result;
}

void
writeCsv(std::ostream &os, const SweepResult &result)
{
    const bool agg = !result.aggregates.empty();
    // speculative-front-end columns appear only when some cell ran
    // with the real front end, so oracle-mode CSVs keep their
    // historical bytes (same reasoning as the aggregate columns)
    bool spec = false;
    for (const RunResult &r : result.cells) {
#define X(f) spec = spec || r.stats.f != 0;
        SIQ_CORE_SPEC_STATS_FIELDS(X)
#undef X
    }
    os << "benchmark,technique,family";
#define X(f) os << "," #f;
    SIQ_RUN_TIMING_FIELDS(X)
#undef X
#define X(f) os << ",stats_" #f;
    SIQ_CORE_STATS_FIELDS(X)
    if (spec) {
        SIQ_CORE_SPEC_STATS_FIELDS(X)
    }
#undef X
#define X(f) os << ",iq_" #f;
    SIQ_IQ_EVENT_FIELDS(X)
#undef X
#define X(f) os << ",compile_" #f;
    SIQ_COMPILE_STATS_FIELDS(X)
#undef X
    // aggregate columns only when replicated, so seeds == 1 output is
    // byte-identical to the unreplicated schema
    if (agg) {
        os << ",n,ipc_mean,ipc_stddev,ipc_ci95";
#define X(f)                                                             \
    os << ",stats_" #f "_mean,stats_" #f "_stddev,stats_" #f "_ci95";
        SIQ_CORE_STATS_FIELDS(X)
        if (spec) {
            SIQ_CORE_SPEC_STATS_FIELDS(X)
        }
#undef X
#define X(f) os << ",iq_" #f "_mean,iq_" #f "_stddev,iq_" #f "_ci95";
        SIQ_IQ_EVENT_FIELDS(X)
#undef X
    }
    os << "\n";
    for (std::size_t i = 0; i < result.cells.size(); i++) {
        const RunResult &r = result.cells[i];
        os << r.benchmark << ',' << r.technique << ','
           << techniqueName(r.tech);
#define X(f) os << ',' << fmtDouble(r.f);
        SIQ_RUN_TIMING_FIELDS(X)
#undef X
#define X(f) os << ',' << r.stats.f;
        SIQ_CORE_STATS_FIELDS(X)
        if (spec) {
            SIQ_CORE_SPEC_STATS_FIELDS(X)
        }
#undef X
#define X(f) os << ',' << r.iq.f;
        SIQ_IQ_EVENT_FIELDS(X)
#undef X
#define X(f) os << ',' << r.compile.f;
        SIQ_COMPILE_STATS_FIELDS(X)
#undef X
        if (agg) {
            const CellAggregate &a = result.aggregates[i];
            auto metric = [&os](const MetricAggregate &m) {
                os << ',' << fmtDouble(m.mean) << ','
                   << fmtDouble(m.stddev) << ',' << fmtDouble(m.ci95);
            };
            os << ',' << a.n;
            metric(a.ipc);
#define X(f) metric(a.stats_##f);
            SIQ_CORE_STATS_FIELDS(X)
            if (spec) {
                SIQ_CORE_SPEC_STATS_FIELDS(X)
            }
#undef X
#define X(f) metric(a.iq_##f);
            SIQ_IQ_EVENT_FIELDS(X)
#undef X
        }
        os << "\n";
    }
}

SweepResult
readCsv(std::istream &is)
{
    auto split = [](const std::string &line) {
        std::vector<std::string> cells;
        std::string cur;
        for (char c : line) {
            if (c == ',') {
                cells.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        cells.push_back(cur);
        return cells;
    };

    std::string line;
    if (!std::getline(is, line))
        fatal("report CSV: empty input");
    const std::vector<std::string> headers = split(line);
    std::map<std::string, std::size_t> col;
    for (std::size_t i = 0; i < headers.size(); i++)
        col[headers[i]] = i;
    auto need = [&](const std::string &name) {
        auto it = col.find(name);
        if (it == col.end())
            fatal("report CSV: missing column '", name, "'");
        return it->second;
    };

    const bool agg = col.find("n") != col.end();
    // spec-mode CSVs (real front end) carry the speculation columns;
    // oracle-mode ones omit them entirely
    const bool spec = col.find("stats_wrongPathFetched") != col.end();

    SweepResult result;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        const std::vector<std::string> cells = split(line);
        if (cells.size() != headers.size())
            fatal("report CSV: row width mismatch");
        auto u64 = [&](const std::string &name) {
            return parseU64(cells[need(name)]);
        };
        auto dbl = [&](const std::string &name) {
            return parseDouble(cells[need(name)]);
        };
        RunResult r;
        r.benchmark = cells[need("benchmark")];
        r.technique = cells[need("technique")];
        const std::string &family = cells[need("family")];
        const auto tech = techniqueFromName(family);
        if (!tech)
            fatal("report CSV: unknown technique family '", family,
                  "'");
        r.tech = *tech;
        r.generateSeconds = dbl("generateSeconds");
        // optional: pre-v6 CSVs predate trace replay
        if (col.find("traceSeconds") != col.end())
            r.traceSeconds = dbl("traceSeconds");
        r.compileSeconds = dbl("compileSeconds");
        r.compile.seconds = r.compileSeconds;
#define X(f) r.stats.f = u64("stats_" #f);
        SIQ_CORE_STATS_FIELDS(X)
        if (spec) {
            SIQ_CORE_SPEC_STATS_FIELDS(X)
        }
#undef X
#define X(f) r.iq.f = u64("iq_" #f);
        SIQ_IQ_EVENT_FIELDS(X)
#undef X
#define X(f)                                                             \
    r.compile.f = static_cast<std::size_t>(u64("compile_" #f));
        SIQ_COMPILE_STATS_FIELDS(X)
#undef X
        result.cells.push_back(std::move(r));

        if (agg) {
            CellAggregate a;
            auto metric = [&](const std::string &base) {
                MetricAggregate m;
                m.mean = dbl(base + "_mean");
                m.stddev = dbl(base + "_stddev");
                m.ci95 = dbl(base + "_ci95");
                return m;
            };
            a.n = u64("n");
            a.ipc = metric("ipc");
#define X(f) a.stats_##f = metric("stats_" #f);
            SIQ_CORE_STATS_FIELDS(X)
            if (spec) {
                SIQ_CORE_SPEC_STATS_FIELDS(X)
            }
#undef X
#define X(f) a.iq_##f = metric("iq_" #f);
            SIQ_IQ_EVENT_FIELDS(X)
#undef X
            if (!result.aggregates.empty() &&
                result.aggregates.front().n != a.n)
                fatal("report CSV: inconsistent replica count n");
            result.aggregates.push_back(a);
        }

        const auto &added = result.cells.back();
        bool haveBench = false;
        for (const auto &b : result.benchmarks)
            haveBench = haveBench || b == added.benchmark;
        if (!haveBench)
            result.benchmarks.push_back(added.benchmark);
        bool haveTech = false;
        for (const auto &t : result.techniques)
            haveTech = haveTech || t == added.technique;
        if (!haveTech)
            result.techniques.push_back(added.technique);
    }

    if (!result.aggregates.empty())
        result.seeds = static_cast<int>(result.aggregates.front().n);

    // SweepResult::at() assumes a complete technique-major matrix;
    // reject filtered, reordered or hand-edited row sets
    const std::size_t nb = result.benchmarks.size();
    if (result.cells.size() != nb * result.techniques.size())
        fatal("report CSV: cell count does not match the matrix");
    for (std::size_t i = 0; i < result.cells.size(); i++) {
        const RunResult &r = result.cells[i];
        if (r.benchmark != result.benchmarks[i % nb] ||
            r.technique != result.techniques[i / nb])
            fatal("report CSV: rows are not in technique-major "
                  "matrix order (row ", i + 2, ")");
    }
    return result;
}

namespace
{

// -------------------------------------------------- spec (de)serial

void
appendCacheConfigJson(std::ostream &os, const CacheConfig &c)
{
    os << "{\"name\":" << quote(c.name) << ",\"sizeBytes\":"
       << c.sizeBytes << ",\"assoc\":" << c.assoc << ",\"lineBytes\":"
       << c.lineBytes << ",\"hitLatency\":" << c.hitLatency << "}";
}

CacheConfig
cacheConfigFromJson(const JsonValue &v)
{
    CacheConfig c;
    c.name = v.at("name").asString();
    c.sizeBytes = static_cast<std::uint32_t>(v.at("sizeBytes").asU64());
    c.assoc = static_cast<std::uint32_t>(v.at("assoc").asU64());
    c.lineBytes = static_cast<std::uint32_t>(v.at("lineBytes").asU64());
    c.hitLatency = v.at("hitLatency").asInt();
    return c;
}

void
appendRegFileConfigJson(std::ostream &os, const RegFileConfig &c)
{
    os << "{\"numPhys\":" << c.numPhys << ",\"numArch\":" << c.numArch
       << ",\"bankSize\":" << c.bankSize << "}";
}

RegFileConfig
regFileConfigFromJson(const JsonValue &v)
{
    RegFileConfig c;
    c.numPhys = v.at("numPhys").asInt();
    c.numArch = v.at("numArch").asInt();
    c.bankSize = v.at("bankSize").asInt();
    return c;
}

void
appendCoreConfigJson(std::ostream &os, const CoreConfig &c)
{
    os << "{\"fetchWidth\":" << c.fetchWidth
       << ",\"dispatchWidth\":" << c.dispatchWidth
       << ",\"issueWidth\":" << c.issueWidth
       << ",\"commitWidth\":" << c.commitWidth
       << ",\"decodeDepth\":" << c.decodeDepth
       << ",\"fetchQueueSize\":" << c.fetchQueueSize
       << ",\"robSize\":" << c.robSize
       << ",\"iq\":{\"numEntries\":" << c.iq.numEntries
       << ",\"bankSize\":" << c.iq.bankSize << "}"
       << ",\"lsq\":{\"numEntries\":" << c.lsq.numEntries << "}"
       << ",\"intRegs\":";
    appendRegFileConfigJson(os, c.intRegs);
    os << ",\"fpRegs\":";
    appendRegFileConfigJson(os, c.fpRegs);
    os << ",\"fuCounts\":[";
    for (std::size_t i = 0; i < c.fuCounts.size(); i++)
        os << (i ? "," : "") << c.fuCounts[i];
    os << "],\"bpred\":{\"gshareEntries\":" << c.bpred.gshareEntries
       << ",\"bimodalEntries\":" << c.bpred.bimodalEntries
       << ",\"selectorEntries\":" << c.bpred.selectorEntries
       << ",\"btbEntries\":" << c.bpred.btbEntries
       << ",\"btbAssoc\":" << c.bpred.btbAssoc
       << ",\"rasEntries\":" << c.bpred.rasEntries << "}";
    // present only when enabled, so oracle-mode exports (and the
    // determinism-pin digest over them) keep their historical bytes
    if (c.specFrontEnd)
        os << ",\"specFrontEnd\":true";
    os << ",\"mem\":{\"l1i\":";
    appendCacheConfigJson(os, c.mem.l1i);
    os << ",\"l1d\":";
    appendCacheConfigJson(os, c.mem.l1d);
    os << ",\"l2\":";
    appendCacheConfigJson(os, c.mem.l2);
    os << ",\"memLatency\":" << c.mem.memLatency << "}}";
}

CoreConfig
coreConfigFromJson(const JsonValue &v)
{
    CoreConfig c;
    c.fetchWidth = v.at("fetchWidth").asInt();
    c.dispatchWidth = v.at("dispatchWidth").asInt();
    c.issueWidth = v.at("issueWidth").asInt();
    c.commitWidth = v.at("commitWidth").asInt();
    c.decodeDepth = v.at("decodeDepth").asInt();
    c.fetchQueueSize = v.at("fetchQueueSize").asInt();
    c.robSize = v.at("robSize").asInt();
    c.iq.numEntries = v.at("iq").at("numEntries").asInt();
    c.iq.bankSize = v.at("iq").at("bankSize").asInt();
    c.lsq.numEntries = v.at("lsq").at("numEntries").asInt();
    c.intRegs = regFileConfigFromJson(v.at("intRegs"));
    c.fpRegs = regFileConfigFromJson(v.at("fpRegs"));
    const JsonValue &fu = v.at("fuCounts");
    if (fu.array.size() != c.fuCounts.size())
        fatal("spec JSON: fuCounts must have ", c.fuCounts.size(),
              " entries, got ", fu.array.size());
    for (std::size_t i = 0; i < c.fuCounts.size(); i++)
        c.fuCounts[i] = fu.array[i].asInt();
    const JsonValue &bp = v.at("bpred");
    c.bpred.gshareEntries =
        static_cast<std::uint32_t>(bp.at("gshareEntries").asU64());
    c.bpred.bimodalEntries =
        static_cast<std::uint32_t>(bp.at("bimodalEntries").asU64());
    c.bpred.selectorEntries =
        static_cast<std::uint32_t>(bp.at("selectorEntries").asU64());
    c.bpred.btbEntries =
        static_cast<std::uint32_t>(bp.at("btbEntries").asU64());
    c.bpred.btbAssoc =
        static_cast<std::uint32_t>(bp.at("btbAssoc").asU64());
    c.bpred.rasEntries =
        static_cast<std::uint32_t>(bp.at("rasEntries").asU64());
    if (const JsonValue *sfe = v.find("specFrontEnd"))
        c.specFrontEnd = sfe->asBool();
    const JsonValue &mem = v.at("mem");
    c.mem.l1i = cacheConfigFromJson(mem.at("l1i"));
    c.mem.l1d = cacheConfigFromJson(mem.at("l1d"));
    c.mem.l2 = cacheConfigFromJson(mem.at("l2"));
    c.mem.memLatency = mem.at("memLatency").asInt();
    return c;
}

void
appendRunConfigJson(std::ostream &os, const RunConfig &cfg)
{
    os << "{\"workload\":{\"scale\":" << cfg.workload.scale
       << ",\"repDivisor\":" << cfg.workload.repDivisor
       << ",\"seed\":" << cfg.workload.seed << "}"
       << ",\"warmupInsts\":" << cfg.warmupInsts
       << ",\"measureInsts\":" << cfg.measureInsts
       << ",\"minHint\":" << cfg.minHint
       << ",\"elideRedundant\":"
       << (cfg.elideRedundant ? "true" : "false")
       << ",\"unrollFactor\":" << cfg.unrollFactor << ",\"core\":";
    appendCoreConfigJson(os, cfg.core);
    os << ",\"abella\":{\"iqSize\":" << cfg.abella.iqSize
       << ",\"robSize\":" << cfg.abella.robSize
       << ",\"portion\":" << cfg.abella.portion
       << ",\"minIq\":" << cfg.abella.minIq
       << ",\"robFloor\":" << cfg.abella.robFloor
       << ",\"intervalCycles\":" << cfg.abella.intervalCycles
       << ",\"slackPortions\":" << cfg.abella.slackPortions
       << ",\"stallFractionToGrow\":"
       << fmtDouble(cfg.abella.stallFractionToGrow) << "}"
       << ",\"folegnani\":{\"iqSize\":" << cfg.folegnani.iqSize
       << ",\"portion\":" << cfg.folegnani.portion
       << ",\"minSize\":" << cfg.folegnani.minSize
       << ",\"intervalCycles\":" << cfg.folegnani.intervalCycles
       << ",\"contributionThreshold\":"
       << cfg.folegnani.contributionThreshold
       << ",\"expandPeriod\":" << cfg.folegnani.expandPeriod << "}}";
}

RunConfig
runConfigFromJson(const JsonValue &v)
{
    RunConfig cfg;
    const JsonValue &w = v.at("workload");
    cfg.workload.scale = w.at("scale").asInt();
    cfg.workload.repDivisor = w.at("repDivisor").asInt();
    cfg.workload.seed = w.at("seed").asU64();
    cfg.warmupInsts = v.at("warmupInsts").asU64();
    cfg.measureInsts = v.at("measureInsts").asU64();
    cfg.minHint = v.at("minHint").asInt();
    cfg.elideRedundant = v.at("elideRedundant").asBool();
    cfg.unrollFactor = v.at("unrollFactor").asInt();
    cfg.core = coreConfigFromJson(v.at("core"));
    const JsonValue &ab = v.at("abella");
    cfg.abella.iqSize = ab.at("iqSize").asInt();
    cfg.abella.robSize = ab.at("robSize").asInt();
    cfg.abella.portion = ab.at("portion").asInt();
    cfg.abella.minIq = ab.at("minIq").asInt();
    cfg.abella.robFloor = ab.at("robFloor").asInt();
    cfg.abella.intervalCycles = ab.at("intervalCycles").asU64();
    cfg.abella.slackPortions = ab.at("slackPortions").asInt();
    cfg.abella.stallFractionToGrow =
        ab.at("stallFractionToGrow").asDouble();
    const JsonValue &fo = v.at("folegnani");
    cfg.folegnani.iqSize = fo.at("iqSize").asInt();
    cfg.folegnani.portion = fo.at("portion").asInt();
    cfg.folegnani.minSize = fo.at("minSize").asInt();
    cfg.folegnani.intervalCycles = fo.at("intervalCycles").asU64();
    cfg.folegnani.contributionThreshold =
        fo.at("contributionThreshold").asU64();
    cfg.folegnani.expandPeriod = fo.at("expandPeriod").asInt();
    return cfg;
}

} // namespace

namespace
{

/** One benchmark-axis entry: the structured WorkloadSpec form.
 *  "params" is present only when overrides exist, so parameterless
 *  families stay minimal. Validates (and canonicalizes) through the
 *  family registry. */
void
appendWorkloadSpecJson(std::ostream &os, const std::string &text)
{
    const auto spec = workloads::WorkloadSpec::parse(text);
    os << "{\"family\":" << quote(spec.family);
    if (!spec.params.empty()) {
        os << ",\"params\":{";
        const char *sep = "";
        for (const auto &[name, value] : spec.params) {
            os << sep << quote(name) << ":" << value;
            sep = ",";
        }
        os << "}";
    }
    os << "}";
}

/** Accepts both the structured object form and (for hand-written
 *  specs) a plain string; returns the canonical spec string. */
std::string
workloadSpecFromJson(const JsonValue &v)
{
    if (v.kind == JsonValue::Kind::String)
        return workloads::canonicalWorkload(v.asString());
    std::string text = v.at("family").asString();
    if (const JsonValue *params = v.find("params")) {
        for (const auto &[name, value] : params->object) {
            if (value.kind != JsonValue::Kind::Number)
                fatal("spec JSON: workload parameter '", name,
                      "' must be an integer");
            text += ':' + name + '=' + value.token;
        }
    }
    return workloads::canonicalWorkload(text);
}

} // namespace

void
writeSpecJson(std::ostream &os, const SweepSpec &spec)
{
    os << "{\"benchmarks\":[";
    for (std::size_t i = 0; i < spec.benchmarks.size(); i++) {
        os << (i ? "," : "");
        appendWorkloadSpecJson(os, spec.benchmarks[i]);
    }
    os << "],\"techniques\":[";
    for (std::size_t i = 0; i < spec.techniques.size(); i++)
        os << (i ? "," : "") << quote(spec.techniques[i]);
    os << "],\"jobs\":" << spec.jobs << ",\"seeds\":" << spec.seeds
       << ",\n\"base\":";
    appendRunConfigJson(os, spec.base);
    os << "}\n";
}

std::string
toJson(const SweepSpec &spec)
{
    std::ostringstream os;
    writeSpecJson(os, spec);
    return os.str();
}

SweepSpec
specFromJson(const json::Value &root)
{
    SweepSpec spec;
    for (const auto &b : root.at("benchmarks").array)
        spec.benchmarks.push_back(workloadSpecFromJson(b));
    for (const auto &t : root.at("techniques").array)
        spec.techniques.push_back(t.asString());
    spec.jobs = root.at("jobs").asInt();
    spec.seeds = root.at("seeds").asInt();
    if (spec.seeds < 0)
        fatal("spec JSON: seeds must be >= 0, got ", spec.seeds);
    spec.base = runConfigFromJson(root.at("base"));
    for (const auto &t : spec.techniques) {
        if (findTechnique(t) == nullptr)
            fatal("spec JSON: unknown technique '", t, "'");
    }
    return spec;
}

SweepSpec
readSpecJson(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    return specFromJson(json::parse(buf.str()));
}

Result<SweepSpec>
trySpecFromJson(const json::Value &root)
{
    return asResult([&] { return specFromJson(root); });
}

Result<SweepSpec>
tryReadSpecJson(const std::string &text)
{
    return asResult(
        [&] { return specFromJson(json::parse(text)); });
}

std::string
toJson(const CellCheckpoint &ckpt)
{
    std::ostringstream os;
    os << "{\"index\":" << ckpt.index << ",\"seeds\":" << ckpt.seeds
       << ",\"cell\":";
    appendCellJson(os, ckpt.cell);
    if (ckpt.seeds > 1) {
        os << ",\"aggregate\":";
        appendAggJson(os, ckpt.aggregate);
    }
    os << "}\n";
    return os.str();
}

CellCheckpoint
cellCheckpointFromJson(const std::string &text)
{
    const JsonValue root = json::parse(text);
    CellCheckpoint ckpt;
    ckpt.index = static_cast<std::size_t>(root.at("index").asU64());
    ckpt.seeds = root.at("seeds").asInt();
    if (ckpt.seeds < 1)
        fatal("checkpoint JSON: seeds must be >= 1, got ", ckpt.seeds);
    ckpt.cell = cellFromJson(root.at("cell"));
    if (ckpt.seeds > 1)
        ckpt.aggregate = aggFromJson(root.at("aggregate"));
    return ckpt;
}

std::string
toJson(const SweepCacheStats &cache)
{
    std::ostringstream os;
    os << "{\"workloadBuilds\":" << cache.workloadBuilds
       << ",\"workloadHits\":" << cache.workloadHits
       << ",\"compileBuilds\":" << cache.compileBuilds
       << ",\"compileHits\":" << cache.compileHits
       << ",\"traceBuilds\":" << cache.traceBuilds
       << ",\"traceHits\":" << cache.traceHits
       << ",\"traceEvicted\":" << cache.traceEvicted
       << ",\"traceBytes\":" << cache.traceBytes << "}";
    return os.str();
}

SweepCacheStats
cacheStatsFromJson(const std::string &text)
{
    const JsonValue root = json::parse(text);
    SweepCacheStats s;
    s.workloadBuilds = root.at("workloadBuilds").asU64();
    s.workloadHits = root.at("workloadHits").asU64();
    s.compileBuilds = root.at("compileBuilds").asU64();
    s.compileHits = root.at("compileHits").asU64();
    s.traceBuilds = root.at("traceBuilds").asU64();
    s.traceHits = root.at("traceHits").asU64();
    s.traceEvicted = root.at("traceEvicted").asU64();
    s.traceBytes = root.at("traceBytes").asU64();
    return s;
}

void
canonicalize(RunResult &cell)
{
#define X(f) cell.f = 0.0;
    SIQ_RUN_TIMING_FIELDS(X)
#undef X
    cell.compile.seconds = 0.0;
}

void
canonicalize(SweepResult &result)
{
    result.jobsUsed = 0;
    result.wallSeconds = 0.0;
    result.cache = SweepCacheStats{};
    for (auto &cell : result.cells)
        canonicalize(cell);
}

void
writePowerCsv(std::ostream &os, const SweepResult &result,
              const std::string &baselineTechnique,
              const power::IqPowerParams &iqParams,
              const power::RfPowerParams &rfParams)
{
    std::size_t baseIdx = result.techniques.size();
    for (std::size_t t = 0; t < result.techniques.size(); t++) {
        if (result.techniques[t] == baselineTechnique)
            baseIdx = t;
    }
    if (baseIdx == result.techniques.size())
        fatal("power CSV: baseline technique '", baselineTechnique,
              "' not in the sweep");

    os << "benchmark,technique,iqDynamicSaving,iqStaticSaving,"
          "rfDynamicSaving,rfStaticSaving,nonEmptySaving\n";
    for (std::size_t t = 0; t < result.techniques.size(); t++) {
        if (t == baseIdx)
            continue;
        for (std::size_t b = 0; b < result.benchmarks.size(); b++) {
            const auto cmp =
                comparePower(result.at(baseIdx, b), result.at(t, b),
                             iqParams, rfParams);
            os << result.benchmarks[b] << ','
               << result.techniques[t] << ','
               << fmtDouble(cmp.iqDynamicSaving) << ','
               << fmtDouble(cmp.iqStaticSaving) << ','
               << fmtDouble(cmp.rfDynamicSaving) << ','
               << fmtDouble(cmp.rfStaticSaving) << ','
               << fmtDouble(cmp.nonEmptySaving) << "\n";
        }
    }
}

} // namespace siq::sim
