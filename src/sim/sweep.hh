/**
 * @file
 * The experiment engine: a declarative sweep (benchmarks × techniques
 * × config overrides) fanned out over a worker thread pool, with the
 * two expensive, technique-independent artifacts cached and shared
 * read-only across cells:
 *
 *  - generated workload programs, keyed by (benchmark, workload
 *    params) — built once per benchmark no matter how many
 *    techniques run it;
 *  - compiled (hint-annotated) programs, keyed by (workload key,
 *    full compiler configuration) — built once per distinct
 *    annotation and shared by every cell that asks for it.
 *
 * Caches are per-runner and persist across run() calls, so an
 * ablation binary that runs several sweeps over the same suite pays
 * workload synthesis once. Both caches build under a shared_future so
 * concurrent first requests block instead of duplicating work; the
 * build/hit counters in SweepCacheStats are therefore exact.
 *
 * Determinism: results are written into a pre-sized matrix slot per
 * cell (technique-major, matching the figure harnesses' historical
 * loop order), so the output order never depends on scheduling, and
 * each cell's simulation is a pure function of its config — a
 * threaded sweep is bit-identical to serial runOne calls (wall-clock
 * metadata aside). See DESIGN.md §6.
 */

#ifndef SIQ_SIM_SWEEP_HH
#define SIQ_SIM_SWEEP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace siq::sim
{

/** Identity of one sweep cell, passed to the per-cell override. */
struct CellKey
{
    std::size_t benchIdx = 0;
    std::size_t techIdx = 0;
    std::string benchmark;
    std::string technique;
};

/** A declarative experiment matrix. */
struct SweepSpec
{
    /** Workloads to run (workloads::benchmarkNames() order usual). */
    std::vector<std::string> benchmarks;
    /** Registry technique names (built-ins or registered variants). */
    std::vector<std::string> techniques;
    /** Config every cell starts from (tech field is ignored). */
    RunConfig base;
    /**
     * Optional per-cell override, applied after the base config is
     * copied. Must be deterministic in the key (it runs on worker
     * threads, possibly concurrently). Note that overrides changing
     * workload params or compiler knobs split the caches by design.
     */
    std::function<void(RunConfig &, const CellKey &)> perCell;
    /** Worker threads; 0 defers to the runner's constructor default
     *  (which in turn defaults to hardware concurrency). */
    int jobs = 0;
};

/** Exact cache accounting for one or more run() calls. */
struct SweepCacheStats
{
    std::uint64_t workloadBuilds = 0;
    std::uint64_t workloadHits = 0;
    std::uint64_t compileBuilds = 0;
    std::uint64_t compileHits = 0;

    bool operator==(const SweepCacheStats &) const = default;
};

/** The completed matrix, in deterministic technique-major order. */
struct SweepResult
{
    std::vector<std::string> benchmarks;
    std::vector<std::string> techniques;
    /** cells[t * benchmarks.size() + b]. */
    std::vector<RunResult> cells;
    /** Cache counters accumulated by the runner so far. */
    SweepCacheStats cache;
    int jobsUsed = 1;
    double wallSeconds = 0.0;

    const RunResult &
    at(std::size_t techIdx, std::size_t benchIdx) const
    {
        return cells[techIdx * benchmarks.size() + benchIdx];
    }

    /** Cell for a technique name; fatal when not in the sweep. */
    const RunResult &at(const std::string &technique,
                        std::size_t benchIdx) const;
};

/** Threaded sweep runner with per-runner program caches. */
class ExperimentRunner
{
  public:
    /** @param jobs default worker count for specs with jobs == 0
     *  (0 = hardware concurrency). */
    explicit ExperimentRunner(int jobs = 0);
    ~ExperimentRunner();

    ExperimentRunner(const ExperimentRunner &) = delete;
    ExperimentRunner &operator=(const ExperimentRunner &) = delete;

    /** Run the whole matrix; blocks until every cell finished. */
    SweepResult run(const SweepSpec &spec);

    /** Cache counters accumulated across all run() calls so far. */
    SweepCacheStats cacheStats() const;

    /**
     * Deterministic per-cell seed derivation (splitmix64 over the
     * base seed and the cell coordinates) for specs that want
     * decorrelated workloads per cell without depending on thread
     * scheduling.
     */
    static std::uint64_t mixSeed(std::uint64_t base, std::uint64_t a,
                                 std::uint64_t b);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/**
 * True when two results carry identical measurements: same cell
 * identity, bit-identical core stats, IQ events and compile counters.
 * Wall-clock fields (generateSeconds, compile.seconds) are excluded —
 * they are the only fields that legitimately differ between a serial
 * and a cached/threaded run of the same cell.
 */
bool identicalMeasurement(const RunResult &a, const RunResult &b);

} // namespace siq::sim

#endif // SIQ_SIM_SWEEP_HH
