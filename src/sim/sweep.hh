/**
 * @file
 * The experiment engine: a declarative sweep (benchmarks × techniques
 * × config overrides) fanned out over a worker thread pool, with the
 * two expensive, technique-independent artifacts cached and shared
 * read-only across cells:
 *
 *  - generated workload programs, keyed by (benchmark, workload
 *    params) — built once per benchmark no matter how many
 *    techniques run it;
 *  - compiled (hint-annotated) programs, keyed by (workload key,
 *    full compiler configuration) — built once per distinct
 *    annotation and shared by every cell that asks for it;
 *  - functional traces (cpu/trace.hh), keyed by the program's content
 *    hash — the interpreter runs once per distinct program and every
 *    cell replays the shared trace, byte-identical by construction.
 *    Bounded by SIQSIM_TRACE_CACHE_MB (LRU eviction of unreferenced
 *    traces); SIQSIM_TRACE=0 disables replay entirely (DESIGN.md §11).
 *
 * Caches are per-runner and persist across run() calls, so an
 * ablation binary that runs several sweeps over the same suite pays
 * workload synthesis once. Both caches build under a shared_future so
 * concurrent first requests block instead of duplicating work; the
 * build/hit counters in SweepCacheStats are therefore exact.
 *
 * Determinism: results are written into a pre-sized matrix slot per
 * cell (technique-major, matching the figure harnesses' historical
 * loop order), so the output order never depends on scheduling, and
 * each cell's simulation is a pure function of its config — a
 * threaded sweep is bit-identical to serial runOne calls (wall-clock
 * metadata aside). See DESIGN.md §6.
 *
 * Replication: SweepSpec::seeds = N runs every cell N times with
 * decorrelated workload seeds (mixSeed over the replica index) and
 * aggregates each metric into mean / stddev / 95% CI (CellAggregate,
 * built on common/stats RunningStats). Replica 0 keeps the configured
 * seed, so the result cells of a replicated sweep are bit-identical
 * to an unreplicated one. See DESIGN.md §7.
 *
 * Distribution: CellHooks lets a caller run any subset of the cell
 * list (shard selection, resume) and observe each cell the moment it
 * finishes (incremental checkpointing) — the substrate of the
 * sharded/checkpointed layer in sim/checkpoint.hh. See DESIGN.md §8.
 */

#ifndef SIQ_SIM_SWEEP_HH
#define SIQ_SIM_SWEEP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hh"
#include "sim/fields.hh"
#include "sim/simulator.hh"

namespace siq::sim
{

/** Identity of one sweep cell, passed to the per-cell override. */
struct CellKey
{
    std::size_t benchIdx = 0;
    std::size_t techIdx = 0;
    /** Replica index, 0 .. seeds-1 (0 when unreplicated). The
     *  override sees it for labelling only; workload-seed mixing
     *  happens after the override so per-cell seed choices still get
     *  decorrelated replicas. */
    std::size_t rep = 0;
    std::string benchmark;
    std::string technique;
};

/** A declarative experiment matrix. */
struct SweepSpec
{
    /**
     * Workloads to run: workload spec strings — plain family names
     * ("gzip", workloads::benchmarkNames() order usual) or
     * parameterized ones ("phased:period=60000"), resolved through
     * the family registry (workloads/family.hh). The engine
     * canonicalizes each entry up front (fatal on unknown families,
     * listing the registered ones), and the canonical form is what
     * cells, cache keys and exports carry.
     */
    std::vector<std::string> benchmarks;
    /** Registry technique names (built-ins or registered variants). */
    std::vector<std::string> techniques;
    /** Config every cell starts from (tech field is ignored). */
    RunConfig base;
    /**
     * Optional per-cell override, applied after the base config is
     * copied. Must be deterministic in the key (it runs on worker
     * threads, possibly concurrently). Note that overrides changing
     * workload params or compiler knobs split the caches by design.
     */
    std::function<void(RunConfig &, const CellKey &)> perCell;
    /** Worker threads; 0 defers to the runner's constructor default
     *  (which in turn defaults to hardware concurrency). */
    int jobs = 0;
    /**
     * Replicas per cell. Each cell runs this many times: replica 0
     * with the configured workload seed, replica r > 0 with
     * mixSeed(seed, r, 0). Replica seeds depend only on the replica
     * index, so a given replica sees the same workload program under
     * every technique (paired comparisons, one workload cache entry
     * shared across techniques). 1 = no replication (current
     * behaviour, bit-identical); 0 defers to the SIQSIM_SEEDS
     * environment variable (default 1).
     */
    int seeds = 0;
};

/** Exact cache accounting for one or more run() calls. */
struct SweepCacheStats
{
    std::uint64_t workloadBuilds = 0;
    std::uint64_t workloadHits = 0;
    std::uint64_t compileBuilds = 0;
    std::uint64_t compileHits = 0;
    /// @name Trace cache (all zero when SIQSIM_TRACE=0).
    /// @{
    std::uint64_t traceBuilds = 0;
    std::uint64_t traceHits = 0;
    std::uint64_t traceEvicted = 0;
    /** Trace arena bytes resident at sampling time (not cumulative). */
    std::uint64_t traceBytes = 0;
    /// @}

    bool operator==(const SweepCacheStats &) const = default;
};

/** Mean / sample stddev / normal-approximation 95% CI half-width of
 *  one metric over a cell's replicas (common/stats RunningStats). */
struct MetricAggregate
{
    double mean = 0.0;
    double stddev = 0.0;
    double ci95 = 0.0;

    bool operator==(const MetricAggregate &) const = default;
};

/**
 * Replication aggregate of one sweep cell: every core/IQ counter plus
 * the derived IPC, each summarized over the cell's n replicas in
 * replica order (so the aggregate is a deterministic function of the
 * replica results, independent of thread scheduling). Compile
 * counters are not aggregated — they are a property of each replica's
 * program, not a noisy measurement.
 */
struct CellAggregate
{
    std::uint64_t n = 0; ///< replicas folded in
#define X(f) MetricAggregate stats_##f;
    SIQ_CORE_STATS_FIELDS(X)
    SIQ_CORE_SPEC_STATS_FIELDS(X)
#undef X
#define X(f) MetricAggregate iq_##f;
    SIQ_IQ_EVENT_FIELDS(X)
#undef X
    MetricAggregate ipc;

    bool operator==(const CellAggregate &) const = default;
};

/** The completed matrix, in deterministic technique-major order. */
struct SweepResult
{
    /** The spec's benchmark axis, in sweep order. */
    std::vector<std::string> benchmarks;
    /** The spec's technique axis, in sweep order. */
    std::vector<std::string> techniques;
    /** cells[t * benchmarks.size() + b]. Always the replica-0 run
     *  (the configured seed), so a replicated sweep's cells match an
     *  unreplicated sweep bit-for-bit. */
    std::vector<RunResult> cells;
    /** Cache counters accumulated by the runner so far. */
    SweepCacheStats cache;
    int jobsUsed = 1;
    double wallSeconds = 0.0;
    /** Replicas aggregated per cell (1 = no replication). */
    int seeds = 1;
    /** Per-cell aggregates, parallel to cells; empty when seeds == 1. */
    std::vector<CellAggregate> aggregates;

    const RunResult &
    at(std::size_t techIdx, std::size_t benchIdx) const
    {
        return cells[techIdx * benchmarks.size() + benchIdx];
    }

    /** Cell for a technique name; fatal when not in the sweep. */
    const RunResult &at(const std::string &technique,
                        std::size_t benchIdx) const;

    /** Aggregate by matrix position; fatal when the sweep was not
     *  replicated (seeds == 1 keeps aggregates empty). */
    const CellAggregate &aggAt(std::size_t techIdx,
                               std::size_t benchIdx) const;

    /** Aggregate for a technique name; fatal when not in the sweep
     *  or when the sweep was not replicated. */
    const CellAggregate &aggAt(const std::string &technique,
                               std::size_t benchIdx) const;
};

/**
 * Per-cell execution hooks for distributed / checkpointed runs.
 *
 * Both callbacks identify cells by their technique-major index
 * (`techIdx * benchmarks.size() + benchIdx`), the same stable index
 * `SweepResult::cells` uses — the index a shard partition or a
 * checkpoint directory keys on (DESIGN.md §8).
 */
struct CellHooks
{
    /**
     * Cell filter. Return false to skip the cell entirely (its
     * result slot stays default-constructed, onCellDone never fires
     * for it). Null = run every cell. Used for shard selection, for
     * resuming past already checkpointed cells, and for mid-run
     * cancellation.
     *
     * Consulted up to twice per cell: once up front when the cell
     * list is built (in stable index order, so shard partitions are
     * deterministic), and again — possibly from a worker thread —
     * when the cell's first replica is picked up for execution, so a
     * filter that turns false while the sweep is in flight drains
     * the not-yet-started cells. Implementations must therefore be
     * idempotent and thread-safe; a cell whose execution already
     * began completes regardless.
     */
    std::function<bool(std::size_t cellIdx)> shouldRun;
    /**
     * Called exactly once per executed cell, as soon as its last
     * replica finishes — while other cells may still be running, so
     * long sweeps can checkpoint incrementally instead of only after
     * the final join. Runs on a worker thread: implementations must
     * be thread-safe (concurrent calls for different cells); a thrown
     * exception aborts the sweep and rethrows from run().
     * @p rep0 is the replica-0 (configured-seed) result;
     * @p agg is the cell's replica aggregate, or nullptr when the
     * sweep is unreplicated (seeds == 1). Both point at engine-owned
     * storage that stays valid until run() returns. Cells whose
     * replicas threw are never reported.
     */
    std::function<void(std::size_t cellIdx, const CellKey &key,
                       const RunResult &rep0, const CellAggregate *agg)>
        onCellDone;
};

/** Threaded sweep runner with per-runner program caches. */
class ExperimentRunner
{
  public:
    /** @param jobs default worker count for specs with jobs == 0
     *  (0 = hardware concurrency). */
    explicit ExperimentRunner(int jobs = 0);
    ~ExperimentRunner();

    ExperimentRunner(const ExperimentRunner &) = delete;
    ExperimentRunner &operator=(const ExperimentRunner &) = delete;

    /** Run the whole matrix; blocks until every cell finished. */
    SweepResult run(const SweepSpec &spec);

    /**
     * Run the matrix with per-cell hooks: cells rejected by
     * @p hooks.shouldRun are skipped (their result slots stay
     * default-constructed) and every executed cell is reported
     * through @p hooks.onCellDone as it completes. With empty hooks
     * this is exactly run(spec).
     */
    SweepResult run(const SweepSpec &spec, const CellHooks &hooks);

    /** Cache counters accumulated across all run() calls so far. */
    SweepCacheStats cacheStats() const;

    /**
     * Deterministic per-cell seed derivation (splitmix64 over the
     * base seed and the cell coordinates) for specs that want
     * decorrelated workloads per cell without depending on thread
     * scheduling.
     */
    static std::uint64_t mixSeed(std::uint64_t base, std::uint64_t a,
                                 std::uint64_t b);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/**
 * True when two results carry identical measurements: same cell
 * identity, bit-identical core stats, IQ events and compile counters.
 * Wall-clock fields (generateSeconds, traceSeconds, compileSeconds,
 * compile.seconds) are excluded — they are the only fields that
 * legitimately differ between a serial and a cached/threaded run of
 * the same cell.
 */
bool identicalMeasurement(const RunResult &a, const RunResult &b);

/// @name Environment knobs (recoverable parsers).
/// Internally the engine reads these via fatal()-style wrappers; a
/// long-lived host (sim/serve.cc) validates them up front with these
/// so a malformed environment is reported once at startup rather
/// than unwinding out of a tenant's run.
/// @{

/** SIQSIM_TRACE_CACHE_MB caps the trace cache; default 512 MiB, 0 =
 *  unbounded. Error on non-integer or negative values. */
Result<std::uint64_t> tryTraceCapBytesFromEnv();

/** SIQSIM_SEEDS for specs that defer (seeds == 0); default 1. Error
 *  on non-positive or malformed values. */
Result<int> trySeedsFromEnv();

/// @}

} // namespace siq::sim

#endif // SIQ_SIM_SWEEP_HH
