#include "sim/trace_cache.hh"

#include "common/logging.hh"

namespace siq::sim
{

TraceCache::TraceCache(std::uint64_t capBytes)
    : state(std::make_shared<State>(capBytes))
{
}

TraceCache::~TraceCache()
{
    std::lock_guard lock(state->mu);
    std::uint64_t pinned = 0;
    for (const Entry &e : state->lru)
        pinned += e.refs > 0;
    if (pinned > 0) {
        warn("trace cache destroyed with ", pinned,
             " pinned entries; their traces outlive the cache");
    }
}

std::shared_ptr<FuncTrace>
TraceCache::get(std::shared_ptr<const Program> prog)
{
    const std::uint64_t key = prog->contentHash;
    std::shared_ptr<FuncTrace> trace;
    {
        std::lock_guard lock(state->mu);
        Entry *entry;
        if (const auto it = state->index.find(key);
            it != state->index.end()) {
            state->lru.splice(state->lru.begin(), state->lru,
                              it->second);
            state->_hits++;
            entry = &*it->second;
            state->refreshBytes(*entry);
        } else {
            state->lru.push_front(Entry{
                key, std::make_shared<FuncTrace>(std::move(prog)), 0,
                0});
            state->index[key] = state->lru.begin();
            state->_builds++;
            entry = &state->lru.front();
            state->refreshBytes(*entry);
        }
        entry->refs++;
        state->enforceCap(); // the fresh/hit entry is pinned by refs,
                             // never itself a victim
        state->checkResident();
        trace = entry->trace;
    }
    // The handle co-owns the trace (`owned`), so it stays valid even
    // if the cache — and with it the entry's own shared_ptr — is
    // destroyed first; the deleter then finds `weak` expired and
    // skips the bookkeeping.
    std::weak_ptr<State> weak = state;
    FuncTrace *raw = trace.get();
    return std::shared_ptr<FuncTrace>(
        raw,
        [weak, owned = std::move(trace), key](FuncTrace *) mutable {
            if (const auto s = weak.lock())
                s->release(key);
            owned.reset();
        });
}

void
TraceCache::State::release(std::uint64_t key)
{
    std::lock_guard lock(mu);
    const auto it = index.find(key);
    SIQ_ASSERT(it != index.end() && it->second->refs > 0,
               "trace cache release of an unknown or unpinned entry");
    it->second->refs--;
    // the entry may have grown well past the cap while pinned: this is
    // the moment the growth becomes visible and the entry evictable,
    // so account and re-enforce now
    refreshBytes(*it->second);
    enforceCap();
    checkResident();
}

void
TraceCache::State::refreshBytes(Entry &e)
{
    const std::uint64_t now = e.trace->bytes();
    resident += now - e.bytesSeen;
    e.bytesSeen = now;
}

void
TraceCache::State::enforceCap()
{
    if (cap == 0)
        return;
    auto it = lru.end();
    while (resident > cap && it != lru.begin()) {
        --it;
        if (it->refs > 0)
            continue;
        resident -= it->bytesSeen;
        index.erase(it->key);
        it = lru.erase(it);
        _evicted++;
    }
}

void
TraceCache::State::checkResident() const
{
#ifndef NDEBUG
    std::uint64_t sum = 0;
    for (const Entry &e : lru)
        sum += e.bytesSeen;
    SIQ_ASSERT(sum == resident,
               "trace cache resident-bytes counter out of sync");
#endif
}

std::uint64_t
TraceCache::builds() const
{
    std::lock_guard lock(state->mu);
    return state->_builds;
}

std::uint64_t
TraceCache::hits() const
{
    std::lock_guard lock(state->mu);
    return state->_hits;
}

std::uint64_t
TraceCache::evicted() const
{
    std::lock_guard lock(state->mu);
    return state->_evicted;
}

std::uint64_t
TraceCache::residentBytes() const
{
    // fold in any growth of currently-pinned entries so the report is
    // live; this is the one O(entries) walk left, on the stats query
    // path rather than on every get/release
    std::lock_guard lock(state->mu);
    for (Entry &e : state->lru)
        state->refreshBytes(e);
    state->checkResident();
    return state->resident;
}

std::uint64_t
TraceCache::pinnedEntries() const
{
    std::lock_guard lock(state->mu);
    std::uint64_t pinned = 0;
    for (const Entry &e : state->lru)
        pinned += e.refs > 0;
    return pinned;
}

} // namespace siq::sim
