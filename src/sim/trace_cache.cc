#include "sim/trace_cache.hh"

#include "common/logging.hh"

namespace siq::sim
{

std::shared_ptr<FuncTrace>
TraceCache::get(std::shared_ptr<const Program> prog)
{
    const std::uint64_t key = prog->contentHash;
    std::lock_guard lock(mu);
    Entry *entry;
    if (const auto it = index.find(key); it != index.end()) {
        lru.splice(lru.begin(), lru, it->second);
        _hits++;
        entry = &*it->second;
    } else {
        lru.push_front(
            Entry{key, std::make_shared<FuncTrace>(std::move(prog)), 0});
        index[key] = lru.begin();
        _builds++;
        entry = &lru.front();
    }
    entry->refs++;
    enforceCap(); // the fresh/hit entry is pinned by refs, never itself
                  // a victim
    return std::shared_ptr<FuncTrace>(
        entry->trace.get(),
        [this, key](FuncTrace *) { release(key); });
}

void
TraceCache::release(std::uint64_t key)
{
    std::lock_guard lock(mu);
    const auto it = index.find(key);
    SIQ_ASSERT(it != index.end() && it->second->refs > 0,
               "trace cache release of an unknown or unpinned entry");
    it->second->refs--;
    // the entry may have grown well past the cap while pinned: this is
    // the moment it becomes evictable, so re-enforce now
    enforceCap();
}

void
TraceCache::enforceCap()
{
    if (cap == 0)
        return;
    std::uint64_t resident = 0;
    for (const Entry &e : lru)
        resident += e.trace->bytes();
    auto it = lru.end();
    while (resident > cap && it != lru.begin()) {
        --it;
        if (it->refs > 0)
            continue;
        resident -= it->trace->bytes();
        index.erase(it->key);
        it = lru.erase(it);
        _evicted++;
    }
}

std::uint64_t
TraceCache::builds() const
{
    std::lock_guard lock(mu);
    return _builds;
}

std::uint64_t
TraceCache::hits() const
{
    std::lock_guard lock(mu);
    return _hits;
}

std::uint64_t
TraceCache::evicted() const
{
    std::lock_guard lock(mu);
    return _evicted;
}

std::uint64_t
TraceCache::residentBytes() const
{
    std::lock_guard lock(mu);
    std::uint64_t resident = 0;
    for (const Entry &e : lru)
        resident += e.trace->bytes();
    return resident;
}

} // namespace siq::sim
