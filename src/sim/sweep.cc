#include "sim/sweep.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <limits>
#include <future>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/logging.hh"
#include "common/stats.hh"
#include "sim/report.hh"
#include "sim/technique.hh"
#include "sim/trace_cache.hh"
#include "workloads/family.hh"

namespace siq::sim
{

namespace
{

std::string
workloadKey(const std::string &benchmark,
            const workloads::WorkloadParams &wp)
{
    std::ostringstream os;
    os << benchmark << '|' << wp.scale << '|' << wp.repDivisor << '|'
       << wp.seed;
    return os.str();
}

/** Serialize every knob that changes the annotation output. */
std::string
compileKey(const std::string &wkey,
           const compiler::CompilerConfig &cc)
{
    std::ostringstream os;
    // full precision: configs differing in any loopSlack bit must
    // not collide into one cached annotation
    os.precision(17);
    os << wkey << "|scheme=" << static_cast<int>(cc.scheme)
       << "|interproc=" << cc.interprocFu
       << "|elide=" << cc.elideRedundant << "|min=" << cc.minHint
       << "|unroll=" << cc.unrollFactor << "|slack=" << cc.loopSlack
       << "|paths=" << cc.maxLoopPaths
       << "|iw=" << cc.machine.issueWidth
       << "|dw=" << cc.machine.dispatchWidth
       << "|iq=" << cc.machine.iqSize
       << "|l1d=" << cc.machine.l1dHitLatency << "|fu=";
    for (int n : cc.machine.fuCounts)
        os << n << ',';
    return os.str();
}

/** A cached program plus its build metadata. */
struct CachedProgram
{
    std::shared_ptr<const Program> prog;
    compiler::CompileStats compile; ///< empty for raw workloads
    double buildSeconds = 0.0;
};

/**
 * Build-once map: the first requester of a key builds under a
 * shared_future, concurrent requesters block on it, later requesters
 * hit. Build/hit counting happens under the map lock so the totals
 * are exact.
 */
class ProgramCache
{
  public:
    CachedProgram
    get(const std::string &key,
        const std::function<CachedProgram()> &build,
        std::atomic<std::uint64_t> &builds,
        std::atomic<std::uint64_t> &hits)
    {
        std::promise<CachedProgram> promise;
        std::shared_future<CachedProgram> future;
        bool builder = false;
        {
            std::lock_guard lock(mu);
            auto it = map.find(key);
            if (it == map.end()) {
                future = promise.get_future().share();
                map.emplace(key, future);
                builder = true;
                builds++;
            } else {
                future = it->second;
            }
        }
        if (builder) {
            try {
                promise.set_value(build());
            } catch (...) {
                // don't poison the key: concurrent waiters get the
                // exception, but later requesters retry the build
                {
                    std::lock_guard lock(mu);
                    map.erase(key);
                    builds--; // nothing was actually built
                }
                promise.set_exception(std::current_exception());
            }
            return future.get();
        }
        CachedProgram shared = future.get(); // throws if build failed
        hits++; // only successful shares count
        return shared;
    }

  private:
    std::mutex mu;
    std::unordered_map<std::string, std::shared_future<CachedProgram>>
        map;
};

/** SIQSIM_TRACE toggles trace replay; default on, "0" disables. */
bool
traceEnabledFromEnv()
{
    const char *v = std::getenv("SIQSIM_TRACE");
    return v == nullptr || std::string(v) != "0";
}

std::uint64_t
traceCapBytesFromEnv()
{
    return tryTraceCapBytesFromEnv().orFatal();
}

int
seedsFromEnv()
{
    return trySeedsFromEnv().orFatal();
}

MetricAggregate
summarize(const stats::RunningStats &w)
{
    return {w.mean(), w.stddev(), w.ci95()};
}

/**
 * Fold one cell's replicas (contiguous, replica order) into per-metric
 * aggregates. Runs after the worker pool joins and visits replicas in
 * index order, so the aggregate never depends on scheduling.
 */
CellAggregate
aggregateReplicas(const RunResult *reps, std::size_t n)
{
    CellAggregate agg;
    agg.n = n;
    stats::RunningStats w;
#define X(f)                                                             \
    w.reset();                                                           \
    for (std::size_t r = 0; r < n; r++)                                  \
        w.sample(static_cast<double>(reps[r].stats.f));                  \
    agg.stats_##f = summarize(w);
    SIQ_CORE_STATS_FIELDS(X)
    SIQ_CORE_SPEC_STATS_FIELDS(X)
#undef X
#define X(f)                                                             \
    w.reset();                                                           \
    for (std::size_t r = 0; r < n; r++)                                  \
        w.sample(static_cast<double>(reps[r].iq.f));                     \
    agg.iq_##f = summarize(w);
    SIQ_IQ_EVENT_FIELDS(X)
#undef X
    w.reset();
    for (std::size_t r = 0; r < n; r++)
        w.sample(reps[r].ipc());
    agg.ipc = summarize(w);
    return agg;
}

} // namespace

Result<std::uint64_t>
tryTraceCapBytesFromEnv()
{
    const char *v = std::getenv("SIQSIM_TRACE_CACHE_MB");
    if (v == nullptr)
        return Result<std::uint64_t>::ok(512ull << 20);
    char *end = nullptr;
    errno = 0;
    const long long n = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE || n < 0)
        return Result<std::uint64_t>::error(
            "SIQSIM_TRACE_CACHE_MB must be a non-negative integer, "
            "got '" + std::string(v) + "'");
    return Result<std::uint64_t>::ok(static_cast<std::uint64_t>(n)
                                     << 20);
}

Result<int>
trySeedsFromEnv()
{
    const char *v = std::getenv("SIQSIM_SEEDS");
    if (v == nullptr)
        return Result<int>::ok(1);
    char *end = nullptr;
    errno = 0;
    const long n = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE || n < 1 ||
        n > std::numeric_limits<int>::max())
        return Result<int>::error(
            "SIQSIM_SEEDS must be a positive integer, got '" +
            std::string(v) + "'");
    return Result<int>::ok(static_cast<int>(n));
}

struct ExperimentRunner::Impl
{
    int defaultJobs;
    ProgramCache workloads;
    ProgramCache compiled;
    /** Null when SIQSIM_TRACE=0 (cells interpret directly). */
    std::unique_ptr<TraceCache> traces;
    std::atomic<std::uint64_t> workloadBuilds{0};
    std::atomic<std::uint64_t> workloadHits{0};
    std::atomic<std::uint64_t> compileBuilds{0};
    std::atomic<std::uint64_t> compileHits{0};

    RunResult runCell(const CellKey &key, const TechniqueDef &def,
                      const RunConfig &cfg);
};

RunResult
ExperimentRunner::Impl::runCell(const CellKey &key,
                                const TechniqueDef &def,
                                const RunConfig &cfg)
{
    const std::string wkey = workloadKey(key.benchmark, cfg.workload);
    const CachedProgram raw = workloads.get(
        wkey,
        [&] {
            CachedProgram built;
            const auto t0 = std::chrono::steady_clock::now();
            built.prog = std::make_shared<const Program>(
                workloads::generate(key.benchmark, cfg.workload));
            built.buildSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            return built;
        },
        workloadBuilds, workloadHits);

    CachedProgram toRun = raw;
    if (def.compilerConfig) {
        if (const auto cc = def.compilerConfig(cfg)) {
            toRun = compiled.get(
                compileKey(wkey, *cc),
                [&] {
                    CachedProgram built;
                    Program annotated = *raw.prog;
                    built.compile = compiler::annotate(annotated, *cc);
                    built.prog = std::make_shared<const Program>(
                        std::move(annotated));
                    built.buildSeconds = raw.buildSeconds;
                    return built;
                },
                compileBuilds, compileHits);
        }
    }

    RunResult result;
    if (traces != nullptr) {
        const std::shared_ptr<FuncTrace> trace = traces->get(toRun.prog);
        // attribute to this cell whatever frontier growth its replay
        // triggers (approximate under concurrent sharing — metadata,
        // not a measurement; canonicalize() zeroes it)
        const double t0 = trace->produceSeconds();
        result = simulateProgram(*toRun.prog, def, cfg, trace.get());
        result.traceSeconds = trace->produceSeconds() - t0;
    } else {
        result = simulateProgram(*toRun.prog, def, cfg);
    }
    result.benchmark = key.benchmark;
    result.generateSeconds = raw.buildSeconds;
    result.compile = toRun.compile;
    result.compileSeconds = toRun.compile.seconds;
    return result;
}

ExperimentRunner::ExperimentRunner(int jobs)
    : impl(std::make_unique<Impl>())
{
    impl->defaultJobs = jobs;
    if (traceEnabledFromEnv()) {
        impl->traces =
            std::make_unique<TraceCache>(traceCapBytesFromEnv());
    }
}

ExperimentRunner::~ExperimentRunner() = default;

SweepCacheStats
ExperimentRunner::cacheStats() const
{
    SweepCacheStats s;
    s.workloadBuilds = impl->workloadBuilds.load();
    s.workloadHits = impl->workloadHits.load();
    s.compileBuilds = impl->compileBuilds.load();
    s.compileHits = impl->compileHits.load();
    if (impl->traces != nullptr) {
        s.traceBuilds = impl->traces->builds();
        s.traceHits = impl->traces->hits();
        s.traceEvicted = impl->traces->evicted();
        s.traceBytes = impl->traces->residentBytes();
    }
    return s;
}

std::uint64_t
ExperimentRunner::mixSeed(std::uint64_t base, std::uint64_t a,
                          std::uint64_t b)
{
    // splitmix64 over the packed coordinates
    std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (a * 0x10001 + b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

SweepResult
ExperimentRunner::run(const SweepSpec &spec)
{
    return run(spec, CellHooks{});
}

SweepResult
ExperimentRunner::run(const SweepSpec &spec, const CellHooks &hooks)
{
    const auto t0 = std::chrono::steady_clock::now();

    SweepResult result;
    // canonicalize every workload up front: unknown families fail
    // fast (with the registered list in the message), and cells,
    // cache keys and exports all carry the one canonical spelling —
    // the invariant the byte-identical shard-merge guarantee keys on
    result.benchmarks.reserve(spec.benchmarks.size());
    for (const auto &b : spec.benchmarks)
        result.benchmarks.push_back(workloads::canonicalWorkload(b));
    result.techniques = spec.techniques;

    // resolve every technique up front so unknown names fail fast,
    // before any thread spawns or simulation starts
    std::vector<const TechniqueDef *> defs;
    defs.reserve(spec.techniques.size());
    for (const auto &name : spec.techniques) {
        const TechniqueDef *def = findTechnique(name);
        if (def == nullptr)
            fatal("sweep over unknown technique: ", name);
        defs.push_back(def);
    }

    const std::size_t nb = spec.benchmarks.size();
    const std::size_t nt = spec.techniques.size();
    const std::size_t ncells = nb * nt;
    if (spec.seeds < 0)
        fatal("SweepSpec::seeds must be >= 0, got ", spec.seeds);
    const int seeds = spec.seeds > 0 ? spec.seeds : seedsFromEnv();
    result.seeds = seeds;

    // the cells this invocation actually executes (all of them for a
    // plain run; a shard / resume passes a filter). The filter is
    // consulted once per cell, in stable index order, so a partition
    // over the cell index is deterministic no matter the job count.
    std::vector<std::size_t> cellsToRun;
    cellsToRun.reserve(ncells);
    for (std::size_t i = 0; i < ncells; i++) {
        if (!hooks.shouldRun || hooks.shouldRun(i))
            cellsToRun.push_back(i);
    }

    const std::size_t nrun = cellsToRun.size();
    const std::size_t nreps = static_cast<std::size_t>(seeds);
    result.cells.resize(ncells);
    if (nreps > 1)
        result.aggregates.resize(ncells);
    if (nrun == 0) {
        result.cache = cacheStats();
        return result;
    }

    // one task per (executed cell, replica); replicas of a cell are
    // contiguous so aggregation reads them in replica order
    const std::size_t ntasks = nrun * nreps;
    std::vector<RunResult> replicas(ntasks);
    // per-cell countdown of unfinished replicas: the worker that
    // finishes a cell's last replica aggregates it and reports it
    // through onCellDone while other cells are still in flight
    std::unique_ptr<std::atomic<std::size_t>[]> remaining(
        new std::atomic<std::size_t>[nrun]);
    std::unique_ptr<std::atomic<bool>[]> poisoned(
        new std::atomic<bool>[nrun]);
    // execution-time verdict per cell: 0 = undecided, 1 = run,
    // 2 = skip. shouldRun is consulted a second time when a cell's
    // first replica is picked up, so a filter that turns false while
    // the sweep is in flight (request cancellation — sim/serve.cc)
    // drains the remaining cells instead of simulating them.
    std::unique_ptr<std::atomic<std::uint8_t>[]> verdict(
        new std::atomic<std::uint8_t>[nrun]);
    for (std::size_t i = 0; i < nrun; i++) {
        remaining[i].store(nreps, std::memory_order_relaxed);
        poisoned[i].store(false, std::memory_order_relaxed);
        verdict[i].store(0, std::memory_order_relaxed);
    }

    // all replicas of a cell must agree on the verdict (a cell half
    // run and half skipped would aggregate garbage): the first
    // replica to decide publishes via CAS, racers adopt the winner
    auto cellRuns = [&](std::size_t slot) {
        std::uint8_t v = verdict[slot].load(std::memory_order_acquire);
        if (v == 0) {
            std::uint8_t want =
                (!hooks.shouldRun || hooks.shouldRun(cellsToRun[slot]))
                    ? 1
                    : 2;
            if (verdict[slot].compare_exchange_strong(
                    v, want, std::memory_order_acq_rel))
                v = want;
            // on CAS failure v holds the winner's value
        }
        return v == 1;
    };

    int jobs = spec.jobs != 0 ? spec.jobs : impl->defaultJobs;
    if (jobs <= 0)
        jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0)
        jobs = 1;
    if (static_cast<std::size_t>(jobs) > ntasks)
        jobs = static_cast<int>(ntasks);

    std::atomic<std::size_t> nextTask{0};
    std::mutex errorMu;
    std::exception_ptr firstError;

    auto makeKey = [&](std::size_t cellIdx, std::size_t rep) {
        CellKey key;
        key.techIdx = cellIdx / nb;
        key.benchIdx = cellIdx % nb;
        key.rep = rep;
        key.benchmark = result.benchmarks[key.benchIdx];
        key.technique = spec.techniques[key.techIdx];
        return key;
    };

    auto work = [&] {
        for (std::size_t j = nextTask.fetch_add(1); j < ntasks;
             j = nextTask.fetch_add(1)) {
            {
                std::lock_guard lock(errorMu);
                if (firstError)
                    return; // abandon remaining tasks
            }
            const std::size_t slot = j / nreps;
            const CellKey key = makeKey(cellsToRun[slot], j % nreps);
            if (!cellRuns(slot)) {
                // cancelled since scheduling: fall through to the
                // countdown so the sweep still joins cleanly, but
                // leave the cell unreported and its slot default
                remaining[slot].fetch_sub(1,
                                          std::memory_order_acq_rel);
                continue;
            }
            try {
                RunConfig cfg = spec.base;
                cfg.tech = defs[key.techIdx]->tag;
                if (spec.perCell)
                    spec.perCell(cfg, key);
                // decorrelate replicas after the override, so
                // per-cell seed choices replicate too; replica 0
                // keeps the configured seed (seeds=1 == status quo)
                if (key.rep > 0) {
                    cfg.workload.seed = mixSeed(cfg.workload.seed,
                                                key.rep, 0);
                }

                replicas[j] =
                    impl->runCell(key, *defs[key.techIdx], cfg);
            } catch (...) {
                poisoned[slot].store(true, std::memory_order_relaxed);
                std::lock_guard lock(errorMu);
                if (!firstError)
                    firstError = std::current_exception();
            }
            // acq_rel: the finisher must see every sibling replica
            // written by other workers before it aggregates the cell
            if (remaining[slot].fetch_sub(
                    1, std::memory_order_acq_rel) == 1 &&
                !poisoned[slot].load(std::memory_order_relaxed)) {
                const std::size_t cellIdx = cellsToRun[slot];
                const RunResult *reps = &replicas[slot * nreps];
                const CellAggregate *agg = nullptr;
                if (nreps > 1) {
                    result.aggregates[cellIdx] =
                        aggregateReplicas(reps, nreps);
                    agg = &result.aggregates[cellIdx];
                }
                if (hooks.onCellDone) {
                    try {
                        hooks.onCellDone(cellIdx, makeKey(cellIdx, 0),
                                         reps[0], agg);
                    } catch (...) {
                        // e.g. a checkpoint write hitting a full disk:
                        // abort the sweep cleanly instead of
                        // terminating the worker thread
                        std::lock_guard lock(errorMu);
                        if (!firstError)
                            firstError = std::current_exception();
                    }
                }
            }
        }
    };

    if (jobs == 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(jobs));
        for (int j = 0; j < jobs; j++)
            pool.emplace_back(work);
        for (auto &t : pool)
            t.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);

    for (std::size_t slot = 0; slot < nrun; slot++)
        result.cells[cellsToRun[slot]] = std::move(replicas[slot * nreps]);

    result.jobsUsed = jobs;
    result.cache = cacheStats();
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return result;
}

const RunResult &
SweepResult::at(const std::string &technique,
                std::size_t benchIdx) const
{
    for (std::size_t t = 0; t < techniques.size(); t++) {
        if (techniques[t] == technique)
            return at(t, benchIdx);
    }
    fatal("technique '", technique, "' not in this sweep");
}

const CellAggregate &
SweepResult::aggAt(std::size_t techIdx, std::size_t benchIdx) const
{
    if (aggregates.empty())
        fatal("sweep was not replicated (seeds == 1): no aggregates");
    return aggregates[techIdx * benchmarks.size() + benchIdx];
}

const CellAggregate &
SweepResult::aggAt(const std::string &technique,
                   std::size_t benchIdx) const
{
    for (std::size_t t = 0; t < techniques.size(); t++) {
        if (techniques[t] == technique)
            return aggAt(t, benchIdx);
    }
    fatal("technique '", technique, "' not in this sweep");
}

bool
identicalMeasurement(const RunResult &a, const RunResult &b)
{
    return a.benchmark == b.benchmark && a.technique == b.technique &&
           a.tech == b.tech && a.stats == b.stats && a.iq == b.iq
#define X(f) &&a.compile.f == b.compile.f
               SIQ_COMPILE_STATS_FIELDS(X)
#undef X
        ;
}

} // namespace siq::sim
