/**
 * @file
 * Every counter of the measurement structs, listed once, so the
 * JSON/CSV writers and readers, the determinism comparison
 * (identicalMeasurement) and the replication aggregates
 * (CellAggregate) can never drift apart field-wise.
 */

#ifndef SIQ_SIM_FIELDS_HH
#define SIQ_SIM_FIELDS_HH

#define SIQ_CORE_STATS_FIELDS(X)                                         \
    X(cycles) X(committed) X(fetched) X(dispatched) X(issued)            \
    X(hintsApplied) X(branchMispredicts) X(frontRedirects)               \
    X(condBranches) X(dispatchStallRob) X(dispatchStallIqFull)           \
    X(dispatchStallRange) X(dispatchStallLimit) X(dispatchStallRegs)     \
    X(dispatchStallLsq) X(loads) X(stores) X(loadForwards)               \
    X(rfIntReads) X(rfIntWrites) X(rfFpReads) X(rfFpWrites)              \
    X(rfIntLiveSum) X(rfIntPoweredBankCycles) X(rfIntBankCycles)         \
    X(rfFpLiveSum) X(rfFpPoweredBankCycles) X(rfFpBankCycles)

/**
 * Counters that are only nonzero when the speculative front end is
 * enabled (CoreConfig::specFrontEnd). They live in CoreStats like any
 * other counter — identicalMeasurement and replication aggregation
 * cover them automatically — but the JSON/CSV writers emit them
 * through this separate list so oracle-mode exports (all-zero spec
 * block, elided) keep their historical bytes and the determinism-pin
 * digest never moves.
 */
#define SIQ_CORE_SPEC_STATS_FIELDS(X)                                    \
    X(wrongPathFetched) X(wrongPathDispatched) X(wrongPathIssued)        \
    X(squashes) X(squashCycles) X(squashedInsts)

#define SIQ_IQ_EVENT_FIELDS(X)                                           \
    X(broadcasts) X(cmpGated) X(cmpPowered) X(cmpConventional)           \
    X(dispatchWrites) X(issueReads) X(poweredBankCycles)                 \
    X(totalBankCycles) X(occupancySum) X(cycles)

#define SIQ_COMPILE_STATS_FIELDS(X)                                      \
    X(proceduresAnalyzed) X(blocksAnalyzed) X(loopsAnalyzed)             \
    X(hintNoopsInserted) X(tagsApplied) X(hintsElided)

/**
 * Per-cell wall-clock timing fields of RunResult, one per pipeline
 * phase: workload synthesis, functional-trace production and compiler
 * annotation. They are metadata, not measurements — canonicalize()
 * zeroes them and identicalMeasurement() ignores them — but they
 * round-trip exactly through the JSON/CSV writers so cache reuse
 * (traceSeconds == 0 on a trace-cache hit) is visible in reports.
 */
#define SIQ_RUN_TIMING_FIELDS(X)                                         \
    X(generateSeconds) X(traceSeconds) X(compileSeconds)

#endif // SIQ_SIM_FIELDS_HH
