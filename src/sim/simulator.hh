/**
 * @file
 * Top-level facade: generate a workload, run the compiler pass for
 * the chosen technique, simulate with warm-up, and collect everything
 * the paper's figures need. This is the API the examples and the
 * benchmark harnesses drive.
 */

#ifndef SIQ_SIM_SIMULATOR_HH
#define SIQ_SIM_SIMULATOR_HH

#include <optional>
#include <string>

#include "adaptive/abella.hh"
#include "adaptive/folegnani.hh"
#include "compiler/pass.hh"
#include "cpu/core.hh"
#include "power/power.hh"
#include "workloads/workloads.hh"

namespace siq::sim
{

/** The techniques compared in the paper's evaluation. */
enum class Technique
{
    Baseline,  ///< fixed 80-entry IQ, no resizing
    Noop,      ///< compiler hints via special NOOPs (§5.2)
    Extension, ///< compiler hints via instruction tags (§5.3)
    Improved,  ///< Extension + inter-procedural FU analysis (§5.3)
    Abella,    ///< hardware adaptive IqRob64 comparator
    Folegnani, ///< hardware adaptive resizer (ablation A4)
};

/** Human-readable technique name (also its registry key). */
std::string techniqueName(Technique tech);

struct TechniqueDef; // the registry entry type (sim/technique.hh)

/** One experiment's parameters. */
struct RunConfig
{
    Technique tech = Technique::Baseline;
    CoreConfig core;
    workloads::WorkloadParams workload;
    std::uint64_t warmupInsts = 200000;
    std::uint64_t measureInsts = 1000000;
    /** Compiler knobs (only used by hint techniques). */
    int minHint = 4;
    bool elideRedundant = true;
    int unrollFactor = 4;
    AbellaConfig abella;
    FolegnaniConfig folegnani;
};

/** Everything measured in one run. */
struct RunResult
{
    std::string benchmark;
    /** Registry name of the technique that produced this result (for
     *  variants, the variant name, not the built-in family). */
    std::string technique = "baseline";
    Technique tech = Technique::Baseline;
    CoreStats stats;
    IqEventCounts iq;
    compiler::CompileStats compile;
    /// @name Build-time accounting (metadata, not measurements — each
    /// records wall-clock seconds this cell *spent*, so cached
    /// workloads/traces legitimately report 0; excluded from
    /// identicalMeasurement and zeroed by canonicalize()).
    /// @{
    double generateSeconds = 0.0; ///< workload synthesis time
    double traceSeconds = 0.0;    ///< functional trace production time
    double compileSeconds = 0.0;  ///< hint-annotation pass time
    /// @}

    double ipc() const { return stats.ipc(); }

    double
    avgIqOccupancy() const
    {
        return iq.cycles ? static_cast<double>(iq.occupancySum) /
                               static_cast<double>(iq.cycles)
                         : 0.0;
    }

    /** Fraction of IQ bank-cycles powered off. */
    double
    iqBanksOffFraction() const
    {
        return iq.totalBankCycles
                   ? 1.0 - static_cast<double>(iq.poweredBankCycles) /
                               static_cast<double>(iq.totalBankCycles)
                   : 0.0;
    }

    double
    rfIntBanksOffFraction() const
    {
        return stats.rfIntBankCycles
                   ? 1.0 -
                         static_cast<double>(
                             stats.rfIntPoweredBankCycles) /
                             static_cast<double>(stats.rfIntBankCycles)
                   : 0.0;
    }

    /** Average instructions dispatched per cycle. */
    double
    dispatchRate() const
    {
        return stats.cycles
                   ? static_cast<double>(stats.dispatched) /
                         static_cast<double>(stats.cycles)
                   : 0.0;
    }
};

/** Map a technique to its compiler configuration, if it has one
 *  (delegates to the registry entry's factory). */
std::optional<compiler::CompilerConfig>
compilerConfigFor(Technique tech, const RunConfig &cfg);

/**
 * Simulate an already-prepared (annotated, finalized) program under a
 * technique's controller. This is the single simulation path shared
 * by serial runOne and the threaded sweep engine; the caller fills in
 * workload/compile metadata on the returned result. When @p trace is
 * non-null the core replays the shared functional trace instead of
 * interpreting (@p prog must be content-identical to the trace's
 * program); timing and every counter are byte-identical either way.
 *
 * Cost model: constructing the Core allocates every arena the tick
 * loop needs (ROB + dense per-entry arrays, completion wheel, fetch
 * ring, scratch vectors — DESIGN.md §9); the warm-up and measurement
 * runs then simulate without heap allocation, so per-replica cost is
 * one construction plus budget-proportional simulation.
 */
RunResult simulateProgram(const Program &prog, const TechniqueDef &def,
                          const RunConfig &cfg,
                          FuncTrace *trace = nullptr);

/** Run one benchmark under one built-in technique (cfg.tech). */
RunResult runOne(const std::string &benchmark, const RunConfig &cfg);

/**
 * Run one benchmark under any registered technique (built-in or a
 * bench/example-registered variant). Fatal on unknown names.
 */
RunResult runOne(const std::string &benchmark,
                 const std::string &technique, const RunConfig &cfg);

/** Per-benchmark savings relative to a baseline run (figures 8-12). */
struct PowerComparison
{
    double iqDynamicSaving = 0.0;
    double iqStaticSaving = 0.0;
    double rfDynamicSaving = 0.0;
    double rfStaticSaving = 0.0;
    double nonEmptySaving = 0.0; ///< operand gating alone (baseline)
};

/** Compute the paper's savings numbers for technique vs baseline. */
PowerComparison comparePower(const RunResult &baseline,
                             const RunResult &technique,
                             const power::IqPowerParams &iqParams = {},
                             const power::RfPowerParams &rfParams = {});

} // namespace siq::sim

#endif // SIQ_SIM_SIMULATOR_HH
