#include "sim/simulator.hh"

#include <chrono>
#include <memory>

#include "common/logging.hh"

namespace siq::sim
{

std::string
techniqueName(Technique tech)
{
    switch (tech) {
      case Technique::Baseline:
        return "baseline";
      case Technique::Noop:
        return "noop";
      case Technique::Extension:
        return "extension";
      case Technique::Improved:
        return "improved";
      case Technique::Abella:
        return "abella";
      case Technique::Folegnani:
        return "folegnani";
    }
    return "?";
}

std::optional<compiler::CompilerConfig>
compilerConfigFor(Technique tech, const RunConfig &cfg)
{
    compiler::CompilerConfig cc;
    cc.machine.issueWidth = cfg.core.issueWidth;
    cc.machine.iqSize = cfg.core.iq.numEntries;
    cc.machine.fuCounts = cfg.core.fuCounts;
    cc.machine.l1dHitLatency = cfg.core.mem.l1d.hitLatency;
    cc.minHint = cfg.minHint;
    cc.elideRedundant = cfg.elideRedundant;
    cc.unrollFactor = cfg.unrollFactor;

    switch (tech) {
      case Technique::Noop:
        cc.scheme = compiler::HintScheme::Noop;
        return cc;
      case Technique::Extension:
        cc.scheme = compiler::HintScheme::Tag;
        return cc;
      case Technique::Improved:
        cc.scheme = compiler::HintScheme::Tag;
        cc.interprocFu = true;
        return cc;
      default:
        return std::nullopt;
    }
}

RunResult
runOne(const std::string &benchmark, const RunConfig &cfg)
{
    RunResult result;
    result.benchmark = benchmark;
    result.tech = cfg.tech;

    const auto g0 = std::chrono::steady_clock::now();
    Program prog = workloads::generate(benchmark, cfg.workload);
    result.generateSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - g0)
            .count();

    if (const auto cc = compilerConfigFor(cfg.tech, cfg))
        result.compile = compiler::annotate(prog, *cc);

    std::unique_ptr<IqLimitController> controller;
    if (cfg.tech == Technique::Abella) {
        AbellaConfig ac = cfg.abella;
        ac.iqSize = cfg.core.iq.numEntries;
        ac.robSize = cfg.core.robSize;
        controller = std::make_unique<AbellaResizer>(ac);
    } else if (cfg.tech == Technique::Folegnani) {
        FolegnaniConfig fc = cfg.folegnani;
        fc.iqSize = cfg.core.iq.numEntries;
        controller = std::make_unique<FolegnaniResizer>(fc);
    }

    Core core(prog, cfg.core, controller.get());
    if (cfg.warmupInsts > 0)
        core.run(cfg.warmupInsts);
    core.resetStats();
    core.run(cfg.measureInsts);

    result.stats = core.stats();
    result.iq = core.iqEvents();
    return result;
}

PowerComparison
comparePower(const RunResult &baseline, const RunResult &technique,
             const power::IqPowerParams &iqParams,
             const power::RfPowerParams &rfParams)
{
    using power::IqMode;

    PowerComparison cmp;
    const auto iqBase =
        power::iqPower(baseline.iq, iqParams, IqMode::Conventional);
    const auto iqNonEmpty =
        power::iqPower(baseline.iq, iqParams, IqMode::NonEmptyGated);
    const auto iqTech =
        power::iqPower(technique.iq, iqParams, IqMode::Resized);

    cmp.nonEmptySaving = power::saving(iqBase.dynamicPower(),
                                       iqNonEmpty.dynamicPower());
    cmp.iqDynamicSaving =
        power::saving(iqBase.dynamicPower(), iqTech.dynamicPower());
    cmp.iqStaticSaving =
        power::saving(iqBase.staticPower(), iqTech.staticPower());

    const auto rfBase = power::rfPower(
        power::intRfEvents(baseline.stats), rfParams, false);
    const auto rfTech = power::rfPower(
        power::intRfEvents(technique.stats), rfParams, true);
    cmp.rfDynamicSaving =
        power::saving(rfBase.dynamicPower(), rfTech.dynamicPower());
    cmp.rfStaticSaving =
        power::saving(rfBase.staticPower(), rfTech.staticPower());
    return cmp;
}

} // namespace siq::sim
