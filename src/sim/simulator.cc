#include "sim/simulator.hh"

#include <chrono>
#include <memory>

#include "common/logging.hh"
#include "sim/technique.hh"

namespace siq::sim
{

std::string
techniqueName(Technique tech)
{
    switch (tech) {
      case Technique::Baseline:
        return "baseline";
      case Technique::Noop:
        return "noop";
      case Technique::Extension:
        return "extension";
      case Technique::Improved:
        return "improved";
      case Technique::Abella:
        return "abella";
      case Technique::Folegnani:
        return "folegnani";
    }
    return "?";
}

std::optional<compiler::CompilerConfig>
compilerConfigFor(Technique tech, const RunConfig &cfg)
{
    const TechniqueDef &def = techniqueDef(tech);
    if (!def.compilerConfig)
        return std::nullopt;
    return def.compilerConfig(cfg);
}

RunResult
simulateProgram(const Program &prog, const TechniqueDef &def,
                const RunConfig &cfg, FuncTrace *trace)
{
    RunResult result;
    result.technique = def.name;
    result.tech = def.tag;
    result.benchmark = prog.name;

    std::unique_ptr<IqLimitController> controller;
    if (def.controller)
        controller = def.controller(cfg);

    // one Core construction per replica pays for all the tick loop's
    // arenas; warm-up and measurement then run allocation-free
    // (DESIGN.md §9) — resetStats() clears counters, not state
    Core core(prog, cfg.core, controller.get(), trace);
    if (cfg.warmupInsts > 0)
        core.run(cfg.warmupInsts);
    core.resetStats();
    core.run(cfg.measureInsts);

    result.stats = core.stats();
    result.iq = core.iqEvents();
    return result;
}

RunResult
runOne(const std::string &benchmark, const std::string &technique,
       const RunConfig &cfg)
{
    const TechniqueDef *def = findTechnique(technique);
    if (def == nullptr)
        fatal("unknown technique: ", technique);

    // mirror the sweep worker: factories see the technique's family
    // tag, so serial and threaded runs are configured identically
    RunConfig cellCfg = cfg;
    cellCfg.tech = def->tag;

    const auto g0 = std::chrono::steady_clock::now();
    Program prog = workloads::generate(benchmark, cellCfg.workload);
    const double generateSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - g0)
            .count();

    compiler::CompileStats compileStats;
    if (def->compilerConfig) {
        if (const auto cc = def->compilerConfig(cellCfg))
            compileStats = compiler::annotate(prog, *cc);
    }

    // runOne deliberately stays direct-interpreting: it is the serial
    // reference the trace-replay equivalence tests compare against
    RunResult result = simulateProgram(prog, *def, cellCfg);
    result.benchmark = benchmark;
    result.generateSeconds = generateSeconds;
    result.compile = compileStats;
    result.compileSeconds = compileStats.seconds;
    return result;
}

RunResult
runOne(const std::string &benchmark, const RunConfig &cfg)
{
    return runOne(benchmark, techniqueName(cfg.tech), cfg);
}

PowerComparison
comparePower(const RunResult &baseline, const RunResult &technique,
             const power::IqPowerParams &iqParams,
             const power::RfPowerParams &rfParams)
{
    using power::IqMode;

    PowerComparison cmp;
    const auto iqBase =
        power::iqPower(baseline.iq, iqParams, IqMode::Conventional);
    const auto iqNonEmpty =
        power::iqPower(baseline.iq, iqParams, IqMode::NonEmptyGated);
    const auto iqTech =
        power::iqPower(technique.iq, iqParams, IqMode::Resized);

    cmp.nonEmptySaving = power::saving(iqBase.dynamicPower(),
                                       iqNonEmpty.dynamicPower());
    cmp.iqDynamicSaving =
        power::saving(iqBase.dynamicPower(), iqTech.dynamicPower());
    cmp.iqStaticSaving =
        power::saving(iqBase.staticPower(), iqTech.staticPower());

    const auto rfBase = power::rfPower(
        power::intRfEvents(baseline.stats), rfParams, false);
    const auto rfTech = power::rfPower(
        power::intRfEvents(technique.stats), rfParams, true);
    cmp.rfDynamicSaving =
        power::saving(rfBase.dynamicPower(), rfTech.dynamicPower());
    cmp.rfStaticSaving =
        power::saving(rfBase.staticPower(), rfTech.staticPower());
    return cmp;
}

} // namespace siq::sim
