/**
 * @file
 * The simulation service: one long-lived engine, many concurrent
 * clients, newline-delimited JSON in both directions (DESIGN.md §13).
 *
 * The batch CLI pays workload synthesis, hint compilation, and trace
 * production once per *process*; a service pays them once per
 * *deployment*. ServeEngine wraps one ExperimentRunner — whose
 * workload/compiled-program/trace caches are already thread-safe and
 * persist across run() calls — and runs each client request as one
 * sweep on its own thread, streaming per-cell records back the moment
 * CellHooks::onCellDone fires.
 *
 * Request envelope (one JSON object per line):
 *
 *     {"id": "r1", "spec": { ...writeSpecJson schema... }}
 *     {"cancel": "r1"}
 *
 * Response records (one JSON object per line, tagged with the id):
 *
 *     {"id":"r1","event":"accepted","cells":N,"seeds":S}
 *     {"id":"r1","event":"cell","checkpoint":{...toJson(CellCheckpoint)}}
 *     {"id":"r1","event":"done","cells":N,"cellsSimulated":a,
 *      "cellsShared":b,"cellsCached":c,"cellsCancelled":d,
 *      "cancelled":false,"export":"<canonical writeJson text>"}
 *     {"id":"r1","event":"error","error":"message"}   (terminal)
 *
 * Cell records reuse the checkpoint payload schema, canonicalized
 * (timing zeroed), so a client that collects them holds exactly what
 * a checkpoint directory would; the done record of an uncancelled,
 * fully successful request additionally embeds the complete canonical
 * export, byte-identical to `siqsim run --json` of the same spec.
 *
 * Cross-request dedupe: every cell has a canonical identity — the
 * spec JSON of its own 1×1 sub-grid with jobs forced to 0 and seeds
 * resolved — and the engine keeps (a) an in-flight table mapping
 * identities to the request currently simulating them and (b) a
 * bounded LRU of completed cell payloads. A request whose cell is
 * already in flight attaches as a waiter and receives the fan-out of
 * the one simulation; a cell in the completed cache is answered
 * immediately without simulating. Counters in the done record prove
 * which path each cell took.
 *
 * Malformed requests — bad JSON, schema violations, unknown
 * workloads/techniques, duplicate ids — produce an error record on
 * the offending client's stream and nothing else: ingestion runs
 * through the recoverable Result-based entry points (tryReadSpecJson
 * and friends), so one tenant's garbage never unwinds another
 * tenant's run.
 *
 * Backpressure: each client owns a bounded record queue. A request's
 * own producers block when it is full, so a slow reader throttles its
 * own simulations rather than ballooning memory. Cross-client fan-out
 * (another request's worker delivering a shared cell) waits at most
 * Options::fanoutWaitMs before hard-closing the laggard, so one
 * tenant that stops reading can never stall another tenant's workers.
 * hardClose() (reader hung up or chronically slow) discards the
 * queue, unblocks producers, and cancels the client's requests.
 *
 * Cancellation rides CellHooks::shouldRun's execution-time
 * re-consult: cells not yet started are drained, cells mid-simulation
 * finish, and a claimed cell with attached waiters from other
 * requests runs to completion anyway — cancelling a request never
 * steals a result some other tenant is waiting on.
 */

#ifndef SIQ_SIM_SERVE_HH
#define SIQ_SIM_SERVE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/result.hh"
#include "sim/sweep.hh"

namespace siq::sim
{

/** Multi-client simulation service over one shared ExperimentRunner. */
class ServeEngine
{
  public:
    struct Options
    {
        /** Worker threads per request sweep (0 = hardware). */
        int jobs = 0;
        /** Per-client output queue capacity, in records. */
        std::size_t queueCap = 256;
        /** Completed-cell LRU capacity, in cells (0 disables). */
        std::size_t resultCacheCap = 1024;
        /** Max milliseconds a simulating worker waits to fan a
         *  shared cell out to a waiter's full queue before treating
         *  that client as dead and hard-closing it (0 = wait
         *  forever). Backpressure on a request's *own* stream is
         *  always unbounded — a slow reader throttles only its own
         *  simulations. */
        std::size_t fanoutWaitMs = 10000;
    };

    /** Options from SIQSIM_SERVE_JOBS / SIQSIM_SERVE_QUEUE /
     *  SIQSIM_SERVE_RESULT_CACHE / SIQSIM_SERVE_FANOUT_MS
     *  (validated up front — a daemon
     *  should refuse a malformed environment at startup, not die on
     *  request one). Also validates the engine-level knobs the
     *  runner reads lazily (SIQSIM_SEEDS, SIQSIM_TRACE_CACHE_MB). */
    static Result<Options> optionsFromEnv();

    explicit ServeEngine(const Options &opts);
    ~ServeEngine();

    ServeEngine(const ServeEngine &) = delete;
    ServeEngine &operator=(const ServeEngine &) = delete;

    /**
     * One connected client: feed request lines in, pop response
     * records out. Thread-safe: a transport typically runs one
     * reader thread calling submitLine()/endOfInput() and one writer
     * thread looping on nextRecord().
     */
    class Client
    {
      public:
        ~Client();

        /** Parse and dispatch one request line. Malformed input
         *  yields an error record, never a throw. */
        void submitLine(const std::string &line);

        /** No more requests: once in-flight ones finish, nextRecord
         *  returns false. */
        void endOfInput();

        /** Reader hung up: cancel this client's requests, discard
         *  queued records, unblock producers. */
        void hardClose();

        /** Block for the next response record (no trailing newline).
         *  False once the stream is finished. */
        bool nextRecord(std::string &out);

        struct State; ///< implementation detail (serve.cc)

      private:
        friend class ServeEngine;
        explicit Client(std::shared_ptr<State> s);
        std::shared_ptr<State> state;
    };

    /** Register a new client session. */
    std::shared_ptr<Client> connect();

    /** Aggregate dedupe accounting across all finished requests. */
    struct Stats
    {
        std::uint64_t requests = 0;      ///< accepted requests
        std::uint64_t errors = 0;        ///< error records emitted
        std::uint64_t cellsSimulated = 0;
        std::uint64_t cellsShared = 0;   ///< served by in-flight fan-out
        std::uint64_t cellsCached = 0;   ///< served from the LRU
        std::uint64_t cellsCancelled = 0;
    };
    Stats stats() const;

    /** The shared runner's cache counters (workloads/compile/trace). */
    SweepCacheStats cacheStats() const;

  private:
    struct Impl;
    std::shared_ptr<Impl> impl;
};

/**
 * Drive an engine over stdio: requests from @p in, records to @p out
 * (flushed per line). Returns when @p in hits EOF and every accepted
 * request has drained. The single-process transport used by tests
 * and by `siqsim serve --stdio`.
 */
void serveStdio(ServeEngine &engine, std::istream &in,
                std::ostream &out);

/**
 * Listen on a unix domain socket at @p path (unlinking any stale
 * socket first) and serve each connection on its own reader/writer
 * thread pair until the process is signalled. @p ready, when
 * non-null, is written once the socket is listening (the CLI prints
 * a line so scripts can wait for startup).
 */
void serveUnixSocket(ServeEngine &engine, const std::string &path,
                     std::ostream *ready);

} // namespace siq::sim

#endif // SIQ_SIM_SERVE_HH
