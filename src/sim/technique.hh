/**
 * @file
 * The technique registry: every way of driving the machine — the
 * paper's three compiler schemes, the two hardware comparators, the
 * do-nothing baseline, and any ablation variant a bench or example
 * wants — is a named entry mapping to the two things a run needs:
 * an optional compiler configuration (how the program is annotated
 * before simulation) and an optional adaptive-resizer factory (the
 * IqLimitController handed to the core).
 *
 * The built-in six register in one place (technique.cc); benches and
 * examples register ablation variants ("noop-floor8", "tag-r16", ...)
 * at startup and sweep over them exactly like built-ins. The registry
 * is the single source of truth: simulator.cc's runOne and the sweep
 * engine both resolve techniques here, so a registered variant behaves
 * identically under serial and threaded execution.
 */

#ifndef SIQ_SIM_TECHNIQUE_HH
#define SIQ_SIM_TECHNIQUE_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cpu/resize.hh"
#include "sim/simulator.hh"

namespace siq::sim
{

/** One registered technique. */
struct TechniqueDef
{
    /** Registry key; also what RunResult::technique reports. */
    std::string name;
    /**
     * Which built-in family the entry behaves like (used for
     * RunResult::tech so existing figure code keys results the same
     * way for variants as for the original).
     */
    Technique tag = Technique::Baseline;
    /** One-line description for listings. */
    std::string summary;
    /**
     * Produce the compiler configuration for a run, or nullopt when
     * the program runs unannotated. Null function == no compiler.
     */
    std::function<std::optional<compiler::CompilerConfig>(
        const RunConfig &)>
        compilerConfig;
    /**
     * Produce the hardware resize controller for a run. Null
     * function (or a factory returning nullptr) == no controller.
     */
    std::function<std::unique_ptr<IqLimitController>(const RunConfig &)>
        controller;
};

/** Name → TechniqueDef table. Thread-safe; built-ins pre-registered. */
class TechniqueRegistry
{
  public:
    /** The process-wide registry (created on first use). */
    static TechniqueRegistry &instance();

    /** Register a technique. @param def must carry a unique name;
     *  duplicates are fatal. */
    void add(TechniqueDef def);

    /** Remove a registered technique. @return true if it existed. */
    bool remove(const std::string &name);

    /** Look up by name; nullptr when absent. The returned pointer
     *  stays valid until the entry is removed. */
    const TechniqueDef *find(const std::string &name) const;

    /** All registered names, in registration order. */
    std::vector<std::string> names() const;

  private:
    TechniqueRegistry();
    struct Impl;
    std::shared_ptr<Impl> impl;
};

/** The built-in definition for an enum technique. */
const TechniqueDef &techniqueDef(Technique tech);

/** Registry lookup by name; nullptr when absent. */
const TechniqueDef *findTechnique(const std::string &name);

/** Map a name back to its built-in enum, if it is one. */
std::optional<Technique> techniqueFromName(const std::string &name);

/** All registered technique names (built-ins first). */
std::vector<std::string> techniqueNames();

/**
 * RAII registration for bench/example-local ablation variants: the
 * variant is sweepable exactly like a built-in for the scope's
 * lifetime and unregistered on destruction. Note that registered
 * variants exist only in the defining process — a serialized spec
 * naming one cannot run under `siqsim` (DESIGN.md §8.1).
 */
class ScopedTechnique
{
  public:
    /** @param def the variant to register (fatal on name clash). */
    explicit ScopedTechnique(TechniqueDef def) : name(def.name)
    {
        TechniqueRegistry::instance().add(std::move(def));
    }

    ~ScopedTechnique()
    {
        TechniqueRegistry::instance().remove(name);
    }

    ScopedTechnique(const ScopedTechnique &) = delete;
    ScopedTechnique &operator=(const ScopedTechnique &) = delete;

  private:
    std::string name;
};

} // namespace siq::sim

#endif // SIQ_SIM_TECHNIQUE_HH
