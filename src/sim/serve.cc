#include "sim/serve.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <istream>
#include <list>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "sim/report.hh"

namespace siq::sim
{

namespace
{

/** A completed cell, canonicalized for streaming. */
struct CellPayload
{
    RunResult cell;
    CellAggregate agg;
    bool hasAgg = false;
    int seeds = 1;
};

/** Bounded blocking record queue: push blocks while full (the
 *  backpressure), pop blocks while empty. close() lets pop drain
 *  then return false; shutdown() additionally discards everything
 *  and unblocks producers (reader hung up). */
class RecordQueue
{
  public:
    explicit RecordQueue(std::size_t capacity) : cap(capacity) {}

    bool
    push(std::string rec)
    {
        std::unique_lock lock(mu);
        notFull.wait(lock,
                     [&] { return discarding || q.size() < cap; });
        if (discarding)
            return false;
        q.push_back(std::move(rec));
        notEmpty.notify_one();
        return true;
    }

    /** push with a bounded wait: false when the queue stayed full
     *  for @p timeout (or is discarding). The cross-client fan-out
     *  path uses this so one tenant's unread queue cannot park
     *  another tenant's simulation worker forever. */
    bool
    pushFor(std::string rec, std::chrono::milliseconds timeout)
    {
        std::unique_lock lock(mu);
        if (!notFull.wait_for(lock, timeout, [&] {
                return discarding || q.size() < cap;
            }))
            return false;
        if (discarding)
            return false;
        q.push_back(std::move(rec));
        notEmpty.notify_one();
        return true;
    }

    bool
    pop(std::string &out)
    {
        std::unique_lock lock(mu);
        notEmpty.wait(lock, [&] { return !q.empty() || closed; });
        if (q.empty())
            return false;
        out = std::move(q.front());
        q.pop_front();
        notFull.notify_one();
        return true;
    }

    void
    close()
    {
        std::lock_guard lock(mu);
        closed = true;
        notEmpty.notify_all();
    }

    void
    shutdown()
    {
        std::lock_guard lock(mu);
        closed = true;
        discarding = true;
        q.clear();
        notEmpty.notify_all();
        notFull.notify_all();
    }

  private:
    const std::size_t cap;
    std::mutex mu;
    std::condition_variable notFull, notEmpty;
    std::deque<std::string> q;
    bool closed = false;
    bool discarding = false;
};

struct Request;

/** One in-flight cell simulation: the claiming request runs it,
 *  waiters receive the fan-out. `waiters` is guarded by the engine's
 *  store mutex; the done/failed/payload fields by `mu`. */
struct Flight
{
    std::string key;

    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool failed = false;
    std::string error;
    CellPayload payload;

    struct Waiter
    {
        std::shared_ptr<Request> req;
        std::size_t index;
    };
    std::vector<Waiter> waiters;
};

std::string
chomp(std::string s)
{
    while (!s.empty() && s.back() == '\n')
        s.pop_back();
    return s;
}

/** Hard cap on one request line. Generous — the largest realistic
 *  spec is a few hundred KiB — but bounded, so an unframed or
 *  malicious sender cannot grow the connection buffer (or the JSON
 *  parse) without limit. */
constexpr std::size_t kMaxRequestBytes = 16u << 20; // 16 MiB

} // namespace

// ------------------------------------------------------ client state

struct ServeEngine::Client::State
{
    State(std::shared_ptr<Impl> eng, std::size_t queueCap)
        : engine(std::move(eng)), queue(queueCap)
    {
    }

    std::shared_ptr<Impl> engine;
    RecordQueue queue;

    std::mutex mu; ///< guards everything below
    std::unordered_map<std::string, std::shared_ptr<Request>> active;
    std::vector<std::thread> threads;
    /** finished request threads, parked here by finishRequest() and
     *  joined on the next submitLine (or in ~Client): a long-lived
     *  connection must not retain one joinable thread per request it
     *  ever submitted */
    std::vector<std::thread> doneThreads;
    bool noMoreInput = false;

    /** queue.close() once input ended and the last request drained;
     *  call with `mu` held. */
    void
    maybeFinish()
    {
        if (noMoreInput && active.empty())
            queue.close();
    }

    /** Reader hung up — or proved chronically slow on the fan-out
     *  path: discard the queue, unblock producers, cancel every
     *  request. Idempotent. Defined after Request (it touches the
     *  cancelled flag). */
    void hardClose();
};

namespace
{

/** One accepted request: a spec, its per-cell dedupe plan, and the
 *  counters its done record reports. */
struct Request
{
    enum class Plan : std::uint8_t {
        Undecided,
        Simulate,  ///< we claimed the flight; not yet started
        Running,   ///< claimed and confirmed at execution time
        Wait,      ///< attached to another request's flight
        Cached,    ///< answered from the completed-cell LRU
        Cancelled, ///< drained before execution
    };

    std::string id;
    SweepSpec spec; ///< canonical benchmarks, resolved seeds
    std::shared_ptr<ServeEngine::Client::State> client;

    std::atomic<bool> cancelled{false};

    /** Serializes every shouldRun consult. The up-front pass is
     *  serial anyway, but at execution time sweep.cc may consult one
     *  cell from two replica workers concurrently (its verdict CAS
     *  arbitrates the answers, not the hook's side effects), so the
     *  per-cell decision must be made once, under this lock, and
     *  then stick. */
    std::mutex execMu;

    // sized ncells before the sweep starts; written only under
    // `execMu` (and read lock-free only after the sweep's workers
    // have joined, or for slots that can no longer change)
    std::vector<Plan> plan;
    std::vector<std::shared_ptr<Flight>> flights;
    std::vector<std::shared_ptr<CellPayload>> cached;

    std::atomic<std::uint64_t> nSim{0}, nShared{0}, nCached{0},
        nCancelled{0};
};

} // namespace

void
ServeEngine::Client::State::hardClose()
{
    // shut the queue down before taking `mu`: a request thread may be
    // blocked inside push() while holding `mu` (handleLine), and the
    // shutdown is what unblocks it
    queue.shutdown();
    std::lock_guard lock(mu);
    noMoreInput = true;
    for (auto &[id, req] : active)
        req->cancelled.store(true, std::memory_order_relaxed);
}

// ------------------------------------------------------------ engine

struct ServeEngine::Impl
{
    Impl(const Options &o) : opts(o), runner(o.jobs) {}

    const Options opts;
    ExperimentRunner runner;
    int defaultSeeds = 1; ///< resolved SIQSIM_SEEDS, set at startup

    /** guards `inflight` + the completed-cell LRU + every Flight's
     *  waiter list */
    std::mutex storeMu;
    std::unordered_map<std::string, std::shared_ptr<Flight>> inflight;
    std::list<std::pair<std::string, std::shared_ptr<CellPayload>>>
        lruList; ///< front = most recently used
    std::unordered_map<std::string, decltype(lruList)::iterator>
        lruIndex;

    mutable std::mutex statsMu;
    Stats stats_;

    // ---------------------------------------------- record emission

    void
    emitRaw(const std::shared_ptr<Client::State> &client,
            std::string rec)
    {
        client->queue.push(std::move(rec));
    }

    void
    emitError(const std::shared_ptr<Client::State> &client,
              const std::string &id, const std::string &msg)
    {
        {
            std::lock_guard lock(statsMu);
            stats_.errors++;
        }
        std::ostringstream os;
        os << "{\"id\":"
           << (id.empty() ? std::string("null") : json::quote(id))
           << ",\"event\":\"error\",\"error\":" << json::quote(msg)
           << "}";
        emitRaw(client, os.str());
    }

    static std::string
    cellRecord(const std::shared_ptr<Request> &req, std::size_t index,
               const CellPayload &payload)
    {
        CellCheckpoint ckpt;
        ckpt.index = index;
        ckpt.seeds = payload.seeds;
        ckpt.cell = payload.cell;
        if (payload.hasAgg)
            ckpt.aggregate = payload.agg;
        std::ostringstream os;
        os << "{\"id\":" << json::quote(req->id)
           << ",\"event\":\"cell\",\"checkpoint\":"
           << chomp(toJson(ckpt)) << "}";
        return os.str();
    }

    /** The per-cell record on the request's own stream: checkpoint
     *  payload under the request's id, blocking backpressure (a slow
     *  reader throttles its own work). Skipped when cancelled. */
    void
    emitCell(const std::shared_ptr<Request> &req, std::size_t index,
             const CellPayload &payload)
    {
        if (req->cancelled.load(std::memory_order_relaxed))
            return;
        emitRaw(req->client, cellRecord(req, index, payload));
    }

    /** Fan a shared cell out to a waiter, typically on another
     *  connection: bounded wait, then hard-close — the simulating
     *  worker belongs to a different tenant, and a waiter that has
     *  stopped reading must not park it forever. */
    void
    emitCellToWaiter(const std::shared_ptr<Request> &req,
                     std::size_t index, const CellPayload &payload)
    {
        if (req->cancelled.load(std::memory_order_relaxed))
            return;
        std::string rec = cellRecord(req, index, payload);
        const bool delivered =
            opts.fanoutWaitMs == 0
                ? req->client->queue.push(std::move(rec))
                : req->client->queue.pushFor(
                      std::move(rec),
                      std::chrono::milliseconds(opts.fanoutWaitMs));
        if (!delivered)
            req->client->hardClose();
    }

    // ------------------------------------------------- dedupe store

    /** The canonical identity of one cell: the spec JSON of its own
     *  1×1 sub-grid, jobs forced to 0, seeds resolved. Two requests
     *  agree on this string iff the cell is the same simulation. */
    static std::string
    cellIdentity(const SweepSpec &spec, std::size_t cellIdx)
    {
        const std::size_t nb = spec.benchmarks.size();
        SweepSpec one;
        one.benchmarks = {spec.benchmarks[cellIdx % nb]};
        one.techniques = {spec.techniques[cellIdx / nb]};
        one.jobs = 0;
        one.seeds = spec.seeds;
        one.base = spec.base;
        return toJson(one);
    }

    struct Claim
    {
        enum class Kind { Cached, Claimed, Attached } kind;
        std::shared_ptr<CellPayload> payload; ///< Cached only
        std::shared_ptr<Flight> flight;       ///< Claimed/Attached
    };

    Claim
    claimOrAttach(std::string key,
                  const std::shared_ptr<Request> &req,
                  std::size_t index)
    {
        std::lock_guard lock(storeMu);
        if (const auto hit = lruIndex.find(key);
            hit != lruIndex.end()) {
            lruList.splice(lruList.begin(), lruList, hit->second);
            return {Claim::Kind::Cached, hit->second->second, nullptr};
        }
        if (const auto it = inflight.find(key); it != inflight.end()) {
            it->second->waiters.push_back({req, index});
            return {Claim::Kind::Attached, nullptr, it->second};
        }
        auto flight = std::make_shared<Flight>();
        flight->key = std::move(key);
        inflight[flight->key] = flight;
        return {Claim::Kind::Claimed, nullptr, flight};
    }

    /** Publish a finished cell to the store: cache it, detach the
     *  waiters and return them for fan-out. The flight is NOT marked
     *  done yet — the caller emits every waiter's cell record first
     *  and then calls finishFlight(), so no waiter's done record can
     *  overtake its cell record. New requests arriving in between
     *  are answered from the LRU (inserted here, atomically). */
    std::vector<Flight::Waiter>
    publish(const std::shared_ptr<Flight> &flight,
            const CellPayload &payload)
    {
        std::lock_guard lock(storeMu);
        eraseInflight(flight);
        if (opts.resultCacheCap > 0) {
            lruList.emplace_front(
                flight->key, std::make_shared<CellPayload>(payload));
            lruIndex[flight->key] = lruList.begin();
            while (lruList.size() > opts.resultCacheCap) {
                lruIndex.erase(lruList.back().first);
                lruList.pop_back();
            }
        }
        return std::move(flight->waiters);
    }

    /** Wake the flight's waiters with the payload (after fan-out). */
    void
    finishFlight(const std::shared_ptr<Flight> &flight,
                 const CellPayload &payload)
    {
        {
            std::lock_guard lock(flight->mu);
            flight->payload = payload;
            flight->done = true;
        }
        flight->cv.notify_all();
    }

    /** Mark a flight failed (owner errored out, or abandoned on
     *  cancellation); waiters wake and report the error. */
    /** Remove @p flight from the in-flight table iff it is still the
     *  registered one — the key may have been reclaimed by a newer
     *  flight after this one completed. Call with `storeMu` held. */
    void
    eraseInflight(const std::shared_ptr<Flight> &flight)
    {
        const auto it = inflight.find(flight->key);
        if (it != inflight.end() && it->second == flight)
            inflight.erase(it);
    }

    void
    fail(const std::shared_ptr<Flight> &flight,
         const std::string &msg)
    {
        {
            std::lock_guard lock(storeMu);
            eraseInflight(flight);
        }
        {
            std::lock_guard lock(flight->mu);
            if (flight->done)
                return;
            flight->failed = true;
            flight->error = msg;
            flight->done = true;
        }
        flight->cv.notify_all();
    }

    /** On cancellation: drop the claim if nobody is waiting on it.
     *  Returns false — keep simulating — when waiters exist, so a
     *  cancel never steals another tenant's cell. */
    bool
    abandonIfUnwaited(const std::shared_ptr<Flight> &flight)
    {
        {
            std::lock_guard lock(storeMu);
            if (!flight->waiters.empty())
                return false;
            eraseInflight(flight);
        }
        fail(flight, "cancelled before execution");
        return true;
    }

    // -------------------------------------------- request lifecycle

    void
    runRequest(const std::shared_ptr<Request> &req)
    {
        const std::size_t ncells =
            req->spec.benchmarks.size() * req->spec.techniques.size();
        req->plan.assign(ncells, Request::Plan::Undecided);
        req->flights.assign(ncells, nullptr);
        req->cached.assign(ncells, nullptr);

        CellHooks hooks;
        hooks.shouldRun = [this, req](std::size_t i) {
            return shouldRunCell(req, i);
        };
        hooks.onCellDone = [this, req](std::size_t i, const CellKey &,
                                       const RunResult &rep0,
                                       const CellAggregate *agg) {
            CellPayload p;
            p.cell = rep0;
            canonicalize(p.cell);
            if (agg) {
                p.agg = *agg;
                p.hasAgg = true;
                p.seeds = static_cast<int>(agg->n);
            }
            const auto flight = req->flights[i];
            req->nSim.fetch_add(1, std::memory_order_relaxed);
            if (!flight) {
                // defensive: a cell the hook abandoned should never
                // reach onCellDone (the execution-time decision is
                // sticky); if one does, report to our client only
                emitCell(req, i, p);
                return;
            }
            const auto waiters = publish(flight, p);
            emitCell(req, i, p);
            for (const auto &w : waiters)
                emitCellToWaiter(w.req, w.index, p);
            finishFlight(flight, p);
        };

        SweepResult result;
        try {
            result = runner.run(req->spec, hooks);
        } catch (const std::exception &e) {
            // a cell blew up (or a hook did): release anyone waiting
            // on our claims, then report to our own client only
            for (std::size_t i = 0; i < ncells; i++) {
                if ((req->plan[i] == Request::Plan::Simulate ||
                     req->plan[i] == Request::Plan::Running) &&
                    req->flights[i])
                    fail(req->flights[i], e.what());
            }
            emitError(req->client, req->id, e.what());
            finishRequest(req);
            return;
        }

        // collect shared and cached cells into the result matrix;
        // flights always terminate (complete or fail), so these waits
        // are bounded by their owners' progress
        bool sharedFailed = false;
        std::string sharedError;
        for (std::size_t i = 0; i < ncells; i++) {
            if (req->plan[i] == Request::Plan::Wait) {
                const auto &f = req->flights[i];
                std::unique_lock lock(f->mu);
                f->cv.wait(lock, [&] { return f->done; });
                if (f->failed) {
                    sharedFailed = true;
                    sharedError = f->error;
                    continue;
                }
                result.cells[i] = f->payload.cell;
                if (f->payload.hasAgg) {
                    if (result.aggregates.empty())
                        result.aggregates.resize(ncells);
                    result.aggregates[i] = f->payload.agg;
                }
            } else if (req->plan[i] == Request::Plan::Cached) {
                const auto &p = req->cached[i];
                result.cells[i] = p->cell;
                if (p->hasAgg) {
                    if (result.aggregates.empty())
                        result.aggregates.resize(ncells);
                    result.aggregates[i] = p->agg;
                }
            }
        }

        const bool cancelled =
            req->cancelled.load(std::memory_order_relaxed) ||
            req->nCancelled.load(std::memory_order_relaxed) > 0;
        if (sharedFailed && !cancelled) {
            emitError(req->client, req->id,
                      "shared cell failed: " + sharedError);
            finishRequest(req);
            return;
        }

        std::ostringstream os;
        os << "{\"id\":" << json::quote(req->id)
           << ",\"event\":\"done\",\"cells\":" << ncells
           << ",\"cellsSimulated\":" << req->nSim.load()
           << ",\"cellsShared\":" << req->nShared.load()
           << ",\"cellsCached\":" << req->nCached.load()
           << ",\"cellsCancelled\":" << req->nCancelled.load()
           << ",\"cancelled\":" << (cancelled ? "true" : "false");
        if (!cancelled) {
            canonicalize(result);
            std::ostringstream exp;
            writeJson(exp, result);
            os << ",\"export\":" << json::quote(exp.str());
        }
        os << "}";
        emitRaw(req->client, os.str());
        finishRequest(req);
    }

    bool
    shouldRunCell(const std::shared_ptr<Request> &req, std::size_t i)
    {
        // every consult runs under execMu: with seeds > 1 two
        // replica workers can consult the same cell concurrently
        // (sweep.cc's verdict CAS only arbitrates the answers), so
        // the execution-time decision is made exactly once and then
        // sticks — all consults of a cell agree, the CAS can never
        // adopt a minority verdict, and the abandon transition
        // (which fails the flight and drops it) cannot race another
        // worker's read of plan[i]/flights[i]
        std::lock_guard lock(req->execMu);
        switch (req->plan[i]) {
          case Request::Plan::Undecided: {
            // up-front pass: serial, on the request thread, before
            // any worker spawns
            if (req->cancelled.load(std::memory_order_relaxed)) {
                req->plan[i] = Request::Plan::Cancelled;
                req->nCancelled.fetch_add(1,
                                          std::memory_order_relaxed);
                return false;
            }
            Claim c = claimOrAttach(cellIdentity(req->spec, i), req, i);
            switch (c.kind) {
              case Claim::Kind::Cached:
                req->plan[i] = Request::Plan::Cached;
                req->cached[i] = c.payload;
                req->nCached.fetch_add(1, std::memory_order_relaxed);
                emitCell(req, i, *c.payload);
                return false;
              case Claim::Kind::Attached:
                req->plan[i] = Request::Plan::Wait;
                req->flights[i] = c.flight;
                req->nShared.fetch_add(1, std::memory_order_relaxed);
                return false;
              case Claim::Kind::Claimed:
                req->plan[i] = Request::Plan::Simulate;
                req->flights[i] = c.flight;
                return true;
            }
            return true; // unreachable
          }
          case Request::Plan::Simulate:
            break; // first execution-time consult: decide below
          case Request::Plan::Running:
            return true; // decided: a replica already committed
          default:
            return false; // Wait / Cached / Cancelled: never ours
        }
        if (req->cancelled.load(std::memory_order_relaxed) &&
            abandonIfUnwaited(req->flights[i])) {
            req->plan[i] = Request::Plan::Cancelled;
            req->flights[i] = nullptr;
            req->nCancelled.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        req->plan[i] = Request::Plan::Running;
        return true; // not cancelled, or a waiter needs this cell
    }

    void
    finishRequest(const std::shared_ptr<Request> &req)
    {
        {
            std::lock_guard lock(statsMu);
            stats_.cellsSimulated += req->nSim.load();
            stats_.cellsShared += req->nShared.load();
            stats_.cellsCached += req->nCached.load();
            stats_.cellsCancelled += req->nCancelled.load();
        }
        std::lock_guard lock(req->client->mu);
        // retire this request's own thread handle so the next
        // submitLine joins it; ~Client remains the backstop for the
        // requests still running at disconnect
        auto &ts = req->client->threads;
        for (auto it = ts.begin(); it != ts.end(); ++it) {
            if (it->get_id() == std::this_thread::get_id()) {
                req->client->doneThreads.push_back(std::move(*it));
                ts.erase(it);
                break;
            }
        }
        req->client->active.erase(req->id);
        req->client->maybeFinish();
    }

    // ------------------------------------------------- line parsing

    void
    handleLine(const std::shared_ptr<Client::State> &client,
               const std::string &line)
    {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            return; // blank keep-alive
        if (line.size() > kMaxRequestBytes) {
            emitError(client, "",
                      "request line exceeds " +
                          std::to_string(kMaxRequestBytes) +
                          " bytes");
            return;
        }

        const auto doc = asResult([&] { return json::parse(line); });
        if (!doc) {
            emitError(client, "", doc.error());
            return;
        }
        const json::Value &root = doc.value();
        if (root.kind != json::Value::Kind::Object) {
            emitError(client, "", "request must be a JSON object");
            return;
        }

        if (const json::Value *c = root.find("cancel")) {
            const auto id = asResult([&] { return c->asString(); });
            if (!id) {
                emitError(client, "", "cancel must name a request id");
                return;
            }
            std::lock_guard lock(client->mu);
            const auto it = client->active.find(id.value());
            if (it == client->active.end()) {
                emitError(client, id.value(),
                          "unknown or finished request id");
                return;
            }
            it->second->cancelled.store(true,
                                        std::memory_order_relaxed);
            return; // the request's done record reports cancelled
        }

        const json::Value *idv = root.find("id");
        const auto id = asResult([&] {
            if (idv == nullptr)
                fatal("request is missing \"id\"");
            return idv->asString();
        });
        if (!id) {
            emitError(client, "", id.error());
            return;
        }

        const json::Value *specv = root.find("spec");
        if (specv == nullptr) {
            emitError(client, id.value(),
                      "request is missing \"spec\"");
            return;
        }
        auto spec = trySpecFromJson(*specv);
        if (!spec) {
            emitError(client, id.value(), spec.error());
            return;
        }
        SweepSpec s = std::move(spec).orFatal();
        if (s.benchmarks.empty() || s.techniques.empty()) {
            emitError(client, id.value(),
                      "spec has an empty benchmark or technique axis");
            return;
        }
        if (s.seeds == 0)
            s.seeds = defaultSeeds; // pin the resolved replica count
                                    // into the cell identity

        auto req = std::make_shared<Request>();
        req->id = id.value();
        req->spec = std::move(s);
        req->client = client;

        std::ostringstream os;
        os << "{\"id\":" << json::quote(req->id)
           << ",\"event\":\"accepted\",\"cells\":"
           << req->spec.benchmarks.size() *
                  req->spec.techniques.size()
           << ",\"seeds\":" << req->spec.seeds << "}";

        // registration, the accepted record, and the thread spawn
        // stay under one lock: hardClose() (which joins via ~Client)
        // can then never miss a just-spawned thread, and no cell
        // record can overtake its request's accepted record
        bool duplicate = false;
        {
            std::lock_guard lock(client->mu);
            if (client->noMoreInput)
                return; // raced with shutdown: drop silently
            if (!client->active.emplace(req->id, req).second) {
                duplicate = true;
            } else {
                {
                    std::lock_guard statsLock(statsMu);
                    stats_.requests++;
                }
                emitRaw(client, os.str());
                client->threads.emplace_back(
                    [this, req] { runRequest(req); });
            }
        }
        if (duplicate)
            emitError(client, req->id, "request id already in flight");
    }

    Stats
    stats() const
    {
        std::lock_guard lock(statsMu);
        return stats_;
    }
};

// ---------------------------------------------------- engine surface

Result<ServeEngine::Options>
ServeEngine::optionsFromEnv()
{
    Options opts;
    const auto readSize = [](const char *name, std::size_t fallback,
                             std::size_t min) -> Result<std::size_t> {
        const char *v = std::getenv(name);
        if (v == nullptr)
            return Result<std::size_t>::ok(fallback);
        char *end = nullptr;
        errno = 0;
        const long long n = std::strtoll(v, &end, 10);
        if (end == v || *end != '\0' || errno == ERANGE || n < 0 ||
            static_cast<unsigned long long>(n) < min) {
            return Result<std::size_t>::error(
                std::string(name) + " must be an integer >= " +
                std::to_string(min) + ", got '" + v + "'");
        }
        return Result<std::size_t>::ok(static_cast<std::size_t>(n));
    };

    auto jobs = readSize("SIQSIM_SERVE_JOBS", 0, 0);
    if (!jobs)
        return Result<Options>::error(jobs.error());
    opts.jobs = static_cast<int>(jobs.value());

    auto queue = readSize("SIQSIM_SERVE_QUEUE", 256, 1);
    if (!queue)
        return Result<Options>::error(queue.error());
    opts.queueCap = queue.value();

    auto cache = readSize("SIQSIM_SERVE_RESULT_CACHE", 1024, 0);
    if (!cache)
        return Result<Options>::error(cache.error());
    opts.resultCacheCap = cache.value();

    auto fanout = readSize("SIQSIM_SERVE_FANOUT_MS", 10000, 0);
    if (!fanout)
        return Result<Options>::error(fanout.error());
    opts.fanoutWaitMs = fanout.value();

    // the runner reads these lazily mid-request; surface a malformed
    // environment at startup instead
    if (auto seeds = trySeedsFromEnv(); !seeds)
        return Result<Options>::error(seeds.error());
    if (auto cap = tryTraceCapBytesFromEnv(); !cap)
        return Result<Options>::error(cap.error());

    return Result<Options>::ok(opts);
}

ServeEngine::ServeEngine(const Options &opts)
    : impl(std::make_shared<Impl>(opts))
{
    impl->defaultSeeds = trySeedsFromEnv().orFatal();
}

ServeEngine::~ServeEngine() = default;

ServeEngine::Client::Client(std::shared_ptr<State> s)
    : state(std::move(s))
{
}

ServeEngine::Client::~Client()
{
    hardClose();
    std::vector<std::thread> threads;
    {
        std::lock_guard lock(state->mu);
        threads = std::move(state->threads);
        for (auto &t : state->doneThreads)
            threads.push_back(std::move(t));
        state->doneThreads.clear();
    }
    for (auto &t : threads)
        t.join();
}

void
ServeEngine::Client::submitLine(const std::string &line)
{
    // reap request threads that finished since the last line so a
    // long-lived connection holds O(in-flight) thread handles, not
    // O(requests ever submitted)
    std::vector<std::thread> done;
    {
        std::lock_guard lock(state->mu);
        done.swap(state->doneThreads);
    }
    for (auto &t : done)
        t.join();
    state->engine->handleLine(state, line);
}

void
ServeEngine::Client::endOfInput()
{
    std::lock_guard lock(state->mu);
    state->noMoreInput = true;
    state->maybeFinish();
}

void
ServeEngine::Client::hardClose()
{
    state->hardClose();
}

bool
ServeEngine::Client::nextRecord(std::string &out)
{
    return state->queue.pop(out);
}

std::shared_ptr<ServeEngine::Client>
ServeEngine::connect()
{
    auto state =
        std::make_shared<Client::State>(impl, impl->opts.queueCap);
    return std::shared_ptr<Client>(new Client(std::move(state)));
}

ServeEngine::Stats
ServeEngine::stats() const
{
    return impl->stats();
}

SweepCacheStats
ServeEngine::cacheStats() const
{
    return impl->runner.cacheStats();
}

// -------------------------------------------------------- transports

void
serveStdio(ServeEngine &engine, std::istream &in, std::ostream &out)
{
    auto client = engine.connect();
    std::thread writer([&] {
        std::string rec;
        while (client->nextRecord(rec))
            out << rec << "\n" << std::flush;
    });
    std::string line;
    while (std::getline(in, line))
        client->submitLine(line);
    client->endOfInput();
    writer.join();
}

namespace
{

/** Serve one accepted connection; owns and closes @p fd. */
void
serveConnection(ServeEngine &engine, int fd)
{
    auto client = engine.connect();
    std::thread writer([&] {
        std::string rec;
        while (client->nextRecord(rec)) {
            rec += '\n';
            std::size_t off = 0;
            while (off < rec.size()) {
                // MSG_NOSIGNAL: a vanished reader must surface as an
                // error here, not as SIGPIPE killing the daemon
                const ssize_t n =
                    ::send(fd, rec.data() + off, rec.size() - off,
                           MSG_NOSIGNAL);
                if (n < 0) {
                    if (errno == EINTR)
                        continue;
                    client->hardClose();
                    return;
                }
                off += static_cast<std::size_t>(n);
            }
        }
    });

    std::string buf;
    char chunk[4096];
    bool overflow = false;
    while (!overflow) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl = buf.find('\n', start);
             nl != std::string::npos; nl = buf.find('\n', start)) {
            client->submitLine(buf.substr(start, nl - start));
            start = nl + 1;
        }
        buf.erase(0, start);
        if (buf.size() > kMaxRequestBytes) {
            // a partial line that can no longer become an acceptable
            // request: cut the connection instead of buffering an
            // unbounded frame (handleLine enforces the same cap on
            // complete lines, with an error record)
            client->hardClose();
            overflow = true;
        }
    }
    if (!overflow && !buf.empty())
        client->submitLine(buf);
    client->endOfInput();
    writer.join();
    ::close(fd);
}

} // namespace

void
serveUnixSocket(ServeEngine &engine, const std::string &path,
                std::ostream *ready)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        fatal("serve: socket path too long: '", path, "'");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("serve: socket(): ", std::strerror(errno));
    ::unlink(path.c_str()); // stale socket from a previous daemon
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        fatal("serve: bind('", path, "'): ", std::strerror(errno));
    }
    if (::listen(fd, 64) != 0)
        fatal("serve: listen(): ", std::strerror(errno));
    if (ready)
        *ready << "listening on " << path << std::endl;

    // finished connection threads park their id here and are joined
    // on the next accept, so the daemon holds O(live connections)
    // thread handles, not O(connections ever served)
    std::list<std::thread> connections;
    std::mutex reapMu;
    std::vector<std::thread::id> finished;
    while (true) {
        const int conn = ::accept(fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: accept(): ", std::strerror(errno));
            break;
        }
        std::vector<std::thread::id> ids;
        {
            std::lock_guard lock(reapMu);
            ids.swap(finished);
        }
        for (const auto id : ids) {
            for (auto it = connections.begin();
                 it != connections.end(); ++it) {
                if (it->get_id() == id) {
                    it->join();
                    connections.erase(it);
                    break;
                }
            }
        }
        connections.emplace_back([&engine, &reapMu, &finished,
                                  conn] {
            serveConnection(engine, conn);
            std::lock_guard lock(reapMu);
            finished.push_back(std::this_thread::get_id());
        });
    }
    for (auto &t : connections)
        t.join();
    ::close(fd);
}

} // namespace siq::sim
