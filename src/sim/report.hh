/**
 * @file
 * Structured result export for the experiment engine: JSON and CSV
 * emitters (and matching readers) for RunResult matrices and the
 * paper's PowerComparison savings, so figure data can leave the
 * process machine-readably instead of only as ASCII tables.
 *
 * Round-trip guarantee: integer counters are emitted verbatim and
 * doubles with 17 significant digits, so writeJson → readJson (and
 * writeCsv → readCsv) reproduces every measurement bit-exactly.
 */

#ifndef SIQ_SIM_REPORT_HH
#define SIQ_SIM_REPORT_HH

#include <iosfwd>
#include <string>

#include "sim/fields.hh"
#include "sim/sweep.hh"

namespace siq::sim
{

/// @name JSON.
/// @{

/** Serialize one run (a flat JSON object). */
std::string toJson(const RunResult &result);

/** Serialize the savings of one technique run vs its baseline. */
std::string toJson(const PowerComparison &cmp);

/** Serialize a whole sweep matrix. Replicated sweeps (seeds > 1)
 *  additionally carry "seeds" and a per-cell "aggregates" array
 *  (n/mean/stddev/ci95 per metric); seeds == 1 output is
 *  byte-identical to the unreplicated schema. */
void writeJson(std::ostream &os, const SweepResult &result);

/** Parse writeJson output back into a SweepResult (cache counters
 *  and wall-clock metadata included). Fatal on malformed input. */
SweepResult readJson(std::istream &is);

/// @}

/// @name CSV.
/// @{

/** One row per cell, every counter a column; header row first.
 *  Replicated sweeps grow an `n` column plus `<metric>_mean`,
 *  `<metric>_stddev` and `<metric>_ci95` columns per metric;
 *  seeds == 1 output keeps the unreplicated column set. */
void writeCsv(std::ostream &os, const SweepResult &result);

/** Parse writeCsv output. The benchmark/technique axes are rebuilt
 *  from the rows in first-appearance order; cache counters are not
 *  part of the CSV and come back zero. Fatal on malformed input. */
SweepResult readCsv(std::istream &is);

/**
 * Per-cell power savings vs the named baseline technique (which must
 * be part of the sweep): the figure 8-12 numbers as CSV.
 */
void writePowerCsv(std::ostream &os, const SweepResult &result,
                   const std::string &baselineTechnique = "baseline",
                   const power::IqPowerParams &iqParams = {},
                   const power::RfPowerParams &rfParams = {});

/// @}

} // namespace siq::sim

#endif // SIQ_SIM_REPORT_HH
