/**
 * @file
 * Structured (de)serialization for the experiment engine: JSON and
 * CSV emitters (and matching readers) for RunResult matrices, the
 * paper's PowerComparison savings, declarative SweepSpec grids, and
 * per-cell checkpoint payloads — so figure data, experiment specs
 * and partial-run state can all leave the process machine-readably.
 *
 * Round-trip guarantee: integer counters are emitted verbatim and
 * doubles with 17 significant digits, so writeJson → readJson (and
 * writeCsv → readCsv, writeSpecJson → readSpecJson) reproduces every
 * field bit-exactly.
 */

#ifndef SIQ_SIM_REPORT_HH
#define SIQ_SIM_REPORT_HH

#include <iosfwd>
#include <string>

#include "common/json.hh"
#include "common/result.hh"
#include "sim/fields.hh"
#include "sim/sweep.hh"

namespace siq::sim
{

/// @name JSON.
/// @{

/** Serialize one run (a flat JSON object). */
std::string toJson(const RunResult &result);

/** Serialize the savings of one technique run vs its baseline. */
std::string toJson(const PowerComparison &cmp);

/** Serialize a whole sweep matrix. Replicated sweeps (seeds > 1)
 *  additionally carry "seeds" and a per-cell "aggregates" array
 *  (n/mean/stddev/ci95 per metric); seeds == 1 output is
 *  byte-identical to the unreplicated schema. */
void writeJson(std::ostream &os, const SweepResult &result);

/** Parse writeJson output back into a SweepResult (cache counters
 *  and wall-clock metadata included). Fatal on malformed input. */
SweepResult readJson(std::istream &is);

/// @}

/// @name CSV.
/// @{

/** One row per cell, every counter a column; header row first.
 *  Replicated sweeps grow an `n` column plus `<metric>_mean`,
 *  `<metric>_stddev` and `<metric>_ci95` columns per metric;
 *  seeds == 1 output keeps the unreplicated column set. */
void writeCsv(std::ostream &os, const SweepResult &result);

/** Parse writeCsv output. The benchmark/technique axes are rebuilt
 *  from the rows in first-appearance order; cache counters are not
 *  part of the CSV and come back zero. Fatal on malformed input. */
SweepResult readCsv(std::istream &is);

/**
 * Per-cell power savings vs the named baseline technique (which must
 * be part of the sweep): the figure 8-12 numbers as CSV.
 */
void writePowerCsv(std::ostream &os, const SweepResult &result,
                   const std::string &baselineTechnique = "baseline",
                   const power::IqPowerParams &iqParams = {},
                   const power::RfPowerParams &rfParams = {});

/// @}

/// @name Sweep specifications.
/// @{

/**
 * Serialize a declarative SweepSpec: the grid axes (benchmarks ×
 * techniques), jobs, seeds, and the full base RunConfig — workload
 * parameters, instruction budgets, compiler knobs, the complete core
 * machine configuration (IQ/LSQ/register files/FUs/branch predictor/
 * memory hierarchy), and both adaptive-comparator configs.
 *
 * Each benchmark-axis entry is emitted as a structured WorkloadSpec
 * object — `{"family": "phased", "params": {"period": 60000}}`, the
 * "params" key elided for parameterless workloads — validated and
 * canonicalized through the family registry (workloads/family.hh,
 * DESIGN.md §10). readSpecJson also accepts plain string entries
 * ("phased:period=60000") in hand-written specs.
 *
 * Two fields do not serialize, by design: `base.tech` (sweeps ignore
 * it — the technique axis decides what runs) and the `perCell`
 * override (a function; specs that need per-cell overrides are bound
 * to the binary that defines them, see DESIGN.md §8.1).
 */
void writeSpecJson(std::ostream &os, const SweepSpec &spec);

/** writeSpecJson into a string (the canonical spec identity used to
 *  verify resume/merge compatibility — DESIGN.md §8.2). */
std::string toJson(const SweepSpec &spec);

/** Parse writeSpecJson output. Every serialized field round-trips
 *  bit-exactly; `perCell` comes back null. Fatal on malformed
 *  input or unknown technique names. */
SweepSpec readSpecJson(std::istream &is);

/** Build a SweepSpec from an already-parsed JSON tree (the serve
 *  daemon embeds specs inside request envelopes). Fatal on schema
 *  violations; see trySpecFromJson for the recoverable form. */
SweepSpec specFromJson(const json::Value &root);

/** Recoverable specFromJson: schema violations become an error
 *  Result instead of unwinding past the caller. */
Result<SweepSpec> trySpecFromJson(const json::Value &root);

/** Recoverable readSpecJson over an in-memory document: malformed
 *  JSON, schema violations, unknown techniques, and bad workload
 *  specs all come back as an error Result. The entry point for
 *  untrusted per-request bytes (sim/serve.cc). */
Result<SweepSpec> tryReadSpecJson(const std::string &text);

/// @}

/// @name Per-cell checkpoints.
/// @{

/**
 * The payload of one checkpoint file: a finished cell identified by
 * its stable technique-major index, its replica-0 result, and — for
 * replicated sweeps — its replica aggregate (DESIGN.md §8.2).
 */
struct CellCheckpoint
{
    /** Technique-major cell index within the spec's matrix. */
    std::size_t index = 0;
    /** Replicas this cell ran (1 = unreplicated, no aggregate). */
    int seeds = 1;
    RunResult cell;
    /** Only meaningful when seeds > 1. */
    CellAggregate aggregate;
};

/** Serialize one checkpoint payload (a single JSON object). */
std::string toJson(const CellCheckpoint &ckpt);

/** Parse toJson(CellCheckpoint) output; fatal on malformed input. */
CellCheckpoint cellCheckpointFromJson(const std::string &text);

/** Serialize cache counters (the `siqsim run` cache.json payload;
 *  always carries every counter, unlike the sweep export's
 *  schema-frozen cache block). */
std::string toJson(const SweepCacheStats &cache);

/** Parse toJson(SweepCacheStats) output; fatal on malformed input. */
SweepCacheStats cacheStatsFromJson(const std::string &text);

/// @}

/**
 * Zero every scheduling / wall-clock / cache-accounting field of a
 * result (jobsUsed, wallSeconds, cache counters, per-cell
 * generateSeconds, traceSeconds, compileSeconds and compile.seconds),
 * leaving only measurements.
 * Two runs of the same spec — serial or threaded, sharded or not,
 * resumed or not — canonicalize to byte-identical exports; this is
 * the form `siqsim run` and `siqsim merge` emit (DESIGN.md §8.3).
 */
void canonicalize(SweepResult &result);

/** Zero one cell's timing fields (the per-cell piece of the above;
 *  the serve daemon canonicalizes cells before streaming them so
 *  deduped fan-out is byte-identical for every receiver). */
void canonicalize(RunResult &cell);

} // namespace siq::sim

#endif // SIQ_SIM_REPORT_HH
