#include "mem/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace siq
{

Cache::Cache(const CacheConfig &config) : _config(config)
{
    SIQ_ASSERT(config.sizeBytes > 0 && config.assoc > 0 &&
               config.lineBytes > 0,
               "bad cache geometry for ", config.name);
    SIQ_ASSERT(std::has_single_bit(config.lineBytes),
               "line size must be a power of two");
    numSets = config.sizeBytes / (config.assoc * config.lineBytes);
    SIQ_ASSERT(numSets > 0 && std::has_single_bit(numSets),
               "set count must be a power of two for ", config.name);
    lines.assign(static_cast<std::size_t>(numSets) * config.assoc, {});
}

std::size_t
Cache::setIndex(std::uint64_t byteAddr) const
{
    return (byteAddr / _config.lineBytes) & (numSets - 1);
}

std::uint64_t
Cache::tagOf(std::uint64_t byteAddr) const
{
    return (byteAddr / _config.lineBytes) / numSets;
}

bool
Cache::access(std::uint64_t byteAddr)
{
    _accesses++;
    const std::size_t base = setIndex(byteAddr) * _config.assoc;
    const std::uint64_t tag = tagOf(byteAddr);
    useCounter++;

    std::size_t victim = base;
    std::uint64_t victimUse = ~0ull;
    for (std::size_t w = 0; w < _config.assoc; w++) {
        Line &line = lines[base + w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useCounter;
            return true;
        }
        const std::uint64_t use = line.valid ? line.lastUse : 0;
        if (use < victimUse) {
            victimUse = use;
            victim = base + w;
        }
    }
    _misses++;
    lines[victim] = {tag, useCounter, true};
    return false;
}

bool
Cache::probe(std::uint64_t byteAddr) const
{
    const std::size_t base = setIndex(byteAddr) * _config.assoc;
    const std::uint64_t tag = tagOf(byteAddr);
    for (std::size_t w = 0; w < _config.assoc; w++) {
        const Line &line = lines[base + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
Cache::resetStats()
{
    _accesses.reset();
    _misses.reset();
}

MemHierarchy::MemHierarchy(const MemHierarchyConfig &config)
    : _config(config), _l1i(config.l1i), _l1d(config.l1d),
      _l2(config.l2)
{}

int
MemHierarchy::instAccess(std::uint64_t byteAddr)
{
    if (_l1i.access(byteAddr))
        return _config.l1i.hitLatency;
    if (_l2.access(byteAddr))
        return _config.l2.hitLatency;
    return _config.memLatency;
}

int
MemHierarchy::dataAccess(std::uint64_t byteAddr)
{
    if (_l1d.access(byteAddr))
        return _config.l1d.hitLatency;
    if (_l2.access(byteAddr))
        return _config.l2.hitLatency;
    return _config.memLatency;
}

void
MemHierarchy::resetStats()
{
    _l1i.resetStats();
    _l1d.resetStats();
    _l2.resetStats();
}

} // namespace siq
