/**
 * @file
 * Set-associative cache with LRU replacement.
 *
 * The model is latency-only: no bandwidth limits, no MSHRs, allocate on
 * every miss. That is the level of detail the paper's evaluation needs
 * (cache latency shapes the critical path; contention there is not
 * studied).
 */

#ifndef SIQ_MEM_CACHE_HH
#define SIQ_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace siq
{

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint32_t sizeBytes = 64 * 1024;
    std::uint32_t assoc = 2;
    std::uint32_t lineBytes = 32;
    int hitLatency = 1;
};

/** One cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up a byte address; allocate the line on a miss.
     * @return true on hit.
     */
    bool access(std::uint64_t byteAddr);

    /** Look up without allocating or touching LRU state. */
    bool probe(std::uint64_t byteAddr) const;

    const CacheConfig &config() const { return _config; }
    std::uint64_t accesses() const { return _accesses.value(); }
    std::uint64_t misses() const { return _misses.value(); }

    double
    missRate() const
    {
        return _accesses.value()
                   ? static_cast<double>(_misses.value()) /
                         static_cast<double>(_accesses.value())
                   : 0.0;
    }

    void resetStats();

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::size_t setIndex(std::uint64_t byteAddr) const;
    std::uint64_t tagOf(std::uint64_t byteAddr) const;

    CacheConfig _config;
    std::uint32_t numSets;
    std::vector<Line> lines; // numSets * assoc
    std::uint64_t useCounter = 0;
    stats::Scalar _accesses;
    stats::Scalar _misses;
};

/** Table-1 three-level hierarchy: L1I + L1D backed by a unified L2. */
struct MemHierarchyConfig
{
    CacheConfig l1i{"l1i", 64 * 1024, 2, 32, 1};
    CacheConfig l1d{"l1d", 64 * 1024, 4, 32, 2};
    CacheConfig l2{"l2", 512 * 1024, 8, 64, 10};
    int memLatency = 50; ///< total latency of an L2 miss
};

/** The full data/instruction memory hierarchy. */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const MemHierarchyConfig &config);

    /** Fetch-side access; @return total latency in cycles. */
    int instAccess(std::uint64_t byteAddr);

    /** Data-side access (loads and committed stores). */
    int dataAccess(std::uint64_t byteAddr);

    Cache &l1i() { return _l1i; }
    Cache &l1d() { return _l1d; }
    Cache &l2() { return _l2; }

    void resetStats();

  private:
    MemHierarchyConfig _config;
    Cache _l1i;
    Cache _l1d;
    Cache _l2;
};

} // namespace siq

#endif // SIQ_MEM_CACHE_HH
