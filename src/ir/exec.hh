/**
 * @file
 * Functional interpreter for siqsim programs.
 *
 * The cycle-level core uses an execute-at-fetch model: every fetched
 * instruction is stepped through this interpreter immediately, so
 * values, memory addresses and branch outcomes are known at fetch and
 * identical under every timing configuration. Tests assert that
 * property.
 */

#ifndef SIQ_IR_EXEC_HH
#define SIQ_IR_EXEC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "ir/program.hh"

namespace siq
{

/** Everything the timing model needs to know about one executed inst. */
struct StepResult
{
    const StaticInst *inst = nullptr;
    int proc = -1;
    int block = -1;
    int instIdx = -1;
    /** Location of the next instruction (after control resolution). */
    int nextProc = -1;
    int nextBlock = -1;
    int nextInstIdx = -1;
    bool taken = false;        ///< conditional branch outcome
    std::uint64_t memAddr = 0; ///< word address for loads/stores
    bool halted = false;       ///< program finished at this step
};

/** Architectural state plus an instruction-at-a-time interpreter. */
class ExecContext
{
  public:
    explicit ExecContext(const Program &prog);

    /** The context keeps a reference: the program must outlive it. */
    explicit ExecContext(Program &&) = delete;

    /** Execute the next instruction in program order. */
    StepResult step();

    /**
     * The instruction step() would execute next, without executing
     * it. Only valid while !halted(); the fetch stage uses it to
     * read the next PC without re-resolving (proc, block, instIdx)
     * through three vector indirections.
     */
    const StaticInst &
    peek() const
    {
        return curBlk->insts[static_cast<std::size_t>(instIdx)];
    }

    bool halted() const { return _halted; }
    std::uint64_t instsExecuted() const { return _instsExecuted; }

    /// @name Observation hooks for tests.
    /// @{
    std::int64_t intReg(int r) const { return iregs[r]; }

    /** Read an FP register by unified or class-local index. */
    double
    fpReg(int r) const
    {
        return fregs[static_cast<std::size_t>(
            r >= fpRegBase ? r - fpRegBase : r)];
    }
    std::int64_t readMem(std::uint64_t wordAddr) const;
    /** Current position (proc, block, instIdx). */
    int curProc() const { return proc; }
    int curBlock() const { return block; }
    int curInst() const { return instIdx; }
    std::uint64_t callDepth() const { return stack.size(); }
    /// @}

  private:
    struct Frame
    {
        int proc;
        int block;
        int instIdx;
    };

    std::uint64_t wrap(std::int64_t wordAddr) const;
    void advance(StepResult &res);
    /** Skip empty blocks (fallthrough-only joins) and detect halt. */
    void normalize();

    const Program &prog;
    /** Cache of &prog.procs[proc].blocks[block], refreshed by
     *  normalize() — the hot path reads the current block through
     *  this instead of two vector indirections per step. Stale (and
     *  unused) once halted. */
    const BasicBlock *curBlk = nullptr;
    std::array<std::int64_t, numIntArchRegs> iregs{};
    std::array<double, numFpArchRegs> fregs{};
    std::vector<std::int64_t> mem;
    std::vector<Frame> stack;
    int proc;
    int block = 0;
    int instIdx = 0;
    bool _halted = false;
    std::uint64_t _instsExecuted = 0;
};

} // namespace siq

#endif // SIQ_IR_EXEC_HH
