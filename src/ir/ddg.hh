/**
 * @file
 * Data dependence graph over a linearized instruction region.
 *
 * Nodes are instructions in program order (across the region's blocks,
 * linearized in reverse post-order). Edges carry the producer's
 * latency and an iteration distance: 0 for intra-iteration RAW
 * dependences, 1 for loop-carried dependences discovered through the
 * region's back edge. Memory dependences between statically identical
 * addresses (same base register and offset, base not redefined in
 * between) are added conservatively.
 */

#ifndef SIQ_IR_DDG_HH
#define SIQ_IR_DDG_HH

#include <functional>
#include <vector>

#include "ir/program.hh"

namespace siq
{

/** One DDG node: a reference into the region plus its latency. */
struct DdgNode
{
    const StaticInst *inst = nullptr;
    int blockId = -1;
    int instIdx = -1; ///< index within the block
    int latency = 1;  ///< producer latency used for edge weights
};

/** One dependence edge; latency is the source node's latency. */
struct DdgEdge
{
    int from = -1;
    int to = -1;
    int latency = 1;
    int distance = 0; ///< iterations crossed (0 or 1)
};

/** Dependence graph with per-node adjacency. */
class Ddg
{
  public:
    std::vector<DdgNode> nodes;
    std::vector<DdgEdge> edges;

    int
    addNode(DdgNode node)
    {
        nodes.push_back(node);
        outEdges.emplace_back();
        inEdges.emplace_back();
        return static_cast<int>(nodes.size()) - 1;
    }

    void
    addEdge(int from, int to, int latency, int distance)
    {
        const int idx = static_cast<int>(edges.size());
        edges.push_back({from, to, latency, distance});
        outEdges[from].push_back(idx);
        inEdges[to].push_back(idx);
    }

    const std::vector<int> &out(int node) const { return outEdges[node]; }
    const std::vector<int> &in(int node) const { return inEdges[node]; }
    int size() const { return static_cast<int>(nodes.size()); }

  private:
    std::vector<std::vector<int>> outEdges;
    std::vector<std::vector<int>> inEdges;
};

/** Latency model used by the compiler (assumes cache hits, paper §4.2). */
using LatencyFn = std::function<int(const StaticInst &)>;

/** Default latencies: opcode latency, loads cost the L1 hit latency. */
int defaultCompilerLatency(const StaticInst &si, int l1dHitLatency = 2);

/**
 * Build the DDG for a region.
 *
 * @param blocks region blocks in execution (linearization) order
 * @param loopCarried also add distance-1 edges through the back edge
 * @param latency latency model (defaults to defaultCompilerLatency)
 */
Ddg buildDdg(const std::vector<const BasicBlock *> &blocks,
             bool loopCarried,
             const LatencyFn &latency = {});

/**
 * Strongly connected components (Tarjan) over edges of any distance.
 * @return one vector of node ids per SCC; single nodes only included
 *         when they carry a self edge (so every returned component is
 *         a cyclic dependence set in the paper's sense).
 */
std::vector<std::vector<int>> cyclicDependenceSets(const Ddg &ddg);

} // namespace siq

#endif // SIQ_IR_DDG_HH
