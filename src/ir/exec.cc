#include "ir/exec.hh"

#include <bit>

#include "common/logging.hh"

namespace siq
{

namespace
{

// Integer ALU ops wrap (two's complement) like real hardware; signed
// overflow is UB in C++, so route the arithmetic through uint64_t.
// Several generators rely on wrapping (e.g. mcf's LCG pointer hash).
std::int64_t
wrapAdd(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wrapSub(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
}

std::int64_t
wrapMul(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b));
}

} // namespace

ExecContext::ExecContext(const Program &prog_)
    : prog(prog_), proc(prog_.entryProc)
{
    mem.assign(prog.memWords, 0);
    for (const auto &[addr, value] : prog.memInit)
        mem[wrap(static_cast<std::int64_t>(addr))] = value;
    normalize();
}

void
ExecContext::normalize()
{
    while (!_halted) {
        const BasicBlock &blk = prog.procs[proc].blocks[block];
        if (instIdx < static_cast<int>(blk.insts.size())) {
            curBlk = &blk;
            return;
        }
        if (blk.fallthrough >= 0) {
            block = blk.fallthrough;
            instIdx = 0;
        } else {
            _halted = true;
        }
    }
}

std::uint64_t
ExecContext::wrap(std::int64_t wordAddr) const
{
    // Addresses wrap modulo the memory size; keeps synthetic workloads
    // deterministic even when index arithmetic overshoots.
    const auto size = static_cast<std::int64_t>(prog.memWords);
    std::int64_t m = wordAddr % size;
    if (m < 0)
        m += size;
    return static_cast<std::uint64_t>(m);
}

std::int64_t
ExecContext::readMem(std::uint64_t wordAddr) const
{
    return mem[wrap(static_cast<std::int64_t>(wordAddr))];
}

void
ExecContext::advance(StepResult &res)
{
    // next instruction in the same block, falling through (possibly
    // across empty blocks) at the end
    instIdx++;
    normalize();
    res.nextProc = proc;
    res.nextBlock = block;
    res.nextInstIdx = instIdx;
    res.halted = _halted;
}

StepResult
ExecContext::step()
{
    SIQ_ASSERT(!_halted, "step() after halt");
    const BasicBlock &blk = *curBlk;
    SIQ_ASSERT(instIdx < static_cast<int>(blk.insts.size()),
               "pc past end of block");
    const StaticInst &si = blk.insts[instIdx];

    StepResult res;
    res.inst = &si;
    res.proc = proc;
    res.block = block;
    res.instIdx = instIdx;

    auto ir = [&](int r) -> std::int64_t {
        return r == zeroReg ? 0 : iregs[r];
    };
    auto fr = [&](int r) -> double { return fregs[r - fpRegBase]; };
    auto setIr = [&](int r, std::int64_t v) {
        if (r != zeroReg)
            iregs[r] = v;
    };
    auto setFr = [&](int r, double v) { fregs[r - fpRegBase] = v; };

    _instsExecuted++;

    switch (si.op) {
      case Opcode::Nop:
      case Opcode::Hint:
        break;
      case Opcode::MovImm:
        setIr(si.dst, si.imm);
        break;
      case Opcode::Add:
        setIr(si.dst, wrapAdd(ir(si.src1), ir(si.src2)));
        break;
      case Opcode::AddImm:
        setIr(si.dst, wrapAdd(ir(si.src1), si.imm));
        break;
      case Opcode::Sub:
        setIr(si.dst, wrapSub(ir(si.src1), ir(si.src2)));
        break;
      case Opcode::Mul:
        setIr(si.dst, wrapMul(ir(si.src1), ir(si.src2)));
        break;
      case Opcode::Div: {
        const std::int64_t d = ir(si.src2);
        // d == -1 would overflow on INT64_MIN / -1; negate via the
        // wrapping path instead
        setIr(si.dst, d == 0    ? 0
                      : d == -1 ? wrapSub(0, ir(si.src1))
                                : ir(si.src1) / d);
        break;
      }
      case Opcode::And:
        setIr(si.dst, ir(si.src1) & ir(si.src2));
        break;
      case Opcode::Or:
        setIr(si.dst, ir(si.src1) | ir(si.src2));
        break;
      case Opcode::Xor:
        setIr(si.dst, ir(si.src1) ^ ir(si.src2));
        break;
      case Opcode::Shl:
        setIr(si.dst, ir(si.src1) << (si.imm & 63));
        break;
      case Opcode::Shr:
        setIr(si.dst, static_cast<std::int64_t>(
            static_cast<std::uint64_t>(ir(si.src1)) >> (si.imm & 63)));
        break;
      case Opcode::Slt:
        setIr(si.dst, ir(si.src1) < ir(si.src2) ? 1 : 0);
        break;
      case Opcode::FMovImm:
        setFr(si.dst, static_cast<double>(si.imm));
        break;
      case Opcode::FAdd:
        setFr(si.dst, fr(si.src1) + fr(si.src2));
        break;
      case Opcode::FMul:
        setFr(si.dst, fr(si.src1) * fr(si.src2));
        break;
      case Opcode::FDiv: {
        const double d = fr(si.src2);
        setFr(si.dst, d == 0.0 ? 0.0 : fr(si.src1) / d);
        break;
      }
      case Opcode::Load: {
        res.memAddr = wrap(wrapAdd(ir(si.src1), si.imm));
        setIr(si.dst, mem[res.memAddr]);
        break;
      }
      case Opcode::Store: {
        res.memAddr = wrap(wrapAdd(ir(si.src1), si.imm));
        mem[res.memAddr] = ir(si.src2);
        break;
      }
      case Opcode::FLoad: {
        res.memAddr = wrap(wrapAdd(ir(si.src1), si.imm));
        setFr(si.dst, std::bit_cast<double>(mem[res.memAddr]));
        break;
      }
      case Opcode::FStore: {
        res.memAddr = wrap(wrapAdd(ir(si.src1), si.imm));
        mem[res.memAddr] = std::bit_cast<std::int64_t>(fr(si.src2));
        break;
      }
      case Opcode::Beq:
        res.taken = ir(si.src1) == ir(si.src2);
        break;
      case Opcode::Bne:
        res.taken = ir(si.src1) != ir(si.src2);
        break;
      case Opcode::Blt:
        res.taken = ir(si.src1) < ir(si.src2);
        break;
      case Opcode::Bge:
        res.taken = ir(si.src1) >= ir(si.src2);
        break;
      case Opcode::Jump:
      case Opcode::IJump:
      case Opcode::Call:
      case Opcode::Ret:
        break; // handled below
      case Opcode::Halt:
        _halted = true;
        res.halted = true;
        res.nextProc = proc;
        res.nextBlock = block;
        res.nextInstIdx = instIdx;
        return res;
      default:
        panic("unhandled opcode in exec");
    }

    // control resolution
    const auto &t = si.traits();
    if (t.isBranch && res.taken) {
        block = si.target;
        instIdx = 0;
    } else if (si.op == Opcode::Jump) {
        res.taken = true;
        block = si.target;
        instIdx = 0;
    } else if (si.op == Opcode::IJump) {
        res.taken = true;
        const auto &targets = blk.indirectTargets;
        const auto n = static_cast<std::int64_t>(targets.size());
        std::int64_t idx = ir(si.src1) % n;
        if (idx < 0)
            idx += n;
        block = targets[static_cast<std::size_t>(idx)];
        instIdx = 0;
    } else if (si.op == Opcode::Call) {
        res.taken = true;
        SIQ_ASSERT(blk.fallthrough >= 0, "call without return point");
        stack.push_back({proc, blk.fallthrough, 0});
        proc = si.target;
        block = 0;
        instIdx = 0;
    } else if (si.op == Opcode::Ret) {
        res.taken = true;
        if (stack.empty()) {
            _halted = true;
            res.halted = true;
            res.nextProc = proc;
            res.nextBlock = block;
            res.nextInstIdx = instIdx;
            return res;
        }
        const Frame f = stack.back();
        stack.pop_back();
        proc = f.proc;
        block = f.block;
        instIdx = f.instIdx;
    } else {
        advance(res);
        return res;
    }

    normalize();
    res.nextProc = proc;
    res.nextBlock = block;
    res.nextInstIdx = instIdx;
    res.halted = _halted;
    return res;
}

} // namespace siq
