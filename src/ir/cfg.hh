/**
 * @file
 * Control-flow analyses over one procedure: reverse post-order,
 * dominator tree and natural loop discovery.
 *
 * The compiler pass of the paper relies on MachineSUIF's natural-loop
 * library; this module provides the equivalent functionality.
 */

#ifndef SIQ_IR_CFG_HH
#define SIQ_IR_CFG_HH

#include <vector>

#include "ir/program.hh"

namespace siq
{

/** Blocks of @p proc reachable from entry, in reverse post-order. */
std::vector<int> reversePostOrder(const Procedure &proc);

/**
 * Immediate dominators (Cooper-Harvey-Kennedy).
 *
 * @return idom[b] for every block; entry's idom is itself and
 *         unreachable blocks get -1.
 */
std::vector<int> immediateDominators(const Procedure &proc);

/** True when a dominates b under the given idom relation. */
bool dominates(const std::vector<int> &idom, int a, int b);

/** One natural loop; blocks with the same header are merged. */
struct NaturalLoop
{
    int header = -1;
    std::vector<int> blocks;       ///< sorted, includes the header
    std::vector<int> backedgeSrcs; ///< latch blocks
    int parent = -1;               ///< index of enclosing loop or -1
    std::vector<int> children;     ///< indices of directly nested loops
    int depth = 1;                 ///< 1 = outermost

    bool
    contains(int block) const
    {
        for (int b : blocks)
            if (b == block)
                return true;
        return false;
    }

    /**
     * Blocks in this loop but in none of its children — the paper's
     * "those that are only in the outer loop form another [group]".
     */
    std::vector<int> exclusiveBlocks(
        const std::vector<NaturalLoop> &all) const;
};

/** Find all natural loops of @p proc, with nesting links resolved. */
std::vector<NaturalLoop> findNaturalLoops(const Procedure &proc);

} // namespace siq

#endif // SIQ_IR_CFG_HH
