#include "ir/cfg.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.hh"

namespace siq
{

std::vector<int>
reversePostOrder(const Procedure &proc)
{
    const int n = static_cast<int>(proc.blocks.size());
    std::vector<int> order;
    std::vector<char> state(n, 0); // 0 unvisited, 1 on stack, 2 done
    // iterative DFS with explicit successor cursors
    std::vector<std::pair<int, std::size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
        auto &[b, cursor] = stack.back();
        const auto &succs = proc.blocks[b].succs;
        if (cursor < succs.size()) {
            const int next = succs[cursor++];
            if (state[next] == 0) {
                state[next] = 1;
                stack.emplace_back(next, 0);
            }
        } else {
            state[b] = 2;
            order.push_back(b);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

std::vector<int>
immediateDominators(const Procedure &proc)
{
    const int n = static_cast<int>(proc.blocks.size());
    const std::vector<int> rpo = reversePostOrder(proc);
    std::vector<int> rpoIndex(n, -1);
    for (std::size_t i = 0; i < rpo.size(); i++)
        rpoIndex[rpo[i]] = static_cast<int>(i);

    std::vector<int> idom(n, -1);
    idom[0] = 0;

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = idom[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : rpo) {
            if (b == 0)
                continue;
            int newIdom = -1;
            for (int p : proc.blocks[b].preds) {
                if (rpoIndex[p] < 0 || idom[p] < 0)
                    continue; // unreachable or not yet processed
                newIdom = newIdom < 0 ? p : intersect(p, newIdom);
            }
            if (newIdom >= 0 && idom[b] != newIdom) {
                idom[b] = newIdom;
                changed = true;
            }
        }
    }
    return idom;
}

bool
dominates(const std::vector<int> &idom, int a, int b)
{
    if (b < 0 || idom[b] < 0)
        return false;
    int cur = b;
    while (true) {
        if (cur == a)
            return true;
        if (cur == idom[cur])
            return cur == a;
        cur = idom[cur];
    }
}

std::vector<int>
NaturalLoop::exclusiveBlocks(const std::vector<NaturalLoop> &all) const
{
    std::set<int> inner;
    for (int c : children)
        for (int b : all[c].blocks)
            inner.insert(b);
    std::vector<int> result;
    for (int b : blocks)
        if (!inner.count(b))
            result.push_back(b);
    return result;
}

std::vector<NaturalLoop>
findNaturalLoops(const Procedure &proc)
{
    const std::vector<int> idom = immediateDominators(proc);

    // collect natural loops per header
    std::map<int, std::set<int>> loopBlocks;  // header -> body
    std::map<int, std::vector<int>> latches;

    for (const auto &block : proc.blocks) {
        if (idom[block.id] < 0)
            continue; // unreachable
        for (int succ : block.succs) {
            if (!dominates(idom, succ, block.id))
                continue;
            // back edge block -> succ; natural loop = succ plus all
            // blocks reaching block without passing through succ
            auto &body = loopBlocks[succ];
            latches[succ].push_back(block.id);
            body.insert(succ);
            std::vector<int> work;
            if (!body.count(block.id)) {
                body.insert(block.id);
                work.push_back(block.id);
            }
            while (!work.empty()) {
                const int b = work.back();
                work.pop_back();
                if (b == succ)
                    continue;
                for (int p : proc.blocks[b].preds) {
                    if (idom[p] < 0 || body.count(p))
                        continue;
                    body.insert(p);
                    work.push_back(p);
                }
            }
        }
    }

    std::vector<NaturalLoop> loops;
    for (auto &[header, body] : loopBlocks) {
        NaturalLoop loop;
        loop.header = header;
        loop.blocks.assign(body.begin(), body.end());
        loop.backedgeSrcs = latches[header];
        loops.push_back(std::move(loop));
    }

    // nesting: parent = smallest strict superset containing the header
    for (std::size_t i = 0; i < loops.size(); i++) {
        std::size_t best = loops.size();
        std::size_t bestSize = static_cast<std::size_t>(-1);
        for (std::size_t j = 0; j < loops.size(); j++) {
            if (i == j)
                continue;
            const auto &a = loops[i].blocks;
            const auto &b = loops[j].blocks;
            if (b.size() <= a.size())
                continue;
            if (std::includes(b.begin(), b.end(), a.begin(), a.end())) {
                if (b.size() < bestSize) {
                    bestSize = b.size();
                    best = j;
                }
            }
        }
        if (best < loops.size()) {
            loops[i].parent = static_cast<int>(best);
            loops[best].children.push_back(static_cast<int>(i));
        }
    }
    for (auto &loop : loops) {
        int depth = 1;
        for (int p = loop.parent; p >= 0; p = loops[p].parent)
            depth++;
        loop.depth = depth;
    }
    return loops;
}

} // namespace siq
