/**
 * @file
 * Program representation: procedures of basic blocks of StaticInsts.
 *
 * Control-flow conventions:
 *  - only the last instruction of a block may transfer control
 *    (conditional branch, jump, indirect jump, call, ret, halt);
 *  - a conditional branch falls through to @c fallthrough when not
 *    taken and goes to its @c target block when taken;
 *  - a block whose last instruction is not a control transfer falls
 *    through to @c fallthrough;
 *  - calls terminate a block (as in the paper, where "the first block
 *    in a DAG is ... a block immediately following a function call");
 *    execution resumes at the caller block's @c fallthrough;
 *  - an IJump selects among @c indirectTargets by register value.
 */

#ifndef SIQ_IR_PROGRAM_HH
#define SIQ_IR_PROGRAM_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "isa/static_inst.hh"

namespace siq
{

/** A straight-line run of instructions with single entry and exit. */
struct BasicBlock
{
    int id = -1;
    std::vector<StaticInst> insts;
    int fallthrough = -1; ///< successor when control falls through
    std::vector<int> indirectTargets; ///< IJump jump table (block ids)
    std::vector<int> succs; ///< filled by Program::finalize()
    std::vector<int> preds; ///< filled by Program::finalize()
    std::uint64_t startPc = 0;

    bool empty() const { return insts.empty(); }

    const StaticInst *
    terminator() const
    {
        if (insts.empty())
            return nullptr;
        const StaticInst &last = insts.back();
        return isControl(last.op) || last.traits().isHalt ? &last
                                                          : nullptr;
    }
};

/** A procedure: a list of blocks; block 0 is the entry. */
struct Procedure
{
    int id = -1;
    std::string name;
    std::vector<BasicBlock> blocks;
    bool isLibrary = false; ///< paper §4.4: library calls get max IQ

    std::size_t
    instCount() const
    {
        std::size_t n = 0;
        for (const auto &b : blocks)
            n += b.insts.size();
        return n;
    }
};

/** A whole program plus its initial data memory image. */
struct Program
{
    std::string name;
    std::vector<Procedure> procs;
    int entryProc = 0;
    /** Data memory size in 8-byte words; addresses wrap modulo this. */
    std::uint64_t memWords = 1 << 16;
    /** Sparse initial memory image applied before execution. */
    std::vector<std::pair<std::uint64_t, std::int64_t>> memInit;

    /**
     * Content fingerprint (FNV-1a 64 over every field that affects
     * execution: instructions, block structure, entry point, memory
     * size and image), filled by finalize(). Two Program objects with
     * equal hashes execute identically instruction for instruction —
     * the key the sweep engine's functional-trace cache shares traces
     * under, across techniques whose annotation was a no-op and across
     * ablation cells that only vary microarchitectural knobs.
     */
    std::uint64_t contentHash = 0;

    /**
     * Assign PCs, build CFG successor/predecessor lists, compute
     * contentHash and validate structural invariants. Must be called
     * after construction and after any instruction insertion (e.g.
     * hint NOOPs).
     */
    void finalize();

    std::size_t
    instCount() const
    {
        std::size_t n = 0;
        for (const auto &p : procs)
            n += p.instCount();
        return n;
    }

  private:
    void validate() const;
};

/**
 * PC of the first instruction executed when control enters
 * (@p proc, @p block), resolving through empty fallthrough-only
 * blocks exactly like the functional interpreter's normalize(); 0
 * when the chain ends without an instruction. Shared by the core's
 * return-address-stack prediction and the functional trace producer
 * so their RAS push values can never drift apart.
 */
std::uint64_t blockStartPc(const Program &prog, int proc, int block);

} // namespace siq

#endif // SIQ_IR_PROGRAM_HH
