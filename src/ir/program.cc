#include "ir/program.hh"

#include <algorithm>

#include "common/logging.hh"

namespace siq
{

namespace
{

/** Incremental FNV-1a 64-bit hasher for the content fingerprint. */
class Fnv
{
  public:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }

    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h = 0xcbf29ce484222325ull;
};

std::uint64_t
hashContent(const Program &prog)
{
    Fnv f;
    f.mix(static_cast<std::uint64_t>(prog.entryProc));
    f.mix(prog.memWords);
    f.mix(prog.memInit.size());
    for (const auto &[addr, value] : prog.memInit) {
        f.mix(addr);
        f.mix(static_cast<std::uint64_t>(value));
    }
    f.mix(prog.procs.size());
    for (const auto &proc : prog.procs) {
        f.mix(proc.blocks.size());
        for (const auto &block : proc.blocks) {
            f.mix(static_cast<std::uint64_t>(block.fallthrough));
            f.mix(block.indirectTargets.size());
            for (const int t : block.indirectTargets)
                f.mix(static_cast<std::uint64_t>(t));
            f.mix(block.insts.size());
            for (const StaticInst &si : block.insts) {
                f.mix(static_cast<std::uint64_t>(si.op));
                f.mix(static_cast<std::uint64_t>(
                          static_cast<std::uint16_t>(si.dst)) |
                      static_cast<std::uint64_t>(
                          static_cast<std::uint16_t>(si.src1))
                          << 16 |
                      static_cast<std::uint64_t>(
                          static_cast<std::uint16_t>(si.src2))
                          << 32 |
                      static_cast<std::uint64_t>(si.hintValue) << 48);
                f.mix(static_cast<std::uint64_t>(si.imm));
                f.mix(static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(si.target)) |
                      static_cast<std::uint64_t>(si.tagHint) << 32);
            }
        }
    }
    return f.value();
}

} // namespace

std::uint64_t
blockStartPc(const Program &prog, int proc, int block)
{
    // resolve through empty fallthrough blocks exactly like the
    // functional normalize() so RAS predictions compare equal
    int b = block;
    while (true) {
        const BasicBlock &blk = prog.procs[proc].blocks[b];
        if (!blk.insts.empty())
            return blk.insts.front().pc;
        if (blk.fallthrough < 0)
            return 0;
        b = blk.fallthrough;
    }
}

void
Program::finalize()
{
    std::uint64_t pc = 0x1000;
    for (auto &proc : procs) {
        for (auto &block : proc.blocks) {
            block.startPc = pc;
            for (auto &inst : block.insts) {
                inst.pc = pc;
                pc += 4;
            }
            block.succs.clear();
            block.preds.clear();
        }
        // page-align procedures so PCs stay distinctive
        pc = (pc + 0xFFF) & ~0xFFFull;
    }

    contentHash = hashContent(*this);

    for (auto &proc : procs) {
        const int nblocks = static_cast<int>(proc.blocks.size());
        auto addEdge = [&](int from, int to) {
            SIQ_ASSERT(to >= 0 && to < nblocks,
                       "bad CFG edge target ", to, " in proc ",
                       proc.name);
            auto &s = proc.blocks[from].succs;
            if (std::find(s.begin(), s.end(), to) == s.end())
                s.push_back(to);
            auto &p = proc.blocks[to].preds;
            if (std::find(p.begin(), p.end(), from) == p.end())
                p.push_back(from);
        };
        for (auto &block : proc.blocks) {
            const StaticInst *term = block.terminator();
            if (term == nullptr) {
                if (block.fallthrough >= 0)
                    addEdge(block.id, block.fallthrough);
                continue;
            }
            const auto &t = term->traits();
            if (t.isBranch) {
                addEdge(block.id, term->target);
                SIQ_ASSERT(block.fallthrough >= 0,
                           "branch block needs fallthrough");
                addEdge(block.id, block.fallthrough);
            } else if (term->op == Opcode::Jump) {
                addEdge(block.id, term->target);
            } else if (term->op == Opcode::IJump) {
                SIQ_ASSERT(!block.indirectTargets.empty(),
                           "IJump without a target table");
                for (int tgt : block.indirectTargets)
                    addEdge(block.id, tgt);
            } else if (t.isCall) {
                // the call returns to the fallthrough block; model the
                // intra-procedural edge so DAG analysis sees it
                SIQ_ASSERT(block.fallthrough >= 0,
                           "call block needs fallthrough");
                addEdge(block.id, block.fallthrough);
            }
            // Ret and Halt have no intra-procedural successor.
        }
    }

    validate();
}

void
Program::validate() const
{
    SIQ_ASSERT(!procs.empty(), "program has no procedures");
    SIQ_ASSERT(entryProc >= 0 &&
               entryProc < static_cast<int>(procs.size()),
               "bad entry procedure");
    SIQ_ASSERT(memWords > 0, "zero-size memory");
    for (const auto &proc : procs) {
        SIQ_ASSERT(!proc.blocks.empty(),
                   "procedure ", proc.name, " has no blocks");
        for (std::size_t i = 0; i < proc.blocks.size(); i++) {
            const auto &block = proc.blocks[i];
            SIQ_ASSERT(block.id == static_cast<int>(i),
                       "block id mismatch in ", proc.name);
            for (std::size_t k = 0; k + 1 < block.insts.size(); k++) {
                SIQ_ASSERT(!isControl(block.insts[k].op) &&
                           !block.insts[k].traits().isHalt,
                           "control transfer mid-block in ",
                           proc.name, " block ", block.id);
            }
            const StaticInst *term = block.terminator();
            if (term && term->traits().isCall) {
                SIQ_ASSERT(term->target >= 0 && term->target <
                           static_cast<int>(procs.size()),
                           "call to unknown procedure");
            }
        }
    }
}

} // namespace siq
