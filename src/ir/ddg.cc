#include "ir/ddg.hh"

#include <algorithm>
#include <array>
#include <map>

#include "common/logging.hh"

namespace siq
{

int
defaultCompilerLatency(const StaticInst &si, int l1dHitLatency)
{
    const auto &t = si.traits();
    if (t.isLoad)
        return l1dHitLatency;
    return t.latency;
}

namespace
{

/** Sources read by an instruction (unified register indices). */
std::array<int, 2>
readRegs(const StaticInst &si)
{
    std::array<int, 2> regs = {-1, -1};
    const auto &t = si.traits();
    if (t.readsSrc1 && si.src1 >= 0 && si.src1 != zeroReg)
        regs[0] = si.src1;
    if (t.readsSrc2 && si.src2 >= 0 && si.src2 != zeroReg)
        regs[1] = si.src2;
    return regs;
}

struct MemRef
{
    int base;
    std::int64_t offset;

    bool
    operator<(const MemRef &o) const
    {
        return base != o.base ? base < o.base : offset < o.offset;
    }
};

} // namespace

Ddg
buildDdg(const std::vector<const BasicBlock *> &blocks,
         bool loopCarried, const LatencyFn &latency)
{
    const LatencyFn lat = latency
        ? latency
        : [](const StaticInst &si) {
              return defaultCompilerLatency(si);
          };

    Ddg ddg;
    for (const BasicBlock *block : blocks) {
        for (std::size_t i = 0; i < block->insts.size(); i++) {
            const StaticInst &si = block->insts[i];
            ddg.addNode({&si, block->id, static_cast<int>(i),
                         lat(si)});
        }
    }

    // intra-region RAW edges: last def wins along the linearization
    std::vector<int> lastDef(numArchRegs, -1);
    // static memory dependences: last store per (base, offset) while
    // the base register is not redefined
    std::map<MemRef, int> lastStore;

    auto addRaw = [&](int def, int use) {
        ddg.addEdge(def, use, ddg.nodes[def].latency, 0);
    };

    for (int n = 0; n < ddg.size(); n++) {
        const StaticInst &si = *ddg.nodes[n].inst;
        const auto &t = si.traits();
        for (int r : readRegs(si)) {
            if (r >= 0 && lastDef[r] >= 0)
                addRaw(lastDef[r], n);
        }
        if (t.isLoad || t.isStore) {
            const MemRef ref{si.src1, si.imm};
            auto it = lastStore.find(ref);
            if (it != lastStore.end())
                addRaw(it->second, n);
            if (t.isStore)
                lastStore[ref] = n;
        }
        if (si.writesLiveReg()) {
            lastDef[si.dst] = n;
            // a redefinition of a base register invalidates the static
            // identity of memory refs through it
            for (auto it = lastStore.begin(); it != lastStore.end();) {
                if (it->first.base == si.dst)
                    it = lastStore.erase(it);
                else
                    ++it;
            }
        }
    }

    if (loopCarried) {
        // defs live at the end of the body reach uses before their
        // first intra-body def on the next iteration (distance 1)
        std::vector<int> firstDef(numArchRegs, -1);
        for (int n = 0; n < ddg.size(); n++) {
            const StaticInst &si = *ddg.nodes[n].inst;
            if (si.writesLiveReg() && firstDef[si.dst] < 0)
                firstDef[si.dst] = n;
        }
        for (int n = 0; n < ddg.size(); n++) {
            const StaticInst &si = *ddg.nodes[n].inst;
            for (int r : readRegs(si)) {
                if (r < 0 || lastDef[r] < 0)
                    continue;
                // use before (or at) the body's first def of r reads
                // the previous iteration's value
                if (firstDef[r] < 0 || n <= firstDef[r]) {
                    ddg.addEdge(lastDef[r], n,
                                ddg.nodes[lastDef[r]].latency, 1);
                }
            }
        }
    }
    return ddg;
}

std::vector<std::vector<int>>
cyclicDependenceSets(const Ddg &ddg)
{
    // Tarjan's SCC, iterative
    const int n = ddg.size();
    std::vector<int> index(n, -1), low(n, 0);
    std::vector<char> onStack(n, 0);
    std::vector<int> sccStack;
    std::vector<std::vector<int>> components;
    int counter = 0;

    struct Frame
    {
        int node;
        std::size_t edgeCursor;
    };

    for (int start = 0; start < n; start++) {
        if (index[start] >= 0)
            continue;
        std::vector<Frame> work;
        work.push_back({start, 0});
        index[start] = low[start] = counter++;
        sccStack.push_back(start);
        onStack[start] = 1;

        while (!work.empty()) {
            Frame &f = work.back();
            const auto &outs = ddg.out(f.node);
            if (f.edgeCursor < outs.size()) {
                const int succ = ddg.edges[outs[f.edgeCursor++]].to;
                if (index[succ] < 0) {
                    index[succ] = low[succ] = counter++;
                    sccStack.push_back(succ);
                    onStack[succ] = 1;
                    work.push_back({succ, 0});
                } else if (onStack[succ]) {
                    low[f.node] = std::min(low[f.node], index[succ]);
                }
            } else {
                if (low[f.node] == index[f.node]) {
                    std::vector<int> comp;
                    while (true) {
                        const int v = sccStack.back();
                        sccStack.pop_back();
                        onStack[v] = 0;
                        comp.push_back(v);
                        if (v == f.node)
                            break;
                    }
                    std::sort(comp.begin(), comp.end());
                    // keep only real cycles: >1 node, or a self edge
                    bool cyclic = comp.size() > 1;
                    if (!cyclic) {
                        for (int e : ddg.out(comp[0]))
                            if (ddg.edges[e].to == comp[0])
                                cyclic = true;
                    }
                    if (cyclic)
                        components.push_back(std::move(comp));
                }
                const int me = f.node;
                work.pop_back();
                if (!work.empty()) {
                    low[work.back().node] =
                        std::min(low[work.back().node], low[me]);
                }
            }
        }
    }
    return components;
}

} // namespace siq
