/**
 * @file
 * `siqsim` — the command-line driver for sharded, resumable
 * experiment sweeps (DESIGN.md §8, docs/ENVIRONMENT.md):
 *
 *   siqsim spec  ...   print a sweep-spec JSON for a grid
 *   siqsim run   ...   run a spec (whole, or one shard of N, with
 *                      per-cell checkpointing and resume)
 *   siqsim merge ...   fold shard checkpoint directories back into
 *                      the canonical single-file JSON/CSV
 *   siqsim status ...  report cells done/missing (per shard) for a
 *                      checkpoint run directory
 *   siqsim list        list benchmarks and registered techniques
 *
 * `run` and `merge` emit *canonical* exports: scheduling and
 * wall-clock metadata are zeroed (sim::canonicalize), so the same
 * spec produces byte-identical files whether it ran on 1 thread or
 * 16, in one process or N shards, straight through or killed and
 * resumed. `diff` is the integrity check.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/checkpoint.hh"
#include "sim/report.hh"
#include "sim/serve.hh"
#include "sim/sweep.hh"
#include "sim/technique.hh"
#include "workloads/family.hh"

namespace
{

using namespace siq;
namespace fs = std::filesystem;

int
usage(std::ostream &os, int rc)
{
    os << R"(siqsim — sharded, resumable sweep runner (see README.md)

usage:
  siqsim spec [options]             print a sweep-spec JSON
  siqsim run --spec FILE [options]  run a spec, whole or one shard
  siqsim merge DIR... [options]     fold checkpoint dirs into one matrix
  siqsim status DIR [--shards N] [--cache]
                                    cells done/missing in a run dir
  siqsim list                       list workload families and techniques
  siqsim serve --socket PATH | --stdio
                                    long-lived simulation daemon (JSONL)

spec options (grid axes and budgets; all optional):
  --workloads a,b,... | all    workloads to sweep (default: every
                               registered family). Entries are workload
                               specs: a family name, optionally with
                               parameter overrides —
                               'phased:period=60000:duty=20'
                               ('siqsim list' shows families + params;
                               --benchmarks is accepted as an alias)
  --techniques a,b,... | all   techniques to sweep (default: all built-ins)
  --warmup N / --measure N     per-cell instruction budgets
  --seeds N                    replicas per cell (0 = SIQSIM_SEEDS, 1 = off)
  --jobs N                     worker threads (0 = SIQSIM_JOBS / cores)
  --scale N / --rep-divisor N  workload size knobs
  --seed N                     base workload seed
  --speculative                model the real front end (gshare + BTB +
                               RAS with wrong-path fetch and squash
                               recovery) instead of the oracle
  --out FILE                   write the spec there instead of stdout

run options:
  --spec FILE                  the spec to run (required)
  --shard i/N                  run only cells with index % N == i
                               (default $SIQSIM_SHARD; requires --ckpt)
  --ckpt DIR                   checkpoint run directory: finished cells
                               are published atomically as they finish,
                               and already-checkpointed cells are
                               skipped on restart (default $SIQSIM_CKPT)
  --jobs N / --seeds N         override the spec's values
  --json/--csv/--power-csv FILE   canonical exports ('-' = stdout)
  --baseline NAME              power-CSV baseline technique [baseline]

merge options:
  DIR...                       checkpoint dirs written by 'run' (one
                               shared dir, or one per shard)
  --json/--csv/--power-csv FILE, --baseline NAME   as for run

status options:
  DIR                          a checkpoint run directory (its
                               spec.json names the grid)
  --shards N                   additionally break the report down by
                               the N-way shard partition cells were
                               (or will be) run under
  --cache                      also print the workload/compile/trace
                               cache counters each 'run' invocation
                               recorded in the run directory
  exit status: 0 when every cell is checkpointed, 3 when cells are
  still missing (distinct from 1, a usage/IO error)

serve options (protocol: DESIGN.md §13):
  --socket PATH                listen on a unix domain socket; each
                               connection is an independent client
  --stdio                      serve one client over stdin/stdout
                               (tests, inetd-style supervisors)
  --jobs N                     default worker threads per request
                               (0 = SIQSIM_SERVE_JOBS / cores)
  requests:  {"id":"r1","spec":{...}}   {"cancel":"r1"}
  responses: accepted / cell / done / error records, one per line;
  workload, compiled-program and trace caches are shared across
  requests, and identical in-flight cells from concurrent clients
  are simulated once. Env: SIQSIM_SERVE_QUEUE (per-client record
  queue, default 256), SIQSIM_SERVE_RESULT_CACHE (completed-cell
  LRU, default 1024), SIQSIM_SERVE_JOBS.

The merge of N shard directories is byte-identical to the same spec
run unsharded — both are canonical exports of the same pure function.
)";
    return rc;
}

/** argv cursor: flags may appear in any order after the subcommand. */
class Args
{
  public:
    Args(int argc, char **argv, int start)
    {
        for (int i = start; i < argc; i++)
            tokens.emplace_back(argv[i]);
    }

    /** Consume `--name VALUE`; nullopt when absent. */
    std::optional<std::string>
    option(const std::string &name)
    {
        for (std::size_t i = 0; i < tokens.size(); i++) {
            if (tokens[i] != "--" + name)
                continue;
            if (i + 1 >= tokens.size())
                fatal("siqsim: --", name, " needs a value");
            std::string value = tokens[i + 1];
            tokens.erase(tokens.begin() + static_cast<long>(i),
                         tokens.begin() + static_cast<long>(i) + 2);
            return value;
        }
        return std::nullopt;
    }

    /** Consume a bare `--name` flag; false when absent. */
    bool
    flag(const std::string &name)
    {
        for (std::size_t i = 0; i < tokens.size(); i++) {
            if (tokens[i] != "--" + name)
                continue;
            tokens.erase(tokens.begin() + static_cast<long>(i));
            return true;
        }
        return false;
    }

    /** Whatever is left (positional arguments); flags left over are
     *  an error the caller reports. */
    const std::vector<std::string> &rest() const { return tokens; }

    void
    expectConsumed() const
    {
        for (const auto &t : tokens) {
            fatal("siqsim: unrecognized argument '", t,
                  "' (see siqsim --help)");
        }
    }

  private:
    std::vector<std::string> tokens;
};

long
toLong(const std::string &name, const std::string &value)
{
    std::size_t end = 0;
    long v = 0;
    try {
        v = std::stol(value, &end);
    } catch (const std::exception &) {
        end = 0;
    }
    if (end != value.size())
        fatal("siqsim: --", name, " expects an integer, got '", value,
              "'");
    return v;
}

/** For unsigned config fields: a negative value must not wrap into
 *  an astronomically large budget or seed. */
std::uint64_t
toU64(const std::string &name, const std::string &value)
{
    const long v = toLong(name, value);
    if (v < 0)
        fatal("siqsim: --", name, " must be >= 0, got '", value, "'");
    return static_cast<std::uint64_t>(v);
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : csv) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** Write to a file, or stdout for "-"; fatal on IO errors. */
void
writeOut(const std::string &path,
         const std::function<void(std::ostream &)> &write)
{
    if (path == "-") {
        write(std::cout);
        return;
    }
    std::ofstream os(path, std::ios::trunc);
    if (os)
        write(os);
    os.flush();
    if (!os)
        fatal("siqsim: cannot write '", path, "'");
    std::cerr << "wrote " << path << "\n";
}

/** One-line cache-counter summary: the `siqsim run` stderr line and
 *  the `status --cache` per-file lines share this format. */
std::string
cacheSummary(const sim::SweepCacheStats &c)
{
    std::ostringstream os;
    os << "workloads " << c.workloadHits << "/"
       << c.workloadBuilds + c.workloadHits << " hits, compile "
       << c.compileHits << "/" << c.compileBuilds + c.compileHits
       << " hits, traces " << c.traceHits << "/"
       << c.traceBuilds + c.traceHits << " hits";
    if (c.traceBuilds + c.traceHits > 0) {
        os << " (" << (c.traceBytes >> 20) << " MiB resident, "
           << c.traceEvicted << " evicted)";
    }
    return os.str();
}

/** The canonical exports shared by `run` and `merge`. */
struct ExportPaths
{
    std::optional<std::string> json, csv, powerCsv;
    std::string baseline = "baseline";

    void
    take(Args &args)
    {
        json = args.option("json");
        csv = args.option("csv");
        powerCsv = args.option("power-csv");
        if (auto b = args.option("baseline"))
            baseline = *b;
    }

    void
    emit(sim::SweepResult result) const
    {
        sim::canonicalize(result);
        if (json) {
            writeOut(*json, [&](std::ostream &os) {
                sim::writeJson(os, result);
            });
        }
        if (csv) {
            writeOut(*csv, [&](std::ostream &os) {
                sim::writeCsv(os, result);
            });
        }
        if (powerCsv) {
            writeOut(*powerCsv, [&](std::ostream &os) {
                sim::writePowerCsv(os, result, baseline);
            });
        }
    }
};

int
cmdSpec(Args args)
{
    sim::SweepSpec spec;
    spec.benchmarks = workloads::familyNames();
    spec.techniques = sim::techniqueNames();
    // --workloads is the primary spelling; --benchmarks is kept as a
    // compatibility alias (both accept workload specs, not just names)
    auto workloadsOpt = args.option("workloads");
    auto benchmarksOpt = args.option("benchmarks");
    if (workloadsOpt && benchmarksOpt)
        fatal("siqsim: --workloads and --benchmarks are aliases; "
              "pass only one");
    if (!workloadsOpt)
        workloadsOpt = benchmarksOpt;
    if (workloadsOpt && *workloadsOpt != "all")
        spec.benchmarks = splitList(*workloadsOpt);
    if (auto v = args.option("techniques"); v && *v != "all")
        spec.techniques = splitList(*v);
    // canonicalize and validate now, so a typo fails here with the
    // registered families listed instead of deep inside a run
    for (auto &b : spec.benchmarks)
        b = workloads::canonicalWorkload(b);
    for (const auto &t : spec.techniques) {
        if (sim::findTechnique(t) == nullptr)
            fatal("siqsim: unknown technique '", t, "' (try 'siqsim "
                  "list')");
    }
    if (auto v = args.option("warmup"))
        spec.base.warmupInsts = toU64("warmup", *v);
    if (auto v = args.option("measure"))
        spec.base.measureInsts = toU64("measure", *v);
    if (auto v = args.option("seeds"))
        spec.seeds = static_cast<int>(toLong("seeds", *v));
    if (auto v = args.option("jobs"))
        spec.jobs = static_cast<int>(toLong("jobs", *v));
    if (auto v = args.option("scale"))
        spec.base.workload.scale = static_cast<int>(toLong("scale", *v));
    if (auto v = args.option("rep-divisor"))
        spec.base.workload.repDivisor =
            static_cast<int>(toLong("rep-divisor", *v));
    if (auto v = args.option("seed"))
        spec.base.workload.seed = toU64("seed", *v);
    if (args.flag("speculative"))
        spec.base.core.specFrontEnd = true;
    const std::string out = args.option("out").value_or("-");
    args.expectConsumed();
    writeOut(out, [&](std::ostream &os) {
        sim::writeSpecJson(os, spec);
    });
    return 0;
}

int
cmdRun(Args args)
{
    const auto specPath = args.option("spec");
    if (!specPath)
        fatal("siqsim run: --spec FILE is required");
    std::ifstream is(*specPath);
    if (!is)
        fatal("siqsim run: cannot read '", *specPath, "'");
    sim::SweepSpec spec = sim::readSpecJson(is);

    if (auto v = args.option("jobs"))
        spec.jobs = static_cast<int>(toLong("jobs", *v));
    if (auto v = args.option("seeds"))
        spec.seeds = static_cast<int>(toLong("seeds", *v));

    auto envOpt = [](const char *name) -> std::optional<std::string> {
        const char *v = std::getenv(name);
        if (v == nullptr || *v == '\0')
            return std::nullopt;
        return std::string(v);
    };
    auto shardText = args.option("shard");
    if (!shardText)
        shardText = envOpt("SIQSIM_SHARD");
    auto ckptDir = args.option("ckpt");
    if (!ckptDir)
        ckptDir = envOpt("SIQSIM_CKPT");

    ExportPaths exports;
    exports.take(args);
    args.expectConsumed();

    sim::ShardPlan shard;
    if (shardText)
        shard = sim::parseShard(*shardText);
    if (shard.count > 1 && !ckptDir) {
        fatal("siqsim run: --shard produces a partial matrix and "
              "needs --ckpt DIR to publish it for 'siqsim merge'");
    }

    const std::size_t ncells =
        spec.benchmarks.size() * spec.techniques.size();
    std::cerr << "siqsim run: " << spec.benchmarks.size()
              << " benchmarks x " << spec.techniques.size()
              << " techniques = " << ncells << " cells";
    if (shard.count > 1)
        std::cerr << ", shard " << sim::toString(shard);
    std::cerr << "\n";

    sim::ExperimentRunner runner;
    if (!ckptDir) {
        auto result = runner.run(spec);
        std::cerr << "done: " << result.cells.size() << " cells in "
                  << result.wallSeconds << "s on " << result.jobsUsed
                  << " thread(s)\n"
                  << "caches: " << cacheSummary(result.cache) << "\n";
        exports.emit(std::move(result));
        return 0;
    }

    const auto outcome =
        sim::runWithCheckpoints(runner, spec, shard, *ckptDir);
    // publish this invocation's counters beside the checkpoints so
    // 'siqsim status --cache' can report them later
    sim::writeCacheStatsFile(*ckptDir, shard, runner.cacheStats());
    std::cerr << "shard " << sim::toString(shard) << ": owns "
              << outcome.cellsOwned << "/" << outcome.cellsTotal
              << " cells, resumed " << outcome.cellsResumed
              << ", simulated " << outcome.cellsRun << "\n"
              << "caches: " << cacheSummary(runner.cacheStats())
              << "\n";
    if (!outcome.complete) {
        std::cerr << "run directory incomplete: run the remaining "
                     "shards, then 'siqsim merge "
                  << *ckptDir << "'\n";
        if (exports.json || exports.csv || exports.powerCsv) {
            warn("exports not written: the matrix is still partial "
                 "(they are emitted by the completing shard or by "
                 "'siqsim merge')");
        }
        return 0;
    }
    std::cerr << "all " << outcome.cellsTotal
              << " cells checkpointed; emitting merged matrix\n";
    exports.emit(outcome.merged);
    return 0;
}

int
cmdMerge(Args args)
{
    ExportPaths exports;
    exports.take(args);
    std::vector<fs::path> dirs;
    for (const auto &t : args.rest()) {
        if (t.rfind("--", 0) == 0)
            fatal("siqsim merge: unrecognized option '", t, "'");
        dirs.emplace_back(t);
    }
    if (dirs.empty())
        fatal("siqsim merge: at least one checkpoint directory is "
              "required");
    auto result = sim::mergeCheckpoints(dirs);
    std::cerr << "merged " << result.cells.size() << " cells from "
              << dirs.size() << " dir(s)";
    if (result.seeds > 1)
        std::cerr << " (" << result.seeds << " seeds per cell)";
    std::cerr << "\n";
    if (!exports.json && !exports.csv && !exports.powerCsv)
        warn("no --json/--csv/--power-csv given: nothing written");
    exports.emit(std::move(result));
    return 0;
}

int
cmdStatus(Args args)
{
    const auto shardsOpt = args.option("shards");
    const bool showCache = args.flag("cache");
    std::vector<std::string> dirs = args.rest();
    if (dirs.size() != 1)
        fatal("siqsim status: exactly one run directory is required");
    const fs::path dir = dirs.front();
    const fs::path specPath = dir / "spec.json";
    std::ifstream is(specPath);
    if (!is) {
        fatal("siqsim status: cannot read '", specPath.string(),
              "' (not a checkpoint run directory?)");
    }
    const sim::SweepSpec spec = sim::readSpecJson(is);

    const std::size_t nb = spec.benchmarks.size();
    const std::vector<bool> have = sim::scanCheckpoints(dir, spec);
    std::size_t done = 0;
    for (const bool h : have)
        done += h ? 1 : 0;

    std::cout << "run dir: " << dir.string() << "\n"
              << "grid: " << nb << " benchmarks x "
              << spec.techniques.size() << " techniques = "
              << have.size() << " cells";
    if (spec.seeds > 1)
        std::cout << " (" << spec.seeds << " seeds per cell)";
    std::cout << "\ncheckpointed: " << done << "/" << have.size()
              << "\n";

    if (shardsOpt) {
        const long n = toLong("shards", *shardsOpt);
        if (n < 1)
            fatal("siqsim status: --shards must be >= 1");
        for (int s = 0; s < n; s++) {
            const sim::ShardPlan plan{s, static_cast<int>(n)};
            std::size_t owned = 0;
            std::size_t ownedDone = 0;
            for (std::size_t i = 0; i < have.size(); i++) {
                if (!sim::ownsCell(plan, i))
                    continue;
                owned++;
                ownedDone += have[i] ? 1 : 0;
            }
            std::cout << "shard " << sim::toString(plan) << ": "
                      << ownedDone << "/" << owned << " done"
                      << (ownedDone == owned ? "" : " — incomplete")
                      << "\n";
        }
    }

    if (showCache) {
        const auto stats = sim::readCacheStatsFiles(dir);
        if (stats.empty()) {
            std::cout << "cache stats: none recorded (written by "
                         "'siqsim run --ckpt')\n";
        }
        for (const auto &[name, c] : stats)
            std::cout << name << ": " << cacheSummary(c) << "\n";
    }

    if (done < have.size()) {
        constexpr std::size_t listCap = 20;
        std::size_t listed = 0;
        std::cout << "missing cells:\n";
        for (std::size_t i = 0; i < have.size(); i++) {
            if (have[i])
                continue;
            if (listed++ == listCap) {
                std::cout << "  ... and "
                          << have.size() - done - listCap
                          << " more\n";
                break;
            }
            std::cout << "  " << i << ": "
                      << spec.techniques[i / nb] << "/"
                      << spec.benchmarks[i % nb] << "\n";
        }
        return 3;
    }
    std::cout << "complete: ready for 'siqsim merge "
              << dir.string() << "'\n";
    return 0;
}

int
cmdList()
{
    std::cout << "workload families:\n";
    for (const auto &name : workloads::familyNames()) {
        const auto *def = workloads::findFamily(name);
        std::cout << "  " << name << " — "
                  << (def ? def->summary : std::string()) << "\n";
        if (def == nullptr)
            continue;
        for (const auto &p : def->params) {
            std::cout << "      " << p.name << "=" << p.defaultValue
                      << " [" << p.minValue << ".." << p.maxValue
                      << "] — " << p.help << "\n";
        }
    }
    std::cout << "techniques:\n";
    for (const auto &t : sim::techniqueNames()) {
        const auto *def = sim::findTechnique(t);
        std::cout << "  " << t << " — "
                  << (def ? def->summary : std::string()) << "\n";
    }
    return 0;
}

int
cmdServe(Args args)
{
    const auto socket = args.option("socket");
    const bool stdio = args.flag("stdio");
    const auto jobs = args.option("jobs");
    args.expectConsumed();
    if (stdio == socket.has_value()) {
        fatal("serve: pass exactly one of --socket PATH or --stdio");
    }

    auto opts = sim::ServeEngine::optionsFromEnv();
    if (!opts)
        fatal(opts.error());
    if (jobs)
        opts.value().jobs = static_cast<int>(toLong("jobs", *jobs));

    sim::ServeEngine engine(opts.value());
    if (stdio) {
        sim::serveStdio(engine, std::cin, std::cout);
        return 0;
    }
    sim::serveUnixSocket(engine, *socket, &std::cerr);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    const std::string cmd = argv[1];
    try {
        if (cmd == "--help" || cmd == "-h" || cmd == "help")
            return usage(std::cout, 0);
        if (cmd == "spec")
            return cmdSpec(Args(argc, argv, 2));
        if (cmd == "run")
            return cmdRun(Args(argc, argv, 2));
        if (cmd == "merge")
            return cmdMerge(Args(argc, argv, 2));
        if (cmd == "status")
            return cmdStatus(Args(argc, argv, 2));
        if (cmd == "list")
            return cmdList();
        if (cmd == "serve")
            return cmdServe(Args(argc, argv, 2));
        std::cerr << "siqsim: unknown command '" << cmd << "'\n\n";
        return usage(std::cerr, 2);
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
