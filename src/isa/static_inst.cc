#include "isa/static_inst.hh"

#include <sstream>

#include "common/logging.hh"

namespace siq
{

namespace
{

std::string
regName(int reg)
{
    if (reg < 0)
        return "-";
    std::ostringstream os;
    if (reg >= fpRegBase)
        os << 'f' << (reg - fpRegBase);
    else
        os << 'r' << reg;
    return os.str();
}

StaticInst
threeReg(Opcode op, int dst, int s1, int s2)
{
    StaticInst si;
    si.op = op;
    si.dst = static_cast<std::int16_t>(dst);
    si.src1 = static_cast<std::int16_t>(s1);
    si.src2 = static_cast<std::int16_t>(s2);
    return si;
}

} // namespace

std::string
StaticInst::disasm() const
{
    const auto &t = traits();
    std::ostringstream os;
    os << t.mnemonic;
    if (op == Opcode::Hint) {
        os << " #" << hintValue;
        return os.str();
    }
    bool first = true;
    auto emit = [&](const std::string &s) {
        os << (first ? " " : ", ") << s;
        first = false;
    };
    if (t.writesDst)
        emit(regName(dst));
    if (t.isLoad) {
        emit("[" + regName(src1) + "+" + std::to_string(imm) + "]");
    } else if (t.isStore) {
        emit("[" + regName(src1) + "+" + std::to_string(imm) + "]");
        emit(regName(src2));
    } else {
        if (t.readsSrc1)
            emit(regName(src1));
        if (t.readsSrc2)
            emit(regName(src2));
        if (op == Opcode::MovImm || op == Opcode::AddImm ||
            op == Opcode::FMovImm || op == Opcode::Shl ||
            op == Opcode::Shr) {
            emit(std::to_string(imm));
        }
    }
    if (t.isBranch || op == Opcode::Jump)
        emit("b" + std::to_string(target));
    if (t.isCall)
        emit("p" + std::to_string(target));
    if (tagHint)
        os << " {iq=" << tagHint << "}";
    return os.str();
}

StaticInst
makeNop()
{
    return StaticInst{};
}

StaticInst
makeHint(std::uint16_t entries)
{
    StaticInst si;
    si.op = Opcode::Hint;
    si.hintValue = entries;
    return si;
}

StaticInst
makeMovImm(int dst, std::int64_t imm)
{
    StaticInst si = threeReg(Opcode::MovImm, dst, -1, -1);
    si.imm = imm;
    return si;
}

StaticInst
makeAdd(int dst, int s1, int s2)
{
    return threeReg(Opcode::Add, dst, s1, s2);
}

StaticInst
makeAddImm(int dst, int s1, std::int64_t imm)
{
    StaticInst si = threeReg(Opcode::AddImm, dst, s1, -1);
    si.imm = imm;
    return si;
}

StaticInst
makeSub(int dst, int s1, int s2)
{
    return threeReg(Opcode::Sub, dst, s1, s2);
}

StaticInst
makeMul(int dst, int s1, int s2)
{
    return threeReg(Opcode::Mul, dst, s1, s2);
}

StaticInst
makeDiv(int dst, int s1, int s2)
{
    return threeReg(Opcode::Div, dst, s1, s2);
}

StaticInst
makeAnd(int dst, int s1, int s2)
{
    return threeReg(Opcode::And, dst, s1, s2);
}

StaticInst
makeOr(int dst, int s1, int s2)
{
    return threeReg(Opcode::Or, dst, s1, s2);
}

StaticInst
makeXor(int dst, int s1, int s2)
{
    return threeReg(Opcode::Xor, dst, s1, s2);
}

StaticInst
makeShl(int dst, int s1, int shift)
{
    StaticInst si = threeReg(Opcode::Shl, dst, s1, -1);
    si.imm = shift;
    return si;
}

StaticInst
makeShr(int dst, int s1, int shift)
{
    StaticInst si = threeReg(Opcode::Shr, dst, s1, -1);
    si.imm = shift;
    return si;
}

StaticInst
makeSlt(int dst, int s1, int s2)
{
    return threeReg(Opcode::Slt, dst, s1, s2);
}

StaticInst
makeFMovImm(int fdst, std::int64_t imm)
{
    SIQ_ASSERT(fdst >= fpRegBase, "fp dest expected");
    StaticInst si = threeReg(Opcode::FMovImm, fdst, -1, -1);
    si.imm = imm;
    return si;
}

StaticInst
makeFAdd(int fdst, int fs1, int fs2)
{
    return threeReg(Opcode::FAdd, fdst, fs1, fs2);
}

StaticInst
makeFMul(int fdst, int fs1, int fs2)
{
    return threeReg(Opcode::FMul, fdst, fs1, fs2);
}

StaticInst
makeFDiv(int fdst, int fs1, int fs2)
{
    return threeReg(Opcode::FDiv, fdst, fs1, fs2);
}

StaticInst
makeLoad(int dst, int base, std::int64_t offset)
{
    StaticInst si = threeReg(Opcode::Load, dst, base, -1);
    si.imm = offset;
    return si;
}

StaticInst
makeStore(int base, int data, std::int64_t offset)
{
    StaticInst si = threeReg(Opcode::Store, -1, base, data);
    si.imm = offset;
    return si;
}

StaticInst
makeFLoad(int fdst, int base, std::int64_t offset)
{
    StaticInst si = threeReg(Opcode::FLoad, fdst, base, -1);
    si.imm = offset;
    return si;
}

StaticInst
makeFStore(int base, int fdata, std::int64_t offset)
{
    StaticInst si = threeReg(Opcode::FStore, -1, base, fdata);
    si.imm = offset;
    return si;
}

namespace
{

StaticInst
branch(Opcode op, int s1, int s2, int target)
{
    StaticInst si = threeReg(op, -1, s1, s2);
    si.target = target;
    return si;
}

} // namespace

StaticInst
makeBeq(int s1, int s2, int targetBlock)
{
    return branch(Opcode::Beq, s1, s2, targetBlock);
}

StaticInst
makeBne(int s1, int s2, int targetBlock)
{
    return branch(Opcode::Bne, s1, s2, targetBlock);
}

StaticInst
makeBlt(int s1, int s2, int targetBlock)
{
    return branch(Opcode::Blt, s1, s2, targetBlock);
}

StaticInst
makeBge(int s1, int s2, int targetBlock)
{
    return branch(Opcode::Bge, s1, s2, targetBlock);
}

StaticInst
makeJump(int targetBlock)
{
    StaticInst si;
    si.op = Opcode::Jump;
    si.target = targetBlock;
    return si;
}

StaticInst
makeIJump(int indexReg)
{
    StaticInst si = threeReg(Opcode::IJump, -1, indexReg, -1);
    return si;
}

StaticInst
makeCall(int procId)
{
    StaticInst si;
    si.op = Opcode::Call;
    si.target = procId;
    return si;
}

StaticInst
makeRet()
{
    StaticInst si;
    si.op = Opcode::Ret;
    return si;
}

StaticInst
makeHalt()
{
    StaticInst si;
    si.op = Opcode::Halt;
    return si;
}

} // namespace siq
