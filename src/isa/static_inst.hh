/**
 * @file
 * Static instruction representation plus factory helpers.
 *
 * Register fields use the unified architectural index space: integer
 * registers are 0..31 (r0 reads as zero), floating-point registers are
 * 32..63. A field of -1 means "not used".
 */

#ifndef SIQ_ISA_STATIC_INST_HH
#define SIQ_ISA_STATIC_INST_HH

#include <cstdint>
#include <string>

#include "isa/opcode.hh"

namespace siq
{

/** One static instruction of a program. */
struct StaticInst
{
    Opcode op = Opcode::Nop;
    std::int16_t dst = -1;   ///< destination register, -1 if none
    std::int16_t src1 = -1;  ///< first source (address base for mem ops)
    std::int16_t src2 = -1;  ///< second source (store data register)
    std::int64_t imm = 0;    ///< immediate / address offset (words)
    std::int32_t target = -1; ///< block id (branch/jump) or proc id (call)
    std::uint16_t hintValue = 0; ///< Hint payload: max_new_range
    std::uint16_t tagHint = 0;   ///< Extension scheme tag (0 = none)
    std::uint64_t pc = 0;        ///< assigned by Program::finalize()

    const OpTraits &traits() const { return opTraits(op); }

    bool hasDst() const { return traits().writesDst && dst >= 0; }

    /** Effective destination (r0 writes are discarded). */
    bool
    writesLiveReg() const
    {
        return hasDst() && dst != zeroReg;
    }

    /** Human-readable form for debugging and golden tests. */
    std::string disasm() const;
};

/// @name Factory helpers (keep workload builders terse).
/// @{
StaticInst makeNop();
StaticInst makeHint(std::uint16_t entries);
StaticInst makeMovImm(int dst, std::int64_t imm);
StaticInst makeAdd(int dst, int s1, int s2);
StaticInst makeAddImm(int dst, int s1, std::int64_t imm);
StaticInst makeSub(int dst, int s1, int s2);
StaticInst makeMul(int dst, int s1, int s2);
StaticInst makeDiv(int dst, int s1, int s2);
StaticInst makeAnd(int dst, int s1, int s2);
StaticInst makeOr(int dst, int s1, int s2);
StaticInst makeXor(int dst, int s1, int s2);
StaticInst makeShl(int dst, int s1, int shift);
StaticInst makeShr(int dst, int s1, int shift);
StaticInst makeSlt(int dst, int s1, int s2);
StaticInst makeFMovImm(int fdst, std::int64_t imm);
StaticInst makeFAdd(int fdst, int fs1, int fs2);
StaticInst makeFMul(int fdst, int fs1, int fs2);
StaticInst makeFDiv(int fdst, int fs1, int fs2);
StaticInst makeLoad(int dst, int base, std::int64_t offset);
StaticInst makeStore(int base, int data, std::int64_t offset);
StaticInst makeFLoad(int fdst, int base, std::int64_t offset);
StaticInst makeFStore(int base, int fdata, std::int64_t offset);
StaticInst makeBeq(int s1, int s2, int targetBlock);
StaticInst makeBne(int s1, int s2, int targetBlock);
StaticInst makeBlt(int s1, int s2, int targetBlock);
StaticInst makeBge(int s1, int s2, int targetBlock);
StaticInst makeJump(int targetBlock);
StaticInst makeIJump(int indexReg);
StaticInst makeCall(int procId);
StaticInst makeRet();
StaticInst makeHalt();
/// @}

} // namespace siq

#endif // SIQ_ISA_STATIC_INST_HH
