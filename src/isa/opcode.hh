/**
 * @file
 * Opcode set and per-opcode traits for the siqsim RISC ISA.
 *
 * The ISA is deliberately small: just enough register dataflow, control
 * flow, memory access and latency variety to drive the paper's compiler
 * analysis and out-of-order core. Latencies and functional-unit classes
 * follow Table 1 of the paper.
 */

#ifndef SIQ_ISA_OPCODE_HH
#define SIQ_ISA_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace siq
{

/** Functional unit classes (Table 1 of the paper + memory ports). */
enum class FuClass : std::uint8_t
{
    None,     ///< consumes no functional unit (Nop/Hint/Halt)
    IntAlu,   ///< 6 units, 1-cycle
    IntMul,   ///< 3 units, 3-cycle multiply (divide shares them)
    FpAlu,    ///< 4 units, 2-cycle
    FpMulDiv, ///< 2 units, 4-cycle multiply, 12-cycle divide
    MemPort,  ///< load/store ports
    NumClasses
};

/** All instruction opcodes. */
enum class Opcode : std::uint8_t
{
    Nop,
    Hint,    ///< special NOOP carrying max_new_range (stripped at decode)
    MovImm,
    Add,
    AddImm,
    Sub,
    Mul,
    Div,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Slt,
    FMovImm,
    FAdd,
    FMul,
    FDiv,
    Load,
    Store,
    FLoad,
    FStore,
    Beq,
    Bne,
    Blt,
    Bge,
    Jump,
    IJump,   ///< indirect jump through a per-block target table
    Call,
    Ret,
    Halt,
    NumOpcodes
};

constexpr int numOpcodes = static_cast<int>(Opcode::NumOpcodes);

/** Static properties of one opcode. */
struct OpTraits
{
    std::string_view mnemonic;
    FuClass fu;
    int latency;        ///< execution latency in cycles (cache adds more)
    /** Pipelined units accept a new op every cycle; non-pipelined
     *  ones (divides, as in SimpleScalar) hold their unit for the
     *  full latency. */
    bool pipelined;
    bool writesDst;
    bool readsSrc1;
    bool readsSrc2;
    bool isBranch;      ///< conditional control flow
    bool isJump;        ///< unconditional direct control flow
    bool isIndirect;    ///< target not encoded in the instruction
    bool isCall;
    bool isRet;
    bool isLoad;
    bool isStore;
    bool isFp;          ///< writes/reads the FP register file
    bool isHalt;
};

/** Trait lookup; total over all opcodes. */
const OpTraits &opTraits(Opcode op);

/** Largest execution latency over all opcodes (cache adds more;
 *  the core's completion wheel sizes its horizon from this). */
int maxOpcodeLatency();

/** True for any instruction that may redirect control flow. */
bool isControl(Opcode op);

/** True for loads and stores. */
bool isMem(Opcode op);

/** Number of architectural integer registers (r0 is hardwired zero). */
constexpr int numIntArchRegs = 32;
/** Number of architectural floating-point registers. */
constexpr int numFpArchRegs = 32;
/** Unified architectural register index space: int 0..31, fp 32..63. */
constexpr int numArchRegs = numIntArchRegs + numFpArchRegs;
/** First unified index of the FP class. */
constexpr int fpRegBase = numIntArchRegs;
/** Register holding constant zero. */
constexpr int zeroReg = 0;

} // namespace siq

#endif // SIQ_ISA_OPCODE_HH
