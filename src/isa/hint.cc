#include "isa/hint.hh"

#include "common/logging.hh"

namespace siq
{

namespace
{
constexpr std::uint32_t payloadMask = (1u << hintPayloadBits) - 1;
constexpr int tagShift = 32 - hintPayloadBits;
} // namespace

std::uint32_t
encodeHintNoop(std::uint16_t entries)
{
    SIQ_ASSERT(entries <= payloadMask, "hint payload overflow: ", entries);
    return (hintNoopOpcode << 24) | entries;
}

std::optional<std::uint16_t>
decodeHintNoop(std::uint32_t word)
{
    if ((word >> 24) != hintNoopOpcode)
        return std::nullopt;
    return static_cast<std::uint16_t>(word & payloadMask);
}

std::uint32_t
encodeTag(std::uint32_t instWord, std::uint16_t entries)
{
    SIQ_ASSERT(entries <= payloadMask, "tag payload overflow: ", entries);
    const std::uint32_t cleared =
        instWord & ~(payloadMask << tagShift);
    return cleared | (static_cast<std::uint32_t>(entries) << tagShift);
}

std::uint16_t
decodeTag(std::uint32_t instWord)
{
    return static_cast<std::uint16_t>(
        (instWord >> tagShift) & payloadMask);
}

} // namespace siq
