/**
 * @file
 * Binary encodings for the two hint channels of the paper.
 *
 * The NOOP scheme encodes max_new_range in the unused bits of a special
 * NOOP (paper §3: "an opcode and some unused bits, in which the IQ size
 * is encoded"). The Extension scheme uses redundant bits of ordinary
 * instructions. Both encodings here are round-trip tested; the rest of
 * the simulator carries the decoded value for convenience.
 */

#ifndef SIQ_ISA_HINT_HH
#define SIQ_ISA_HINT_HH

#include <cstdint>
#include <optional>

namespace siq
{

/** Opcode byte reserved for the special NOOP in the binary encoding. */
constexpr std::uint32_t hintNoopOpcode = 0xFA;

/** Number of payload bits: enough for IQ sizes up to 255 entries. */
constexpr int hintPayloadBits = 8;

/**
 * Encode a special NOOP carrying an IQ-entry count.
 *
 * @param entries requested max_new_range; must fit hintPayloadBits.
 * @return the 32-bit instruction word.
 */
std::uint32_t encodeHintNoop(std::uint16_t entries);

/**
 * Decode a 32-bit word as a special NOOP.
 *
 * @return the encoded entry count, or nullopt when the word is not a
 *         special NOOP.
 */
std::optional<std::uint16_t> decodeHintNoop(std::uint32_t word);

/**
 * Attach a hint tag to an ordinary instruction word (Extension scheme).
 * The tag occupies the top hintPayloadBits that the base ISA leaves
 * unused; a tag of zero means "no hint".
 */
std::uint32_t encodeTag(std::uint32_t instWord, std::uint16_t entries);

/** Extract the Extension-scheme tag (0 when none). */
std::uint16_t decodeTag(std::uint32_t instWord);

} // namespace siq

#endif // SIQ_ISA_HINT_HH
