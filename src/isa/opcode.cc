#include "isa/opcode.hh"

#include <array>

#include "common/logging.hh"

namespace siq
{

namespace
{

// field order matches OpTraits:
// mnemonic fu latency piped dst s1 s2 br jmp ind call ret ld st fp
// halt
constexpr std::array<OpTraits, numOpcodes> traitTable = {{
    {"nop",    FuClass::None,     1, true, false, false, false, false, false,
     false, false, false, false, false, false, false},
    {"hint",   FuClass::None,     1, true, false, false, false, false, false,
     false, false, false, false, false, false, false},
    {"movi",   FuClass::IntAlu,   1, true, true,  false, false, false, false,
     false, false, false, false, false, false, false},
    {"add",    FuClass::IntAlu,   1, true, true,  true,  true,  false, false,
     false, false, false, false, false, false, false},
    {"addi",   FuClass::IntAlu,   1, true, true,  true,  false, false, false,
     false, false, false, false, false, false, false},
    {"sub",    FuClass::IntAlu,   1, true, true,  true,  true,  false, false,
     false, false, false, false, false, false, false},
    {"mul",    FuClass::IntMul,   3, true, true,  true,  true,  false, false,
     false, false, false, false, false, false, false},
    {"div",    FuClass::IntMul,  12, false, true,  true,  true,  false, false,
     false, false, false, false, false, false, false},
    {"and",    FuClass::IntAlu,   1, true, true,  true,  true,  false, false,
     false, false, false, false, false, false, false},
    {"or",     FuClass::IntAlu,   1, true, true,  true,  true,  false, false,
     false, false, false, false, false, false, false},
    {"xor",    FuClass::IntAlu,   1, true, true,  true,  true,  false, false,
     false, false, false, false, false, false, false},
    {"shl",    FuClass::IntAlu,   1, true, true,  true,  false, false, false,
     false, false, false, false, false, false, false},
    {"shr",    FuClass::IntAlu,   1, true, true,  true,  false, false, false,
     false, false, false, false, false, false, false},
    {"slt",    FuClass::IntAlu,   1, true, true,  true,  true,  false, false,
     false, false, false, false, false, false, false},
    {"fmovi",  FuClass::FpAlu,    2, true, true,  false, false, false, false,
     false, false, false, false, false, true,  false},
    {"fadd",   FuClass::FpAlu,    2, true, true,  true,  true,  false, false,
     false, false, false, false, false, true,  false},
    {"fmul",   FuClass::FpMulDiv, 4, true, true,  true,  true,  false, false,
     false, false, false, false, false, true,  false},
    {"fdiv",   FuClass::FpMulDiv, 12, false, true, true,  true,  false, false,
     false, false, false, false, false, true,  false},
    {"ld",     FuClass::MemPort,  1, true, true,  true,  false, false, false,
     false, false, false, true,  false, false, false},
    {"st",     FuClass::MemPort,  1, true, false, true,  true,  false, false,
     false, false, false, false, true,  false, false},
    {"fld",    FuClass::MemPort,  1, true, true,  true,  false, false, false,
     false, false, false, true,  false, true,  false},
    {"fst",    FuClass::MemPort,  1, true, false, true,  true,  false, false,
     false, false, false, false, true,  true,  false},
    {"beq",    FuClass::IntAlu,   1, true, false, true,  true,  true,  false,
     false, false, false, false, false, false, false},
    {"bne",    FuClass::IntAlu,   1, true, false, true,  true,  true,  false,
     false, false, false, false, false, false, false},
    {"blt",    FuClass::IntAlu,   1, true, false, true,  true,  true,  false,
     false, false, false, false, false, false, false},
    {"bge",    FuClass::IntAlu,   1, true, false, true,  true,  true,  false,
     false, false, false, false, false, false, false},
    {"j",      FuClass::IntAlu,   1, true, false, false, false, false, true,
     false, false, false, false, false, false, false},
    {"ijmp",   FuClass::IntAlu,   1, true, false, true,  false, false, true,
     true,  false, false, false, false, false, false},
    {"call",   FuClass::IntAlu,   1, true, false, false, false, false, true,
     false, true,  false, false, false, false, false},
    {"ret",    FuClass::IntAlu,   1, true, false, false, false, false, true,
     true,  false, true,  false, false, false, false},
    {"halt",   FuClass::None,     1, true, false, false, false, false, false,
     false, false, false, false, false, false, true},
}};

} // namespace

int
maxOpcodeLatency()
{
    int m = 1;
    for (const auto &t : traitTable)
        m = m > t.latency ? m : t.latency;
    return m;
}

const OpTraits &
opTraits(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    SIQ_ASSERT(idx < traitTable.size(), "opcode out of range");
    return traitTable[idx];
}

bool
isControl(Opcode op)
{
    const auto &t = opTraits(op);
    return t.isBranch || t.isJump || t.isCall || t.isRet;
}

bool
isMem(Opcode op)
{
    const auto &t = opTraits(op);
    return t.isLoad || t.isStore;
}

} // namespace siq
