/**
 * @file
 * Loop analysis (paper §4.3, figure 4).
 *
 * Finds the cyclic dependence sets (CDS) of a loop body's DDG, picks
 * the critical one (greatest latency per iteration, i.e. the maximum
 * cycle ratio latency/distance), and builds the paper's instruction
 * equations: every instruction j issues alongside the anchor
 * instruction of iteration i + k_j. The IQ entry count follows from
 * the program-order span between instruction j of iteration i and the
 * anchor of iteration i + k_j (the paper's 15-entry worked example is
 * a golden test).
 *
 * A pseudo-IQ simulation of a few unrolled iterations runs alongside
 * and the final answer is the maximum of the two estimators: the CDS
 * equations can under-provision when side chains are disconnected
 * from the critical cycle, and under-provisioning is the one error
 * direction the technique must avoid (it would slow the program).
 */

#ifndef SIQ_COMPILER_LOOP_ANALYSIS_HH
#define SIQ_COMPILER_LOOP_ANALYSIS_HH

#include <optional>

#include "compiler/pseudo_iq.hh"
#include "ir/ddg.hh"

namespace siq::compiler
{

/** Result of the CDS equation method alone. */
struct CdsAnalysis
{
    int entries = 0;       ///< IQ entries implied by the equations
    double period = 0.0;   ///< cycles per iteration of the critical CDS
    int anchor = -1;       ///< node id of the anchor instruction
    /** Iteration offset k_j per node (paper fig. 4(c)); nodes
     *  unreachable from the anchor hold INT_MIN. */
    std::vector<int> iterationOffset;
};

/**
 * Run the CDS equation method on a loop-body DDG (with distance-1
 * loop-carried edges). Returns nullopt when the body has no cyclic
 * dependence set.
 */
std::optional<CdsAnalysis> analyzeCds(const Ddg &body);

/** Combined loop verdict. */
struct LoopAnalysis
{
    int entries = 0;     ///< final clamped recommendation
    bool hadCds = false;
    int cdsEntries = 0;      ///< raw CDS estimate (0 when none)
    int unrolledEntries = 0; ///< pseudo-IQ estimate over unrollFactor
};

/**
 * Analyze a loop body: CDS equations plus the minimal non-degrading
 * range over an unrolled pseudo-IQ simulation (the emitted value,
 * clamped to [1, cfg.iqSize]). @p slackFraction relaxes the unrolled
 * drain-time match — steady-state throughput is what matters for a
 * loop, and the paper tolerates percent-level loss.
 */
LoopAnalysis analyzeLoop(const Ddg &body, const PseudoIqConfig &cfg,
                         int unrollFactor = 4,
                         double slackFraction = 0.02);

} // namespace siq::compiler

#endif // SIQ_COMPILER_LOOP_ANALYSIS_HH
