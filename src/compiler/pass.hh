/**
 * @file
 * The full compilation pass of the paper (figure 5):
 *
 *   find natural loops; find DAGs; build DDGs; per basic block run the
 *   pseudo issue queue to find the IQ entries needed; per loop find
 *   the cyclic dependence sets and solve the instruction equations;
 *   encode each region's requirement in a special NOOP (or, for the
 *   Extension/Improved schemes, a tag on an ordinary instruction).
 *
 * Region rules implemented here (paper §4.1-4.4):
 *  - every basic block outside any loop is its own region and gets a
 *    hint at its start;
 *  - a loop (innermost loops whole; outer loops through the blocks
 *    only they contain) is one region; its hint is placed on the
 *    loop-entry edges, i.e. at the end of each predecessor of the
 *    header that lies outside the loop, so the hint executes once per
 *    loop entry rather than once per iteration;
 *  - procedure entry blocks always get a hint (the callee cannot rely
 *    on the caller's range);
 *  - call-continuation blocks always get a hint (the callee's hints
 *    invalidated the caller's range — §4.4 "on returning from a
 *    function call, we restart analysing the IQ requirements");
 *  - calls to library procedures get a maximal hint immediately
 *    before the call (§4.4).
 */

#ifndef SIQ_COMPILER_PASS_HH
#define SIQ_COMPILER_PASS_HH

#include <cstddef>
#include <vector>

#include "compiler/loop_analysis.hh"
#include "compiler/pseudo_iq.hh"
#include "ir/cfg.hh"
#include "ir/program.hh"

namespace siq::compiler
{

/** How resize values travel to the processor. */
enum class HintScheme
{
    Noop, ///< special NOOPs inserted into the stream (paper §5.2)
    Tag,  ///< redundant bits on ordinary instructions (§5.3 Extension)
};

/** Pass configuration; Improved = Tag + interprocFu. */
struct CompilerConfig
{
    PseudoIqConfig machine;
    HintScheme scheme = HintScheme::Noop;
    /** Model callee FU pressure at call continuations (Improved). */
    bool interprocFu = false;
    /** Skip hints whose value equals the incoming active value. */
    bool elideRedundant = true;
    /** Floor for emitted values (tiny regions still need headroom). */
    int minHint = 4;
    /** Iterations simulated by the unrolled loop estimator. */
    int unrollFactor = 4;
    /** Drain-time slack tolerated when sizing loops (fraction). */
    double loopSlack = 0.02;
    /**
     * Loop bodies are analysed one control-flow path at a time (the
     * paper examines all paths, which is what blows up gcc's compile
     * time); bodies with more paths than this fall back to one
     * conservative all-paths-merged analysis — the "conservative
     * assumptions ... in the presence of complex control paths" the
     * paper blames for gcc's residual IPC loss.
     */
    int maxLoopPaths = 24;
};

/** Per-procedure analysis products (exposed for tests/examples). */
struct ProcedureAnalysis
{
    /** Per-block minimal non-degrading range (the emitted basis). */
    std::vector<int> dagNeed;
    /** Per-block figure-3 span metric (the paper's counting). */
    std::vector<int> dagSpan;
    /** Final per-block region value (clamped). */
    std::vector<int> blockValue;
    /** Index of the innermost loop containing each block, or -1. */
    std::vector<int> innermostLoop;
    std::vector<NaturalLoop> loops;
    std::vector<LoopAnalysis> loopResults;
};

/** Counters for Table 2 and the evaluation discussion. */
struct CompileStats
{
    std::size_t proceduresAnalyzed = 0;
    std::size_t blocksAnalyzed = 0;
    std::size_t loopsAnalyzed = 0;
    std::size_t hintNoopsInserted = 0;
    std::size_t tagsApplied = 0;
    std::size_t hintsElided = 0;
    double seconds = 0.0; ///< wall-clock analysis + insertion time
};

/** Analyze one procedure without modifying it. */
ProcedureAnalysis analyzeProcedure(const Program &prog, int procId,
                                   const CompilerConfig &cfg);

/**
 * Run the whole pass: analyze every procedure and insert hints into
 * @p prog (which is re-finalized). The paper's three schemes:
 *  - NOOP: scheme = Noop
 *  - Extension: scheme = Tag
 *  - Improved: scheme = Tag, interprocFu = true
 */
CompileStats annotate(Program &prog, const CompilerConfig &cfg);

} // namespace siq::compiler

#endif // SIQ_COMPILER_PASS_HH
