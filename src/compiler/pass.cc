#include "compiler/pass.hh"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/logging.hh"

namespace siq::compiler
{

namespace
{

/** Registers read by @p si that are visible to the compiler. */
std::vector<int>
readRegsOf(const StaticInst &si)
{
    std::vector<int> regs;
    const auto &t = si.traits();
    if (t.readsSrc1 && si.src1 >= 0 && si.src1 != zeroReg)
        regs.push_back(si.src1);
    if (t.readsSrc2 && si.src2 >= 0 && si.src2 != zeroReg)
        regs.push_back(si.src2);
    return regs;
}

/**
 * Estimate how long a callee keeps each FU class busy after control
 * returns — the Improved scheme's inter-procedural contention model.
 * We histogram the callee entry block (the code most recently in
 * flight for the small hot accessors the paper describes) and charge
 * ceil(count * latency / units) cycles per class.
 */
std::array<int, numFuClasses>
calleeFuPressure(const Procedure &callee, const PseudoIqConfig &cfg)
{
    // per-class unit occupancy contributed by the callee's code most
    // recently in flight (its entry block, capped): pipelined ops
    // hold an issue slot for one cycle, non-pipelined ones (divides)
    // hold a unit for their whole latency
    std::array<int, numFuClasses> occupancy{};
    int budget = 16;
    for (const auto &si : callee.blocks[0].insts) {
        if (budget-- == 0)
            break;
        const auto &t = si.traits();
        if (t.fu == FuClass::None)
            continue;
        const int hold = t.pipelined
                             ? (t.isLoad ? cfg.l1dHitLatency : 1)
                             : t.latency;
        occupancy[static_cast<int>(t.fu)] += hold;
    }
    std::array<int, numFuClasses> busy{};
    for (int k = 1; k < numFuClasses; k++) {
        if (occupancy[k] == 0)
            continue;
        busy[k] = (occupancy[k] + cfg.fuCounts[k] - 1) /
                  cfg.fuCounts[k];
    }
    return busy;
}

/**
 * All acyclic control-flow paths through a loop body, each starting
 * at the header and ending where control reaches the back edge or
 * leaves the body. Returns an empty list when the path count exceeds
 * @p cap (caller falls back to the conservative merged analysis).
 */
std::vector<std::vector<int>>
enumerateLoopPaths(const Procedure &proc,
                   const std::vector<int> &bodyBlocks, int header,
                   std::size_t cap)
{
    std::vector<char> inBody(proc.blocks.size(), 0);
    for (int b : bodyBlocks)
        inBody[static_cast<std::size_t>(b)] = 1;

    std::vector<std::vector<int>> result;
    std::vector<int> path;
    bool overflow = false;

    auto dfs = [&](auto &&self, int block) -> void {
        if (overflow)
            return;
        path.push_back(block);
        bool extended = false;
        bool terminal = false;
        for (int succ : proc.blocks[block].succs) {
            if (succ == header ||
                !inBody[static_cast<std::size_t>(succ)]) {
                terminal = true;
                continue;
            }
            if (std::find(path.begin(), path.end(), succ) !=
                path.end()) {
                continue; // irregular inner cycle: cut here
            }
            extended = true;
            self(self, succ);
        }
        if (terminal || !extended) {
            if (result.size() >= cap)
                overflow = true;
            else
                result.push_back(path);
        }
        path.pop_back();
    };
    dfs(dfs, header);
    if (overflow)
        return {};
    return result;
}

/** Pseudo-IQ inputs for one basic block. */
struct BlockSim
{
    std::vector<PseudoInst> insts;
    std::vector<PseudoDep> deps;
};

BlockSim
buildBlockSim(const BasicBlock &block, const PseudoIqConfig &cfg,
              const std::array<int, numArchRegs> &regReadyIn)
{
    BlockSim sim;
    const std::vector<const BasicBlock *> one = {&block};
    const Ddg ddg = buildDdg(one, /*loopCarried=*/false,
                             [&](const StaticInst &si) {
                                 return defaultCompilerLatency(
                                     si, cfg.l1dHitLatency);
                             });
    std::vector<char> definedLocally(numArchRegs, 0);
    for (int j = 0; j < ddg.size(); j++) {
        const StaticInst &si = *ddg.nodes[j].inst;
        PseudoInst pi = toPseudoInst(si, cfg);
        for (int r : readRegsOf(si)) {
            if (!definedLocally[r]) {
                pi.externalReady =
                    std::max(pi.externalReady, regReadyIn[r]);
            }
        }
        if (si.writesLiveReg())
            definedLocally[si.dst] = 1;
        sim.insts.push_back(pi);
    }
    for (const auto &edge : ddg.edges)
        sim.deps.push_back({edge.from, edge.to});
    return sim;
}

} // namespace

ProcedureAnalysis
analyzeProcedure(const Program &prog, int procId,
                 const CompilerConfig &cfg)
{
    const Procedure &proc = prog.procs[procId];
    const int nblocks = static_cast<int>(proc.blocks.size());

    // Improved: does any call site reach this procedure? Its blocks
    // then get the strict cross-boundary contention criterion.
    bool hasCallers = false;
    if (cfg.interprocFu) {
        for (const auto &p : prog.procs) {
            for (const auto &blk : p.blocks) {
                const StaticInst *term = blk.terminator();
                if (term != nullptr && term->traits().isCall &&
                    term->target == procId) {
                    hasCallers = true;
                }
            }
        }
    }

    ProcedureAnalysis pa;
    pa.dagNeed.assign(nblocks, 0);
    pa.dagSpan.assign(nblocks, 0);
    pa.blockValue.assign(nblocks, cfg.machine.iqSize);
    pa.innermostLoop.assign(nblocks, -1);
    pa.loops = findNaturalLoops(proc);

    // innermost containing loop per block
    for (std::size_t l = 0; l < pa.loops.size(); l++) {
        for (int b : pa.loops[l].blocks) {
            const int cur = pa.innermostLoop[b];
            if (cur < 0 || pa.loops[l].blocks.size() <
                               pa.loops[cur].blocks.size()) {
                pa.innermostLoop[b] = static_cast<int>(l);
            }
        }
    }

    // --- per-block DAG analysis with conservative join of predecessor
    // residual latencies (paper: "conservatively summarise the control
    // flow paths leading to each block")
    const std::vector<int> rpo = reversePostOrder(proc);
    std::vector<std::array<int, numArchRegs>> residual(
        static_cast<std::size_t>(nblocks));
    for (auto &r : residual)
        r.fill(0);

    // map: block -> callee procedure when its terminator is a call
    auto calleeOf = [&](const BasicBlock &block) -> const Procedure * {
        const StaticInst *term = block.terminator();
        if (term != nullptr && term->traits().isCall)
            return &prog.procs[term->target];
        return nullptr;
    };

    for (int b : rpo) {
        const BasicBlock &block = proc.blocks[b];

        std::array<int, numArchRegs> in{};
        std::array<int, numFuClasses> fuBusy{};
        bool isContinuation = false;
        for (int p : block.preds) {
            for (int r = 0; r < numArchRegs; r++)
                in[r] = std::max(in[r], residual[p][r]);
            if (const Procedure *callee = calleeOf(proc.blocks[p])) {
                isContinuation = true;
                if (cfg.interprocFu) {
                    const auto busy =
                        calleeFuPressure(*callee, cfg.machine);
                    for (int k = 0; k < numFuClasses; k++)
                        fuBusy[k] = std::max(fuBusy[k], busy[k]);
                }
            }
        }

        // strict criterion where cross-boundary contention can bite:
        // callee procedures and the blocks resuming after a call
        const bool strict =
            cfg.interprocFu && (hasCallers || isContinuation);
        BlockSim sim = buildBlockSim(block, cfg.machine, in);
        const PseudoIqResult res = simulatePseudoIq(
            sim.insts, sim.deps, cfg.machine, fuBusy,
            cfg.machine.iqSize);
        pa.dagSpan[b] = res.entriesNeeded;
        pa.dagNeed[b] = minimalRange(sim.insts, sim.deps,
                                     cfg.machine, fuBusy, 0, strict);

        // residuals for successors: producer writebacks that outlive
        // this block's drain
        auto &out = residual[b];
        out = in;
        const int origin = res.drainCycles;
        for (int r = 0; r < numArchRegs; r++)
            out[r] = std::max(0, out[r] - origin);
        std::array<int, numArchRegs> lastWb{};
        lastWb.fill(-1);
        for (std::size_t j = 0; j < block.insts.size(); j++) {
            const StaticInst &si = block.insts[j];
            if (si.writesLiveReg()) {
                lastWb[si.dst] = res.issueCycle[j] +
                                 sim.insts[j].latency;
            }
        }
        for (int r = 0; r < numArchRegs; r++) {
            if (lastWb[r] >= 0)
                out[r] = std::max(0, lastWb[r] - origin);
        }
    }

    // --- loop analysis over each loop's exclusive blocks, in RPO
    std::vector<int> rpoIndex(static_cast<std::size_t>(nblocks),
                              1 << 28);
    for (std::size_t i = 0; i < rpo.size(); i++)
        rpoIndex[rpo[i]] = static_cast<int>(i);

    pa.loopResults.resize(pa.loops.size());
    const auto latencyModel = [&](const StaticInst &si) {
        return defaultCompilerLatency(si,
                                      cfg.machine.l1dHitLatency);
    };
    for (std::size_t l = 0; l < pa.loops.size(); l++) {
        std::vector<int> body = pa.loops[l].exclusiveBlocks(pa.loops);
        std::sort(body.begin(), body.end(), [&](int a, int c) {
            return rpoIndex[a] < rpoIndex[c];
        });

        // per-path analysis (the paper examines every control-flow
        // path), falling back to one conservative merged body when
        // the path count explodes (gcc's switches)
        const auto paths = enumerateLoopPaths(
            proc, body, pa.loops[l].header,
            static_cast<std::size_t>(cfg.maxLoopPaths));
        LoopAnalysis merged;
        if (paths.empty()) {
            std::vector<const BasicBlock *> blocks;
            for (int b : body)
                blocks.push_back(&proc.blocks[b]);
            const Ddg ddg =
                buildDdg(blocks, /*loopCarried=*/true, latencyModel);
            merged = analyzeLoop(ddg, cfg.machine, cfg.unrollFactor,
                                 cfg.loopSlack);
        } else {
            for (const auto &path : paths) {
                std::vector<const BasicBlock *> blocks;
                for (int b : path)
                    blocks.push_back(&proc.blocks[b]);
                const Ddg ddg = buildDdg(blocks, /*loopCarried=*/true,
                                         latencyModel);
                const LoopAnalysis la =
                    analyzeLoop(ddg, cfg.machine, cfg.unrollFactor,
                                cfg.loopSlack);
                merged.entries = std::max(merged.entries, la.entries);
                merged.cdsEntries =
                    std::max(merged.cdsEntries, la.cdsEntries);
                merged.unrolledEntries = std::max(
                    merged.unrolledEntries, la.unrolledEntries);
                merged.hadCds = merged.hadCds || la.hadCds;
            }
        }
        pa.loopResults[l] = merged;
        // never provision below what the member blocks need alone
        for (int b : body) {
            pa.loopResults[l].entries = std::max(
                pa.loopResults[l].entries, pa.dagNeed[b]);
        }
        pa.loopResults[l].entries =
            std::min(pa.loopResults[l].entries, cfg.machine.iqSize);
    }

    // --- final per-block region values; in-loop blocks also honour
    // their own DAG need so the Improved scheme's inflated
    // call-continuation estimates take effect inside loops
    for (int b = 0; b < nblocks; b++) {
        int value;
        if (pa.innermostLoop[b] >= 0) {
            value = std::max(
                pa.loopResults[pa.innermostLoop[b]].entries,
                pa.dagNeed[b]);
        } else {
            value = pa.dagNeed[b];
        }
        pa.blockValue[b] = std::clamp(value, cfg.minHint,
                                      cfg.machine.iqSize);
    }
    return pa;
}

namespace
{

/** Planned hint insertions for one block. */
struct BlockPlan
{
    int startHint = -1; ///< value at block start, -1 = none
    int endHint = -1;   ///< value before the terminator, -1 = none
};

} // namespace

CompileStats
annotate(Program &prog, const CompilerConfig &cfg)
{
    const auto t0 = std::chrono::steady_clock::now();
    CompileStats stats;

    for (auto &proc : prog.procs) {
        const ProcedureAnalysis pa =
            analyzeProcedure(prog, proc.id, cfg);
        stats.proceduresAnalyzed++;
        stats.blocksAnalyzed += proc.blocks.size();
        stats.loopsAnalyzed += pa.loops.size();

        const int nblocks = static_cast<int>(proc.blocks.size());
        std::vector<BlockPlan> plan(static_cast<std::size_t>(nblocks));

        // 1. region-start hints for blocks outside loops, procedure
        //    entry blocks and call continuations
        for (int b = 0; b < nblocks; b++) {
            const bool inLoop = pa.innermostLoop[b] >= 0;
            bool isContinuation = false;
            for (int p : proc.blocks[b].preds) {
                const StaticInst *term =
                    proc.blocks[p].terminator();
                if (term != nullptr && term->traits().isCall &&
                    proc.blocks[p].fallthrough == b) {
                    isContinuation = true;
                }
            }
            const bool isEntry = b == 0;
            const bool headerOfLoop = [&] {
                for (const auto &loop : pa.loops)
                    if (loop.header == b)
                        return true;
                return false;
            }();
            if ((!inLoop) || isContinuation ||
                (isEntry && !headerOfLoop)) {
                plan[b].startHint = pa.blockValue[b];
            }
        }

        // 2. loop-entry hints at the end of outside predecessors
        for (std::size_t l = 0; l < pa.loops.size(); l++) {
            const auto &loop = pa.loops[l];
            const int value = std::clamp(pa.loopResults[l].entries,
                                         cfg.minHint,
                                         cfg.machine.iqSize);
            for (int p : proc.blocks[loop.header].preds) {
                if (loop.contains(p))
                    continue;
                plan[p].endHint = std::max(plan[p].endHint, value);
            }
        }

        // 3. library calls: max the IQ immediately before the call
        for (int b = 0; b < nblocks; b++) {
            const StaticInst *term = proc.blocks[b].terminator();
            if (term != nullptr && term->traits().isCall &&
                prog.procs[term->target].isLibrary) {
                plan[b].endHint = cfg.machine.iqSize;
            }
        }

        // 4. redundant-hint elision: a start hint whose single
        //    non-call predecessor already ends on the same value
        if (cfg.elideRedundant) {
            for (int b = 0; b < nblocks; b++) {
                if (plan[b].startHint < 0 ||
                    proc.blocks[b].preds.size() != 1) {
                    continue;
                }
                const int p = proc.blocks[b].preds.front();
                const StaticInst *term =
                    proc.blocks[p].terminator();
                if (term != nullptr && term->traits().isCall)
                    continue;
                const int predExit = plan[p].endHint >= 0
                                         ? plan[p].endHint
                                         : plan[p].startHint;
                if (predExit == plan[b].startHint &&
                    proc.blocks[p].insts.empty() == false) {
                    plan[b].startHint = -1;
                    stats.hintsElided++;
                }
            }
        }

        // 5. apply the plan
        for (int b = 0; b < nblocks; b++) {
            BasicBlock &block = proc.blocks[b];
            const BlockPlan &bp = plan[b];
            if (cfg.scheme == HintScheme::Noop) {
                if (bp.endHint >= 0) {
                    auto pos = block.insts.end();
                    if (block.terminator() != nullptr)
                        --pos;
                    block.insts.insert(
                        pos, makeHint(static_cast<std::uint16_t>(
                                 bp.endHint)));
                    stats.hintNoopsInserted++;
                }
                if (bp.startHint >= 0) {
                    block.insts.insert(
                        block.insts.begin(),
                        makeHint(static_cast<std::uint16_t>(
                            bp.startHint)));
                    stats.hintNoopsInserted++;
                }
            } else {
                if (bp.startHint >= 0) {
                    if (block.insts.empty()) {
                        block.insts.insert(
                            block.insts.begin(),
                            makeHint(static_cast<std::uint16_t>(
                                bp.startHint)));
                        stats.hintNoopsInserted++;
                    } else {
                        auto &si = block.insts.front();
                        si.tagHint = static_cast<std::uint16_t>(
                            std::max<int>(si.tagHint, bp.startHint));
                        stats.tagsApplied++;
                    }
                }
                if (bp.endHint >= 0) {
                    if (block.insts.empty()) {
                        block.insts.insert(
                            block.insts.begin(),
                            makeHint(static_cast<std::uint16_t>(
                                bp.endHint)));
                        stats.hintNoopsInserted++;
                    } else {
                        auto &si = block.insts.back();
                        si.tagHint = static_cast<std::uint16_t>(
                            std::max<int>(si.tagHint, bp.endHint));
                        stats.tagsApplied++;
                    }
                }
            }
        }
    }

    prog.finalize();
    const auto t1 = std::chrono::steady_clock::now();
    stats.seconds =
        std::chrono::duration<double>(t1 - t0).count();
    return stats;
}

} // namespace siq::compiler
