#include "compiler/pseudo_iq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace siq::compiler
{

PseudoInst
toPseudoInst(const StaticInst &si, const PseudoIqConfig &cfg)
{
    PseudoInst pi;
    pi.fu = si.traits().fu;
    pi.latency = defaultCompilerLatency(si, cfg.l1dHitLatency);
    pi.pipelined = si.traits().pipelined;
    return pi;
}

PseudoIqResult
simulatePseudoIq(const std::vector<PseudoInst> &insts,
                 const std::vector<PseudoDep> &deps,
                 const PseudoIqConfig &cfg,
                 const std::array<int, numFuClasses> &fuBusyUntil,
                 int rangeLimit)
{
    const int n = static_cast<int>(insts.size());
    PseudoIqResult res;
    res.issueCycle.assign(static_cast<std::size_t>(n), -1);
    if (n == 0)
        return res;

    std::vector<int> readyAt(static_cast<std::size_t>(n), 0);
    std::vector<int> dispatchedAt(static_cast<std::size_t>(n), -1);
    std::vector<int> pendingParents(static_cast<std::size_t>(n), 0);
    std::vector<std::vector<int>> children(
        static_cast<std::size_t>(n));
    for (int i = 0; i < n; i++)
        readyAt[i] = insts[i].externalReady;
    for (const auto &d : deps) {
        SIQ_ASSERT(d.from >= 0 && d.from < n && d.to >= 0 && d.to < n,
                   "bad pseudo dep");
        pendingParents[d.to]++;
        children[d.from].push_back(d.to);
    }

    int remaining = n;
    int nextDispatch = 0;
    int oldestUnissued = 0; // the position new_head tracks
    int cycle = 0;
    constexpr int cycleGuard = 1 << 21;

    // per-unit occupancy: pipelined ops hold a unit one cycle,
    // non-pipelined ones for their whole latency; the Improved
    // scheme's callee pressure pre-occupies every unit
    std::array<std::vector<int>, numFuClasses> unitFreeAt;
    for (int k = 1; k < numFuClasses; k++) {
        const int units = std::min(cfg.fuCounts[k], 64);
        unitFreeAt[k].assign(static_cast<std::size_t>(units),
                             fuBusyUntil[k]);
    }
    auto takeUnit = [&](FuClass fuClass, int until) {
        auto &units = unitFreeAt[static_cast<int>(fuClass)];
        for (auto &freeAt : units) {
            if (freeAt <= cycle) {
                freeAt = until;
                return true;
            }
        }
        return false;
    };
    auto unitAvailable = [&](FuClass fuClass) {
        if (fuClass == FuClass::None)
            return true;
        for (int freeAt :
             unitFreeAt[static_cast<int>(fuClass)]) {
            if (freeAt <= cycle)
                return true;
        }
        return false;
    };

    // cycle 0 pre-fills the queue ("we place the first few
    // instructions in this pseudo issue queue")
    for (int d = 0; d < cfg.dispatchWidth && nextDispatch < n &&
                    nextDispatch - oldestUnissued < rangeLimit;
         d++) {
        dispatchedAt[nextDispatch++] = 0;
    }

    while (remaining > 0) {
        SIQ_ASSERT(cycle < cycleGuard, "pseudo IQ failed to drain; "
                   "cyclic dependences in a DAG analysis?");
        int issued = 0;
        int youngestIssued = -1;
        const int oldestAtStart = oldestUnissued;

        for (int i = oldestUnissued;
             i < nextDispatch && issued < cfg.issueWidth; i++) {
            if (res.issueCycle[i] >= 0)
                continue; // already issued
            if (pendingParents[i] > 0 || readyAt[i] > cycle)
                continue;
            if (dispatchedAt[i] < 0 || dispatchedAt[i] >= cycle)
                continue; // issue starts the cycle after dispatch
            if (!unitAvailable(insts[i].fu))
                continue;
            if (insts[i].fu != FuClass::None) {
                takeUnit(insts[i].fu,
                         insts[i].pipelined
                             ? cycle + 1
                             : cycle + insts[i].latency);
            }
            issued++;
            res.issueCycle[i] = cycle;
            youngestIssued = i;
            for (int c : children[i]) {
                pendingParents[c]--;
                readyAt[c] = std::max(readyAt[c],
                                      cycle + insts[i].latency);
            }
        }

        if (youngestIssued >= 0) {
            const int span = youngestIssued - oldestAtStart + 1;
            res.entriesNeeded = std::max(res.entriesNeeded, span);
            remaining -= issued;
            while (oldestUnissued < n &&
                   res.issueCycle[oldestUnissued] >= 0) {
                oldestUnissued++;
            }
            res.drainCycles = cycle + 1;
        }

        // dispatch after issue, as in the paper's figure 2 ("if
        // instruction a issues ... three more can be dispatched")
        for (int d = 0; d < cfg.dispatchWidth && nextDispatch < n &&
                        nextDispatch - oldestUnissued < rangeLimit;
             d++) {
            dispatchedAt[nextDispatch++] = cycle;
        }
        cycle++;
    }
    return res;
}

int
minimalRange(const std::vector<PseudoInst> &insts,
             const std::vector<PseudoDep> &deps,
             const PseudoIqConfig &cfg,
             const std::array<int, numFuClasses> &fuBusyUntil,
             int slackCycles, bool strict)
{
    if (insts.empty())
        return 1;
    const PseudoIqResult ref =
        simulatePseudoIq(insts, deps, cfg, fuBusyUntil, cfg.iqSize);
    const int drainBudget = ref.drainCycles + slackCycles;

    auto acceptable = [&](int range) {
        const PseudoIqResult res =
            simulatePseudoIq(insts, deps, cfg, fuBusyUntil, range);
        if (res.drainCycles > drainBudget)
            return false;
        if (strict) {
            for (std::size_t i = 0; i < insts.size(); i++) {
                if (res.issueCycle[i] > ref.issueCycle[i])
                    return false;
            }
        }
        return true;
    };

    int lo = 1;
    int hi = cfg.iqSize;
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (acceptable(mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

void
expandLoopDdg(const Ddg &body, int copies, const PseudoIqConfig &cfg,
              std::vector<PseudoInst> &insts,
              std::vector<PseudoDep> &deps)
{
    const int len = body.size();
    insts.clear();
    deps.clear();
    insts.reserve(static_cast<std::size_t>(len * copies));
    for (int u = 0; u < copies; u++) {
        for (int j = 0; j < len; j++)
            insts.push_back(toPseudoInst(*body.nodes[j].inst, cfg));
    }
    for (const auto &edge : body.edges) {
        for (int u = 0; u < copies; u++) {
            const int target = u + edge.distance;
            if (target >= copies)
                continue;
            deps.push_back(
                {u * len + edge.from, target * len + edge.to});
        }
    }
}

} // namespace siq::compiler
