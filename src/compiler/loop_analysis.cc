#include "compiler/loop_analysis.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace siq::compiler
{

namespace
{

constexpr double eps = 1e-9;
constexpr double negInf = -std::numeric_limits<double>::infinity();

/**
 * True when the body DDG has a cycle whose weight
 * sum(latency) - period * sum(distance) is positive, i.e. when the
 * candidate period is smaller than the critical CDS's cycles per
 * iteration. Standard Bellman-Ford positive-cycle detection with all
 * nodes as sources; optionally reports one node on such a cycle.
 */
bool
hasPositiveCycle(const Ddg &ddg, double period, int *cycleNode)
{
    const int n = ddg.size();
    std::vector<double> dist(static_cast<std::size_t>(n), 0.0);
    std::vector<int> pred(static_cast<std::size_t>(n), -1);
    int improvedNode = -1;
    for (int round = 0; round <= n; round++) {
        improvedNode = -1;
        for (const auto &edge : ddg.edges) {
            const double w =
                edge.latency - period * edge.distance;
            if (dist[edge.from] + w > dist[edge.to] + eps) {
                dist[edge.to] = dist[edge.from] + w;
                pred[edge.to] = edge.from;
                improvedNode = edge.to;
            }
        }
        if (improvedNode < 0)
            return false;
    }
    if (cycleNode != nullptr) {
        // walk predecessors n times to land on the cycle itself
        int v = improvedNode;
        for (int i = 0; i < n; i++)
            v = pred[v];
        *cycleNode = v;
    }
    return true;
}

/**
 * Longest path distances (weights latency - period * distance) from
 * @p source. At the critical period the graph has no positive cycle,
 * so the distances are finite; unreachable nodes get -inf.
 */
std::vector<double>
longestFrom(const Ddg &ddg, int source, double period)
{
    const int n = ddg.size();
    std::vector<double> dist(static_cast<std::size_t>(n), negInf);
    dist[source] = 0.0;
    for (int round = 0; round < n + 1; round++) {
        bool changed = false;
        for (const auto &edge : ddg.edges) {
            if (dist[edge.from] == negInf)
                continue;
            const double w =
                edge.latency - period * edge.distance;
            if (dist[edge.from] + w > dist[edge.to] + eps) {
                dist[edge.to] = dist[edge.from] + w;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    return dist;
}

} // namespace

std::optional<CdsAnalysis>
analyzeCds(const Ddg &body)
{
    if (body.size() == 0)
        return std::nullopt;
    const auto cdsList = cyclicDependenceSets(body);
    if (cdsList.empty())
        return std::nullopt;

    // critical period = max cycle ratio latency/distance, found by
    // binary search on the positive-cycle predicate
    double lo = 0.0;
    double hi = 1.0;
    for (const auto &edge : body.edges)
        hi += edge.latency;
    while (hasPositiveCycle(body, hi, nullptr))
        hi *= 2.0;
    for (int it = 0; it < 60 && hi - lo > 1e-7; it++) {
        const double mid = (lo + hi) / 2.0;
        if (hasPositiveCycle(body, mid, nullptr))
            lo = mid;
        else
            hi = mid;
    }
    const double period = std::max(hi, 1e-6);

    // anchor: a node on the critical cycle (search just below the
    // critical period where the cycle is still positive)
    int anchor = -1;
    if (!hasPositiveCycle(body, lo - 1e-6 > 0 ? lo - 1e-6 : 0.0,
                          &anchor) ||
        anchor < 0) {
        // degenerate (all cycles ~zero ratio); anchor on any CDS
        anchor = cdsList.front().front();
    }

    CdsAnalysis res;
    res.period = period;
    res.anchor = anchor;

    const int n = body.size();
    const int bodyLen = n;
    const std::vector<double> dist = longestFrom(body, anchor, period);
    res.iterationOffset.assign(static_cast<std::size_t>(n),
                               std::numeric_limits<int>::min());

    int entries = 1;
    for (int j = 0; j < n; j++) {
        if (dist[j] == negInf)
            continue;
        const int k = static_cast<int>(
            std::ceil(dist[j] / period - 1e-6));
        res.iterationOffset[j] = k;
        // span in program order between inst j of iteration i and the
        // anchor of iteration i + k (positions are 1-based)
        const long span =
            std::labs(static_cast<long>(k) * bodyLen +
                      (anchor + 1) - (j + 1)) + 1;
        entries = std::max(entries, static_cast<int>(span));
    }
    res.entries = entries;
    return res;
}

LoopAnalysis
analyzeLoop(const Ddg &body, const PseudoIqConfig &cfg,
            int unrollFactor, double slackFraction)
{
    LoopAnalysis res;
    if (body.size() == 0) {
        res.entries = 1;
        return res;
    }

    const auto cds = analyzeCds(body);
    if (cds) {
        res.hadCds = true;
        res.cdsEntries = cds->entries;
    }

    // unroll far enough that the simulated window can exceed the IQ
    // itself, or small bodies would cap their own estimates
    const int len = std::max(1, body.size());
    const int copies = std::clamp(
        (cfg.iqSize * 6 / 5 + len - 1) / len, std::max(2, unrollFactor),
        24);
    std::vector<PseudoInst> insts;
    std::vector<PseudoDep> deps;
    expandLoopDdg(body, copies, cfg, insts, deps);
    const int reference =
        simulatePseudoIq(insts, deps, cfg, {}, cfg.iqSize)
            .drainCycles;
    const int slack = static_cast<int>(
        static_cast<double>(reference) * slackFraction);
    res.unrolledEntries = minimalRange(insts, deps, cfg, {}, slack);

    // the emitted value is the minimal non-degrading range over the
    // unrolled steady state; the CDS equations are reported alongside
    // (they are the paper's derivation and agree on its example, but
    // are blind to resource limits for disconnected side chains)
    res.entries = std::clamp(res.unrolledEntries, 1, cfg.iqSize);
    return res;
}

} // namespace siq::compiler
