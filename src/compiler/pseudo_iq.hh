/**
 * @file
 * The compiler's pseudo issue queue (paper §4.2, figure 3).
 *
 * "In the compiler we maintain a structure similar to the processor's
 * issue queue. We place the first few instructions in this pseudo
 * issue queue and then iterate over it several times, removing
 * instructions that are able to issue, recording their writeback
 * times and placing new ones at the tail."
 *
 * The simulation dispatches in program order (dispatchWidth per
 * cycle), issues oldest-first up to the issue width subject to
 * functional-unit availability (the paper's resource-contention
 * "additional edge in the DDG" is modelled directly as the per-cycle
 * FU limit — same effect, simpler bookkeeping), and can enforce the
 * hardware's max_new_range constraint: dispatch stalls while the
 * distance from the oldest unissued instruction (= new_head, which
 * advances over issued holes) to the dispatch point reaches the
 * range.
 *
 * Two region-size estimators are built on it:
 *  - the per-cycle span oldest-unissued..youngest-issuing, the
 *    counting procedure of the paper's figure 3;
 *  - minimalRange(): the smallest max_new_range whose constrained
 *    drain time equals the unconstrained drain time — the paper's
 *    stated objective ("reduces the number of instructions in the
 *    queue without delaying the critical path") made operational.
 * Both reproduce the worked examples of the paper (figures 1 and 3).
 */

#ifndef SIQ_COMPILER_PSEUDO_IQ_HH
#define SIQ_COMPILER_PSEUDO_IQ_HH

#include <array>
#include <limits>
#include <vector>

#include "ir/ddg.hh"
#include "isa/opcode.hh"

namespace siq::compiler
{

constexpr int numFuClasses = static_cast<int>(FuClass::NumClasses);

/** Machine parameters mirrored by the compiler (Table 1 defaults). */
struct PseudoIqConfig
{
    int issueWidth = 8;
    /** Instructions entering the pseudo queue per cycle ("placing new
     *  ones at the tail" — paper §4.2). */
    int dispatchWidth = 8;
    int iqSize = 80;
    /** Units per FU class, indexed by FuClass. */
    std::array<int, numFuClasses> fuCounts = {
        1 << 20, // None: unconstrained
        6,       // IntAlu
        3,       // IntMul
        4,       // FpAlu
        2,       // FpMulDiv
        2,       // MemPort
    };
    /** Loads are assumed to hit (paper §4.2); this is their latency. */
    int l1dHitLatency = 2;
};

/** One instruction as the pseudo IQ sees it. */
struct PseudoInst
{
    int latency = 1;
    FuClass fu = FuClass::IntAlu;
    /** Non-pipelined ops hold their unit for the full latency. */
    bool pipelined = true;
    /** Earliest issue cycle due to operands produced outside the
     *  analysed sequence (conservative join over CFG predecessors). */
    int externalReady = 0;
};

/** A dependence: @c to may issue no earlier than @c from's writeback. */
struct PseudoDep
{
    int from = -1;
    int to = -1;
};

/** Outcome of draining one sequence through the pseudo IQ. */
struct PseudoIqResult
{
    /** Max per-cycle span oldest-unissued..youngest-issuing (the
     *  paper's figure-3 counting procedure). */
    int entriesNeeded = 0;
    /** First cycle after the last issue. */
    int drainCycles = 0;
    /** Issue cycle per instruction. */
    std::vector<int> issueCycle;
};

constexpr int unboundedRange = std::numeric_limits<int>::max();

/**
 * Drain @p insts through the pseudo issue queue.
 *
 * @param insts the linearized sequence, program order
 * @param deps intra-sequence dependences (must be acyclic)
 * @param cfg machine parameters
 * @param fuBusyUntil per-class cycle before which no unit is free
 *                    (used by the Improved scheme to model a callee's
 *                    in-flight work at region entry)
 * @param rangeLimit max_new_range enforced on dispatch
 *                   (unboundedRange = off)
 */
PseudoIqResult simulatePseudoIq(
    const std::vector<PseudoInst> &insts,
    const std::vector<PseudoDep> &deps,
    const PseudoIqConfig &cfg,
    const std::array<int, numFuClasses> &fuBusyUntil = {},
    int rangeLimit = unboundedRange);

/**
 * The smallest max_new_range (in [1, cfg.iqSize]) that drains
 * @p insts no more than @p slackCycles slower than range cfg.iqSize
 * does (slack 0 = exactly as fast).
 *
 * With @p strict, additionally require that no instruction issues
 * later than it would unconstrained. The drain criterion cannot see
 * two cross-region costs: a delayed divide keeps its unit busy into
 * the next region, and a delayed tail instruction (a callee's return
 * value) stalls the consumer region. The Improved scheme applies the
 * strict criterion to code reached across call boundaries
 * (paper §5.3).
 */
int minimalRange(const std::vector<PseudoInst> &insts,
                 const std::vector<PseudoDep> &deps,
                 const PseudoIqConfig &cfg,
                 const std::array<int, numFuClasses> &fuBusyUntil = {},
                 int slackCycles = 0, bool strict = false);

/** Map an instruction to its pseudo-IQ view under @p cfg. */
PseudoInst toPseudoInst(const StaticInst &si, const PseudoIqConfig &cfg);

/**
 * Expand a loop-body DDG into @p copies back-to-back iterations.
 * Distance-d edges connect copy u to copy u+d. Returns the expanded
 * instruction list and dependence set for simulatePseudoIq().
 */
void expandLoopDdg(const Ddg &body, int copies,
                   const PseudoIqConfig &cfg,
                   std::vector<PseudoInst> &insts,
                   std::vector<PseudoDep> &deps);

} // namespace siq::compiler

#endif // SIQ_COMPILER_PSEUDO_IQ_HH
