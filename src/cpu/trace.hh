/**
 * @file
 * Functional execution traces: run the interpreter once, replay the
 * resulting instruction stream under any number of timing
 * configurations (DESIGN.md §11).
 *
 * The core's execute-at-fetch model makes this exact: every fetched
 * instruction is functionally executed at fetch, so fetch order
 * equals functional order and the whole dynamic stream is a pure
 * function of the program alone — independent of IQ sizing, resize
 * controllers, cache parameters or branch predictor state. A
 * FuncTrace records, per fetched instruction, everything the timing
 * model consumes from the interpreter (the static instruction, the
 * branch outcome, the effective address, the resolved next PC and
 * the return-address-stack push value), in fixed-width 24-byte
 * records held in chunked arena storage. Replaying a trace through
 * Core::fetchStage reproduces every architectural counter
 * byte-for-byte while skipping opcode dispatch and functional memory
 * entirely.
 *
 * Traces grow lazily: a replaying core's cursor requests records by
 * index, and the producer steps the interpreter just far enough to
 * cover the request (in chunk-sized batches). Lazy growth removes the
 * instruction budget from the trace identity — timing configurations
 * with deeper fetch-ahead (bigger ROB / fetch queue) simply extend
 * the shared trace — so the cache key is the program's content hash
 * alone. Production is serialized by an internal mutex; published
 * records are immutable, so concurrent replayers of one trace only
 * contend when they cross a chunk boundary or outrun the frontier.
 */

#ifndef SIQ_CPU_TRACE_HH
#define SIQ_CPU_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ir/exec.hh"
#include "ir/program.hh"

namespace siq
{

/// @name TraceRecord flag bits.
/// @{
constexpr std::uint8_t traceFlagTaken = 1 << 0;  ///< StepResult::taken
constexpr std::uint8_t traceFlagHalted = 1 << 1; ///< program ended here
/// @}

/**
 * One fetched instruction of the functional stream. `aux` is the
 * word-granular effective address for loads/stores and the
 * return-address-stack push PC for calls (an instruction is never
 * both); `nextPc` is the PC of the next instruction in program order
 * after control resolution (0 once halted) — the value the front-end
 * compares branch-target-buffer predictions against.
 */
struct TraceRecord
{
    const StaticInst *si = nullptr;
    std::uint64_t aux = 0;
    std::uint32_t nextPc = 0;
    std::uint8_t flags = 0;
};

static_assert(sizeof(TraceRecord) == 24,
              "trace records are meant to be compact");

/**
 * The control-prediction inputs derived from one step of the
 * interpreter. Both the live (interpreting) fetch path and the trace
 * producer compute them through this one function, so a replayed
 * front-end sees bit-identical prediction inputs by construction.
 */
struct CtrlTargets
{
    std::uint64_t actualNextPc = 0; ///< 0 when the program halted
    std::uint64_t rasPushPc = 0;    ///< Call only: return-site PC
};

CtrlTargets ctrlTargets(const Program &prog, const StepResult &sr);

/**
 * A lazily produced, append-only functional trace of one program.
 * Thread-safe: any number of cursors may replay while one of them
 * extends the frontier. Keeps the program alive — records point at
 * its StaticInsts.
 */
class FuncTrace
{
  public:
    /** Records per arena chunk (192 KiB chunks). */
    static constexpr std::uint64_t chunkRecords = 8192;

    explicit FuncTrace(std::shared_ptr<const Program> prog);

    /** A published, immutable span of the trace (half-open record
     *  index range [begin, end) backed by one chunk). */
    struct Window
    {
        const TraceRecord *base = nullptr;
        std::uint64_t begin = 0;
        std::uint64_t end = 0;
    };

    /**
     * The window containing record @p idx, producing up to it first
     * if needed (blocking). The caller must not request records past
     * the halt record — mirroring the interpreter, where step() after
     * halt is a contract violation.
     */
    Window window(std::uint64_t idx);

    const Program &program() const { return *_prog; }
    std::shared_ptr<const Program> programPtr() const { return _prog; }

    /** Arena bytes allocated so far (cache accounting). */
    std::uint64_t
    bytes() const
    {
        return _bytes.load(std::memory_order_relaxed);
    }

    /** Wall-clock seconds spent producing records so far. */
    double produceSeconds() const;

    /** Records published so far (monotonic). */
    std::uint64_t producedRecords() const;

  private:
    /** Extend the frontier to cover @p idx, batching to chunk ends;
     *  `mu` must be held. */
    void produceTo(std::uint64_t idx);

    std::shared_ptr<const Program> _prog;
    ExecContext exec;
    std::vector<std::unique_ptr<TraceRecord[]>> chunks;
    std::uint64_t produced = 0;
    double _produceSeconds = 0.0;
    std::atomic<std::uint64_t> _bytes{0};
    mutable std::mutex mu;
};

/**
 * A replaying core's read cursor: caches the current window so the
 * per-record fast path is a bounds check and an indexed load, only
 * calling back into the (mutex-guarded) trace at chunk boundaries or
 * when outrunning the production frontier.
 */
class TraceCursor
{
  public:
    TraceCursor() = default;
    explicit TraceCursor(FuncTrace *t) : trace(t) {}

    const TraceRecord &
    at(std::uint64_t idx)
    {
        if (idx < win.begin || idx >= win.end)
            win = trace->window(idx);
        return win.base[idx - win.begin];
    }

  private:
    FuncTrace *trace = nullptr;
    FuncTrace::Window win{};
};

} // namespace siq

#endif // SIQ_CPU_TRACE_HH
