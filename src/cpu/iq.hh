/**
 * @file
 * The banked, non-collapsible issue queue with the paper's additions
 * (§3.1): a second head pointer @c new_head under compiler control and
 * the @c max_new_range dispatch constraint.
 *
 * Geometry: a circular buffer of slots grouped into banks. Issued
 * entries leave holes (no compaction, as in Folegnani&González,
 * Buyuktosunoglu et al. and Abella&González); @c head advances over
 * holes when its own instruction issues, @c tail only moves forward on
 * dispatch. The occupied region is [head, tail); the queue is full
 * when that region spans every slot, regardless of holes.
 *
 * new_head semantics (paper figure 2): a hint sets
 * @c new_head = tail and @c max_new_range = value; dispatch is blocked
 * while dist(new_head, tail) >= max_new_range; when the entry at
 * @c new_head issues the pointer advances to the next valid slot or to
 * @c tail.
 *
 * A bank is powered while it holds at least one valid entry. Wake-up
 * accounting follows Folegnani&González: empty and ready operands are
 * precharge-gated and do not participate in comparisons; the ungated
 * counts are kept too so the power model can report the conventional
 * baseline and the paper's "nonEmpty" bar.
 */

#ifndef SIQ_CPU_IQ_HH
#define SIQ_CPU_IQ_HH

#include <cstdint>
#include <vector>

namespace siq
{

/** Issue queue geometry (Table 1: 80 entries; 10 banks of 8). */
struct IqConfig
{
    int numEntries = 80;
    int bankSize = 8;
};

/** Per-broadcast / per-cycle wake-up and occupancy counters. */
struct IqEventCounts
{
    std::uint64_t broadcasts = 0;
    /** Gated comparisons: non-empty, non-ready operands in powered
     *  banks (what the paper's machine pays per broadcast). */
    std::uint64_t cmpGated = 0;
    /** All operand slots of powered banks (bank gating only). */
    std::uint64_t cmpPowered = 0;
    /** All operand slots of the whole queue (conventional CAM). */
    std::uint64_t cmpConventional = 0;
    std::uint64_t dispatchWrites = 0;
    std::uint64_t issueReads = 0;
    std::uint64_t poweredBankCycles = 0;
    std::uint64_t totalBankCycles = 0;
    std::uint64_t occupancySum = 0; ///< valid entries, summed per cycle
    std::uint64_t cycles = 0;

    void
    reset()
    {
        *this = IqEventCounts{};
    }

    /** Bit-exact comparison (sweep-engine determinism checks). */
    bool operator==(const IqEventCounts &) const = default;
};

/** The issue queue. */
class IssueQueue
{
  public:
    explicit IssueQueue(const IqConfig &config);

    /// @name Dispatch side.
    /// @{
    /** Slots free in the occupied region (structural capacity). */
    bool regionFull() const { return regionLen >= cfg.numEntries; }
    /** Paper constraint: would one more dispatch exceed the range? */
    bool rangeBlocked() const { return newRegionLen >= maxNewRange; }
    bool canDispatch() const { return !regionFull() && !rangeBlocked(); }

    /**
     * Insert an instruction at the tail.
     * @return slot index (for issue bookkeeping).
     */
    int dispatch(int robIdx, int psrc1, bool ready1, int psrc2,
                 bool ready2, std::uint64_t seq);

    /** Apply a compiler hint: new_head <- tail, set the range. */
    void applyHint(int entries);
    /// @}

    /// @name Wakeup and select.
    /// @{
    /** Broadcast a completed tag; sets ready bits, counts energy. */
    void wakeup(int ptag);

    /** One selectable entry as seen by the core. */
    struct Candidate
    {
        int slot = -1;
        int robIdx = -1;
        /** Circular distance from head (age proxy for resizers). */
        int distFromHead = 0;
    };

    /**
     * Ready entries oldest-first (core applies FU/width limits).
     * O(ready): the ready set is maintained incrementally — an entry
     * enters when its last operand becomes ready (dispatch/wakeup)
     * and leaves on markIssued — ordered by region position, which
     * is invariant under head advancement, so the output is
     * identical to a head-to-tail walk of the occupied region.
     */
    void collectReady(std::vector<Candidate> &out) const;

    /** Remove an issued entry; advances head/new_head as needed. */
    void markIssued(int slot);
    /// @}

    /**
     * Squash the youngest dispatches (wrong-path recovery): undo the
     * tail advances of the last @p n dispatch() calls, dropping any
     * of their entries still valid. Entries of that span that already
     * issued are holes and need no work; if every older entry has
     * drained meanwhile (tail lapped the span), the region simply
     * collapses to empty. Charges no issueReads — a flush clears
     * valid bits, it does not read out operands.
     * @return entries dropped (still-valid squashed instructions).
     */
    int squashTail(int n);

    /// @name Observation.
    /// @{
    int validCount() const { return count; }
    int regionSize() const { return regionLen; }
    int distNewHeadToTail() const { return newRegionLen; }
    int currentRange() const { return maxNewRange; }
    int numBanks() const { return nbanks; }
    /** Banks holding at least one valid entry. Maintained
     *  incrementally on 0↔1 occupancy transitions — read every
     *  cycle (tickStats) and per broadcast (wakeup). */
    int poweredBanks() const { return poweredBankCount; }
    int headSlot() const { return head; }
    int tailSlot() const { return tail; }
    int newHeadSlot() const { return newHead; }
    bool slotValid(int slot) const { return slots[slot].valid; }
    /// @}

    /** Per-cycle stats accumulation (call once per cycle). */
    void tickStats();

    /** @p n idle cycles' worth of tickStats() in one step — the
     *  queue state is unchanged across them, so the sums are exact
     *  (core idle fast-forward, DESIGN.md §12). */
    void
    tickStatsN(std::uint64_t n)
    {
        events.cycles += n;
        events.occupancySum += n * static_cast<std::uint64_t>(count);
        events.poweredBankCycles +=
            n * static_cast<std::uint64_t>(poweredBankCount);
        events.totalBankCycles +=
            n * static_cast<std::uint64_t>(nbanks);
    }

    IqEventCounts events; ///< exposed for the power model

  private:
    struct Entry
    {
        bool valid = false;
        int robIdx = -1;
        int psrc1 = -1;
        int psrc2 = -1;
        bool ready1 = true;
        bool ready2 = true;
        std::uint64_t seq = 0;
    };

    int
    next(int slot) const
    {
        return slot + 1 == cfg.numEntries ? 0 : slot + 1;
    }

    void advanceHead();
    void advanceNewHead();

    /** Circular slot distance from head — the `i` a head-to-tail
     *  region walk would reach @p slot at (holes included). */
    int
    distFromHead(int slot) const
    {
        const int d = slot - head;
        return d >= 0 ? d : d + cfg.numEntries;
    }

    void readyInsert(int slot);
    void readyRemove(int slot);

    IqConfig cfg;
    int nbanks;
    std::vector<Entry> slots;
    std::vector<int> bankValid; ///< valid entries per bank
    /** Non-ready operands of valid entries, per bank; lets wakeup
     *  skip banks with nothing to match and collectReady/wakeup
     *  early-out, without changing any event count. */
    std::vector<int> bankPending;
    int pendingOps = 0; ///< total non-ready operands (= sum of above)
    int poweredBankCount = 0; ///< banks with bankValid > 0
    /** Slots of valid entries with both operands ready, sorted by
     *  region position (oldest first). Region-relative order of live
     *  slots never changes (head only advances over issued slots),
     *  so sortedness is preserved as head moves. */
    std::vector<int> readySlots;
    /**
     * Per-tag wake-up index: waiters[tag] lists the pending operands
     * (slot*2 + operandIdx) registered for that tag at dispatch, so
     * a broadcast touches only its matches instead of walking every
     * pending bank. Records can go stale (entry issued pending via
     * the direct API, slot reused); wakeup() re-validates each
     * against the live entry, and a pending operand re-registered in
     * a reused slot just deduplicates. Drained (cleared) per
     * broadcast — a physical tag broadcasts once before reuse.
     */
    std::vector<std::vector<int>> waiters;
    int head = 0;
    int tail = 0;
    int newHead = 0;
    int count = 0;        ///< valid entries
    int regionLen = 0;    ///< slots in [head, tail), holes included
    int newRegionLen = 0; ///< slots in [new_head, tail)
    int maxNewRange;
};

} // namespace siq

#endif // SIQ_CPU_IQ_HH
