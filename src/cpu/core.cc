#include "cpu/core.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace siq
{

namespace
{
/** Physical register handle: file selector in the high bits (see
 *  regHandleStride in core.hh for the packing invariant). */
int
handleOf(int file, int phys)
{
    return file * regHandleStride + phys;
}
} // namespace

void
CompletionWheel::init(int maxLatency)
{
    SIQ_ASSERT(maxLatency >= 1, "wheel needs a positive horizon");
    constexpr std::uint64_t slotCap = 4096;
    const auto want = static_cast<std::uint64_t>(maxLatency) + 2;
    const std::uint64_t n =
        std::bit_ceil(want < slotCap ? want : slotCap);
    slots.assign(n, {});
    mask = n - 1;
}

void
CompletionWheel::popDue(std::uint64_t now, std::vector<Completion> &out)
{
    out.clear();
    auto &vec = slots[now & mask];
    std::size_t keep = 0;
    for (const Event &ev : vec) {
        if (ev.cycle == now)
            out.push_back({ev.robIdx, ev.gen});
        else
            vec[keep++] = ev; // beyond-horizon lap: keep, in order
    }
    vec.resize(keep);
    inFlight -= out.size();
}

std::uint64_t
CompletionWheel::nextDue(std::uint64_t now) const
{
    if (inFlight == 0)
        return ~0ull;
    std::uint64_t best = ~0ull;
    for (const auto &vec : slots) {
        for (const Event &ev : vec) {
            SIQ_ASSERT(ev.cycle >= now, "in-flight event in the past");
            if (ev.cycle < best)
                best = ev.cycle;
        }
    }
    return best;
}

Core::Core(const Program &prog_, const CoreConfig &config,
           IqLimitController *controller, FuncTrace *trace)
    : prog(prog_), cfg(config), ctrl(controller), replay(trace),
      mem(config.mem), _bpred(config.bpred), iq(config.iq),
      lsq(config.lsq), intRegs(config.intRegs), fpRegs(config.fpRegs)
{
    if (replay != nullptr) {
        // replaying a trace of a different program would silently
        // simulate the wrong instruction stream
        SIQ_ASSERT(replay->program().contentHash == prog_.contentHash,
                   "trace/program content mismatch");
        replayCur = TraceCursor(replay);
    } else {
        _exec.emplace(prog_);
    }
    SIQ_ASSERT(cfg.robSize > 0, "empty ROB");
    SIQ_ASSERT(cfg.fetchQueueSize > 0, "empty fetch queue");
    SIQ_ASSERT(cfg.intRegs.numPhys <= regHandleStride &&
               cfg.fpRegs.numPhys <= regHandleStride,
               "handle packing requires phys < ", regHandleStride);
    rob.assign(static_cast<std::size_t>(cfg.robSize), RobCold{});
    robHot.assign(static_cast<std::size_t>(cfg.robSize), RobHot{});
    robCompleted.assign(static_cast<std::size_t>(cfg.robSize), 0);
    robGen.assign(static_cast<std::size_t>(cfg.robSize), 0);
    fetchQueue.assign(static_cast<std::size_t>(cfg.fetchQueueSize),
                      DynInst{});
    if (cfg.specFrontEnd) {
        // wrong-path fetch resolves predicted target PCs statically
        for (std::size_t p = 0; p < prog.procs.size(); p++) {
            const Procedure &proc = prog.procs[p];
            for (std::size_t b = 0; b < proc.blocks.size(); b++) {
                const BasicBlock &blk = proc.blocks[b];
                for (std::size_t i = 0; i < blk.insts.size(); i++) {
                    pcIndex.emplace(
                        blk.insts[i].pc,
                        PcLoc{&blk.insts[i], static_cast<int>(p),
                              static_cast<int>(b),
                              static_cast<int>(i)});
                }
            }
        }
    }
    // the wheel's one-lap horizon covers every latency the model can
    // produce: FU latencies plus the configured cache/memory path
    wheel.init(std::max({maxOpcodeLatency(), cfg.mem.l1d.hitLatency,
                         cfg.mem.l2.hitLatency, cfg.mem.memLatency,
                         1}));
}

int
Core::fuUnitsBusy(int fu)
{
    if (nonPipedPruned[fu] != now) {
        auto &busy = nonPipedBusy[fu];
        std::erase_if(busy, [this](std::uint64_t until) {
            return until <= now;
        });
        nonPipedCount[fu] = static_cast<int>(busy.size());
        nonPipedPruned[fu] = now;
    }
    return nonPipedCount[fu];
}

void
Core::noteNonPipedIssue(int fu, std::uint64_t until)
{
    fuUnitsBusy(fu); // make this cycle's memoized count current
    nonPipedBusy[fu].push_back(until);
    nonPipedCount[fu]++;
}

int
Core::sourceHandle(int archReg, bool &ready) const
{
    if (archReg < 0 || archReg == zeroReg) {
        ready = true;
        return -1;
    }
    if (archReg >= fpRegBase) {
        const int phys = fpRegs.lookup(archReg - fpRegBase);
        ready = fpRegs.isReady(phys);
        return handleOf(1, phys);
    }
    const int phys = intRegs.lookup(archReg);
    ready = intRegs.isReady(phys);
    return handleOf(0, phys);
}

void
Core::predictControl(DynInst &di, std::uint64_t actualNext,
                     std::uint64_t rasPush)
{
    const StaticInst &si = *di.si;
    const auto &t = si.traits();
    const StepResult &sr = di.step;
    const std::uint64_t pc = di.pc;

    bool mispredict = false;
    bool frontRedirect = false;
    // where wrong-path fetch starts (speculative mode): the path the
    // predictor chose, not the path the program took. 0 = the front
    // end has nothing to follow (empty RAS, cold BTB) and gates.
    std::uint64_t wpStart = 0;

    if (t.isBranch) {
        _stats.condBranches++;
        const bool predTaken = _bpred.predictDirection(pc);
        const std::uint64_t btbTarget = _bpred.btbLookup(pc);
        if (predTaken != sr.taken) {
            mispredict = true;
            if (cfg.specFrontEnd) {
                // direct branches resolve both targets at decode, so
                // the wrong path is the other static arm
                const PcLoc &loc = pcIndex.at(pc);
                const BasicBlock &blk =
                    prog.procs[loc.proc].blocks[loc.block];
                if (sr.taken) {
                    wpStart =
                        loc.instIdx + 1 <
                                static_cast<int>(blk.insts.size())
                            ? blk.insts[loc.instIdx + 1].pc
                            : blockStartPc(prog, loc.proc,
                                           blk.fallthrough);
                } else {
                    wpStart =
                        blockStartPc(prog, loc.proc, si.target);
                }
            }
        } else if (sr.taken && btbTarget != actualNext) {
            // right direction, target resolved at decode
            frontRedirect = true;
        }
        _bpred.updateDirection(pc, sr.taken);
        if (sr.taken)
            _bpred.btbUpdate(pc, actualNext);
    } else if (si.op == Opcode::Jump || si.op == Opcode::Call) {
        const std::uint64_t btbTarget = _bpred.btbLookup(pc);
        if (btbTarget != actualNext)
            frontRedirect = true;
        _bpred.btbUpdate(pc, actualNext);
        if (si.op == Opcode::Call)
            _bpred.rasPush(rasPush);
    } else if (si.op == Opcode::Ret) {
        const std::uint64_t predicted = _bpred.rasPop();
        if (predicted != actualNext && !sr.halted) {
            mispredict = true;
            wpStart = predicted;
        }
    } else if (si.op == Opcode::IJump) {
        const std::uint64_t btbTarget = _bpred.btbLookup(pc);
        if (btbTarget != actualNext) {
            mispredict = true;
            wpStart = btbTarget;
        }
        _bpred.btbUpdate(pc, actualNext);
    }

    if (mispredict) {
        di.stallsFetch = true;
        _stats.branchMispredicts++;
        _bpred.countMispredict();
        // arm after the branch's own predictor update: the snapshot
        // taken here is the exact state correct-path fetch resumes
        // from, so the squash undoes only wrong-path training
        if (cfg.specFrontEnd)
            armWrongPath(wpStart);
    } else if (frontRedirect) {
        _stats.frontRedirects++;
        fetchResumeCycle = now + static_cast<std::uint64_t>(
                                     cfg.decodeDepth);
    }
}

void
Core::commitStage()
{
    int committed = 0;
    while (committed < cfg.commitWidth && robCount > 0 &&
           !coreHalted) {
        if (!robCompleted[robHead])
            break;
        const RobCold &di = rob[robHead];
        const RobHot &h = robHot[robHead];
        if (h.flags & robFlagStore)
            mem.dataAccess(h.memAddr * 8);
        if (h.flags & (robFlagLoad | robFlagStore))
            lsq.releaseHead(h.lsqIdx);
        if (di.oldPdst >= 0) {
            (di.dstFile == 1 ? fpRegs : intRegs)
                .release(di.oldPdst);
        }
        if (di.si->op == Opcode::Halt)
            coreHalted = true;
        robHead = robHead + 1 == cfg.robSize ? 0 : robHead + 1;
        robCount--;
        committed++;
        _stats.committed++;
    }
}

void
Core::writebackStage()
{
    wheel.popDue(now, wbScratch);
    for (const auto &ev : wbScratch) {
        // an event scheduled under a generation a squash has since
        // bumped belongs to a flushed entry (possibly re-dispatched):
        // discard it. Re-checked per event, not once per batch — the
        // squash below may invalidate later events of this same cycle.
        if (ev.gen != robGen[ev.robIdx])
            continue;
        const int robIdx = ev.robIdx;
        const RobHot &h = robHot[robIdx];
        robCompleted[robIdx] = 1;
        if (h.pdstHandle >= 0) {
            if (h.pdstHandle >= regHandleStride) {
                fpRegs.setReady(h.pdstHandle - regHandleStride);
                _stats.rfFpWrites++;
            } else {
                intRegs.setReady(h.pdstHandle);
                _stats.rfIntWrites++;
            }
            iq.wakeup(h.pdstHandle);
        }
        if (h.flags & robFlagStore)
            lsq.markCompleted(h.lsqIdx);
        if (h.flags & robFlagStallsFetch) {
            if (cfg.specFrontEnd)
                squashWrongPath();
            fetchBlocked = false;
            fetchResumeCycle =
                std::max<std::uint64_t>(fetchResumeCycle, now + 1);
        }
    }
}

void
Core::issueStage()
{
    iq.collectReady(readyScratch);
    std::array<int, coreNumFuClasses> fuUsed{};
    const int regionAtStart = iq.regionSize();
    int issued = 0;

    for (const auto &cand : readyScratch) {
        if (issued >= cfg.issueWidth)
            break;
        const RobHot &h = robHot[cand.robIdx];
        const int fu = h.fu;
        // a pipelined unit is busy for one issue slot; a
        // non-pipelined one (divides) holds its unit for the full
        // latency, tracked in fuUnitsBusy
        if (fu != static_cast<int>(FuClass::None) &&
            fuUsed[fu] + fuUnitsBusy(fu) >= cfg.fuCounts[fu]) {
            continue;
        }
        if ((h.flags & robFlagLoad) && lsq.loadBlocked(h.lsqIdx))
            continue;

        const bool wrongPath = (h.flags & robFlagWrongPath) != 0;
        int latency = h.latency;
        if (h.flags & robFlagLoad) {
            if (!wrongPath)
                _stats.loads++;
            if (lsq.loadForwards(h.lsqIdx)) {
                latency = 1;
                if (!wrongPath)
                    _stats.loadForwards++;
            } else {
                latency = mem.dataAccess(h.memAddr * 8);
            }
        }
        if (h.flags & robFlagPipelined) {
            fuUsed[fu]++;
        } else {
            noteNonPipedIssue(
                fu, now + static_cast<std::uint64_t>(latency));
        }
        issued++;
        iq.markIssued(cand.slot);
        if (h.flags & (robFlagLoad | robFlagStore))
            lsq.markIssued(h.lsqIdx);
        wheel.schedule(now + static_cast<std::uint64_t>(latency),
                       cand.robIdx, robGen[cand.robIdx]);

        if (h.psrc1 >= 0) {
            if (h.psrc1 >= regHandleStride)
                _stats.rfFpReads++;
            else
                _stats.rfIntReads++;
        }
        if (h.psrc2 >= 0) {
            if (h.psrc2 >= regHandleStride)
                _stats.rfFpReads++;
            else
                _stats.rfIntReads++;
        }
        if (wrongPath)
            _stats.wrongPathIssued++;
        else
            _stats.issued++;
        if (regionAtStart - 1 - cand.distFromHead < cfg.iq.bankSize)
            signals.issuedFromYoungestBank++;
    }
    signals.issuedTotal = issued;
}

void
Core::dispatchStage()
{
    int dispatched = 0;
    while (dispatched < cfg.dispatchWidth && fqCount > 0) {
        DynInst &front = fetchQueue[fqHead];
        if (front.decodeReadyCycle > now)
            break;

        // special NOOPs are stripped here, in the last decode stage,
        // consuming a dispatch slot (paper §5.2.1). A wrong-path hint
        // must not retrain the IQ sizing — the squash cannot undo an
        // applyHint — so it only burns the slot.
        if (front.si->op == Opcode::Hint) {
            if (front.wrongPath) {
                _stats.wrongPathDispatched++;
            } else {
                iq.applyHint(front.si->hintValue);
                _stats.hintsApplied++;
            }
            fqPop();
            dispatched++;
            continue;
        }

        const auto &t = front.si->traits();
        const bool needsIq = t.fu != FuClass::None;

        if (robCount >= cfg.robSize) {
            _stats.dispatchStallRob++;
            break;
        }
        if (ctrl != nullptr && robCount >= ctrl->robLimit()) {
            _stats.dispatchStallLimit++;
            signals.dispatchStalledByLimit = true;
            break;
        }
        if (needsIq && iq.regionFull()) {
            _stats.dispatchStallIqFull++;
            break;
        }
        if (needsIq && ctrl != nullptr &&
            iq.validCount() >= ctrl->iqLimit()) {
            _stats.dispatchStallLimit++;
            signals.dispatchStalledByLimit = true;
            break;
        }
        // Extension scheme: the tag applies when the tagged
        // instruction dispatches, before the range check, so the
        // tagged instruction starts its own region
        if (front.si->tagHint != 0 && !front.hintApplied) {
            iq.applyHint(front.si->tagHint);
            front.hintApplied = true;
            _stats.hintsApplied++;
        }
        if (needsIq && iq.rangeBlocked()) {
            _stats.dispatchStallRange++;
            break;
        }
        if ((t.isLoad || t.isStore) && lsq.full()) {
            _stats.dispatchStallLsq++;
            break;
        }
        int dstFile = -1;
        if (front.si->writesLiveReg())
            dstFile = front.si->dst >= fpRegBase ? 1 : 0;
        if (dstFile == 0 && !intRegs.hasFree()) {
            _stats.dispatchStallRegs++;
            break;
        }
        if (dstFile == 1 && !fpRegs.hasFree()) {
            _stats.dispatchStallRegs++;
            break;
        }

        // rename in place in the fetch-queue slot, then copy once
        // into the ROB (the slot stays untouched until a later fetch
        // reuses it)
        bool ready1 = true;
        bool ready2 = true;
        front.psrc1 = t.readsSrc1
                          ? sourceHandle(front.si->src1, ready1)
                          : -1;
        front.psrc2 = t.readsSrc2
                          ? sourceHandle(front.si->src2, ready2)
                          : -1;
        front.dstFile = dstFile;
        if (dstFile >= 0) {
            auto &file = dstFile == 1 ? fpRegs : intRegs;
            const int arch = dstFile == 1
                                 ? front.si->dst - fpRegBase
                                 : front.si->dst;
            const auto [fresh, old] = file.rename(arch);
            front.pdst = fresh;
            front.oldPdst = old;
        }

        const int robIdx = robTail;
        if (t.isLoad || t.isStore)
            front.lsqIdx = lsq.allocate(t.isStore,
                                        front.step.memAddr, robIdx);
        if (t.isStore && !front.wrongPath)
            _stats.stores++;
        if (needsIq) {
            iq.dispatch(robIdx, front.psrc1, ready1, front.psrc2,
                        ready2, front.seq);
        }
        rob[robIdx] = {front.si, front.oldPdst,
                       static_cast<std::int8_t>(dstFile)};
        RobHot &h = robHot[robIdx];
        h.memAddr = front.step.memAddr;
        h.lsqIdx = front.lsqIdx;
        h.pdstHandle =
            dstFile >= 0 ? handleOf(dstFile, front.pdst) : -1;
        h.psrc1 = front.psrc1;
        h.psrc2 = front.psrc2;
        h.latency = static_cast<std::int16_t>(t.latency);
        h.fu = static_cast<std::int8_t>(t.fu);
        h.flags = static_cast<std::uint8_t>(
            (t.pipelined ? robFlagPipelined : 0) |
            (t.isLoad ? robFlagLoad : 0) |
            (t.isStore ? robFlagStore : 0) |
            (front.stallsFetch ? robFlagStallsFetch : 0) |
            (front.wrongPath ? robFlagWrongPath : 0));
        // Nop/Halt never execute: complete at dispatch
        robCompleted[robIdx] = needsIq ? 0 : 1;
        // the mispredicted branch just renamed itself: the maps are
        // now exactly the state the squash must restore (wrong-path
        // instructions sit behind it and dispatch strictly later)
        if (cfg.specFrontEnd && front.stallsFetch) {
            ckpt.branchRobIdx = robIdx;
            intRegs.snapshotMap(ckpt.intMap);
            fpRegs.snapshotMap(ckpt.fpMap);
        }
        fqPop();
        robTail = robTail + 1 == cfg.robSize ? 0 : robTail + 1;
        robCount++;
        dispatched++;
        if (front.wrongPath)
            _stats.wrongPathDispatched++;
        else
            _stats.dispatched++;
    }
}

void
Core::fetchStage()
{
    if (now < fetchResumeCycle || now < icacheReadyCycle)
        return;
    // while a mispredicted branch is in flight the front end follows
    // the predicted path; fetchBlocked gates only the correct path
    if (wpActive) {
        wrongPathFetchStage();
        return;
    }
    if (fetchDone || fetchBlocked)
        return;
    int fetched = 0;
    while (fetched < cfg.fetchWidth &&
           fqCount < cfg.fetchQueueSize && !streamHalted()) {
        // the next instruction's PC, without consuming it: the icache
        // check below may end the fetch group before it is fetched
        const TraceRecord *rec = nullptr;
        std::uint64_t pc;
        if (replay != nullptr) {
            rec = &replayCur.at(replayIdx);
            pc = rec->si->pc;
        } else {
            pc = _exec->peek().pc;
        }
        const std::uint64_t line = pc / cfg.mem.l1i.lineBytes;
        if (line != lastFetchLine) {
            const int latency = mem.instAccess(pc);
            lastFetchLine = line;
            if (latency > 1) {
                icacheReadyCycle =
                    now + static_cast<std::uint64_t>(latency);
                break;
            }
        }

        DynInst &di = fetchQueue[fqTail];
        // reset only what dispatch reads before (re)assigning it —
        // everything else is written below or at dispatch
        di.oldPdst = -1;
        di.lsqIdx = -1;
        di.hintApplied = false;
        di.stallsFetch = false;
        di.wrongPath = false;
        std::uint64_t actualNext;
        std::uint64_t rasPush = 0;
        if (replay != nullptr) {
            replayIdx++;
            di.step = StepResult{};
            di.step.inst = rec->si;
            di.step.taken = (rec->flags & traceFlagTaken) != 0;
            di.step.halted = (rec->flags & traceFlagHalted) != 0;
            const auto &rt = rec->si->traits();
            if (rt.isLoad || rt.isStore)
                di.step.memAddr = rec->aux;
            else if (rec->si->op == Opcode::Call)
                rasPush = rec->aux;
            actualNext = rec->nextPc;
            replayHalted = di.step.halted;
        } else {
            di.step = _exec->step();
            const CtrlTargets ct = ctrlTargets(prog, di.step);
            actualNext = ct.actualNextPc;
            rasPush = ct.rasPushPc;
        }
        di.si = di.step.inst;
        di.seq = seqCounter++;
        di.pc = di.si->pc;
        di.decodeReadyCycle =
            now + static_cast<std::uint64_t>(cfg.decodeDepth);

        const std::uint64_t resumeBefore = fetchResumeCycle;
        predictControl(di, actualNext, rasPush);
        const bool redirected = fetchResumeCycle != resumeBefore;
        const bool taken =
            di.step.taken || di.si->traits().isJump;

        fqTail = fqTail + 1 == cfg.fetchQueueSize ? 0 : fqTail + 1;
        fqCount++;
        _stats.fetched++;
        fetched++;

        if (streamHalted())
            fetchDone = true;
        if (di.stallsFetch) {
            fetchBlocked = true;
            break;
        }
        if (redirected || taken)
            break; // cannot fetch past a taken control this cycle
    }
}

void
Core::armWrongPath(std::uint64_t startPc)
{
    // mispredicts are only detected at correct-path fetch, which is
    // paused until this one resolves — checkpoints cannot nest
    SIQ_ASSERT(!wpActive, "nested mispredict checkpoint");
    wpActive = true;
    wpStalled = startPc == 0;
    wpPc = startPc;
    ckpt.armCycle = now;
    ckpt.branchRobIdx = -1;
    _bpred.save(ckpt.bpred);
}

void
Core::wrongPathFetchStage()
{
    if (wpStalled)
        return;
    int fetched = 0;
    while (fetched < cfg.fetchWidth && fqCount < cfg.fetchQueueSize) {
        const auto it = pcIndex.find(wpPc);
        if (it == pcIndex.end()) {
            // a stale BTB/RAS entry predicted a PC that is no longer
            // (or never was) an instruction: misfetch, gate until the
            // squash
            wpStalled = true;
            return;
        }
        const PcLoc &loc = it->second;
        const std::uint64_t line = wpPc / cfg.mem.l1i.lineBytes;
        if (line != lastFetchLine) {
            const int latency = mem.instAccess(wpPc);
            lastFetchLine = line;
            if (latency > 1) {
                icacheReadyCycle =
                    now + static_cast<std::uint64_t>(latency);
                return;
            }
        }

        DynInst &di = fetchQueue[fqTail];
        di.oldPdst = -1;
        di.lsqIdx = -1;
        // hintApplied pre-set: tag hints are correct-path-only (like
        // Hint NOOPs, their applyHint cannot be undone by the squash)
        di.hintApplied = true;
        di.stallsFetch = false;
        di.wrongPath = true;
        di.si = loc.si;
        di.seq = seqCounter++;
        di.pc = wpPc;
        di.step = StepResult{};
        di.step.inst = loc.si;
        // loads/stores need an address; the architectural one does
        // not exist (the op never really executes)
        di.step.memAddr = wrongPathMemAddr(wpPc);
        di.decodeReadyCycle =
            now + static_cast<std::uint64_t>(cfg.decodeDepth);

        const WpNext nxt = wrongPathNextPc(loc);

        fqTail = fqTail + 1 == cfg.fetchQueueSize ? 0 : fqTail + 1;
        fqCount++;
        _stats.wrongPathFetched++;
        fetched++;

        if (nxt.pc == 0) {
            // halt, dead-end fallthrough chain, empty RAS or cold BTB
            wpStalled = true;
            return;
        }
        wpPc = nxt.pc;
        if (nxt.taken)
            return; // cannot fetch past a taken control this cycle
    }
}

Core::WpNext
Core::wrongPathNextPc(const PcLoc &loc)
{
    const StaticInst &si = *loc.si;
    const BasicBlock &blk = prog.procs[loc.proc].blocks[loc.block];
    // sequential successor in the static layout
    const auto seqPc = [&]() -> std::uint64_t {
        if (loc.instIdx + 1 < static_cast<int>(blk.insts.size()))
            return blk.insts[loc.instIdx + 1].pc;
        return blockStartPc(prog, loc.proc, blk.fallthrough);
    };
    if (si.traits().isBranch) {
        // predictor-guided: shifts speculative history (restored at
        // the squash) but trains no table — the outcome is unknown
        const bool taken = _bpred.speculateDirection(si.pc);
        if (taken)
            return {blockStartPc(prog, loc.proc, si.target), true};
        return {seqPc(), false};
    }
    switch (si.op) {
    case Opcode::Jump:
        return {blockStartPc(prog, loc.proc, si.target), true};
    case Opcode::Call:
        // same push value as correct-path fetch (the caller block's
        // fallthrough); block 0 is the callee's entry
        _bpred.rasPush(
            blockStartPc(prog, loc.proc, blk.fallthrough));
        return {blockStartPc(prog, si.target, 0), true};
    case Opcode::Ret:
        return {_bpred.rasPop(), true};
    case Opcode::IJump:
        return {_bpred.btbLookup(si.pc), true};
    case Opcode::Halt:
        return {0, true};
    default:
        return {seqPc(), false};
    }
}

std::uint64_t
Core::wrongPathMemAddr(std::uint64_t pc) const
{
    // splitmix64 finalizer: deterministic, well-spread synthetic word
    // address — same pc, same address, every run and thread count
    std::uint64_t z = pc + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z % prog.memWords;
}

void
Core::squashWrongPath()
{
    SIQ_ASSERT(wpActive, "squash without an armed wrong path");
    SIQ_ASSERT(ckpt.branchRobIdx >= 0,
               "branch resolved before it dispatched");

    // flush ROB entries younger than the branch (walk oldest-first
    // from just past it to the tail), releasing the fresh physical
    // register each one allocated — its previous mapping returns via
    // the checkpointed map below
    int flushed = 0;
    int iqDispatches = 0;
    int lsqEntries = 0;
    int idx = ckpt.branchRobIdx + 1 == cfg.robSize
                  ? 0
                  : ckpt.branchRobIdx + 1;
    while (idx != robTail) {
        const RobHot &h = robHot[idx];
        SIQ_ASSERT(h.flags & robFlagWrongPath,
                   "correct-path entry younger than the mispredict");
        if (h.pdstHandle >= 0) {
            if (h.pdstHandle >= regHandleStride)
                fpRegs.release(h.pdstHandle - regHandleStride);
            else
                intRegs.release(h.pdstHandle);
        }
        if (rob[idx].si->traits().fu != FuClass::None)
            iqDispatches++;
        if (h.flags & (robFlagLoad | robFlagStore))
            lsqEntries++;
        robGen[idx]++; // invalidate any in-flight completion event
        robCompleted[idx] = 0;
        flushed++;
        idx = idx + 1 == cfg.robSize ? 0 : idx + 1;
    }
    robTail = ckpt.branchRobIdx + 1 == cfg.robSize
                  ? 0
                  : ckpt.branchRobIdx + 1;
    robCount -= flushed;

    iq.squashTail(iqDispatches);
    lsq.squashTail(lsqEntries);

    // the fetch queue holds only wrong-path instructions: everything
    // fetched before the branch dispatched before it (in order), and
    // correct-path fetch has been paused since
    const int fqFlushed = fqCount;
    for (int i = 0, s = fqHead; i < fqCount;
         i++, s = s + 1 == cfg.fetchQueueSize ? 0 : s + 1) {
        SIQ_ASSERT(fetchQueue[s].wrongPath,
                   "correct-path instruction behind the mispredict");
    }
    fqTail = fqHead;
    fqCount = 0;

    intRegs.restoreMap(ckpt.intMap);
    fpRegs.restoreMap(ckpt.fpMap);
    _bpred.restore(ckpt.bpred);

    _stats.squashes++;
    _stats.squashCycles += now - ckpt.armCycle;
    _stats.squashedInsts +=
        static_cast<std::uint64_t>(flushed + fqFlushed);

    wpActive = false;
    wpStalled = false;
    wpPc = 0;
    ckpt.branchRobIdx = -1;
    // lastFetchLine stays: the wrong path really did pull its lines
    // into the icache (pollution is part of the model)
}

void
Core::auditArchState() const
{
    SIQ_ASSERT(robCount >= 0 && robCount <= cfg.robSize,
               "ROB count out of range: ", robCount);
    SIQ_ASSERT((robHead + robCount) % cfg.robSize == robTail,
               "ROB ring pointers inconsistent");
    SIQ_ASSERT(fqCount >= 0 && fqCount <= cfg.fetchQueueSize,
               "fetch-queue count out of range: ", fqCount);
    SIQ_ASSERT((fqHead + fqCount) % cfg.fetchQueueSize == fqTail,
               "fetch-queue ring pointers inconsistent");

    // rename discipline: every allocated physical register is
    // referenced exactly once — by the map, or as the pending oldPdst
    // release of exactly one in-flight ROB entry
    const auto auditFile = [this](const RegFile &rf, int file) {
        std::vector<int> refs(
            static_cast<std::size_t>(rf.config().numPhys), 0);
        for (int a = 0; a < rf.config().numArch; a++) {
            const int p = rf.lookup(a);
            SIQ_ASSERT(p >= 0 && p < rf.config().numPhys,
                       "map entry out of range: ", p);
            refs[p]++;
        }
        int idx = robHead;
        for (int i = 0; i < robCount; i++) {
            const RobCold &c = rob[idx];
            if (c.dstFile == file && c.oldPdst >= 0)
                refs[c.oldPdst]++;
            idx = idx + 1 == cfg.robSize ? 0 : idx + 1;
        }
        int referenced = 0;
        for (const int r : refs) {
            SIQ_ASSERT(r <= 1, "physical register referenced ", r,
                       " times");
            referenced += r;
        }
        SIQ_ASSERT(referenced == rf.config().numPhys - rf.freeRegs(),
                   "free list disagrees with reachable registers: ",
                   referenced, " referenced, ", rf.freeRegs(),
                   " free of ", rf.config().numPhys);
        SIQ_ASSERT(referenced == rf.liveRegs(),
                   "bank liveness disagrees with reachable registers");
    };
    auditFile(intRegs, 0);
    auditFile(fpRegs, 1);

    // LSQ population matches the in-flight memory ops exactly
    int memOps = 0;
    int idx = robHead;
    for (int i = 0; i < robCount; i++) {
        if (robHot[idx].flags & (robFlagLoad | robFlagStore))
            memOps++;
        idx = idx + 1 == cfg.robSize ? 0 : idx + 1;
    }
    SIQ_ASSERT(memOps == lsq.size(), "LSQ holds ", lsq.size(),
               " entries but ", memOps, " memory ops are in flight");
    SIQ_ASSERT(iq.validCount() <= robCount,
               "more IQ entries than ROB entries");
}

void
Core::tick()
{
    signals = ResizeSignals{};
    signals.cycle = now;

    commitStage();
    writebackStage();
    issueStage();
    dispatchStage();
    fetchStage();

    // per-cycle statistics
    iq.tickStats();
    _stats.rfIntLiveSum +=
        static_cast<std::uint64_t>(intRegs.liveRegs());
    _stats.rfIntPoweredBankCycles +=
        static_cast<std::uint64_t>(intRegs.poweredBanks());
    _stats.rfIntBankCycles +=
        static_cast<std::uint64_t>(intRegs.numBanks());
    _stats.rfFpLiveSum +=
        static_cast<std::uint64_t>(fpRegs.liveRegs());
    _stats.rfFpPoweredBankCycles +=
        static_cast<std::uint64_t>(fpRegs.poweredBanks());
    _stats.rfFpBankCycles +=
        static_cast<std::uint64_t>(fpRegs.numBanks());
    _stats.cycles++;

    if (ctrl != nullptr) {
        signals.iqValid = iq.validCount();
        signals.iqRegionLen = iq.regionSize();
        signals.robCount = robCount;
        ctrl->tick(signals);
    }
    now++;
}

void
Core::maybeFastForward()
{
    constexpr std::uint64_t noBound = ~0ull;
    // earliest future cycle at which some stage could act; stays
    // noBound only if no timer is pending (then skipping would hide
    // a genuine deadlock from run()'s no-progress assert, so don't)
    std::uint64_t next = noBound;

    // commit: acts as soon as the ROB head is completed
    if (robCount > 0 && robCompleted[robHead])
        return;

    // writeback: the earliest in-flight completion event. All events
    // are >= now (due ones were popped this tick), so this both
    // detects "due next cycle" and bounds the jump.
    next = std::min(next, wheel.nextDue(now));

    // select/issue: any ready entry that a fresh cycle could issue
    // (no width pressure: issueWidth >= 1). FU-blocked candidates
    // unblock when a non-pipelined unit frees; load-blocked ones
    // only via completion events, already bounded above.
    iq.collectReady(readyScratch);
    for (const auto &cand : readyScratch) {
        const RobHot &h = robHot[cand.robIdx];
        const int fu = h.fu;
        if (fu != static_cast<int>(FuClass::None) &&
            fuUnitsBusy(fu) >= cfg.fuCounts[fu]) {
            for (const std::uint64_t until : nonPipedBusy[fu])
                next = std::min(next, until);
            continue;
        }
        if ((h.flags & robFlagLoad) && lsq.loadBlocked(h.lsqIdx))
            continue;
        return; // issuable right now
    }

    // dispatch: mirror dispatchStage's break order exactly so the
    // skipped cycles bump the same stall counter it would have
    std::uint64_t *stallCtr = nullptr;
    bool stalledByLimit = false;
    if (fqCount > 0) {
        const DynInst &front = fetchQueue[fqHead];
        if (front.decodeReadyCycle > now) {
            next = std::min(next, front.decodeReadyCycle);
        } else if (front.si->op == Opcode::Hint) {
            return; // would be stripped (a dispatch action)
        } else {
            const auto &t = front.si->traits();
            const bool needsIq = t.fu != FuClass::None;
            int dstFile = -1;
            if (front.si->writesLiveReg())
                dstFile = front.si->dst >= fpRegBase ? 1 : 0;
            if (robCount >= cfg.robSize) {
                stallCtr = &_stats.dispatchStallRob;
            } else if (ctrl != nullptr &&
                       robCount >= ctrl->robLimit()) {
                stallCtr = &_stats.dispatchStallLimit;
                stalledByLimit = true;
            } else if (needsIq && iq.regionFull()) {
                stallCtr = &_stats.dispatchStallIqFull;
            } else if (needsIq && ctrl != nullptr &&
                       iq.validCount() >= ctrl->iqLimit()) {
                stallCtr = &_stats.dispatchStallLimit;
                stalledByLimit = true;
            } else if (front.si->tagHint != 0 && !front.hintApplied) {
                return; // would apply the tag hint (an action)
            } else if (needsIq && iq.rangeBlocked()) {
                stallCtr = &_stats.dispatchStallRange;
            } else if ((t.isLoad || t.isStore) && lsq.full()) {
                stallCtr = &_stats.dispatchStallLsq;
            } else if (dstFile == 0 && !intRegs.hasFree()) {
                stallCtr = &_stats.dispatchStallRegs;
            } else if (dstFile == 1 && !fpRegs.hasFree()) {
                stallCtr = &_stats.dispatchStallRegs;
            } else {
                return; // would dispatch
            }
        }
    }

    // fetch: blocked states clear via completion events (bounded
    // above) or via the resume/icache timers
    if (!fetchDone && !fetchBlocked && fqCount < cfg.fetchQueueSize &&
        !streamHalted()) {
        const std::uint64_t resume =
            std::max(fetchResumeCycle, icacheReadyCycle);
        if (resume <= now)
            return; // would fetch
        next = std::min(next, resume);
    }
    // wrong-path fetch: fetchBlocked gates only the correct path; a
    // gated (wpStalled) front end unblocks via the branch's
    // completion event, already bounded above
    if (wpActive && !wpStalled && fqCount < cfg.fetchQueueSize) {
        const std::uint64_t resume =
            std::max(fetchResumeCycle, icacheReadyCycle);
        if (resume <= now)
            return; // would fetch down the predicted path
        next = std::min(next, resume);
    }

    // a controller's limits may change at its next decision point,
    // unblocking dispatch: never jump past it
    if (ctrl != nullptr) {
        next = std::min<std::uint64_t>(next,
                                       now + ctrl->decisionHorizon());
    }
    if (next == noBound || next <= now)
        return;

    // every cycle in [now, next) is provably dead: accumulate what
    // the per-cycle bookkeeping would have, in one step each
    const std::uint64_t delta = next - now;
    _stats.cycles += delta;
    if (stallCtr != nullptr)
        *stallCtr += delta;
    iq.tickStatsN(delta);
    _stats.rfIntLiveSum +=
        delta * static_cast<std::uint64_t>(intRegs.liveRegs());
    _stats.rfIntPoweredBankCycles +=
        delta * static_cast<std::uint64_t>(intRegs.poweredBanks());
    _stats.rfIntBankCycles +=
        delta * static_cast<std::uint64_t>(intRegs.numBanks());
    _stats.rfFpLiveSum +=
        delta * static_cast<std::uint64_t>(fpRegs.liveRegs());
    _stats.rfFpPoweredBankCycles +=
        delta * static_cast<std::uint64_t>(fpRegs.poweredBanks());
    _stats.rfFpBankCycles +=
        delta * static_cast<std::uint64_t>(fpRegs.numBanks());
    if (ctrl != nullptr) {
        // the observations an idle cycle delivers are constant, so
        // the controller sees exactly the sequence it would have
        ResizeSignals s;
        s.iqValid = iq.validCount();
        s.iqRegionLen = iq.regionSize();
        s.robCount = robCount;
        s.dispatchStalledByLimit = stalledByLimit;
        for (std::uint64_t u = now; u < next; u++) {
            s.cycle = u;
            ctrl->tick(s);
        }
    }
    now = next;
}

std::uint64_t
Core::run(std::uint64_t maxInsts)
{
    const std::uint64_t start = _stats.committed;
    std::uint64_t lastCommitted = start;
    std::uint64_t lastProgress = now;
    while (!coreHalted && _stats.committed - start < maxInsts) {
        const std::uint64_t act0 =
            _stats.committed + _stats.fetched + _stats.dispatched +
            _stats.issued + _stats.hintsApplied +
            _stats.wrongPathFetched + _stats.wrongPathDispatched +
            _stats.wrongPathIssued;
        tick();
        const std::uint64_t act1 =
            _stats.committed + _stats.fetched + _stats.dispatched +
            _stats.issued + _stats.hintsApplied +
            _stats.wrongPathFetched + _stats.wrongPathDispatched +
            _stats.wrongPathIssued;
        // a tick that did nothing usually starts a dead stretch
        // (cache miss, drain, decode bubble): prove it and jump it.
        // The gate is only a heuristic — maybeFastForward re-checks
        // everything against the current state.
        if (act1 == act0 && wbScratch.empty())
            maybeFastForward();
        if (_stats.committed != lastCommitted) {
            lastCommitted = _stats.committed;
            lastProgress = now;
        }
        SIQ_ASSERT(now - lastProgress < 200000,
                   "no commit progress for 200k cycles: deadlock? "
                   "cycle=", now, " committed=", _stats.committed);
    }
    return _stats.committed - start;
}

void
Core::resetStats()
{
    _stats.reset();
    iq.events.reset();
    mem.resetStats();
    _bpred.resetStats();
}

} // namespace siq
