#include "cpu/core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace siq
{

namespace
{
/** Physical register handle: file selector in the high bits. */
int
handleOf(int file, int phys)
{
    return file * 256 + phys;
}
} // namespace

Core::Core(const Program &prog_, const CoreConfig &config,
           IqLimitController *controller)
    : prog(prog_), cfg(config), ctrl(controller), _exec(prog_),
      mem(config.mem), _bpred(config.bpred), iq(config.iq),
      lsq(config.lsq), intRegs(config.intRegs), fpRegs(config.fpRegs)
{
    SIQ_ASSERT(cfg.robSize > 0, "empty ROB");
    rob.assign(static_cast<std::size_t>(cfg.robSize), DynInst{});
}

std::uint64_t
Core::blockStartPc(int procId, int blockId) const
{
    // resolve through empty fallthrough blocks exactly like the
    // functional normalize() so RAS predictions compare equal
    int b = blockId;
    while (true) {
        const BasicBlock &blk = prog.procs[procId].blocks[b];
        if (!blk.insts.empty())
            return blk.insts.front().pc;
        if (blk.fallthrough < 0)
            return 0;
        b = blk.fallthrough;
    }
}

std::uint64_t
Core::pcOfCurrent() const
{
    const auto &blk =
        prog.procs[_exec.curProc()].blocks[_exec.curBlock()];
    return blk.insts[static_cast<std::size_t>(_exec.curInst())].pc;
}

int
Core::fuUnitsBusy(int fu)
{
    auto &busy = nonPipedBusy[fu];
    std::erase_if(busy,
                  [this](std::uint64_t until) { return until <= now; });
    return static_cast<int>(busy.size());
}

int
Core::sourceHandle(int archReg, bool &ready) const
{
    if (archReg < 0 || archReg == zeroReg) {
        ready = true;
        return -1;
    }
    if (archReg >= fpRegBase) {
        const int phys = fpRegs.lookup(archReg - fpRegBase);
        ready = fpRegs.isReady(phys);
        return handleOf(1, phys);
    }
    const int phys = intRegs.lookup(archReg);
    ready = intRegs.isReady(phys);
    return handleOf(0, phys);
}

void
Core::predictControl(DynInst &di)
{
    const StaticInst &si = *di.si;
    const auto &t = si.traits();
    const StepResult &sr = di.step;
    const std::uint64_t pc = di.pc;

    std::uint64_t actualNext = 0;
    if (!sr.halted) {
        actualNext = prog.procs[sr.nextProc]
                         .blocks[sr.nextBlock]
                         .insts[static_cast<std::size_t>(
                             sr.nextInstIdx)]
                         .pc;
    }

    bool mispredict = false;
    bool frontRedirect = false;

    if (t.isBranch) {
        _stats.condBranches++;
        const bool predTaken = _bpred.predictDirection(pc);
        const std::uint64_t btbTarget = _bpred.btbLookup(pc);
        if (predTaken != sr.taken) {
            mispredict = true;
        } else if (sr.taken && btbTarget != actualNext) {
            // right direction, target resolved at decode
            frontRedirect = true;
        }
        _bpred.updateDirection(pc, sr.taken);
        if (sr.taken)
            _bpred.btbUpdate(pc, actualNext);
    } else if (si.op == Opcode::Jump || si.op == Opcode::Call) {
        const std::uint64_t btbTarget = _bpred.btbLookup(pc);
        if (btbTarget != actualNext)
            frontRedirect = true;
        _bpred.btbUpdate(pc, actualNext);
        if (si.op == Opcode::Call) {
            const auto &callBlock =
                prog.procs[sr.proc].blocks[sr.block];
            _bpred.rasPush(
                blockStartPc(sr.proc, callBlock.fallthrough));
        }
    } else if (si.op == Opcode::Ret) {
        const std::uint64_t predicted = _bpred.rasPop();
        if (predicted != actualNext && !sr.halted)
            mispredict = true;
    } else if (si.op == Opcode::IJump) {
        const std::uint64_t btbTarget = _bpred.btbLookup(pc);
        if (btbTarget != actualNext)
            mispredict = true;
        _bpred.btbUpdate(pc, actualNext);
    }

    if (mispredict) {
        di.stallsFetch = true;
        _stats.branchMispredicts++;
        _bpred.countMispredict();
    } else if (frontRedirect) {
        _stats.frontRedirects++;
        fetchResumeCycle = now + static_cast<std::uint64_t>(
                                     cfg.decodeDepth);
    }
}

void
Core::commitStage()
{
    int committed = 0;
    while (committed < cfg.commitWidth && robCount > 0 &&
           !coreHalted) {
        DynInst &di = rob[robHead];
        if (!di.completed)
            break;
        const auto &t = di.si->traits();
        if (t.isStore)
            mem.dataAccess(di.step.memAddr * 8);
        if (t.isLoad || t.isStore)
            lsq.releaseHead(di.lsqIdx);
        if (di.oldPdst >= 0) {
            (di.dstFile == 1 ? fpRegs : intRegs)
                .release(di.oldPdst);
        }
        if (di.si->op == Opcode::Halt)
            coreHalted = true;
        robHead = robHead + 1 == cfg.robSize ? 0 : robHead + 1;
        robCount--;
        committed++;
        _stats.committed++;
    }
}

void
Core::writebackStage()
{
    const auto it = completions.find(now);
    if (it == completions.end())
        return;
    for (const int robIdx : it->second) {
        DynInst &di = rob[robIdx];
        di.completed = true;
        if (di.pdst >= 0) {
            if (di.dstFile == 1) {
                fpRegs.setReady(di.pdst);
                _stats.rfFpWrites++;
            } else {
                intRegs.setReady(di.pdst);
                _stats.rfIntWrites++;
            }
            iq.wakeup(handleOf(di.dstFile, di.pdst));
        }
        if (di.si->traits().isStore)
            lsq.markCompleted(di.lsqIdx);
        if (di.stallsFetch) {
            fetchBlocked = false;
            fetchResumeCycle =
                std::max<std::uint64_t>(fetchResumeCycle, now + 1);
        }
    }
    completions.erase(it);
}

void
Core::issueStage()
{
    static thread_local std::vector<IssueQueue::Candidate> ready;
    iq.collectReady(ready);
    std::array<int, coreNumFuClasses> fuUsed{};
    const int regionAtStart = iq.regionSize();
    int issued = 0;

    for (const auto &cand : ready) {
        if (issued >= cfg.issueWidth)
            break;
        DynInst &di = rob[cand.robIdx];
        const auto &t = di.si->traits();
        const auto fu = static_cast<int>(t.fu);
        // a pipelined unit is busy for one issue slot; a
        // non-pipelined one (divides) holds its unit for the full
        // latency, tracked in fuUnitsBusy
        if (t.fu != FuClass::None &&
            fuUsed[fu] + fuUnitsBusy(fu) >= cfg.fuCounts[fu]) {
            continue;
        }
        if (t.isLoad && lsq.loadBlocked(di.lsqIdx))
            continue;

        int latency = t.latency;
        if (t.isLoad) {
            _stats.loads++;
            if (lsq.loadForwards(di.lsqIdx)) {
                latency = 1;
                _stats.loadForwards++;
            } else {
                latency = mem.dataAccess(di.step.memAddr * 8);
            }
        }
        if (t.pipelined) {
            fuUsed[fu]++;
        } else {
            nonPipedBusy[fu].push_back(
                now + static_cast<std::uint64_t>(latency));
        }
        issued++;
        iq.markIssued(cand.slot);
        if (t.isLoad || t.isStore)
            lsq.markIssued(di.lsqIdx);
        completions[now + static_cast<std::uint64_t>(latency)]
            .push_back(cand.robIdx);

        for (int handle : {di.psrc1, di.psrc2}) {
            if (handle < 0)
                continue;
            if (handle >= 256)
                _stats.rfFpReads++;
            else
                _stats.rfIntReads++;
        }
        _stats.issued++;
        if (regionAtStart - 1 - cand.distFromHead < cfg.iq.bankSize)
            signals.issuedFromYoungestBank++;
    }
    signals.issuedTotal = issued;
}

void
Core::dispatchStage()
{
    int dispatched = 0;
    while (dispatched < cfg.dispatchWidth && !fetchQueue.empty()) {
        DynInst &front = fetchQueue.front();
        if (front.decodeReadyCycle > now)
            break;

        // special NOOPs are stripped here, in the last decode stage,
        // consuming a dispatch slot (paper §5.2.1)
        if (front.si->op == Opcode::Hint) {
            iq.applyHint(front.si->hintValue);
            _stats.hintsApplied++;
            fetchQueue.pop_front();
            dispatched++;
            continue;
        }

        const auto &t = front.si->traits();
        const bool needsIq = t.fu != FuClass::None;

        if (robCount >= cfg.robSize) {
            _stats.dispatchStallRob++;
            break;
        }
        if (ctrl != nullptr && robCount >= ctrl->robLimit()) {
            _stats.dispatchStallLimit++;
            signals.dispatchStalledByLimit = true;
            break;
        }
        if (needsIq && iq.regionFull()) {
            _stats.dispatchStallIqFull++;
            break;
        }
        if (needsIq && ctrl != nullptr &&
            iq.validCount() >= ctrl->iqLimit()) {
            _stats.dispatchStallLimit++;
            signals.dispatchStalledByLimit = true;
            break;
        }
        // Extension scheme: the tag applies when the tagged
        // instruction dispatches, before the range check, so the
        // tagged instruction starts its own region
        if (front.si->tagHint != 0 && !front.hintApplied) {
            iq.applyHint(front.si->tagHint);
            front.hintApplied = true;
            _stats.hintsApplied++;
        }
        if (needsIq && iq.rangeBlocked()) {
            _stats.dispatchStallRange++;
            break;
        }
        if ((t.isLoad || t.isStore) && lsq.full()) {
            _stats.dispatchStallLsq++;
            break;
        }
        int dstFile = -1;
        if (front.si->writesLiveReg())
            dstFile = front.si->dst >= fpRegBase ? 1 : 0;
        if (dstFile == 0 && !intRegs.hasFree()) {
            _stats.dispatchStallRegs++;
            break;
        }
        if (dstFile == 1 && !fpRegs.hasFree()) {
            _stats.dispatchStallRegs++;
            break;
        }

        // rename
        DynInst di = front;
        fetchQueue.pop_front();
        bool ready1 = true;
        bool ready2 = true;
        di.psrc1 = t.readsSrc1 ? sourceHandle(di.si->src1, ready1)
                               : -1;
        di.psrc2 = t.readsSrc2 ? sourceHandle(di.si->src2, ready2)
                               : -1;
        di.dstFile = dstFile;
        if (dstFile >= 0) {
            auto &file = dstFile == 1 ? fpRegs : intRegs;
            const int arch = dstFile == 1
                                 ? di.si->dst - fpRegBase
                                 : di.si->dst;
            const auto [fresh, old] = file.rename(arch);
            di.pdst = fresh;
            di.oldPdst = old;
        }

        const int robIdx = robTail;
        if (t.isLoad || t.isStore)
            di.lsqIdx = lsq.allocate(t.isStore, di.step.memAddr,
                                     robIdx);
        if (t.isStore)
            _stats.stores++;
        if (needsIq) {
            di.iqSlot = iq.dispatch(robIdx, di.psrc1, ready1,
                                    di.psrc2, ready2, di.seq);
        } else {
            di.completed = true; // Nop/Halt: nothing to execute
        }
        rob[robIdx] = di;
        robTail = robTail + 1 == cfg.robSize ? 0 : robTail + 1;
        robCount++;
        dispatched++;
        _stats.dispatched++;
    }
}

void
Core::fetchStage()
{
    if (fetchDone || fetchBlocked || now < fetchResumeCycle ||
        now < icacheReadyCycle) {
        return;
    }
    int fetched = 0;
    while (fetched < cfg.fetchWidth &&
           fetchQueue.size() <
               static_cast<std::size_t>(cfg.fetchQueueSize) &&
           !_exec.halted()) {
        const std::uint64_t pc = pcOfCurrent();
        const std::uint64_t line = pc / cfg.mem.l1i.lineBytes;
        if (line != lastFetchLine) {
            const int latency = mem.instAccess(pc);
            lastFetchLine = line;
            if (latency > 1) {
                icacheReadyCycle =
                    now + static_cast<std::uint64_t>(latency);
                break;
            }
        }

        DynInst di;
        di.step = _exec.step();
        di.si = di.step.inst;
        di.seq = seqCounter++;
        di.pc = di.si->pc;
        di.decodeReadyCycle =
            now + static_cast<std::uint64_t>(cfg.decodeDepth);

        const std::uint64_t resumeBefore = fetchResumeCycle;
        predictControl(di);
        const bool redirected = fetchResumeCycle != resumeBefore;
        const bool taken =
            di.step.taken || di.si->traits().isJump;

        fetchQueue.push_back(di);
        _stats.fetched++;
        fetched++;

        if (_exec.halted())
            fetchDone = true;
        if (di.stallsFetch) {
            fetchBlocked = true;
            break;
        }
        if (redirected || taken)
            break; // cannot fetch past a taken control this cycle
    }
}

void
Core::tick()
{
    signals = ResizeSignals{};
    signals.cycle = now;

    commitStage();
    writebackStage();
    issueStage();
    dispatchStage();
    fetchStage();

    // per-cycle statistics
    iq.tickStats();
    _stats.rfIntLiveSum +=
        static_cast<std::uint64_t>(intRegs.liveRegs());
    _stats.rfIntPoweredBankCycles +=
        static_cast<std::uint64_t>(intRegs.poweredBanks());
    _stats.rfIntBankCycles +=
        static_cast<std::uint64_t>(intRegs.numBanks());
    _stats.rfFpLiveSum +=
        static_cast<std::uint64_t>(fpRegs.liveRegs());
    _stats.rfFpPoweredBankCycles +=
        static_cast<std::uint64_t>(fpRegs.poweredBanks());
    _stats.rfFpBankCycles +=
        static_cast<std::uint64_t>(fpRegs.numBanks());
    _stats.cycles++;

    if (ctrl != nullptr) {
        signals.iqValid = iq.validCount();
        signals.iqRegionLen = iq.regionSize();
        signals.robCount = robCount;
        ctrl->tick(signals);
    }
    now++;
}

std::uint64_t
Core::run(std::uint64_t maxInsts)
{
    const std::uint64_t start = _stats.committed;
    std::uint64_t lastCommitted = start;
    std::uint64_t lastProgress = now;
    while (!coreHalted && _stats.committed - start < maxInsts) {
        tick();
        if (_stats.committed != lastCommitted) {
            lastCommitted = _stats.committed;
            lastProgress = now;
        }
        SIQ_ASSERT(now - lastProgress < 200000,
                   "no commit progress for 200k cycles: deadlock? "
                   "cycle=", now, " committed=", _stats.committed);
    }
    return _stats.committed - start;
}

void
Core::resetStats()
{
    _stats.reset();
    iq.events.reset();
    mem.resetStats();
    _bpred.resetStats();
}

} // namespace siq
