/**
 * @file
 * Interface between the core and hardware resizing heuristics (the
 * comparator techniques of the paper: Folegnani&González and
 * Abella&González). The controller observes per-cycle signals and
 * publishes occupancy limits that dispatch honours; the compiler-hint
 * mechanism is separate (it acts through new_head/max_new_range).
 */

#ifndef SIQ_CPU_RESIZE_HH
#define SIQ_CPU_RESIZE_HH

#include <cstdint>

namespace siq
{

/** Per-cycle observations delivered to a resize controller. */
struct ResizeSignals
{
    std::uint64_t cycle = 0;
    int iqValid = 0;
    int iqRegionLen = 0;
    int robCount = 0;
    int issuedTotal = 0;
    /** Issues whose entry sat in the youngest bank-worth of slots. */
    int issuedFromYoungestBank = 0;
    /** Dispatch was blocked this cycle by the controller's limit. */
    bool dispatchStalledByLimit = false;
};

/** Hardware IQ/ROB occupancy limiter. */
class IqLimitController
{
  public:
    virtual ~IqLimitController() = default;

    /** Called once per simulated cycle. */
    virtual void tick(const ResizeSignals &signals) = 0;

    /** Max valid IQ entries dispatch may maintain. */
    virtual int iqLimit() const = 0;

    /** Max ROB occupancy dispatch may maintain. */
    virtual int robLimit() const = 0;

    /**
     * Cycles until iqLimit()/robLimit() may next change. The core's
     * idle fast-forward (DESIGN.md §12) batches provably-dead cycles;
     * with a controller attached it never jumps further than this, so
     * a limit change always takes effect on exactly the cycle it
     * would in a cycle-by-cycle run. Interval-based resizers return
     * the distance to their interval boundary; the default of 1
     * (limits may move any cycle) keeps any other controller exact.
     */
    virtual std::uint64_t decisionHorizon() const { return 1; }
};

} // namespace siq

#endif // SIQ_CPU_RESIZE_HH
