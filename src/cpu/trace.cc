#include "cpu/trace.hh"

#include <chrono>
#include <limits>

#include "common/logging.hh"

namespace siq
{

CtrlTargets
ctrlTargets(const Program &prog, const StepResult &sr)
{
    CtrlTargets ct;
    if (!sr.halted) {
        ct.actualNextPc =
            prog.procs[sr.nextProc]
                .blocks[sr.nextBlock]
                .insts[static_cast<std::size_t>(sr.nextInstIdx)]
                .pc;
    }
    if (sr.inst->op == Opcode::Call) {
        const BasicBlock &callBlock =
            prog.procs[sr.proc].blocks[sr.block];
        ct.rasPushPc = blockStartPc(prog, sr.proc,
                                    callBlock.fallthrough);
    }
    return ct;
}

FuncTrace::FuncTrace(std::shared_ptr<const Program> prog)
    : _prog(std::move(prog)), exec(*_prog)
{
}

FuncTrace::Window
FuncTrace::window(std::uint64_t idx)
{
    std::lock_guard lock(mu);
    if (idx >= produced)
        produceTo(idx);
    Window w;
    w.begin = (idx / chunkRecords) * chunkRecords;
    w.end = std::min(w.begin + chunkRecords, produced);
    w.base = chunks[idx / chunkRecords].get();
    return w;
}

void
FuncTrace::produceTo(std::uint64_t idx)
{
    SIQ_ASSERT(!exec.halted(),
               "trace record ", idx, " requested past the halt record "
               "(", produced, " produced)");
    const auto t0 = std::chrono::steady_clock::now();
    // batch to the end of the target chunk: the request amortizes
    // the lock and the interpreter's cache warm-up over ~chunkRecords
    // steps instead of paying them per fetch group
    const std::uint64_t target =
        (idx / chunkRecords + 1) * chunkRecords;
    while (produced < target && !exec.halted()) {
        if (produced % chunkRecords == 0) {
            chunks.push_back(
                std::make_unique<TraceRecord[]>(chunkRecords));
            _bytes.fetch_add(chunkRecords * sizeof(TraceRecord),
                             std::memory_order_relaxed);
        }
        const StepResult sr = exec.step();
        const CtrlTargets ct = ctrlTargets(*_prog, sr);
        SIQ_ASSERT(ct.actualNextPc <=
                   std::numeric_limits<std::uint32_t>::max(),
                   "program PCs exceed the trace record's 32-bit "
                   "next-PC field");
        TraceRecord &rec =
            chunks[produced / chunkRecords][produced % chunkRecords];
        rec.si = sr.inst;
        rec.nextPc = static_cast<std::uint32_t>(ct.actualNextPc);
        const auto &t = sr.inst->traits();
        if (t.isLoad || t.isStore)
            rec.aux = sr.memAddr;
        else if (sr.inst->op == Opcode::Call)
            rec.aux = ct.rasPushPc;
        else
            rec.aux = 0;
        rec.flags = static_cast<std::uint8_t>(
            (sr.taken ? traceFlagTaken : 0) |
            (sr.halted ? traceFlagHalted : 0));
        produced++;
    }
    SIQ_ASSERT(produced > idx,
               "trace record ", idx, " requested past the halt record "
               "(", produced, " produced)");
    _produceSeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
}

double
FuncTrace::produceSeconds() const
{
    std::lock_guard lock(mu);
    return _produceSeconds;
}

std::uint64_t
FuncTrace::producedRecords() const
{
    std::lock_guard lock(mu);
    return produced;
}

} // namespace siq
