#include "cpu/bpred.hh"

#include "common/logging.hh"

namespace siq
{

// ------------------------------------------------ DirectionPredictor

DirectionPredictor::DirectionPredictor(std::uint32_t gshareEntries,
                                       std::uint32_t bimodalEntries,
                                       std::uint32_t selectorEntries)
{
    gshare.assign(gshareEntries, 1);   // weakly not-taken
    bimodal.assign(bimodalEntries, 1);
    selector.assign(selectorEntries, 2); // weakly gshare
}

std::uint32_t
DirectionPredictor::counterUpdate(std::uint32_t ctr, bool taken)
{
    if (taken)
        return ctr < 3 ? ctr + 1 : 3;
    return ctr > 0 ? ctr - 1 : 0;
}

bool
DirectionPredictor::predict(std::uint64_t pc) const
{
    const std::uint64_t idx = pc >> 2;
    const auto g = gshare[(idx ^ history) % gshare.size()];
    const auto b = bimodal[idx % bimodal.size()];
    const auto s = selector[idx % selector.size()];
    return (s >= 2 ? g : b) >= 2;
}

void
DirectionPredictor::update(std::uint64_t pc, bool taken)
{
    const std::uint64_t idx = pc >> 2;
    auto &g = gshare[(idx ^ history) % gshare.size()];
    auto &b = bimodal[idx % bimodal.size()];
    auto &s = selector[idx % selector.size()];
    const bool gCorrect = (g >= 2) == taken;
    const bool bCorrect = (b >= 2) == taken;
    if (gCorrect != bCorrect) {
        s = static_cast<std::uint8_t>(counterUpdate(s, gCorrect));
    }
    g = static_cast<std::uint8_t>(counterUpdate(g, taken));
    b = static_cast<std::uint8_t>(counterUpdate(b, taken));
    speculate(taken);
}

void
DirectionPredictor::speculate(bool taken)
{
    history = ((history << 1) | (taken ? 1 : 0)) &
              (gshare.size() - 1);
}

// ------------------------------------------------------------- Btb

Btb::Btb(std::uint32_t numEntries, std::uint32_t assoc) : _assoc(assoc)
{
    SIQ_ASSERT(assoc > 0 && numEntries % assoc == 0);
    entries.assign(numEntries, {});
}

std::uint64_t
Btb::lookup(std::uint64_t pc) const
{
    const std::size_t sets = entries.size() / _assoc;
    const std::size_t set = (pc >> 2) % sets;
    const std::uint64_t tag = (pc >> 2) / sets;
    for (std::size_t w = 0; w < _assoc; w++) {
        const auto &e = entries[set * _assoc + w];
        if (e.valid && e.tag == tag)
            return e.target;
    }
    return 0;
}

void
Btb::update(std::uint64_t pc, std::uint64_t target)
{
    const std::size_t sets = entries.size() / _assoc;
    const std::size_t set = (pc >> 2) % sets;
    const std::uint64_t tag = (pc >> 2) / sets;
    use++;
    std::size_t victim = set * _assoc;
    std::uint64_t lru = ~0ull;
    for (std::size_t w = 0; w < _assoc; w++) {
        auto &e = entries[set * _assoc + w];
        if (e.valid && e.tag == tag) {
            e.target = target;
            e.lastUse = use;
            return;
        }
        const std::uint64_t u = e.valid ? e.lastUse : 0;
        if (u < lru) {
            lru = u;
            victim = set * _assoc + w;
        }
    }
    entries[victim] = {tag, target, use, true};
}

// ------------------------------------------------------------- Ras

Ras::Ras(std::uint32_t numEntries)
{
    stack.assign(numEntries, 0);
}

void
Ras::push(std::uint64_t returnPc)
{
    if (top < stack.size()) {
        stack[top++] = returnPc;
    } else {
        // overflow: shift (oldest entry lost)
        for (std::size_t i = 1; i < stack.size(); i++)
            stack[i - 1] = stack[i];
        stack.back() = returnPc;
    }
}

std::uint64_t
Ras::pop()
{
    if (top == 0)
        return 0;
    return stack[--top];
}

void
Ras::save(Snapshot &out) const
{
    out.stack = stack;
    out.top = top;
}

void
Ras::restore(const Snapshot &snap)
{
    SIQ_ASSERT(snap.stack.size() == stack.size() &&
               snap.top <= stack.size());
    stack = snap.stack;
    top = snap.top;
}

// ----------------------------------------------------------- Bpred

Bpred::Bpred(const BpredConfig &config)
    : dir(config.gshareEntries, config.bimodalEntries,
          config.selectorEntries),
      _btb(config.btbEntries, config.btbAssoc),
      _ras(config.rasEntries)
{
}

bool
Bpred::predictDirection(std::uint64_t pc) const
{
    _lookups++;
    return dir.predict(pc);
}

void
Bpred::updateDirection(std::uint64_t pc, bool taken)
{
    dir.update(pc, taken);
}

bool
Bpred::speculateDirection(std::uint64_t pc)
{
    const bool taken = dir.predict(pc);
    dir.speculate(taken);
    return taken;
}

std::uint64_t
Bpred::btbLookup(std::uint64_t pc) const
{
    return _btb.lookup(pc);
}

void
Bpred::btbUpdate(std::uint64_t pc, std::uint64_t target)
{
    _btb.update(pc, target);
}

void
Bpred::rasPush(std::uint64_t returnPc)
{
    _ras.push(returnPc);
}

std::uint64_t
Bpred::rasPop()
{
    return _ras.pop();
}

void
Bpred::save(BpredSnapshot &out) const
{
    out.history = dir.historyBits();
    _ras.save(out.ras);
}

void
Bpred::restore(const BpredSnapshot &snap)
{
    dir.setHistory(snap.history);
    _ras.restore(snap.ras);
}

} // namespace siq
