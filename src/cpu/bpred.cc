#include "cpu/bpred.hh"

#include "common/logging.hh"

namespace siq
{

Bpred::Bpred(const BpredConfig &config) : _config(config)
{
    gshare.assign(config.gshareEntries, 1);   // weakly not-taken
    bimodal.assign(config.bimodalEntries, 1);
    selector.assign(config.selectorEntries, 2); // weakly gshare
    btb.assign(config.btbEntries, {});
    ras.assign(config.rasEntries, 0);
}

std::uint32_t
Bpred::counterUpdate(std::uint32_t ctr, bool taken)
{
    if (taken)
        return ctr < 3 ? ctr + 1 : 3;
    return ctr > 0 ? ctr - 1 : 0;
}

bool
Bpred::predictDirection(std::uint64_t pc) const
{
    _lookups++;
    const std::uint64_t idx = pc >> 2;
    const auto g = gshare[(idx ^ history) % gshare.size()];
    const auto b = bimodal[idx % bimodal.size()];
    const auto s = selector[idx % selector.size()];
    return (s >= 2 ? g : b) >= 2;
}

void
Bpred::updateDirection(std::uint64_t pc, bool taken)
{
    const std::uint64_t idx = pc >> 2;
    auto &g = gshare[(idx ^ history) % gshare.size()];
    auto &b = bimodal[idx % bimodal.size()];
    auto &s = selector[idx % selector.size()];
    const bool gCorrect = (g >= 2) == taken;
    const bool bCorrect = (b >= 2) == taken;
    if (gCorrect != bCorrect) {
        s = static_cast<std::uint8_t>(counterUpdate(s, gCorrect));
    }
    g = static_cast<std::uint8_t>(counterUpdate(g, taken));
    b = static_cast<std::uint8_t>(counterUpdate(b, taken));
    history = ((history << 1) | (taken ? 1 : 0)) &
              (gshare.size() - 1);
}

std::uint64_t
Bpred::btbLookup(std::uint64_t pc) const
{
    const std::size_t sets = btb.size() / _config.btbAssoc;
    const std::size_t set = (pc >> 2) % sets;
    const std::uint64_t tag = (pc >> 2) / sets;
    for (std::size_t w = 0; w < _config.btbAssoc; w++) {
        const auto &e = btb[set * _config.btbAssoc + w];
        if (e.valid && e.tag == tag)
            return e.target;
    }
    return 0;
}

void
Bpred::btbUpdate(std::uint64_t pc, std::uint64_t target)
{
    const std::size_t sets = btb.size() / _config.btbAssoc;
    const std::size_t set = (pc >> 2) % sets;
    const std::uint64_t tag = (pc >> 2) / sets;
    btbUse++;
    std::size_t victim = set * _config.btbAssoc;
    std::uint64_t lru = ~0ull;
    for (std::size_t w = 0; w < _config.btbAssoc; w++) {
        auto &e = btb[set * _config.btbAssoc + w];
        if (e.valid && e.tag == tag) {
            e.target = target;
            e.lastUse = btbUse;
            return;
        }
        const std::uint64_t use = e.valid ? e.lastUse : 0;
        if (use < lru) {
            lru = use;
            victim = set * _config.btbAssoc + w;
        }
    }
    btb[victim] = {tag, target, btbUse, true};
}

void
Bpred::rasPush(std::uint64_t returnPc)
{
    if (rasTop < ras.size()) {
        ras[rasTop++] = returnPc;
    } else {
        // overflow: shift (oldest entry lost)
        for (std::size_t i = 1; i < ras.size(); i++)
            ras[i - 1] = ras[i];
        ras.back() = returnPc;
    }
}

std::uint64_t
Bpred::rasPop()
{
    if (rasTop == 0)
        return 0;
    return ras[--rasTop];
}

} // namespace siq
