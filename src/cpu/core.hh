/**
 * @file
 * The out-of-order superscalar core (paper §3 / Table 1).
 *
 * Execute-at-fetch model: every fetched instruction is functionally
 * executed immediately (ExecContext), so values, addresses and branch
 * outcomes are oracle-known; the pipeline then models timing. On a
 * mispredicted branch, fetch stalls until the branch executes and
 * resumes on the correct path the following cycle (wrong-path
 * instructions are not fetched — a standard academic simplification
 * that is identical across all configurations; the penalty still
 * depends on IQ sizing because resolution time is simulated).
 *
 * Per-cycle stage order (reverse pipeline order so same-cycle
 * wakeup+select works as in the paper's figure 1, where producers
 * complete and consumers issue in the same cycle):
 *   commit -> writeback -> select/issue -> dispatch -> fetch.
 */

#ifndef SIQ_CPU_CORE_HH
#define SIQ_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "cpu/bpred.hh"
#include "cpu/iq.hh"
#include "cpu/lsq.hh"
#include "cpu/regfile.hh"
#include "cpu/resize.hh"
#include "ir/exec.hh"
#include "ir/program.hh"
#include "mem/cache.hh"

namespace siq
{

constexpr int coreNumFuClasses = static_cast<int>(FuClass::NumClasses);

/** Full machine configuration, defaults per Table 1. */
struct CoreConfig
{
    int fetchWidth = 8;
    int dispatchWidth = 8;
    int issueWidth = 8;
    int commitWidth = 8;
    int decodeDepth = 3;     ///< fetch-to-dispatch latency in cycles
    int fetchQueueSize = 32;
    int robSize = 128;
    IqConfig iq;
    LsqConfig lsq;
    RegFileConfig intRegs{112, 32, 8};
    RegFileConfig fpRegs{112, 32, 8};
    /** Units per FU class, indexed by FuClass. */
    std::array<int, coreNumFuClasses> fuCounts = {
        1 << 20, 6, 3, 4, 2, 2,
    };
    BpredConfig bpred;
    MemHierarchyConfig mem;
};

/** Aggregate core statistics (reset at end of warm-up). */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;
    std::uint64_t fetched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;
    std::uint64_t hintsApplied = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t frontRedirects = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t dispatchStallRob = 0;
    std::uint64_t dispatchStallIqFull = 0;
    std::uint64_t dispatchStallRange = 0;
    std::uint64_t dispatchStallLimit = 0; ///< adaptive controller
    std::uint64_t dispatchStallRegs = 0;
    std::uint64_t dispatchStallLsq = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t loadForwards = 0;
    std::uint64_t rfIntReads = 0;
    std::uint64_t rfIntWrites = 0;
    std::uint64_t rfFpReads = 0;
    std::uint64_t rfFpWrites = 0;
    std::uint64_t rfIntLiveSum = 0;
    std::uint64_t rfIntPoweredBankCycles = 0;
    std::uint64_t rfIntBankCycles = 0;
    std::uint64_t rfFpLiveSum = 0;
    std::uint64_t rfFpPoweredBankCycles = 0;
    std::uint64_t rfFpBankCycles = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committed) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    void
    reset()
    {
        *this = CoreStats{};
    }

    /** Bit-exact comparison (sweep-engine determinism checks). */
    bool operator==(const CoreStats &) const = default;
};

/** One in-flight instruction. */
struct DynInst
{
    const StaticInst *si = nullptr;
    std::uint64_t seq = 0;
    std::uint64_t pc = 0;
    StepResult step;
    int dstFile = -1; ///< 0 int, 1 fp, -1 none
    int pdst = -1;
    int oldPdst = -1;
    int psrc1 = -1; ///< handle: file*256 + phys
    int psrc2 = -1;
    int iqSlot = -1;
    int lsqIdx = -1;
    std::uint64_t decodeReadyCycle = 0;
    bool completed = false;
    bool hintApplied = false;
    bool stallsFetch = false; ///< fetch resumes when this completes
};

/** The cycle-level core. */
class Core
{
  public:
    /**
     * @param prog finalized program (hints already inserted, if any)
     * @param config machine parameters
     * @param controller optional hardware resize heuristic (owned by
     *        the caller; pass nullptr for the baseline and the
     *        compiler-hint configurations)
     */
    Core(const Program &prog, const CoreConfig &config,
         IqLimitController *controller = nullptr);

    /** The core keeps a reference: the program must outlive it. */
    Core(Program &&, const CoreConfig &,
         IqLimitController * = nullptr) = delete;

    /**
     * Run until the program halts or @p maxInsts more instructions
     * commit. @return instructions committed by this call.
     */
    std::uint64_t run(std::uint64_t maxInsts);

    /** Advance one cycle. */
    void tick();

    bool done() const { return coreHalted; }

    /** Clear all measurement state (end of warm-up). */
    void resetStats();

    const CoreStats &stats() const { return _stats; }
    const IqEventCounts &iqEvents() const { return iq.events; }
    const IssueQueue &issueQueue() const { return iq; }
    const RegFile &intRegFile() const { return intRegs; }
    const RegFile &fpRegFile() const { return fpRegs; }
    MemHierarchy &memory() { return mem; }
    Bpred &bpred() { return _bpred; }
    const ExecContext &exec() const { return _exec; }
    std::uint64_t cycle() const { return now; }

  private:
    void commitStage();
    void writebackStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    std::uint64_t pcOfCurrent() const;
    std::uint64_t blockStartPc(int proc, int block) const;
    void predictControl(DynInst &di);
    int sourceHandle(int archReg, bool &ready) const;
    /** Units of @p fu still held by non-pipelined ops (prunes). */
    int fuUnitsBusy(int fu);

    const Program &prog;
    CoreConfig cfg;
    IqLimitController *ctrl;

    ExecContext _exec;
    MemHierarchy mem;
    Bpred _bpred;
    IssueQueue iq;
    Lsq lsq;
    RegFile intRegs;
    RegFile fpRegs;

    std::vector<DynInst> rob;
    int robHead = 0;
    int robTail = 0;
    int robCount = 0;

    std::deque<DynInst> fetchQueue;
    std::map<std::uint64_t, std::vector<int>> completions;

    std::uint64_t now = 0;
    std::uint64_t seqCounter = 0;
    bool fetchBlocked = false;       ///< waiting on a mispredict
    std::uint64_t fetchResumeCycle = 0;
    std::uint64_t icacheReadyCycle = 0;
    std::uint64_t lastFetchLine = ~0ull;
    bool fetchDone = false; ///< program fully fetched (halt seen)
    bool coreHalted = false;

    // busy-until cycles of units held by in-flight non-pipelined ops
    std::array<std::vector<std::uint64_t>, coreNumFuClasses>
        nonPipedBusy;

    // per-cycle signals for the resize controller
    ResizeSignals signals;

    CoreStats _stats;
};

} // namespace siq

#endif // SIQ_CPU_CORE_HH
