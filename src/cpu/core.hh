/**
 * @file
 * The out-of-order superscalar core (paper §3 / Table 1).
 *
 * Execute-at-fetch model: every fetched instruction is functionally
 * executed immediately (ExecContext), so values, addresses and branch
 * outcomes are oracle-known; the pipeline then models timing. On a
 * mispredicted branch, the default (oracle) front end stalls fetch
 * until the branch executes and resumes on the correct path the
 * following cycle (wrong-path instructions are not fetched — a
 * standard academic simplification that is identical across all
 * configurations; the penalty still depends on IQ sizing because
 * resolution time is simulated).
 *
 * With CoreConfig::specFrontEnd the front end instead keeps fetching
 * down the predicted path after a mispredict (DESIGN.md §14):
 * wrong-path instructions are functionally inert but rename, occupy
 * fetch/IQ/ROB/LSQ slots, issue and pollute the caches; when the
 * mispredicted branch completes, everything younger is squashed and
 * the checkpointed rename maps, free lists and predictor history are
 * restored. The correct-path instruction stream (interpreter or
 * trace cursor) is never advanced by wrong-path fetch, so
 * architectural results are unchanged — only timing and power see
 * the speculation.
 *
 * Per-cycle stage order (reverse pipeline order so same-cycle
 * wakeup+select works as in the paper's figure 1, where producers
 * complete and consumers issue in the same cycle):
 *   commit -> writeback -> select/issue -> dispatch -> fetch.
 *
 * Hot-path structure (DESIGN.md §9): completion events live in a
 * calendar wheel (CompletionWheel) instead of an ordered map, the
 * fetch queue is a fixed ring, per-tick scratch vectors are reusable
 * member arenas, and the state the issue/writeback stages touch per
 * cycle is split into dense ROB-parallel arrays (RobHot + a completed
 * flag) so steady-state ticking allocates nothing and walks dense
 * memory. All architectural counters are byte-identical to the
 * pre-wheel implementation (tests/test_determinism_pin.cc).
 */

#ifndef SIQ_CPU_CORE_HH
#define SIQ_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cpu/bpred.hh"
#include "cpu/iq.hh"
#include "cpu/lsq.hh"
#include "cpu/regfile.hh"
#include "cpu/resize.hh"
#include "cpu/trace.hh"
#include "ir/exec.hh"
#include "ir/program.hh"
#include "mem/cache.hh"

namespace siq
{

constexpr int coreNumFuClasses = static_cast<int>(FuClass::NumClasses);

/**
 * Physical-register handle packing: handle = file * regHandleStride
 * + phys (int file 0, fp file 1). Every consumer of the packed form
 * — the writeback file split, the RF-read accounting, and the IQ's
 * wake-up waiter index (sized 2 * regHandleStride) — relies on
 * phys < regHandleStride, which the Core constructor asserts against
 * both register-file configurations.
 */
constexpr int regHandleStride = 256;

/** Full machine configuration, defaults per Table 1. */
struct CoreConfig
{
    int fetchWidth = 8;
    int dispatchWidth = 8;
    int issueWidth = 8;
    int commitWidth = 8;
    int decodeDepth = 3;     ///< fetch-to-dispatch latency in cycles
    int fetchQueueSize = 32;
    int robSize = 128;
    IqConfig iq;
    LsqConfig lsq;
    RegFileConfig intRegs{112, 32, 8};
    RegFileConfig fpRegs{112, 32, 8};
    /** Units per FU class, indexed by FuClass. */
    std::array<int, coreNumFuClasses> fuCounts = {
        1 << 20, 6, 3, 4, 2, 2,
    };
    BpredConfig bpred;
    MemHierarchyConfig mem;
    /**
     * Speculative front end: fetch down predicted paths after a
     * mispredict and squash at resolution instead of stalling fetch.
     * Off by default — the oracle front end's counters are pinned by
     * the determinism digest (tests/test_determinism_pin.cc).
     */
    bool specFrontEnd = false;
};

/** Aggregate core statistics (reset at end of warm-up). */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;
    std::uint64_t fetched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;
    std::uint64_t hintsApplied = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t frontRedirects = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t dispatchStallRob = 0;
    std::uint64_t dispatchStallIqFull = 0;
    std::uint64_t dispatchStallRange = 0;
    std::uint64_t dispatchStallLimit = 0; ///< adaptive controller
    std::uint64_t dispatchStallRegs = 0;
    std::uint64_t dispatchStallLsq = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t loadForwards = 0;
    std::uint64_t rfIntReads = 0;
    std::uint64_t rfIntWrites = 0;
    std::uint64_t rfFpReads = 0;
    std::uint64_t rfFpWrites = 0;
    std::uint64_t rfIntLiveSum = 0;
    std::uint64_t rfIntPoweredBankCycles = 0;
    std::uint64_t rfIntBankCycles = 0;
    std::uint64_t rfFpLiveSum = 0;
    std::uint64_t rfFpPoweredBankCycles = 0;
    std::uint64_t rfFpBankCycles = 0;
    /// @name Speculative-front-end counters (zero in oracle mode).
    /// Wrong-path work is kept out of the architectural counters
    /// above (fetched/dispatched/issued/loads/stores count only the
    /// correct path) but does contribute to the power-model activity
    /// counters (RF reads/writes, IQ events, cache accesses) — that
    /// activity is exactly what speculation costs.
    /// @{
    std::uint64_t wrongPathFetched = 0;
    std::uint64_t wrongPathDispatched = 0;
    std::uint64_t wrongPathIssued = 0;
    std::uint64_t squashes = 0;       ///< resolved mispredict flushes
    std::uint64_t squashCycles = 0;   ///< mispredict fetch→resolution
    std::uint64_t squashedInsts = 0;  ///< pipeline entries flushed
    /// @}

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committed) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    void
    reset()
    {
        *this = CoreStats{};
    }

    /** Bit-exact comparison (sweep-engine determinism checks). */
    bool operator==(const CoreStats &) const = default;
};

/** One in-flight instruction between fetch and dispatch (a slot of
 *  the fetch ring; the ROB keeps only RobCold + the dense arrays). */
struct DynInst
{
    const StaticInst *si = nullptr;
    std::uint64_t seq = 0;
    std::uint64_t pc = 0;
    StepResult step;
    int dstFile = -1; ///< 0 int, 1 fp, -1 none
    int pdst = -1;
    int oldPdst = -1;
    int psrc1 = -1; ///< handle: file*256 + phys
    int psrc2 = -1;
    int lsqIdx = -1;
    std::uint64_t decodeReadyCycle = 0;
    bool hintApplied = false;
    bool stallsFetch = false; ///< fetch resumes when this completes
    bool wrongPath = false;   ///< speculative mode: fetched past a
                              ///< mispredict; squashed at resolution
};

/** What the commit stage still needs of a ROB entry after dispatch
 *  (issue/writeback run entirely off RobHot/robCompleted). */
struct RobCold
{
    const StaticInst *si = nullptr;
    std::int32_t oldPdst = -1;
    std::int8_t dstFile = -1;
};

/**
 * Calendar/event wheel for completion events (DESIGN.md §9.1): a
 * power-of-two ring of per-slot vectors replacing the old
 * `std::map<cycle, std::vector<robIdx>>`. schedule() appends to slot
 * `cycle & mask`; popDue() drains the current cycle's slot.
 *
 * Each entry stores its absolute due cycle, so latencies beyond the
 * horizon are not an error: the entry survives intermediate visits of
 * its slot (popDue keeps not-yet-due entries, order preserved) and
 * pops on the correct lap. All events of one cycle land in one slot
 * in scheduling order — exactly the order the map's per-cycle vector
 * had — so the swap is byte-identical for every architectural
 * counter. Slot vectors shrink by resize(), keeping their capacity:
 * steady-state operation never allocates.
 *
 * Squash invalidation (speculative front end): each event carries the
 * generation of its ROB entry at scheduling time and popDue() hands
 * it back with the index. The writeback stage compares it against the
 * entry's current generation — a squash bumps the generation of every
 * flushed entry, so stale events are discarded exactly when due, with
 * no eager removal touching the per-cycle path. Validating at
 * consumption (not inside popDue) also covers a squash that happens
 * mid-writeback: events of the same cycle popped before the squash
 * ran are re-checked against the bumped generations. The oracle front
 * end never bumps a generation, making the mechanism byte-invisible
 * there. nextDue() may report a stale event's cycle; the idle
 * fast-forward then wakes to a cycle where nothing happens, which is
 * safe (it re-proves idleness and jumps again).
 */
class CompletionWheel
{
  public:
    /** Size the ring to cover @p maxLatency within one lap
     *  (bit_ceil(maxLatency + 2) slots, capped at 4096). */
    void init(int maxLatency);

    void
    schedule(std::uint64_t cycle, int robIdx, std::uint32_t gen)
    {
        slots[cycle & mask].push_back({cycle, robIdx, gen});
        inFlight++;
    }

    /** A due event: the ROB index plus the generation it was
     *  scheduled under (the consumer validates against the current
     *  generation before acting). */
    struct Completion
    {
        int robIdx;
        std::uint32_t gen;
    };

    /** Move every event due at @p now into @p out (cleared first),
     *  in scheduling order; later-lap events stay. */
    void popDue(std::uint64_t now, std::vector<Completion> &out);

    int numSlots() const { return static_cast<int>(slots.size()); }

    bool empty() const { return inFlight == 0; }

    /**
     * Earliest due cycle of any in-flight event (all are >= @p now:
     * events are scheduled in the future and popped exactly on their
     * cycle). Returns ~0 when the wheel is empty. O(slots + events);
     * only called by the idle fast-forward, never on the per-cycle
     * path.
     */
    std::uint64_t nextDue(std::uint64_t now) const;

  private:
    struct Event
    {
        std::uint64_t cycle;
        int robIdx;
        std::uint32_t gen;
    };

    std::vector<std::vector<Event>> slots;
    std::uint64_t mask = 0;
    std::uint64_t inFlight = 0;
};

/// @name RobHot flag bits.
/// @{
constexpr std::uint8_t robFlagPipelined = 1 << 0;
constexpr std::uint8_t robFlagLoad = 1 << 1;
constexpr std::uint8_t robFlagStore = 1 << 2;
constexpr std::uint8_t robFlagStallsFetch = 1 << 3;
/** Speculative mode: fetched past a mispredict, never commits. */
constexpr std::uint8_t robFlagWrongPath = 1 << 4;
/// @}

/**
 * Dense per-ROB-entry state for the per-cycle stages (structure of
 * arrays, DESIGN.md §9.2): everything select/issue and writeback
 * need, packed into 32 bytes so they never touch the cold DynInst
 * array. Filled at dispatch; read by issue (FU class, latency,
 * flags, LSQ index, memory address, source handles for RF-read
 * accounting), writeback (destination handle, store/stalls-fetch
 * flags) and commit (memory address, LSQ index).
 */
struct RobHot
{
    std::uint64_t memAddr = 0; ///< word address for loads/stores
    std::int32_t lsqIdx = -1;
    /** Packed destination: handleOf(dstFile, pdst), -1 if none. */
    std::int32_t pdstHandle = -1;
    std::int32_t psrc1 = -1;
    std::int32_t psrc2 = -1;
    std::int16_t latency = 1;
    std::int8_t fu = 0; ///< static_cast<int8_t>(FuClass)
    std::uint8_t flags = 0;
};

/** The cycle-level core. */
class Core
{
  public:
    /**
     * @param prog finalized program (hints already inserted, if any)
     * @param config machine parameters
     * @param controller optional hardware resize heuristic (owned by
     *        the caller; pass nullptr for the baseline and the
     *        compiler-hint configurations)
     * @param trace optional functional trace of an identical program
     *        (equal contentHash). When given, the fetch stage replays
     *        trace records instead of stepping the interpreter — no
     *        functional register file or memory image is built, every
     *        architectural counter stays byte-identical, and exec()
     *        must not be called. The trace must outlive the core.
     */
    Core(const Program &prog, const CoreConfig &config,
         IqLimitController *controller = nullptr,
         FuncTrace *trace = nullptr);

    /** The core keeps a reference: the program must outlive it. */
    Core(Program &&, const CoreConfig &,
         IqLimitController * = nullptr, FuncTrace * = nullptr) = delete;

    /**
     * Run until the program halts or @p maxInsts more instructions
     * commit. @return instructions committed by this call.
     */
    std::uint64_t run(std::uint64_t maxInsts);

    /** Advance one cycle. */
    void tick();

    bool done() const { return coreHalted; }

    /** Clear all measurement state (end of warm-up). */
    void resetStats();

    const CoreStats &stats() const { return _stats; }
    const IqEventCounts &iqEvents() const { return iq.events; }
    const IssueQueue &issueQueue() const { return iq; }
    const RegFile &intRegFile() const { return intRegs; }
    const RegFile &fpRegFile() const { return fpRegs; }
    MemHierarchy &memory() { return mem; }
    Bpred &bpred() { return _bpred; }
    /** The interpreter's architectural state. Interpreting cores
     *  only — a replaying core has none. */
    const ExecContext &exec() const { return *_exec; }
    std::uint64_t cycle() const { return now; }

    /// @name Occupancy accessors (squash-recovery invariant tests).
    /// @{
    int robEntries() const { return robCount; }
    int fetchQueueEntries() const { return fqCount; }
    const Lsq &loadStoreQueue() const { return lsq; }
    /// @}

    /**
     * Deep consistency audit of the rename/free-list/queue state
     * (test support; SIQ_ASSERTs on violation). Verifies that the
     * registers reachable from the rename maps plus the pending
     * oldPdst releases of in-flight ROB entries account for exactly
     * the allocated (non-free) population of each register file, and
     * that ROB/fetch-queue ring counters are self-consistent. Called
     * by the squash-recovery tests after every squash; cheap enough
     * to call per-tick in Debug test runs.
     */
    void auditArchState() const;

  private:
    void commitStage();
    void writebackStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    /**
     * Idle fast-forward (DESIGN.md §12): when no stage can act at the
     * current cycle, jump straight to the earliest cycle at which one
     * can — batching the per-cycle statistics and the one dispatch
     * stall counter the skipped cycles would have accumulated, and
     * ticking the resize controller through them — instead of
     * walking every stage through each dead cycle. Every
     * architectural counter stays byte-identical to the
     * cycle-by-cycle run (tests/test_determinism_pin.cc). No-op
     * unless idleness is structurally proven.
     */
    void maybeFastForward();

    /** The functional stream is exhausted (interpreter halted, or the
     *  replay cursor consumed the halt record). */
    bool
    streamHalted() const
    {
        return replay != nullptr ? replayHalted : _exec->halted();
    }

    void predictControl(DynInst &di, std::uint64_t actualNextPc,
                        std::uint64_t rasPushPc);

    /// @name Speculative front end (cfg.specFrontEnd; DESIGN.md §14).
    /// @{
    /** Static location of one instruction, for wrong-path fetch. */
    struct PcLoc
    {
        const StaticInst *si = nullptr;
        int proc = 0;
        int block = 0;
        int instIdx = 0;
    };

    /** Arm wrong-path fetch at @p startPc (0 gates the front end)
     *  after a mispredicted branch was fetched. */
    void armWrongPath(std::uint64_t startPc);
    /** Fetch stage while wrong-path fetch is active. */
    void wrongPathFetchStage();
    /** Predicted successor of a wrong-path instruction: where fetch
     *  goes next (0: the front end must gate — misfetch, dead end or
     *  a halt) and whether it ends the fetch group (taken control). */
    struct WpNext
    {
        std::uint64_t pc = 0;
        bool taken = false;
    };
    WpNext wrongPathNextPc(const PcLoc &loc);
    /** Deterministic synthetic word address for wrong-path memory
     *  ops (their oracle addresses don't exist). */
    std::uint64_t wrongPathMemAddr(std::uint64_t pc) const;
    /** Flush everything younger than the resolved mispredicted
     *  branch and restore the checkpointed front-end state. */
    void squashWrongPath();
    /// @}
    int sourceHandle(int archReg, bool &ready) const;
    /** Units of @p fu still held by non-pipelined ops; the pruned
     *  count is memoized per cycle (prunes once, not per issue
     *  candidate). */
    int fuUnitsBusy(int fu);
    /** Record a non-pipelined issue holding @p fu until @p until. */
    void noteNonPipedIssue(int fu, std::uint64_t until);

    /** Pop the fetch-queue head slot (data stays valid until a later
     *  fetch overwrites it). */
    void
    fqPop()
    {
        fqHead = fqHead + 1 == cfg.fetchQueueSize ? 0 : fqHead + 1;
        fqCount--;
    }

    const Program &prog;
    CoreConfig cfg;
    IqLimitController *ctrl;

    /** Functional source: the interpreter (direct mode) or a trace
     *  cursor (replay mode); exactly one is active. */
    std::optional<ExecContext> _exec;
    FuncTrace *replay;
    TraceCursor replayCur;
    std::uint64_t replayIdx = 0;
    bool replayHalted = false;

    MemHierarchy mem;
    Bpred _bpred;
    IssueQueue iq;
    Lsq lsq;
    RegFile intRegs;
    RegFile fpRegs;

    std::vector<RobCold> rob;
    /** ROB-parallel dense arrays (§9.2). */
    std::vector<RobHot> robHot;
    std::vector<std::uint8_t> robCompleted;
    /** Per-entry generation for wheel-event invalidation at squash
     *  (never bumped in oracle mode). */
    std::vector<std::uint32_t> robGen;
    int robHead = 0;
    int robTail = 0;
    int robCount = 0;

    /** Fetch queue: fixed ring of cfg.fetchQueueSize DynInst slots. */
    std::vector<DynInst> fetchQueue;
    int fqHead = 0;
    int fqTail = 0;
    int fqCount = 0;

    CompletionWheel wheel;

    std::uint64_t now = 0;
    std::uint64_t seqCounter = 0;
    bool fetchBlocked = false;       ///< waiting on a mispredict
    std::uint64_t fetchResumeCycle = 0;
    std::uint64_t icacheReadyCycle = 0;
    std::uint64_t lastFetchLine = ~0ull;
    bool fetchDone = false; ///< program fully fetched (halt seen)
    bool coreHalted = false;

    /** PC → static location, built once at construction when the
     *  speculative front end is enabled (wrong-path fetch resolves
     *  predicted targets against it). */
    std::unordered_map<std::uint64_t, PcLoc> pcIndex;
    /** A mispredicted branch is in flight; fetch follows wpPc. */
    bool wpActive = false;
    /** Front end gated by a misfetch (empty RAS, cold BTB, dead
     *  end); cleared only by the squash. */
    bool wpStalled = false;
    std::uint64_t wpPc = 0;
    /**
     * Checkpoint for squash recovery. Front-end state (predictor
     * history, RAS, arm cycle) is captured when the mispredicted
     * branch is fetched; rename maps, its ROB slot and the IQ tail
     * when it dispatches — wrong-path instructions can only dispatch
     * after it, so the maps are exact at that boundary. At most one
     * checkpoint is ever live: mispredicts are detected at
     * correct-path fetch, which is paused while wrong-path fetch
     * runs (wrong-path branches never resolve, so they cannot nest).
     */
    struct SquashCheckpoint
    {
        std::uint64_t armCycle = 0;
        int branchRobIdx = -1; ///< -1 until the branch dispatches
        std::vector<int> intMap;
        std::vector<int> fpMap;
        BpredSnapshot bpred;
    };
    SquashCheckpoint ckpt;

    // busy-until cycles of units held by in-flight non-pipelined ops,
    // with a per-cycle memoized pruned count
    std::array<std::vector<std::uint64_t>, coreNumFuClasses>
        nonPipedBusy;
    std::array<int, coreNumFuClasses> nonPipedCount{};
    std::array<std::uint64_t, coreNumFuClasses> nonPipedPruned{};

    /** Reusable per-tick scratch arenas (cleared by index reset). */
    std::vector<IssueQueue::Candidate> readyScratch;
    std::vector<CompletionWheel::Completion> wbScratch;

    // per-cycle signals for the resize controller
    ResizeSignals signals;

    CoreStats _stats;
};

} // namespace siq

#endif // SIQ_CPU_CORE_HH
