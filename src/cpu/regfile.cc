#include "cpu/regfile.hh"

namespace siq
{

RegFile::RegFile(const RegFileConfig &config) : _config(config)
{
    SIQ_ASSERT(config.numPhys > config.numArch,
               "need rename headroom");
    SIQ_ASSERT(config.numPhys % config.bankSize == 0,
               "banks must tile the file");
    _numBanks = config.numPhys / config.bankSize;
    mapTable.resize(config.numArch);
    readyBit.assign(config.numPhys, false);
    bankLive.assign(_numBanks, 0);

    // arch reg i starts mapped to phys i, value available
    for (int i = 0; i < config.numArch; i++) {
        mapTable[i] = i;
        readyBit[i] = true;
        bankLive[i / config.bankSize]++;
        _liveRegs++;
    }
    for (int p = config.numArch; p < config.numPhys; p++)
        freeList.push(p);
}

std::pair<int, int>
RegFile::rename(int archReg)
{
    SIQ_ASSERT(!freeList.empty(), "rename with empty free list");
    const int fresh = freeList.top();
    freeList.pop();
    const int old = mapTable[archReg];
    mapTable[archReg] = fresh;
    readyBit[fresh] = false;
    bankLive[fresh / _config.bankSize]++;
    _liveRegs++;
    return {fresh, old};
}

void
RegFile::release(int phys)
{
    SIQ_ASSERT(phys >= 0 && phys < _config.numPhys, "bad release");
    readyBit[phys] = false;
    bankLive[phys / _config.bankSize]--;
    SIQ_ASSERT(bankLive[phys / _config.bankSize] >= 0,
               "bank liveness underflow");
    _liveRegs--;
    freeList.push(phys);
}

int
RegFile::poweredBanks() const
{
    int n = 0;
    for (int live : bankLive)
        n += live > 0 ? 1 : 0;
    return n;
}

} // namespace siq
