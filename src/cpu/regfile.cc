#include "cpu/regfile.hh"

#include <bit>

namespace siq
{

RegFile::RegFile(const RegFileConfig &config) : _config(config)
{
    SIQ_ASSERT(config.numPhys > config.numArch,
               "need rename headroom");
    SIQ_ASSERT(config.numPhys % config.bankSize == 0,
               "banks must tile the file");
    _numBanks = config.numPhys / config.bankSize;
    mapTable.resize(config.numArch);
    readyBit.assign(config.numPhys, false);
    bankLive.assign(_numBanks, 0);

    // arch reg i starts mapped to phys i, value available
    for (int i = 0; i < config.numArch; i++) {
        mapTable[i] = i;
        readyBit[i] = true;
        if (bankLive[i / config.bankSize]++ == 0)
            _poweredBanks++;
        _liveRegs++;
    }
    freeMask.assign((static_cast<std::size_t>(config.numPhys) + 63) /
                        64,
                    0);
    for (int p = config.numArch; p < config.numPhys; p++) {
        freeMask[static_cast<std::size_t>(p) / 64] |=
            std::uint64_t{1} << (p % 64);
        freeCount++;
    }
}

std::pair<int, int>
RegFile::rename(int archReg)
{
    SIQ_ASSERT(freeCount > 0, "rename with empty free list");
    // lowest free physical register — the min-heap allocation order,
    // found by first-set-bit scan
    int fresh = -1;
    for (std::size_t w = 0; w < freeMask.size(); w++) {
        if (freeMask[w] != 0) {
            const int bit = std::countr_zero(freeMask[w]);
            fresh = static_cast<int>(w) * 64 + bit;
            freeMask[w] &= freeMask[w] - 1; // clear lowest set bit
            freeCount--;
            break;
        }
    }
    const int old = mapTable[archReg];
    mapTable[archReg] = fresh;
    readyBit[fresh] = false;
    if (bankLive[fresh / _config.bankSize]++ == 0)
        _poweredBanks++;
    _liveRegs++;
    return {fresh, old};
}

void
RegFile::release(int phys)
{
    SIQ_ASSERT(phys >= 0 && phys < _config.numPhys, "bad release");
    readyBit[phys] = false;
    const int bank = phys / _config.bankSize;
    if (--bankLive[bank] == 0)
        _poweredBanks--;
    SIQ_ASSERT(bankLive[bank] >= 0, "bank liveness underflow");
    _liveRegs--;
    freeMask[static_cast<std::size_t>(phys) / 64] |=
        std::uint64_t{1} << (phys % 64);
    freeCount++;
}

} // namespace siq
