#include "cpu/lsq.hh"

#include "common/logging.hh"

namespace siq
{

Lsq::Lsq(const LsqConfig &config) : cfg(config)
{
    SIQ_ASSERT(cfg.numEntries > 0, "empty LSQ");
    entries.assign(static_cast<std::size_t>(cfg.numEntries), {});
}

int
Lsq::allocate(bool isStore, std::uint64_t wordAddr, int robIdx)
{
    SIQ_ASSERT(!full(), "allocate into a full LSQ");
    const int idx = tail;
    entries[idx] = {true, isStore, false, false, wordAddr, robIdx};
    tail = tail + 1 == cfg.numEntries ? 0 : tail + 1;
    count++;
    if (isStore) {
        numStores++;
        pendingStores++;
    }
    return idx;
}

bool
Lsq::loadBlocked(int idx) const
{
    if (pendingStores == 0)
        return false;
    // walk older entries (from idx back to head) looking for an
    // incomplete same-address store
    int cur = idx;
    while (cur != head) {
        cur = prev(cur);
        const Entry &e = entries[cur];
        if (e.valid && e.isStore && e.addr == entries[idx].addr &&
            !e.completed) {
            return true;
        }
    }
    return false;
}

bool
Lsq::loadForwards(int idx) const
{
    if (numStores == 0)
        return false;
    // the youngest older same-address store supplies the value
    int cur = idx;
    while (cur != head) {
        cur = prev(cur);
        const Entry &e = entries[cur];
        if (e.valid && e.isStore && e.addr == entries[idx].addr)
            return e.completed;
    }
    return false;
}

void
Lsq::releaseHead(int idx)
{
    SIQ_ASSERT(count > 0 && idx == head,
               "LSQ release out of order: ", idx, " vs head ", head);
    Entry &e = entries[head];
    if (e.isStore) {
        numStores--;
        if (!e.completed)
            pendingStores--;
    }
    e.valid = false;
    head = head + 1 == cfg.numEntries ? 0 : head + 1;
    count--;
}

void
Lsq::squashTail(int n)
{
    SIQ_ASSERT(n >= 0 && n <= count, "squashing more than the LSQ holds");
    for (int i = 0; i < n; i++) {
        tail = prev(tail);
        Entry &e = entries[tail];
        SIQ_ASSERT(e.valid, "squashing an empty LSQ slot");
        if (e.isStore) {
            numStores--;
            if (!e.completed)
                pendingStores--;
        }
        e.valid = false;
        count--;
    }
}

} // namespace siq
