/**
 * @file
 * Branch direction and target prediction per Table 1 of the paper:
 * a hybrid of 2K-entry gshare and 2K-entry bimodal tables with a
 * 1K-entry selector, a 2048-entry 4-way BTB, and a return address
 * stack (8 entries, the SimpleScalar default the paper's simulator
 * inherits).
 */

#ifndef SIQ_CPU_BPRED_HH
#define SIQ_CPU_BPRED_HH

#include <cstdint>
#include <vector>

namespace siq
{

/** Branch predictor configuration (Table 1 defaults). */
struct BpredConfig
{
    std::uint32_t gshareEntries = 2048;
    std::uint32_t bimodalEntries = 2048;
    std::uint32_t selectorEntries = 1024;
    std::uint32_t btbEntries = 2048;
    std::uint32_t btbAssoc = 4;
    std::uint32_t rasEntries = 8;
};

/** Hybrid direction predictor + BTB + RAS. */
class Bpred
{
  public:
    explicit Bpred(const BpredConfig &config);

    /** Predict the direction of a conditional branch at @p pc. */
    bool predictDirection(std::uint64_t pc) const;

    /**
     * Update the direction tables and global history with the actual
     * outcome. (Updated at fetch with the oracle outcome — the usual
     * idealisation for execute-at-fetch simulators; identical across
     * all configurations, so relative results are unaffected.)
     */
    void updateDirection(std::uint64_t pc, bool taken);

    /** BTB lookup; @return predicted target or 0 on miss. */
    std::uint64_t btbLookup(std::uint64_t pc) const;

    /** Install/refresh a taken branch target. */
    void btbUpdate(std::uint64_t pc, std::uint64_t target);

    /// @name Return address stack.
    /// @{
    void rasPush(std::uint64_t returnPc);
    /** Pop a predicted return target; 0 when empty. */
    std::uint64_t rasPop();
    /// @}

    /// @name Accuracy statistics.
    /// @{
    std::uint64_t lookups() const { return _lookups; }
    std::uint64_t mispredicts() const { return _mispredicts; }
    void countMispredict() { _mispredicts++; }
    void resetStats() { _lookups = _mispredicts = 0; }
    /// @}

  private:
    struct BtbEntry
    {
        std::uint64_t tag = 0;
        std::uint64_t target = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    static std::uint32_t counterUpdate(std::uint32_t ctr, bool taken);

    BpredConfig _config;
    std::vector<std::uint8_t> gshare;   ///< 2-bit counters
    std::vector<std::uint8_t> bimodal;  ///< 2-bit counters
    std::vector<std::uint8_t> selector; ///< 2-bit: >=2 favours gshare
    std::uint64_t history = 0;
    std::vector<BtbEntry> btb;
    std::uint64_t btbUse = 0;
    std::vector<std::uint64_t> ras;
    std::size_t rasTop = 0; ///< number of valid entries
    mutable std::uint64_t _lookups = 0;
    std::uint64_t _mispredicts = 0;
};

} // namespace siq

#endif // SIQ_CPU_BPRED_HH
