/**
 * @file
 * Branch direction and target prediction per Table 1 of the paper:
 * a hybrid of 2K-entry gshare and 2K-entry bimodal tables with a
 * 1K-entry selector, a 2048-entry 4-way BTB, and a return address
 * stack (8 entries, the SimpleScalar default the paper's simulator
 * inherits).
 *
 * The predictor is built from three independently testable
 * components — DirectionPredictor (gshare/bimodal/selector hybrid),
 * Btb, and Ras — composed by the Bpred facade the core uses. Each
 * component carries the speculative-state hooks the wrong-path front
 * end needs: the direction predictor can shift history on a
 * speculative outcome without touching the tables, and the history +
 * RAS can be checkpointed at a mispredicted branch and restored at
 * squash (the BTB and the 2-bit counters are not checkpointed —
 * wrong-path execution never writes them).
 */

#ifndef SIQ_CPU_BPRED_HH
#define SIQ_CPU_BPRED_HH

#include <cstdint>
#include <vector>

namespace siq
{

/** Branch predictor configuration (Table 1 defaults). */
struct BpredConfig
{
    std::uint32_t gshareEntries = 2048;
    std::uint32_t bimodalEntries = 2048;
    std::uint32_t selectorEntries = 1024;
    std::uint32_t btbEntries = 2048;
    std::uint32_t btbAssoc = 4;
    std::uint32_t rasEntries = 8;
};

/**
 * Hybrid gshare/bimodal direction predictor with a selector table.
 * Global history indexes the gshare table; the selector (indexed by
 * pc) arbitrates, trained only when the two components disagree.
 */
class DirectionPredictor
{
  public:
    DirectionPredictor(std::uint32_t gshareEntries,
                       std::uint32_t bimodalEntries,
                       std::uint32_t selectorEntries);

    /** Predict the direction of a conditional branch at @p pc. */
    bool predict(std::uint64_t pc) const;

    /** Update tables and shift global history with the outcome. */
    void update(std::uint64_t pc, bool taken);

    /**
     * Shift global history with a speculative outcome, leaving the
     * tables untouched (a real gshare speculates its history down
     * the predicted path; squash restores it via setHistory()).
     */
    void speculate(bool taken);

    /// @name History checkpointing for squash/recovery.
    /// @{
    std::uint64_t historyBits() const { return history; }
    void setHistory(std::uint64_t h) { history = h; }
    /// @}

  private:
    static std::uint32_t counterUpdate(std::uint32_t ctr, bool taken);

    std::vector<std::uint8_t> gshare;   ///< 2-bit counters
    std::vector<std::uint8_t> bimodal;  ///< 2-bit counters
    std::vector<std::uint8_t> selector; ///< 2-bit: >=2 favours gshare
    std::uint64_t history = 0;
};

/** Set-associative branch target buffer, true-LRU per set. */
class Btb
{
  public:
    Btb(std::uint32_t entries, std::uint32_t assoc);

    /** @return predicted target or 0 on miss. */
    std::uint64_t lookup(std::uint64_t pc) const;

    /** Install/refresh a taken branch target. */
    void update(std::uint64_t pc, std::uint64_t target);

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint64_t target = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint32_t _assoc;
    std::vector<Entry> entries;
    std::uint64_t use = 0;
};

/**
 * Return address stack. Overflow sheds the oldest entry (shift);
 * underflow returns 0 (a misfetch that gates the front end).
 */
class Ras
{
  public:
    explicit Ras(std::uint32_t entries);

    void push(std::uint64_t returnPc);
    /** Pop a predicted return target; 0 when empty. */
    std::uint64_t pop();

    std::size_t depth() const { return top; }
    std::size_t capacity() const { return stack.size(); }

    /** Snapshot of the full stack for squash/recovery. */
    struct Snapshot
    {
        std::vector<std::uint64_t> stack;
        std::size_t top = 0;
    };
    void save(Snapshot &out) const;
    void restore(const Snapshot &snap);

  private:
    std::vector<std::uint64_t> stack;
    std::size_t top = 0; ///< number of valid entries
};

/**
 * Speculative front-end state captured when a mispredicted branch is
 * fetched and restored when it resolves: the global history register
 * and the full RAS. (Direction counters and BTB are only written by
 * resolved correct-path branches, so they need no checkpoint.)
 */
struct BpredSnapshot
{
    std::uint64_t history = 0;
    Ras::Snapshot ras;
};

/** Hybrid direction predictor + BTB + RAS facade used by the core. */
class Bpred
{
  public:
    explicit Bpred(const BpredConfig &config);

    /** Predict the direction of a conditional branch at @p pc. */
    bool predictDirection(std::uint64_t pc) const;

    /**
     * Update the direction tables and global history with the actual
     * outcome. (Updated at fetch with the oracle outcome — the usual
     * idealisation for execute-at-fetch simulators; identical across
     * all configurations, so relative results are unaffected.)
     */
    void updateDirection(std::uint64_t pc, bool taken);

    /**
     * Wrong-path conditional branch: predict a direction and shift
     * the global history with it, without training the tables (no
     * resolved outcome ever arrives for a wrong-path branch).
     */
    bool speculateDirection(std::uint64_t pc);

    /** BTB lookup; @return predicted target or 0 on miss. */
    std::uint64_t btbLookup(std::uint64_t pc) const;

    /** Install/refresh a taken branch target. */
    void btbUpdate(std::uint64_t pc, std::uint64_t target);

    /// @name Return address stack.
    /// @{
    void rasPush(std::uint64_t returnPc);
    /** Pop a predicted return target; 0 when empty. */
    std::uint64_t rasPop();
    /// @}

    /// @name Checkpoint/restore for wrong-path squash recovery.
    /// @{
    void save(BpredSnapshot &out) const;
    void restore(const BpredSnapshot &snap);
    /// @}

    /// @name Accuracy statistics.
    /// @{
    std::uint64_t lookups() const { return _lookups; }
    std::uint64_t mispredicts() const { return _mispredicts; }
    void countMispredict() { _mispredicts++; }
    void resetStats() { _lookups = _mispredicts = 0; }
    /// @}

  private:
    DirectionPredictor dir;
    Btb _btb;
    Ras _ras;
    mutable std::uint64_t _lookups = 0;
    std::uint64_t _mispredicts = 0;
};

} // namespace siq

#endif // SIQ_CPU_BPRED_HH
