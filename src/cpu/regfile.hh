/**
 * @file
 * Banked physical register file with renaming (Table 1: 112 entries
 * in 14 banks of 8, one file for integer and one for FP).
 *
 * The free list is a min-heap so allocation packs the lowest-numbered
 * banks; a bank with no live register is power-gated. This is the
 * bank-packing policy the paper's register-file savings rely on
 * ("by banking them we can turn off those banks that are not in
 * use").
 */

#ifndef SIQ_CPU_REGFILE_HH
#define SIQ_CPU_REGFILE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "common/logging.hh"

namespace siq
{

/** Geometry of one physical register file. */
struct RegFileConfig
{
    int numPhys = 112;
    int numArch = 32;
    int bankSize = 8;
};

/** Rename map + free list + readiness scoreboard + bank liveness. */
class RegFile
{
  public:
    explicit RegFile(const RegFileConfig &config);

    bool hasFree() const { return !freeList.empty(); }

    /**
     * Rename @p archReg to a fresh physical register.
     * @return {newPhys, oldPhys}; oldPhys is freed when the renaming
     *         instruction commits.
     */
    std::pair<int, int> rename(int archReg);

    /** Current mapping of an architectural register. */
    int lookup(int archReg) const { return mapTable[archReg]; }

    /** Value availability of a physical register. */
    bool isReady(int phys) const { return readyBit[phys]; }
    void setReady(int phys) { readyBit[phys] = true; }

    /** Return @p phys to the free list (at commit of the redefiner). */
    void release(int phys);

    /// @name Bank occupancy (for the power model).
    /// @{
    int numBanks() const { return _numBanks; }
    int liveRegs() const { return _liveRegs; }
    int poweredBanks() const;
    /// @}

    const RegFileConfig &config() const { return _config; }

  private:
    RegFileConfig _config;
    int _numBanks;
    std::vector<int> mapTable;
    std::vector<bool> readyBit;
    std::vector<int> bankLive;
    std::priority_queue<int, std::vector<int>, std::greater<>>
        freeList;
    int _liveRegs = 0;
};

} // namespace siq

#endif // SIQ_CPU_REGFILE_HH
