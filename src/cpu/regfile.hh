/**
 * @file
 * Banked physical register file with renaming (Table 1: 112 entries
 * in 14 banks of 8, one file for integer and one for FP).
 *
 * The free list is a bitmap allocated lowest-set-bit-first, so
 * allocation packs the lowest-numbered banks; a bank with no live
 * register is power-gated. This is the bank-packing policy the
 * paper's register-file savings rely on ("by banking them we can
 * turn off those banks that are not in use"). Lowest-free-first is
 * exactly the order a min-heap free list produces, at O(1) per
 * rename/release (two 64-bit words cover the Table-1 file) instead
 * of O(log n) heap maintenance — renaming is on the dispatch path.
 */

#ifndef SIQ_CPU_REGFILE_HH
#define SIQ_CPU_REGFILE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace siq
{

/** Geometry of one physical register file. */
struct RegFileConfig
{
    int numPhys = 112;
    int numArch = 32;
    int bankSize = 8;
};

/** Rename map + free list + readiness scoreboard + bank liveness. */
class RegFile
{
  public:
    explicit RegFile(const RegFileConfig &config);

    bool hasFree() const { return freeCount > 0; }

    /**
     * Rename @p archReg to a fresh physical register.
     * @return {newPhys, oldPhys}; oldPhys is freed when the renaming
     *         instruction commits.
     */
    std::pair<int, int> rename(int archReg);

    /** Current mapping of an architectural register. */
    int lookup(int archReg) const { return mapTable[archReg]; }

    /** Value availability of a physical register. */
    bool isReady(int phys) const { return readyBit[phys]; }
    void setReady(int phys) { readyBit[phys] = true; }

    /** Return @p phys to the free list (at commit of the redefiner). */
    void release(int phys);

    /** Free-list population (squash-recovery invariant checks). */
    int freeRegs() const { return freeCount; }

    /// @name Rename-map checkpointing for wrong-path squash recovery.
    /// The free list needs no snapshot: squash releases exactly the
    /// fresh registers the squashed instructions renamed, and the
    /// prior mappings written back here stayed live throughout (their
    /// releases ride on commits that never happened).
    /// @{
    void
    snapshotMap(std::vector<int> &out) const
    {
        out = mapTable;
    }

    void
    restoreMap(const std::vector<int> &snap)
    {
        SIQ_ASSERT(snap.size() == mapTable.size());
        mapTable = snap;
    }
    /// @}

    /// @name Bank occupancy (for the power model).
    /// @{
    int numBanks() const { return _numBanks; }
    int liveRegs() const { return _liveRegs; }
    /** Banks holding at least one live register. Maintained
     *  incrementally on 0↔1 liveness transitions — this is read
     *  every cycle by the core's stats block. */
    int poweredBanks() const { return _poweredBanks; }
    /// @}

    const RegFileConfig &config() const { return _config; }

  private:
    RegFileConfig _config;
    int _numBanks;
    std::vector<int> mapTable;
    std::vector<bool> readyBit;
    std::vector<int> bankLive;
    /** Free-list bitmap: bit p set = phys reg p is free. */
    std::vector<std::uint64_t> freeMask;
    int freeCount = 0;
    int _liveRegs = 0;
    int _poweredBanks = 0;
};

} // namespace siq

#endif // SIQ_CPU_REGFILE_HH
