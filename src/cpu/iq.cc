#include "cpu/iq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace siq
{

void
IssueQueue::readyInsert(int slot)
{
    // binary search by current region position; relative positions
    // of live slots are invariant, so the vector stays sorted
    const int key = distFromHead(slot);
    const auto it = std::lower_bound(
        readySlots.begin(), readySlots.end(), key,
        [this](int s, int k) { return distFromHead(s) < k; });
    readySlots.insert(it, slot);
}

void
IssueQueue::readyRemove(int slot)
{
    const int key = distFromHead(slot);
    const auto it = std::lower_bound(
        readySlots.begin(), readySlots.end(), key,
        [this](int s, int k) { return distFromHead(s) < k; });
    if (it != readySlots.end() && *it == slot)
        readySlots.erase(it);
}

IssueQueue::IssueQueue(const IqConfig &config) : cfg(config)
{
    SIQ_ASSERT(cfg.numEntries > 0 && cfg.bankSize > 0 &&
               cfg.numEntries % cfg.bankSize == 0,
               "banks must tile the issue queue");
    nbanks = cfg.numEntries / cfg.bankSize;
    slots.assign(static_cast<std::size_t>(cfg.numEntries), {});
    bankValid.assign(static_cast<std::size_t>(nbanks), 0);
    bankPending.assign(static_cast<std::size_t>(nbanks), 0);
    // handles are file*256 + phys with phys < 256 (regHandleStride
    // in cpu/core.hh; the Core constructor asserts the invariant)
    waiters.assign(512, {});
    maxNewRange = cfg.numEntries; // unconstrained until a hint arrives
}

int
IssueQueue::dispatch(int robIdx, int psrc1, bool ready1, int psrc2,
                     bool ready2, std::uint64_t seq)
{
    SIQ_ASSERT(canDispatch(), "dispatch into a blocked queue");
    const int slot = tail;
    Entry &e = slots[slot];
    SIQ_ASSERT(!e.valid, "tail slot occupied");
    e.valid = true;
    e.robIdx = robIdx;
    e.psrc1 = psrc1;
    e.psrc2 = psrc2;
    e.ready1 = ready1 || psrc1 < 0;
    e.ready2 = ready2 || psrc2 < 0;
    e.seq = seq;
    const int bank = slot / cfg.bankSize;
    const int pending = (e.ready1 ? 0 : 1) + (e.ready2 ? 0 : 1);
    if (!e.ready1) {
        SIQ_ASSERT(psrc1 >= 0 &&
                   psrc1 < static_cast<int>(waiters.size()),
                   "tag out of range: ", psrc1);
        waiters[psrc1].push_back(slot * 2);
    }
    if (!e.ready2) {
        SIQ_ASSERT(psrc2 >= 0 &&
                   psrc2 < static_cast<int>(waiters.size()),
                   "tag out of range: ", psrc2);
        waiters[psrc2].push_back(slot * 2 + 1);
    }
    if (bankValid[bank]++ == 0)
        poweredBankCount++;
    bankPending[bank] += pending;
    pendingOps += pending;
    tail = next(tail);
    count++;
    regionLen++;
    newRegionLen++;
    events.dispatchWrites++;
    if (e.ready1 && e.ready2)
        readyInsert(slot);
    return slot;
}

void
IssueQueue::applyHint(int entries)
{
    if (entries < 1)
        entries = 1;
    if (entries > cfg.numEntries)
        entries = cfg.numEntries;
    maxNewRange = entries;
    newHead = tail;
    newRegionLen = 0;
}

void
IssueQueue::wakeup(int ptag)
{
    events.broadcasts++;
    events.cmpConventional +=
        2 * static_cast<std::uint64_t>(cfg.numEntries);

    // powered-bank operand slots (bank gating only, no operand
    // gating) — poweredBankCount is exactly the number of banks the
    // old per-bank scan found occupied
    events.cmpPowered += 2 * static_cast<std::uint64_t>(cfg.bankSize) *
                         static_cast<std::uint64_t>(poweredBankCount);

    // gated comparisons: only non-ready operands of valid entries
    // participate, and pendingOps is exactly their count — account
    // for them in bulk. The ready-bit updates then touch only this
    // tag's registered waiters (O(matches), not a region walk); each
    // record is re-validated against the live entry, so stale or
    // duplicate records are harmless no-ops.
    events.cmpGated += static_cast<std::uint64_t>(pendingOps);

    SIQ_ASSERT(ptag >= 0 && ptag < static_cast<int>(waiters.size()),
               "tag out of range: ", ptag);
    auto &ws = waiters[ptag];
    for (const int w : ws) {
        const int slot = w >> 1;
        Entry &e = slots[slot];
        if (!e.valid)
            continue; // stale: issued (or squashed) while pending
        const bool wasReady = e.ready1 && e.ready2;
        if ((w & 1) == 0) {
            if (e.ready1 || e.psrc1 != ptag)
                continue; // already woken, or the slot was reused
            e.ready1 = true;
        } else {
            if (e.ready2 || e.psrc2 != ptag)
                continue;
            e.ready2 = true;
        }
        bankPending[slot / cfg.bankSize]--;
        pendingOps--;
        if (!wasReady && e.ready1 && e.ready2)
            readyInsert(slot);
    }
    ws.clear();
}

void
IssueQueue::collectReady(std::vector<Candidate> &out) const
{
    out.clear();
    for (const int slot : readySlots)
        out.push_back({slot, slots[slot].robIdx, distFromHead(slot)});
}

void
IssueQueue::markIssued(int slot)
{
    Entry &e = slots[slot];
    SIQ_ASSERT(e.valid, "issuing an empty slot");
    const int bank = slot / cfg.bankSize;
    // entries normally issue ready, but direct markIssued calls (and
    // any future squash path) may retire pending operands
    const int pending = (e.ready1 ? 0 : 1) + (e.ready2 ? 0 : 1);
    bankPending[bank] -= pending;
    pendingOps -= pending;
    if (pending == 0)
        readyRemove(slot); // only ready entries are in the set
    e.valid = false;
    e.robIdx = -1;
    if (--bankValid[bank] == 0)
        poweredBankCount--;
    count--;
    events.issueReads++;
    if (slot == newHead)
        advanceNewHead();
    if (slot == head)
        advanceHead();
}

int
IssueQueue::squashTail(int n)
{
    SIQ_ASSERT(n >= 0, "negative squash span");
    // all still-valid squashed entries sit in the last
    // min(n, regionLen) slots of the region: a surviving pre-squash
    // entry further back would stretch the region past capacity
    const int m = n < regionLen ? n : regionLen;
    int newTail = tail - m;
    if (newTail < 0)
        newTail += cfg.numEntries;
    int dropped = 0;
    // counted walk: when the whole ring is squashed (m == numEntries)
    // newTail equals tail and a pointer-inequality loop would see an
    // empty span
    int slot = newTail;
    for (int i = 0; i < m; i++, slot = next(slot)) {
        Entry &e = slots[slot];
        if (!e.valid)
            continue; // already issued before the squash
        const int bank = slot / cfg.bankSize;
        const int pending = (e.ready1 ? 0 : 1) + (e.ready2 ? 0 : 1);
        bankPending[bank] -= pending;
        pendingOps -= pending;
        if (pending == 0)
            readyRemove(slot); // only ready entries are in the set
        e.valid = false;
        e.robIdx = -1;
        if (--bankValid[bank] == 0)
            poweredBankCount--;
        count--;
        dropped++;
    }
    tail = newTail;
    regionLen -= m;
    if (newRegionLen >= m) {
        newRegionLen -= m;
    } else {
        // new_head was inside the squashed span
        newHead = tail;
        newRegionLen = 0;
    }
    if (regionLen == 0) {
        SIQ_ASSERT(count == 0, "empty region with valid entries");
        head = tail;
    }
    return dropped;
}

void
IssueQueue::advanceHead()
{
    while (regionLen > 0 && !slots[head].valid) {
        head = next(head);
        regionLen--;
    }
    if (regionLen == 0) {
        SIQ_ASSERT(count == 0, "empty region with valid entries");
    }
    // head may overtake a stale new_head when the new region drained
    if (newRegionLen > regionLen) {
        newHead = head;
        newRegionLen = regionLen;
    }
}

void
IssueQueue::advanceNewHead()
{
    while (newRegionLen > 0 && !slots[newHead].valid) {
        newHead = next(newHead);
        newRegionLen--;
    }
}

void
IssueQueue::tickStats()
{
    events.cycles++;
    events.occupancySum += static_cast<std::uint64_t>(count);
    events.poweredBankCycles +=
        static_cast<std::uint64_t>(poweredBanks());
    events.totalBankCycles += static_cast<std::uint64_t>(nbanks);
}

} // namespace siq
