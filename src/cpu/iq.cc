#include "cpu/iq.hh"

#include "common/logging.hh"

namespace siq
{

IssueQueue::IssueQueue(const IqConfig &config) : cfg(config)
{
    SIQ_ASSERT(cfg.numEntries > 0 && cfg.bankSize > 0 &&
               cfg.numEntries % cfg.bankSize == 0,
               "banks must tile the issue queue");
    nbanks = cfg.numEntries / cfg.bankSize;
    slots.assign(static_cast<std::size_t>(cfg.numEntries), {});
    bankValid.assign(static_cast<std::size_t>(nbanks), 0);
    bankPending.assign(static_cast<std::size_t>(nbanks), 0);
    maxNewRange = cfg.numEntries; // unconstrained until a hint arrives
}

int
IssueQueue::dispatch(int robIdx, int psrc1, bool ready1, int psrc2,
                     bool ready2, std::uint64_t seq)
{
    SIQ_ASSERT(canDispatch(), "dispatch into a blocked queue");
    const int slot = tail;
    Entry &e = slots[slot];
    SIQ_ASSERT(!e.valid, "tail slot occupied");
    e.valid = true;
    e.robIdx = robIdx;
    e.psrc1 = psrc1;
    e.psrc2 = psrc2;
    e.ready1 = ready1 || psrc1 < 0;
    e.ready2 = ready2 || psrc2 < 0;
    e.seq = seq;
    const int bank = slot / cfg.bankSize;
    const int pending = (e.ready1 ? 0 : 1) + (e.ready2 ? 0 : 1);
    bankValid[bank]++;
    bankPending[bank] += pending;
    pendingOps += pending;
    tail = next(tail);
    count++;
    regionLen++;
    newRegionLen++;
    events.dispatchWrites++;
    return slot;
}

void
IssueQueue::applyHint(int entries)
{
    if (entries < 1)
        entries = 1;
    if (entries > cfg.numEntries)
        entries = cfg.numEntries;
    maxNewRange = entries;
    newHead = tail;
    newRegionLen = 0;
}

void
IssueQueue::wakeup(int ptag)
{
    events.broadcasts++;
    events.cmpConventional +=
        2 * static_cast<std::uint64_t>(cfg.numEntries);

    // powered-bank operand slots (bank gating only, no operand gating)
    for (int b = 0; b < nbanks; b++) {
        if (bankValid[b] > 0) {
            events.cmpPowered +=
                2 * static_cast<std::uint64_t>(cfg.bankSize);
        }
    }

    // gated comparisons: only non-ready operands of valid entries
    // participate, and pendingOps is exactly their count — account
    // for them in bulk, then walk only to set ready bits, skipping
    // banks with nothing pending and stopping once every pending
    // operand has been examined.
    events.cmpGated += static_cast<std::uint64_t>(pendingOps);

    int remaining = pendingOps;
    int slot = head;
    int i = 0;
    while (remaining > 0 && i < regionLen) {
        const int bank = slot / cfg.bankSize;
        int chunk = (bank + 1) * cfg.bankSize - slot;
        if (chunk > regionLen - i)
            chunk = regionLen - i;
        if (bankPending[bank] == 0) {
            // banks tile the slot array, so the chunk never wraps
            i += chunk;
            slot += chunk;
            if (slot == cfg.numEntries)
                slot = 0;
            continue;
        }
        for (int k = 0; k < chunk; k++, i++, slot = next(slot)) {
            Entry &e = slots[slot];
            if (!e.valid)
                continue;
            if (!e.ready1) {
                remaining--;
                if (e.psrc1 == ptag) {
                    e.ready1 = true;
                    bankPending[bank]--;
                    pendingOps--;
                }
            }
            if (!e.ready2) {
                remaining--;
                if (e.psrc2 == ptag) {
                    e.ready2 = true;
                    bankPending[bank]--;
                    pendingOps--;
                }
            }
        }
    }
}

void
IssueQueue::collectReady(std::vector<Candidate> &out) const
{
    out.clear();
    int slot = head;
    int i = 0;
    int unseen = count; // valid entries not reached yet
    while (unseen > 0 && i < regionLen) {
        const int bank = slot / cfg.bankSize;
        int chunk = (bank + 1) * cfg.bankSize - slot;
        if (chunk > regionLen - i)
            chunk = regionLen - i;
        if (bankValid[bank] == 0) {
            // empty bank: every slot in the chunk is a hole
            i += chunk;
            slot += chunk;
            if (slot == cfg.numEntries)
                slot = 0;
            continue;
        }
        for (int k = 0; k < chunk; k++, i++, slot = next(slot)) {
            const Entry &e = slots[slot];
            if (!e.valid)
                continue;
            unseen--;
            if (e.ready1 && e.ready2)
                out.push_back({slot, e.robIdx, i});
        }
    }
}

void
IssueQueue::markIssued(int slot)
{
    Entry &e = slots[slot];
    SIQ_ASSERT(e.valid, "issuing an empty slot");
    const int bank = slot / cfg.bankSize;
    // entries normally issue ready, but direct markIssued calls (and
    // any future squash path) may retire pending operands
    const int pending = (e.ready1 ? 0 : 1) + (e.ready2 ? 0 : 1);
    bankPending[bank] -= pending;
    pendingOps -= pending;
    e.valid = false;
    e.robIdx = -1;
    bankValid[bank]--;
    count--;
    events.issueReads++;
    if (slot == newHead)
        advanceNewHead();
    if (slot == head)
        advanceHead();
}

void
IssueQueue::advanceHead()
{
    while (regionLen > 0 && !slots[head].valid) {
        head = next(head);
        regionLen--;
    }
    if (regionLen == 0) {
        SIQ_ASSERT(count == 0, "empty region with valid entries");
    }
    // head may overtake a stale new_head when the new region drained
    if (newRegionLen > regionLen) {
        newHead = head;
        newRegionLen = regionLen;
    }
}

void
IssueQueue::advanceNewHead()
{
    while (newRegionLen > 0 && !slots[newHead].valid) {
        newHead = next(newHead);
        newRegionLen--;
    }
}

int
IssueQueue::poweredBanks() const
{
    int n = 0;
    for (int v : bankValid)
        n += v > 0 ? 1 : 0;
    return n;
}

void
IssueQueue::tickStats()
{
    events.cycles++;
    events.occupancySum += static_cast<std::uint64_t>(count);
    events.poweredBankCycles +=
        static_cast<std::uint64_t>(poweredBanks());
    events.totalBankCycles += static_cast<std::uint64_t>(nbanks);
}

} // namespace siq
