/**
 * @file
 * Load/store queue with oracle addresses.
 *
 * Because the core executes at fetch, every memory address is known at
 * dispatch; the LSQ therefore models perfect memory disambiguation
 * (identical across all configurations): a load may issue once every
 * older store to the same word has completed, and forwards from the
 * youngest such store when one exists. Entries live in program order
 * and are released at commit.
 */

#ifndef SIQ_CPU_LSQ_HH
#define SIQ_CPU_LSQ_HH

#include <cstdint>
#include <vector>

namespace siq
{

/** LSQ configuration (combined loads + stores). */
struct LsqConfig
{
    int numEntries = 64;
};

/** Program-order load/store queue. */
class Lsq
{
  public:
    explicit Lsq(const LsqConfig &config);

    bool full() const { return count >= cfg.numEntries; }
    int size() const { return count; }

    /** Allocate an entry at dispatch; @return the entry index. */
    int allocate(bool isStore, std::uint64_t wordAddr, int robIdx);

    /**
     * True when @p idx (a load) must wait: some older store to the
     * same address has not completed yet.
     */
    bool loadBlocked(int idx) const;

    /**
     * True when @p idx (an issueable load) receives its value through
     * store-to-load forwarding instead of the cache.
     */
    bool loadForwards(int idx) const;

    void markIssued(int idx) { entries[idx].issued = true; }

    void
    markCompleted(int idx)
    {
        Entry &e = entries[idx];
        if (e.isStore && !e.completed)
            pendingStores--;
        e.completed = true;
    }

    /** Release the oldest entry (commit order). */
    void releaseHead(int idx);

    /** Squash the @p n youngest entries (wrong-path recovery). */
    void squashTail(int n);

    /// @name Store population (squash-recovery invariant tests).
    /// @{
    int storeCount() const { return numStores; }
    int pendingStoreCount() const { return pendingStores; }
    /// @}

  private:
    struct Entry
    {
        bool valid = false;
        bool isStore = false;
        bool issued = false;
        bool completed = false;
        std::uint64_t addr = 0;
        int robIdx = -1;
    };

    int
    prev(int idx) const
    {
        return idx == 0 ? cfg.numEntries - 1 : idx - 1;
    }

    LsqConfig cfg;
    std::vector<Entry> entries;
    int head = 0;
    int tail = 0;
    int count = 0;
    /** Valid store entries / valid not-yet-completed store entries:
     *  early-outs for the per-issue-candidate program-order walks
     *  (no stores in flight → a load can neither block nor forward).
     *  Pure shortcuts — walk results are unchanged. */
    int numStores = 0;
    int pendingStores = 0;
};

} // namespace siq

#endif // SIQ_CPU_LSQ_HH
