/**
 * @file
 * vpr profile: placement cost estimation. Integer bounding-box work
 * with data-dependent absolute-value branches, plus a floating-point
 * accumulate with an occasional divide, over an L2-resident net array.
 */

#include <bit>

#include "workloads/detail.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{

Program
genVpr(const WorkloadParams &params)
{
    // L1-resident: SPECint hot loops mostly hit a 64 KiB L1, and the
    // compiler assumes hits (paper section 4.2)
    constexpr std::int64_t numNets = 1024;

    ProgramBuilder b("vpr", 1 << 16);
    const std::uint64_t netsBase = b.alloc(4 * numNets);
    const std::uint64_t wireBase = b.alloc(numNets);

    // pre-baked fp wire lengths
    for (std::int64_t i = 0; i < numNets; i++) {
        const double v = 1.0 + static_cast<double>((i * 37) & 255);
        b.initMem(wireBase + static_cast<std::uint64_t>(i),
                  std::bit_cast<std::int64_t>(v));
    }

    b.newProc("main");
    // nets hold coordinates in [0, 1023]
    detail::emitFillArray(b, netsBase, 4 * numNets, 1023, params.seed);

    constexpr int fAcc = fpRegBase + 1;
    constexpr int fTmp = fpRegBase + 2;
    constexpr int fScale = fpRegBase + 3;
    constexpr int fTwo = fpRegBase + 4;
    b.emit(makeFMovImm(fAcc, 0));
    b.emit(makeFMovImm(fScale, 3));
    b.emit(makeFMovImm(fTwo, 2));

    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(28)));
    auto rep = b.beginLoop(21, 20);

    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, numNets));
    b.emit(makeMovImm(6, static_cast<std::int64_t>(netsBase)));
    b.emit(makeMovImm(16, static_cast<std::int64_t>(wireBase)));
    auto net = b.beginLoop(1, 2);

    b.emit(makeShl(3, 1, 2));
    b.emit(makeAdd(3, 3, 6));          // &nets[i]
    b.emit(makeLoad(7, 3, 0));         // x1
    b.emit(makeLoad(8, 3, 1));         // y1
    b.emit(makeLoad(9, 3, 2));         // x2
    b.emit(makeLoad(10, 3, 3));        // y2

    b.emit(makeSub(11, 7, 9));         // dx
    auto dAbsX = b.beginIf(makeBge(11, 0, -1));
    b.elseBranch(dAbsX);
    b.emit(makeSub(11, 0, 11));
    b.joinUp(dAbsX);

    b.emit(makeSub(12, 8, 10));        // dy
    auto dAbsY = b.beginIf(makeBge(12, 0, -1));
    b.elseBranch(dAbsY);
    b.emit(makeSub(12, 0, 12));
    b.joinUp(dAbsY);

    b.emit(makeAdd(13, 11, 12));       // half-perimeter
    b.emit(makeAdd(28, 28, 13));       // int cost accumulator

    // fp contribution: acc += wire[i] * scale
    b.emit(makeAdd(17, 16, 1));
    b.emit(makeFLoad(fTmp, 17, 0));
    b.emit(makeFMul(fTmp, fTmp, fScale));
    b.emit(makeFAdd(fAcc, fAcc, fTmp));

    // periodic renormalisation with a divide (1 in 32 iterations)
    b.emit(makeMovImm(14, 31));
    b.emit(makeAnd(14, 1, 14));
    auto dDiv = b.beginIf(makeBne(14, 0, -1));
    b.elseBranch(dDiv);
    b.emit(makeFDiv(fAcc, fAcc, fTwo));
    b.joinUp(dDiv);

    // write the updated cost back every 4th net
    b.emit(makeMovImm(15, 3));
    b.emit(makeAnd(15, 1, 15));
    auto dSt = b.beginIf(makeBne(15, 0, -1));
    b.elseBranch(dSt);
    b.emit(makeStore(3, 13, 3));
    b.joinUp(dSt);

    b.endLoop(net);
    b.endLoop(rep);

    b.emit(makeMovImm(5, 8));
    b.emit(makeStore(5, 28, 0));
    b.emit(makeHalt());
    return b.build();
}

} // namespace siq::workloads
