/**
 * @file
 * parser profile: recursive-descent parsing over linked dictionary
 * lists. Tree recursion with register spills through a software stack,
 * short serial pointer walks and data-dependent branches on list
 * contents.
 */

#include "workloads/detail.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{

Program
genParser(const WorkloadParams &params)
{
    constexpr std::int64_t dictWords = 4096; // 32 KiB, L1-resident
    constexpr std::int64_t stackWords = 4096;

    ProgramBuilder b("parser", 1 << 16);
    const std::uint64_t dictBase = b.alloc(dictWords);
    const std::uint64_t stackBase = b.alloc(stackWords);

    // parse(depth in r10, cursor in r12): walk a short list, recurse
    // left always and right on a data-dependent condition
    const int parseProc = b.newProc("parse");
    {
        const int retBlock = b.newBlock();
        const int body = b.newBlock();

        b.emit(makeMovImm(11, 1));
        b.emit(makeBlt(10, 11, retBlock));
        b.fallInto(body);

        // anchor lookup, then scan the candidate word list: most of
        // the work is this loop, as in a real dictionary parser
        b.emit(makeMovImm(14, dictWords - 1));
        b.emit(makeMovImm(15, static_cast<std::int64_t>(dictBase)));
        b.emit(makeAnd(13, 12, 14));
        b.emit(makeAdd(13, 13, 15));
        b.emit(makeLoad(16, 13, 0));
        b.emit(makeMovImm(22, 0));
        b.emit(makeMovImm(23, 12));
        auto scan = b.beginLoop(22, 23);
        b.emit(makeAdd(24, 13, 22));
        b.emit(makeLoad(25, 24, 1));
        b.emit(makeXor(26, 25, 16));
        b.emit(makeAnd(26, 26, 14));
        b.emit(makeAdd(28, 28, 26));
        b.emit(makeSlt(27, 25, 16));
        b.emit(makeAdd(17, 17, 27));
        b.endLoop(scan);
        b.emit(makeXor(12, 12, 16));   // child cursor

        // left recursion
        detail::emitPush(b, 10);
        detail::emitPush(b, 12);
        b.emit(makeAddImm(10, 10, -1));
        b.callProc(parseProc);
        detail::emitPop(b, 12);
        detail::emitPop(b, 10);

        // right recursion on data-dependent low bits (~25%)
        b.emit(makeMovImm(13, 3));
        b.emit(makeAnd(13, 12, 13));
        auto d = b.beginIf(makeBeq(13, 0, -1));
        detail::emitPush(b, 10);
        detail::emitPush(b, 12);
        b.emit(makeAddImm(10, 10, -1));
        b.emit(makeAddImm(12, 12, 17));
        b.callProc(parseProc);
        detail::emitPop(b, 12);
        detail::emitPop(b, 10);
        b.elseBranch(d);
        b.emit(makeAddImm(28, 28, 1));
        b.joinUp(d);
        b.emit(makeRet());

        b.switchTo(retBlock);
        b.emit(makeRet());
    }

    const int mainProc = b.newProc("main");
    detail::emitFillArray(b, dictBase, dictWords, dictWords - 1,
                          params.seed);
    b.emit(makeMovImm(detail::spReg,
                      static_cast<std::int64_t>(stackBase)));

    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(900)));
    auto rep = b.beginLoop(21, 20);
    b.emit(makeMovImm(10, 6));         // recursion depth
    b.emit(makeMovImm(5, 2654435761ll));
    b.emit(makeMul(12, 21, 5));        // per-repetition cursor
    b.callProc(parseProc);
    b.endLoop(rep);

    b.emit(makeMovImm(5, 8));
    b.emit(makeStore(5, 28, 0));
    b.emit(makeHalt());

    Program prog = b.build();
    prog.entryProc = mainProc;
    return prog;
}

} // namespace siq::workloads
