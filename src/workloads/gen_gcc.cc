/**
 * @file
 * gcc profile: many tiny procedures with dense control flow and a wide
 * computed-goto dispatcher — the bison-generated switch the paper
 * blames for gcc's long compile time and conservative analysis. The
 * static program is by far the largest of the suite (for Table 2) and
 * the control-flow joins force the compiler pass onto its conservative
 * paths.
 */

#include "workloads/detail.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{

Program
genGcc(const WorkloadParams &params)
{
    constexpr std::int64_t numStmts = 16384;
    constexpr int numLeaves = 24;

    ProgramBuilder b("gcc", 1 << 16);
    const std::uint64_t stmtBase = b.alloc(numStmts);
    const std::uint64_t globalBase = b.alloc(4096);

    Rng rng(params.seed ^ 0x9cc);

    // --- leaf procedures -------------------------------------------------
    // each: a chain of small if/else diamonds over registers r11..r19
    std::vector<int> leaves;
    for (int l = 0; l < numLeaves; l++) {
        const int proc = b.newProc("leaf" + std::to_string(l));
        leaves.push_back(proc);
        const int diamonds = static_cast<int>(rng.range(2, 4));
        b.emit(makeAddImm(11, 10, l));
        b.emit(makeMovImm(12, static_cast<std::int64_t>(
            rng.range(1, 255))));
        for (int d = 0; d < diamonds; d++) {
            b.emit(makeAnd(13, 11, 12));
            b.emit(makeMovImm(14, static_cast<std::int64_t>(
                rng.range(0, 7))));
            auto dia = b.beginIf(makeBlt(13, 14, -1));
            b.emit(makeXor(15, 11, 12));
            b.emit(makeAddImm(11, 15, 3));
            b.elseBranch(dia);
            b.emit(makeShr(16, 11, 1));
            b.emit(makeSub(11, 16, 14));
            b.joinUp(dia);
        }
        // touch a global occasionally to create memory traffic
        b.emit(makeMovImm(17, static_cast<std::int64_t>(globalBase)));
        b.emit(makeMovImm(18, 4095));
        b.emit(makeAnd(19, 11, 18));
        b.emit(makeAdd(17, 17, 19));
        b.emit(makeStore(17, 11, 0));
        b.emit(makeRet());
    }

    // --- dispatcher: the big switch --------------------------------------
    const int dispatcher = b.newProc("dispatch");
    {
        auto sw = b.beginSwitch(10, numLeaves);
        for (int c = 0; c < numLeaves; c++) {
            b.switchTo(sw.cases[static_cast<std::size_t>(c)]);
            b.callProc(leaves[static_cast<std::size_t>(c)]);
            // a second call on some paths (like chained semantic
            // routines in the bison skeleton)
            if (c % 3 == 0)
                b.callProc(leaves[static_cast<std::size_t>(
                    (c + 7) % numLeaves)]);
            b.jumpTo(sw.join);
        }
        b.switchTo(sw.join);
        b.emit(makeRet());
    }

    // --- main -------------------------------------------------------------
    const int mainProc = b.newProc("main");
    detail::emitFillArray(b, stmtBase, numStmts, numLeaves - 1,
                          params.seed);

    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(5)));
    auto rep = b.beginLoop(21, 20);

    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, numStmts));
    b.emit(makeMovImm(6, static_cast<std::int64_t>(stmtBase)));
    auto stmt = b.beginLoop(1, 2);
    b.emit(makeAdd(3, 6, 1));
    b.emit(makeLoad(10, 3, 0));  // op for the dispatcher
    b.callProc(dispatcher);
    b.emit(makeAdd(28, 28, 11)); // accumulate leaf results
    b.endLoop(stmt);

    b.endLoop(rep);

    b.emit(makeMovImm(5, 8));
    b.emit(makeStore(5, 28, 0));
    b.emit(makeHalt());

    Program prog = b.build();
    prog.entryProc = mainProc;
    return prog;
}

} // namespace siq::workloads
