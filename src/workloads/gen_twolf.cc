/**
 * @file
 * twolf profile: standard-cell placement. Mixed integer/floating-point
 * cost evaluation over a cell array, occasional FP divides, moderate
 * helper-call density and a mid-sized working set.
 */

#include <bit>

#include "workloads/detail.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{

Program
genTwolf(const WorkloadParams &params)
{
    constexpr std::int64_t numCells = 1024; // 4 words each, L1-resident

    ProgramBuilder b("twolf", 1 << 16);
    const std::uint64_t cellBase = b.alloc(4 * numCells);
    const std::uint64_t penaltyBase = b.alloc(numCells);

    for (std::int64_t i = 0; i < numCells; i += 8) {
        const double v = 0.5 + static_cast<double>(i & 63);
        b.initMem(penaltyBase + static_cast<std::uint64_t>(i),
                  std::bit_cast<std::int64_t>(v));
    }

    // overlap(r11, r13) -> r12: integer overlap of two cells
    const int overlapProc = b.newProc("overlap");
    {
        b.emit(makeSub(12, 11, 13));
        auto d = b.beginIf(makeBge(12, 0, -1));
        b.elseBranch(d);
        b.emit(makeSub(12, 0, 12));
        b.joinUp(d);
        b.emit(makeMovImm(14, 64));
        b.emit(makeSub(12, 14, 12));
        auto d2 = b.beginIf(makeBge(12, 0, -1));
        b.elseBranch(d2);
        b.emit(makeMovImm(12, 0));
        b.joinUp(d2);
        b.emit(makeRet());
    }

    const int mainProc = b.newProc("main");
    detail::emitFillArray(b, cellBase, 4 * numCells, 0xFFFF,
                          params.seed);

    constexpr int fCost = fpRegBase + 1;
    constexpr int fTmp = fpRegBase + 2;
    constexpr int fNorm = fpRegBase + 3;
    b.emit(makeFMovImm(fCost, 0));
    b.emit(makeFMovImm(fNorm, 7));

    b.emit(makeMovImm(4, static_cast<std::int64_t>(params.seed | 1)));
    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(16)));
    auto rep = b.beginLoop(21, 20);

    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 6144));
    auto iter = b.beginLoop(1, 2);

    // pick two pseudo-random cells
    detail::emitLcg(b, 4, 5);
    b.emit(makeMovImm(7, numCells - 1));
    b.emit(makeShr(6, 4, 17));
    b.emit(makeAnd(6, 6, 7));
    b.emit(makeShr(8, 4, 39));
    b.emit(makeAnd(8, 8, 7));

    b.emit(makeMovImm(9, static_cast<std::int64_t>(cellBase)));
    b.emit(makeShl(10, 6, 2));
    b.emit(makeAdd(10, 10, 9));
    b.emit(makeLoad(11, 10, 0));       // x of cell a
    b.emit(makeShl(14, 8, 2));
    b.emit(makeAdd(14, 14, 9));
    b.emit(makeLoad(13, 14, 0));       // x of cell b

    b.callProc(overlapProc);
    b.emit(makeAdd(28, 28, 12));

    // fp cost: cost += penalty[a] * norm (divide every 32nd)
    b.emit(makeMovImm(15, static_cast<std::int64_t>(penaltyBase)));
    b.emit(makeMovImm(16, ~7ll));
    b.emit(makeAnd(17, 6, 16));
    b.emit(makeAdd(15, 15, 17));
    b.emit(makeFLoad(fTmp, 15, 0));
    b.emit(makeFMul(fTmp, fTmp, fNorm));
    b.emit(makeFAdd(fCost, fCost, fTmp));
    b.emit(makeMovImm(18, 31));
    b.emit(makeAnd(18, 1, 18));
    auto dDiv = b.beginIf(makeBne(18, 0, -1));
    b.elseBranch(dDiv);
    b.emit(makeFDiv(fCost, fCost, fNorm));
    b.joinUp(dDiv);

    // accept/reject move (~70% accept by data construction)
    b.emit(makeMovImm(19, 48));
    auto dAcc = b.beginIf(makeBlt(12, 19, -1));
    b.emit(makeStore(10, 13, 1));      // swap y coordinates
    b.emit(makeStore(14, 11, 1));
    b.elseBranch(dAcc);
    b.emit(makeAddImm(28, 28, 3));
    b.joinUp(dAcc);

    b.endLoop(iter);
    b.endLoop(rep);

    b.emit(makeMovImm(5, 8));
    b.emit(makeStore(5, 28, 0));
    b.emit(makeHalt());

    Program prog = b.build();
    prog.entryProc = mainProc;
    return prog;
}

} // namespace siq::workloads
