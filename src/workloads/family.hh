/**
 * @file
 * The workload-family subsystem: parameterized, spec-embeddable
 * workload generators behind one registry (DESIGN.md §10).
 *
 * A *family* is a named generator plus its parameter schema
 * (FamilyDef). A *workload* is a WorkloadSpec — a family name plus a
 * set of integer parameter overrides — with a canonical string form
 *
 *     family[:param=value[:param=value ...]]
 *
 * that is the workload's identity everywhere: the benchmark axis of a
 * SweepSpec, the `benchmark` field of every exported cell, the
 * workload-cache key of the sweep engine, and the checkpoint file
 * names of sharded runs. Canonicalization orders overrides in the
 * family's declaration order and elides values equal to the default,
 * so two spellings of the same workload always compare (and merge)
 * byte-identically. The separator set (':' and '=') is disjoint from
 * CSV/JSON/shell metacharacters, so canonical names survive every
 * export format unquoted.
 *
 * The eleven SPECint2000-profile generators register as parameterless
 * families; the parameterized families stress what a fixed SPECint
 * suite cannot:
 *  - specfp: SPECfp-profile long fp loop nests (swim/art/equake
 *    style) with regular strides and high ILP;
 *  - server: OLTP-style pointer-rich hash-index probes with short
 *    dependent chains, noise branches and a large footprint;
 *  - phased: composable alternation of high-ILP and serial
 *    memory-bound phases — the family that exercises *dynamic* IQ
 *    resizing.
 */

#ifndef SIQ_WORKLOADS_FAMILY_HH
#define SIQ_WORKLOADS_FAMILY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{

/** Schema of one family parameter (all parameters are integers). */
struct FamilyParamDef
{
    std::string name;
    std::int64_t defaultValue = 0;
    std::int64_t minValue = 0;
    std::int64_t maxValue = 0;
    /** One-line description for `siqsim list`. */
    std::string help;
};

class FamilyParams;

/** One registered workload family. */
struct FamilyDef
{
    /** Registry key and the leading token of every canonical name.
     *  Token-like (alphanumeric plus '-', '_', '.') so names embed in
     *  CSV cells, JSON strings, file names and shell args verbatim. */
    std::string name;
    /** One-line description for listings. */
    std::string summary;
    /** Parameter schema, in declaration (canonical) order. */
    std::vector<FamilyParamDef> params;
    /** Build the program for one resolved parameter set. */
    std::function<Program(const WorkloadParams &, const FamilyParams &)>
        generate;
};

/**
 * Resolved parameter values handed to a family's generator: one value
 * per FamilyParamDef, defaults applied, overrides folded in, ranges
 * validated.
 */
class FamilyParams
{
  public:
    FamilyParams(const FamilyDef &def, std::vector<std::int64_t> values);

    /** Value of the named parameter; fatal on unknown names (a
     *  generator/schema mismatch is a programming error). */
    std::int64_t at(std::string_view name) const;

  private:
    const FamilyDef *def;
    std::vector<std::int64_t> values;
};

/**
 * A serializable workload identity: family plus parameter overrides.
 * `params` holds only non-default values, in the family's declaration
 * order — the invariant parse() establishes and canonical() depends
 * on. Travels inside SweepSpec JSON as {"family": ..., "params":
 * {...}} (sim/report.hh).
 */
struct WorkloadSpec
{
    std::string family;
    std::vector<std::pair<std::string, std::int64_t>> params;

    /**
     * Parse `family[:param=value ...]`. Fatal — with the full list of
     * registered families (or of the family's parameters) in the
     * message — on unknown family names, unknown or duplicate
     * parameters, malformed integers, and out-of-range values.
     */
    static WorkloadSpec parse(const std::string &text);

    /** Recoverable parse(): validation failures come back as an
     *  error Result carrying the same message fatal() would have
     *  raised. For untrusted request bytes (sim/serve.cc). */
    static Result<WorkloadSpec> tryParse(const std::string &text);

    /** The canonical string form (see file comment). Fatal when the
     *  spec does not validate against the registry. */
    std::string canonical() const;

    bool operator==(const WorkloadSpec &) const = default;
};

/** Name → FamilyDef table. Thread-safe; built-ins pre-registered. */
class FamilyRegistry
{
  public:
    /** The process-wide registry (created on first use). */
    static FamilyRegistry &instance();

    /** Register a family; fatal on duplicate or non-token names. */
    void add(FamilyDef def);

    /** Remove a registered family. @return true if it existed. */
    bool remove(const std::string &name);

    /** Look up by family name; nullptr when absent. The returned
     *  pointer stays valid until the entry is removed. */
    const FamilyDef *find(const std::string &name) const;

    /** All registered names, in registration order (the eleven paper
     *  benchmarks first, then the parameterized families). */
    std::vector<std::string> names() const;

  private:
    FamilyRegistry();
    struct Impl;
    std::shared_ptr<Impl> impl;
};

/**
 * RAII registration for bench/test-local families, mirroring
 * sim::ScopedTechnique: the family is generatable and sweepable
 * exactly like a built-in for the scope's lifetime and unregistered
 * on destruction. A registered family exists only in the defining
 * process — a serialized spec naming one cannot run under `siqsim`
 * (the same portability rule as technique variants, DESIGN.md §8.1).
 */
class ScopedFamily
{
  public:
    /** @param def the family to register (fatal on name clash). */
    explicit ScopedFamily(FamilyDef def) : name(def.name)
    {
        FamilyRegistry::instance().add(std::move(def));
    }

    ~ScopedFamily() { FamilyRegistry::instance().remove(name); }

    ScopedFamily(const ScopedFamily &) = delete;
    ScopedFamily &operator=(const ScopedFamily &) = delete;

  private:
    std::string name;
};

/** Registry lookup by family name; nullptr when absent. */
const FamilyDef *findFamily(const std::string &name);

/** All registered family names (paper benchmarks first). */
std::vector<std::string> familyNames();

/** parse(text).canonical() — the one-call validator/normalizer the
 *  engine and CLI apply to every benchmark-axis entry. */
std::string canonicalWorkload(const std::string &text);

/** Recoverable canonicalWorkload for untrusted inputs. */
Result<std::string> tryCanonicalWorkload(const std::string &text);

/** Generate the program for a parsed workload spec. */
Program generate(const WorkloadSpec &spec, const WorkloadParams &params);

/// @name Parameterized family generators (family.cc registers them).
/// @{
Program genSpecfp(const WorkloadParams &params, const FamilyParams &fp);
Program genServer(const WorkloadParams &params, const FamilyParams &fp);
Program genPhased(const WorkloadParams &params, const FamilyParams &fp);
/// @}

} // namespace siq::workloads

#endif // SIQ_WORKLOADS_FAMILY_HH
