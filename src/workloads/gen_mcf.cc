/**
 * @file
 * mcf profile: network-simplex pointer chasing. A serial load-to-load
 * address dependence walks a strided cycle through a working set four
 * times the L2 capacity, so most hops miss in L2. Baseline IPC is low
 * and almost insensitive to IQ size — which is why mcf shows the
 * smallest IPC loss in the paper while still saving much power.
 */

#include "workloads/detail.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{

Program
genMcf(const WorkloadParams &params)
{
    constexpr std::int64_t numNodes = 65536; // 4 words each => 2 MiB
    constexpr std::int64_t stride = 28657;   // odd => full cycle

    ProgramBuilder b("mcf", 1 << 19);
    const std::uint64_t nodeBase = b.alloc(4 * numNodes);

    b.newProc("main");

    // initial image: next pointers form one big strided cycle;
    // node costs are noise (host-side — the paper skips init code)
    {
        std::uint64_t state = params.seed | 1;
        for (std::int64_t i = 0; i < numNodes; i++) {
            const std::int64_t nextNode =
                (i + stride) & (numNodes - 1);
            const auto addr =
                nodeBase + static_cast<std::uint64_t>(4 * i);
            b.initMem(addr, nextNode);
            state = state * 6364136223846793005ull +
                    1442695040888963407ull;
            b.initMem(addr + 1,
                      static_cast<std::int64_t>(state >> 48));
        }
    }
    b.emit(makeMovImm(6, static_cast<std::int64_t>(nodeBase)));

    // kernel: chase the cycle, accumulate costs, prune negatives
    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(16)));
    auto rep = b.beginLoop(21, 20);

    b.emit(makeMovImm(11, 1));         // current node
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 12288));      // hops per pass
    auto hop = b.beginLoop(1, 2);
    b.emit(makeShl(3, 11, 2));
    b.emit(makeAdd(3, 3, 6));
    b.emit(makeLoad(11, 3, 0));        // serial: next node
    b.emit(makeLoad(12, 3, 1));        // cost
    b.emit(makeAdd(28, 28, 12));
    b.emit(makeMovImm(13, 40000));
    auto d = b.beginIf(makeBlt(12, 13, -1)); // ~60/40 data-dependent
    b.emit(makeAddImm(28, 28, 1));
    b.elseBranch(d);
    b.emit(makeSub(28, 28, 12));
    b.emit(makeStore(3, 28, 2));       // occasional writeback
    b.joinUp(d);
    b.endLoop(hop);

    b.endLoop(rep);

    b.emit(makeMovImm(5, 8));
    b.emit(makeStore(5, 28, 0));
    b.emit(makeHalt());
    return b.build();
}

} // namespace siq::workloads
