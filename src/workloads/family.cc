#include "workloads/family.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/logging.hh"

namespace siq::workloads
{

namespace
{

/** Family and parameter names embed in canonical workload strings,
 *  CSV cells, JSON and checkpoint file names: token-like only. */
bool
tokenLike(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '-' || c == '_' || c == '.';
        if (!ok)
            return false;
    }
    return true;
}

/** strtoll with whole-token validation (spec strings are user input). */
std::int64_t
parseValue(const std::string &spec, const std::string &token)
{
    if (token.empty())
        fatal("workload '", spec, "': empty parameter value");
    char *end = nullptr;
    errno = 0;
    const std::int64_t v = std::strtoll(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size() || errno == ERANGE)
        fatal("workload '", spec, "': malformed integer '", token, "'");
    return v;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const auto &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

/** Wrap a parameterless legacy generator. */
FamilyDef
plainFamily(std::string name, std::string summary,
            Program (*gen)(const WorkloadParams &))
{
    FamilyDef def;
    def.name = std::move(name);
    def.summary = std::move(summary);
    def.generate = [gen](const WorkloadParams &wp, const FamilyParams &) {
        return gen(wp);
    };
    return def;
}

std::vector<FamilyDef>
builtinFamilies()
{
    std::vector<FamilyDef> defs;

    // the eleven SPECint2000 profiles, in the paper's figure order
    // (workloads.hh has each profile's rationale)
    defs.push_back(plainFamily(
        "gzip", "high-ILP hash/window loops, cache-friendly", genGzip));
    defs.push_back(plainFamily(
        "vpr", "int+fp bounding-box cost loops, data-dependent abs branches",
        genVpr));
    defs.push_back(plainFamily(
        "gcc", "many tiny procedures, dense branching, a 24-way switch",
        genGcc));
    defs.push_back(plainFamily(
        "mcf", "serial pointer chasing over an L2-busting working set",
        genMcf));
    defs.push_back(plainFamily(
        "crafty", "bitboard logic chains, predictable branches, eval calls",
        genCrafty));
    defs.push_back(plainFamily(
        "parser", "tree recursion with stack spills plus list walks",
        genParser));
    defs.push_back(plainFamily(
        "perlbmk", "bytecode interpreter with a 16-way indirect dispatch",
        genPerlbmk));
    defs.push_back(plainFamily(
        "gap", "digit-array multiply-accumulate with carry chains",
        genGap));
    defs.push_back(plainFamily(
        "vortex", "call-dense object accessors, mul-heavy around calls",
        genVortex));
    defs.push_back(plainFamily(
        "bzip2", "sort loop, data-dependent compares, hot rank() callee",
        genBzip2));
    defs.push_back(plainFamily(
        "twolf", "mixed int/fp cell-cost loops with occasional divides",
        genTwolf));

    defs.push_back({
        "specfp",
        "SPECfp-profile long fp loop nests: regular strides, high ILP",
        {
            {"streams", 4, 1, 8,
             "independent fp array streams per iteration (ILP width)"},
            {"depth", 2, 1, 8,
             "dependent fp operations chained per stream element"},
            {"stride", 1, 1, 64, "array access stride in words"},
        },
        genSpecfp,
    });

    defs.push_back({
        "server",
        "OLTP-style hash-index probes: pointer-rich, noisy branches, "
        "large footprint",
        {
            {"footprintLog2", 18, 14, 21,
             "log2 of the index working set in words"},
            {"probeDepth", 3, 1, 8, "pointer hops walked per probe"},
            {"hotPct", 0, 0, 90,
             "percent of probes redirected to a hot subset"},
        },
        genServer,
    });

    defs.push_back({
        "phased",
        "alternating high-ILP and serial memory-bound phases "
        "(dynamic IQ demand)",
        {
            {"period", 4000, 64, 1 << 20,
             "inner-loop iterations per phase"},
            {"duty", 50, 5, 95,
             "percent of each period spent in the high-ILP phase"},
            {"memStride", 8209, 1, 65535,
             "stride of the memory-bound phase's chase cycle"},
        },
        genPhased,
    });

    return defs;
}

} // namespace

FamilyParams::FamilyParams(const FamilyDef &d,
                           std::vector<std::int64_t> v)
    : def(&d), values(std::move(v))
{
    SIQ_ASSERT(values.size() == def->params.size(),
               "family parameter vector mismatch");
}

std::int64_t
FamilyParams::at(std::string_view name) const
{
    for (std::size_t i = 0; i < def->params.size(); i++) {
        if (def->params[i].name == name)
            return values[i];
    }
    fatal("family '", def->name, "' has no parameter '",
          std::string(name), "'");
}

struct FamilyRegistry::Impl
{
    mutable std::mutex mu;
    /** unique_ptr entries so find() results survive vector growth. */
    std::vector<std::unique_ptr<FamilyDef>> defs;
};

FamilyRegistry::FamilyRegistry() : impl(std::make_shared<Impl>())
{
    for (auto &def : builtinFamilies())
        impl->defs.push_back(
            std::make_unique<FamilyDef>(std::move(def)));
}

FamilyRegistry &
FamilyRegistry::instance()
{
    static FamilyRegistry registry;
    return registry;
}

void
FamilyRegistry::add(FamilyDef def)
{
    if (!tokenLike(def.name))
        fatal("workload family name '", def.name,
              "' must be non-empty and use only [A-Za-z0-9._-]");
    for (const auto &p : def.params) {
        if (!tokenLike(p.name))
            fatal("family '", def.name, "': parameter name '", p.name,
                  "' must be non-empty and use only [A-Za-z0-9._-]");
        if (p.minValue > p.maxValue ||
            p.defaultValue < p.minValue || p.defaultValue > p.maxValue)
            fatal("family '", def.name, "': parameter '", p.name,
                  "' default ", p.defaultValue, " outside [",
                  p.minValue, ", ", p.maxValue, "]");
    }
    if (!def.generate)
        fatal("family '", def.name, "' has no generator");

    std::lock_guard lock(impl->mu);
    for (const auto &d : impl->defs) {
        if (d->name == def.name)
            fatal("workload family '", def.name,
                  "' already registered");
    }
    impl->defs.push_back(std::make_unique<FamilyDef>(std::move(def)));
}

bool
FamilyRegistry::remove(const std::string &name)
{
    std::lock_guard lock(impl->mu);
    for (auto it = impl->defs.begin(); it != impl->defs.end(); ++it) {
        if ((*it)->name == name) {
            impl->defs.erase(it);
            return true;
        }
    }
    return false;
}

const FamilyDef *
FamilyRegistry::find(const std::string &name) const
{
    std::lock_guard lock(impl->mu);
    for (const auto &d : impl->defs) {
        if (d->name == name)
            return d.get();
    }
    return nullptr;
}

std::vector<std::string>
FamilyRegistry::names() const
{
    std::lock_guard lock(impl->mu);
    std::vector<std::string> out;
    out.reserve(impl->defs.size());
    for (const auto &d : impl->defs)
        out.push_back(d->name);
    return out;
}

const FamilyDef *
findFamily(const std::string &name)
{
    return FamilyRegistry::instance().find(name);
}

std::vector<std::string>
familyNames()
{
    return FamilyRegistry::instance().names();
}

namespace
{

/**
 * Validate @p overrides against @p def's schema — unknown names (the
 * message lists the family's parameters), duplicates and
 * out-of-range values are fatal, @p context naming the offending
 * workload — and fold them over the defaults into one value per
 * parameter. The single resolution path shared by parse() and
 * generate(), so a hand-built WorkloadSpec validates exactly like a
 * parsed string.
 */
std::vector<std::int64_t>
resolveOverrides(
    const FamilyDef &def, const std::string &context,
    const std::vector<std::pair<std::string, std::int64_t>> &overrides)
{
    std::vector<bool> seen(def.params.size(), false);
    std::vector<std::int64_t> values;
    values.reserve(def.params.size());
    for (const auto &p : def.params)
        values.push_back(p.defaultValue);

    for (const auto &[name, value] : overrides) {
        std::size_t idx = def.params.size();
        for (std::size_t i = 0; i < def.params.size(); i++) {
            if (def.params[i].name == name)
                idx = i;
        }
        if (idx == def.params.size()) {
            std::ostringstream known;
            for (std::size_t i = 0; i < def.params.size(); i++)
                known << (i ? ", " : "") << def.params[i].name;
            fatal("workload family '", def.name,
                  "' has no parameter '", name, "' (parameters: ",
                  def.params.empty() ? std::string("none")
                                     : known.str(),
                  ")");
        }
        if (seen[idx])
            fatal("workload '", context, "': duplicate parameter '",
                  name, "'");
        seen[idx] = true;
        const FamilyParamDef &p = def.params[idx];
        if (value < p.minValue || value > p.maxValue)
            fatal("workload '", context, "': ", p.name, "=", value,
                  " outside [", p.minValue, ", ", p.maxValue, "]");
        values[idx] = value;
    }
    return values;
}

} // namespace

WorkloadSpec
WorkloadSpec::parse(const std::string &text)
{
    std::vector<std::string> tokens;
    std::string cur;
    for (char c : text) {
        if (c == ':') {
            tokens.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    tokens.push_back(cur);

    const FamilyDef *def = findFamily(tokens.front());
    if (def == nullptr) {
        fatal("unknown workload family '", tokens.front(),
              "'; registered families: ", joinNames(familyNames()));
    }

    std::vector<std::pair<std::string, std::int64_t>> overrides;
    for (std::size_t t = 1; t < tokens.size(); t++) {
        const std::string &token = tokens[t];
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("workload '", text, "': expected param=value, got '",
                  token, "'");
        overrides.emplace_back(token.substr(0, eq),
                               parseValue(text, token.substr(eq + 1)));
    }
    const std::vector<std::int64_t> values =
        resolveOverrides(*def, text, overrides);

    // emit in schema (declaration) order with defaults elided: the
    // canonical form
    WorkloadSpec spec;
    spec.family = def->name;
    for (std::size_t i = 0; i < def->params.size(); i++) {
        if (values[i] != def->params[i].defaultValue)
            spec.params.emplace_back(def->params[i].name, values[i]);
    }
    return spec;
}

namespace
{

/** The canonical string of an already-normalized spec. */
std::string
specText(const WorkloadSpec &spec)
{
    std::ostringstream os;
    os << spec.family;
    for (const auto &[name, value] : spec.params)
        os << ':' << name << '=' << value;
    return os.str();
}

} // namespace

std::string
WorkloadSpec::canonical() const
{
    // normalize through the registry, so hand-built specs (out of
    // order, default-valued or duplicated params) canonicalize the
    // same way parsed ones do
    return specText(parse(specText(*this)));
}

std::string
canonicalWorkload(const std::string &text)
{
    return specText(WorkloadSpec::parse(text));
}

Result<WorkloadSpec>
WorkloadSpec::tryParse(const std::string &text)
{
    return asResult([&] { return parse(text); });
}

Result<std::string>
tryCanonicalWorkload(const std::string &text)
{
    return asResult([&] { return canonicalWorkload(text); });
}

Program
generate(const WorkloadSpec &spec, const WorkloadParams &params)
{
    const FamilyDef *def = findFamily(spec.family);
    if (def == nullptr) {
        fatal("unknown workload family '", spec.family,
              "'; registered families: ", joinNames(familyNames()));
    }
    std::vector<std::int64_t> values =
        resolveOverrides(*def, specText(spec), spec.params);
    return def->generate(params, FamilyParams(*def, std::move(values)));
}

} // namespace siq::workloads
