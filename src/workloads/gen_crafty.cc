/**
 * @file
 * crafty profile: bitboard manipulation. Long logical chains
 * (and/or/xor/shift) with a popcount-style reduction, highly
 * predictable branches, small L1-resident tables and a per-iteration
 * call to an evaluation helper.
 */

#include "workloads/detail.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{

Program
genCrafty(const WorkloadParams &params)
{
    constexpr std::int64_t tableWords = 4096;

    ProgramBuilder b("crafty", 1 << 15);
    const std::uint64_t t1Base = b.alloc(tableWords);
    const std::uint64_t t2Base = b.alloc(tableWords);

    // evaluate(): scores the bitboard in r11, result in r12
    const int evalProc = b.newProc("evaluate");
    {
        b.emit(makeShr(12, 11, 1));
        b.emit(makeMovImm(13, 0x5555555555555555ll));
        b.emit(makeAnd(12, 12, 13));
        b.emit(makeSub(12, 11, 12));
        b.emit(makeMovImm(13, 0x3333333333333333ll));
        b.emit(makeAnd(14, 12, 13));
        b.emit(makeShr(15, 12, 2));
        b.emit(makeAnd(15, 15, 13));
        b.emit(makeAdd(12, 14, 15));
        b.emit(makeShr(14, 12, 4));
        b.emit(makeAdd(12, 12, 14));
        b.emit(makeMovImm(13, 0x0F0F0F0F0F0F0F0Fll));
        b.emit(makeAnd(12, 12, 13));
        b.emit(makeRet());
    }

    const int mainProc = b.newProc("main");
    detail::emitFillArray(b, t1Base, tableWords, -1, params.seed, 0);
    detail::emitFillArray(b, t2Base, tableWords, -1,
                          params.seed * 31 + 7, 0);

    b.emit(makeMovImm(4, static_cast<std::int64_t>(params.seed | 1)));
    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(10)));
    auto rep = b.beginLoop(21, 20);

    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 8192));
    auto iter = b.beginLoop(1, 2);

    detail::emitLcg(b, 4, 5);
    b.emit(makeShr(6, 4, 20));
    b.emit(makeMovImm(7, tableWords - 1));
    b.emit(makeAnd(6, 6, 7));          // idx1
    b.emit(makeShr(8, 4, 40));
    b.emit(makeAnd(8, 8, 7));          // idx2
    b.emit(makeMovImm(9, static_cast<std::int64_t>(t1Base)));
    b.emit(makeAdd(9, 9, 6));
    b.emit(makeLoad(10, 9, 0));        // b1
    b.emit(makeMovImm(9, static_cast<std::int64_t>(t2Base)));
    b.emit(makeAdd(9, 9, 8));
    b.emit(makeLoad(16, 9, 0));        // b2

    // bitboard combination chains
    b.emit(makeShl(17, 16, 9));
    b.emit(makeOr(18, 10, 17));
    b.emit(makeXor(11, 18, 16));
    b.emit(makeShr(19, 11, 7));
    b.emit(makeXor(11, 11, 19));

    // full evaluation only on quiescent positions (1 in 16): highly
    // predictable branch, and the call leaves the hot path lean
    b.emit(makeMovImm(13, 15));
    b.emit(makeAnd(13, 11, 13));
    auto d = b.beginIf(makeBne(13, 0, -1));
    b.emit(makeShr(14, 11, 3));
    b.emit(makeXor(28, 28, 14));
    b.emit(makeAddImm(28, 28, 2));
    b.elseBranch(d);
    b.callProc(evalProc);              // popcount-style score in r12
    b.emit(makeAdd(28, 28, 12));
    b.emit(makeStore(9, 28, 0));       // rare table update
    b.joinUp(d);

    b.endLoop(iter);
    b.endLoop(rep);

    b.emit(makeMovImm(5, 8));
    b.emit(makeStore(5, 28, 0));
    b.emit(makeHalt());

    Program prog = b.build();
    prog.entryProc = mainProc;
    return prog;
}

} // namespace siq::workloads
