/**
 * @file
 * Synthetic SPECint2000-profile workloads.
 *
 * The paper evaluates on eleven SPECint2000 benchmarks compiled with
 * MachineSUIF. SPEC sources/binaries are unavailable here, so each
 * benchmark is replaced by a synthetic program *in our IR* whose
 * dynamic character models what drives the paper's per-benchmark
 * variation: ILP shape, branch predictability, memory footprint,
 * call density and cross-procedure FU contention. See DESIGN.md §2.
 *
 * Profiles (rationale in each generator's file):
 *  - gzip: high-ILP hash/window loops, cache-friendly
 *  - vpr: int+fp bounding-box cost loops, data-dependent abs branches
 *  - gcc: many tiny procedures, dense branching, a 24-way switch
 *  - mcf: serial pointer chasing over an L2-busting working set
 *  - crafty: bitboard logic chains, predictable branches, eval calls
 *  - parser: tree recursion with stack spills plus list walks
 *  - perlbmk: bytecode interpreter with a 16-way indirect dispatch
 *  - gap: digit-array multiply-accumulate with carry chains
 *  - vortex: call-dense object accessors, mul-heavy around calls
 *  - bzip2: sort loop, data-dependent compares, hot rank() callee
 *  - twolf: mixed int/fp cell-cost loops with occasional divides
 */

#ifndef SIQ_WORKLOADS_WORKLOADS_HH
#define SIQ_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.hh"

namespace siq::workloads
{

/** Knobs shared by all generators. */
struct WorkloadParams
{
    /**
     * Linear multiplier on the outermost repetition counts: the
     * natural (run-to-completion) dynamic length is roughly
     * scale * 2-4M instructions.
     */
    int scale = 1;
    /**
     * Divides the repetition counts (after scale); tests use large
     * divisors to get run-to-completion programs of ~100k dynamic
     * instructions.
     */
    int repDivisor = 1;
    /** Seed for all generator-internal randomness. */
    std::uint64_t seed = 12345;

    /** Outer repetition count for a generator's base value. */
    int
    reps(int base) const
    {
        const int r = base * scale / (repDivisor > 0 ? repDivisor : 1);
        return r > 0 ? r : 1;
    }
};

/** The eleven SPECint benchmark names, in the paper's figure order
 *  (a stable subset of familyNames() — see workloads/family.hh for
 *  the full registry including the parameterized families). */
const std::vector<std::string> &benchmarkNames();

/**
 * Generate the named workload. @p name is any canonical-or-not
 * workload spec string — a plain family name ("gzip") or a
 * parameterized one ("phased:period=60000") — resolved through the
 * family registry (workloads/family.hh). Fatal on unknown names,
 * with the registered families listed in the message.
 */
Program generate(const std::string &name, const WorkloadParams &params);

/// @name Individual generators.
/// @{
Program genGzip(const WorkloadParams &params);
Program genVpr(const WorkloadParams &params);
Program genGcc(const WorkloadParams &params);
Program genMcf(const WorkloadParams &params);
Program genCrafty(const WorkloadParams &params);
Program genParser(const WorkloadParams &params);
Program genPerlbmk(const WorkloadParams &params);
Program genGap(const WorkloadParams &params);
Program genVortex(const WorkloadParams &params);
Program genBzip2(const WorkloadParams &params);
Program genTwolf(const WorkloadParams &params);
/// @}

} // namespace siq::workloads

#endif // SIQ_WORKLOADS_WORKLOADS_HH
