/**
 * @file
 * Structured construction of siqsim programs.
 *
 * The builder keeps a cursor (current procedure, current block) and
 * offers helpers for the control shapes the synthetic SPECint-profile
 * workloads need: counted loops, calls with continuation blocks,
 * if/else diamonds and indirect-jump switches. It also manages the
 * data-memory image through a bump allocator.
 */

#ifndef SIQ_WORKLOADS_BUILDER_HH
#define SIQ_WORKLOADS_BUILDER_HH

#include <string>
#include <vector>

#include "ir/program.hh"

namespace siq
{

/** Incremental program constructor; see file comment. */
class ProgramBuilder
{
  public:
    ProgramBuilder(std::string name, std::uint64_t memWords);

    /// @name Procedures and blocks.
    /// @{
    /** Create a procedure (with its entry block) and switch to it. */
    int newProc(const std::string &name, bool isLibrary = false);
    /** Create an empty block in the current procedure. */
    int newBlock();
    /** Move the emission cursor to @p blockId in the current proc. */
    void switchTo(int blockId);
    void switchToProc(int procId, int blockId);
    int currentProc() const { return curProc; }
    int currentBlock() const { return curBlock; }
    /// @}

    /** Append an instruction to the current block. */
    void emit(const StaticInst &si);

    /** Set the current block's fallthrough and switch to the target. */
    void fallInto(int blockId);

    /** Terminate the current block with a jump (cursor unchanged). */
    void jumpTo(int blockId);

    /// @name Counted loops.
    /// @{
    struct Loop
    {
        int header = -1;
        int body = -1;
        int exit = -1;
        int counterReg = -1;
        int boundReg = -1;
    };

    /**
     * Open a loop `for (; counter < bound; counter += step)`.
     * The current block falls into the header; the cursor moves to the
     * first body block. The caller must initialise the counter first.
     */
    Loop beginLoop(int counterReg, int boundReg);

    /** Close a loop: bump the counter, jump back, cursor to exit. */
    void endLoop(const Loop &loop, std::int64_t step = 1);
    /// @}

    /**
     * Terminate the current block with a call; a fresh continuation
     * block is created and becomes the cursor.
     */
    void callProc(int procId);

    /// @name Two-way conditional (if/else diamond).
    /// @{
    struct Diamond
    {
        int thenBlock = -1;
        int elseBlock = -1;
        int join = -1;
    };

    /**
     * Terminate the current block with @p condBranch (its target is
     * patched to the then-block). Cursor moves to the then-block; use
     * elseBranch()/joinUp() to fill the rest.
     */
    Diamond beginIf(StaticInst condBranch);
    /** Jump from the current block to the join, cursor to else. */
    void elseBranch(const Diamond &d);
    /** Jump (or fall) into the join; cursor moves there. */
    void joinUp(const Diamond &d);
    /// @}

    /// @name Indirect-jump switch.
    /// @{
    struct Switch
    {
        std::vector<int> cases;
        int join = -1;
    };

    /**
     * Terminate the current block with an IJump over @p numCases new
     * case blocks. Cursor is left on the first case; the caller fills
     * each case (switchTo + emit) and ends it with jumpTo(join).
     */
    Switch beginSwitch(int indexReg, int numCases);
    /// @}

    /// @name Data memory.
    /// @{
    /** Reserve @p words of data memory; returns the base word address. */
    std::uint64_t alloc(std::uint64_t words);
    /** Set an initial memory value. */
    void initMem(std::uint64_t wordAddr, std::int64_t value);
    /// @}

    /** Finalize and return the program (builder becomes unusable). */
    Program build();

  private:
    BasicBlock &cur();

    Program prog;
    int curProc = -1;
    int curBlock = -1;
    std::uint64_t allocPtr = 64; // low words reserved (stack red zone)
    bool built = false;
};

} // namespace siq

#endif // SIQ_WORKLOADS_BUILDER_HH
