#include "workloads/builder.hh"

#include "common/logging.hh"

namespace siq
{

ProgramBuilder::ProgramBuilder(std::string name, std::uint64_t memWords)
{
    prog.name = std::move(name);
    prog.memWords = memWords;
}

BasicBlock &
ProgramBuilder::cur()
{
    SIQ_ASSERT(curProc >= 0 && curBlock >= 0, "no cursor");
    return prog.procs[curProc].blocks[curBlock];
}

int
ProgramBuilder::newProc(const std::string &name, bool isLibrary)
{
    Procedure proc;
    proc.id = static_cast<int>(prog.procs.size());
    proc.name = name;
    proc.isLibrary = isLibrary;
    prog.procs.push_back(std::move(proc));
    curProc = prog.procs.back().id;
    curBlock = -1;
    newBlock();
    curBlock = 0;
    return curProc;
}

int
ProgramBuilder::newBlock()
{
    SIQ_ASSERT(curProc >= 0, "no current procedure");
    auto &blocks = prog.procs[curProc].blocks;
    BasicBlock block;
    block.id = static_cast<int>(blocks.size());
    blocks.push_back(std::move(block));
    if (curBlock < 0)
        curBlock = blocks.back().id;
    return blocks.back().id;
}

void
ProgramBuilder::switchTo(int blockId)
{
    SIQ_ASSERT(blockId >= 0 &&
               blockId < static_cast<int>(
                   prog.procs[curProc].blocks.size()),
               "bad block id");
    curBlock = blockId;
}

void
ProgramBuilder::switchToProc(int procId, int blockId)
{
    SIQ_ASSERT(procId >= 0 &&
               procId < static_cast<int>(prog.procs.size()),
               "bad proc id");
    curProc = procId;
    switchTo(blockId);
}

void
ProgramBuilder::emit(const StaticInst &si)
{
    BasicBlock &block = cur();
    SIQ_ASSERT(block.terminator() == nullptr,
               "emitting past a terminator in block ", block.id);
    block.insts.push_back(si);
}

void
ProgramBuilder::fallInto(int blockId)
{
    cur().fallthrough = blockId;
    switchTo(blockId);
}

void
ProgramBuilder::jumpTo(int blockId)
{
    emit(makeJump(blockId));
}

ProgramBuilder::Loop
ProgramBuilder::beginLoop(int counterReg, int boundReg)
{
    Loop loop;
    loop.counterReg = counterReg;
    loop.boundReg = boundReg;
    loop.header = newBlock();
    loop.body = newBlock();
    loop.exit = newBlock();
    fallInto(loop.header);
    emit(makeBge(counterReg, boundReg, loop.exit));
    cur().fallthrough = loop.body;
    switchTo(loop.body);
    return loop;
}

void
ProgramBuilder::endLoop(const Loop &loop, std::int64_t step)
{
    emit(makeAddImm(loop.counterReg, loop.counterReg, step));
    jumpTo(loop.header);
    switchTo(loop.exit);
}

void
ProgramBuilder::callProc(int procId)
{
    const int cont = newBlock();
    emit(makeCall(procId));
    cur().fallthrough = cont;
    switchTo(cont);
}

ProgramBuilder::Diamond
ProgramBuilder::beginIf(StaticInst condBranch)
{
    SIQ_ASSERT(condBranch.traits().isBranch, "beginIf needs a branch");
    Diamond d;
    d.thenBlock = newBlock();
    d.elseBlock = newBlock();
    d.join = newBlock();
    condBranch.target = d.thenBlock;
    emit(condBranch);
    cur().fallthrough = d.elseBlock;
    switchTo(d.thenBlock);
    return d;
}

void
ProgramBuilder::elseBranch(const Diamond &d)
{
    jumpTo(d.join);
    switchTo(d.elseBlock);
}

void
ProgramBuilder::joinUp(const Diamond &d)
{
    fallInto(d.join);
}

ProgramBuilder::Switch
ProgramBuilder::beginSwitch(int indexReg, int numCases)
{
    SIQ_ASSERT(numCases > 0, "switch needs cases");
    Switch sw;
    emit(makeIJump(indexReg));
    const int origin = curBlock;
    sw.join = newBlock();
    for (int i = 0; i < numCases; i++)
        sw.cases.push_back(newBlock());
    auto &originBlock = prog.procs[curProc].blocks[origin];
    for (int caseBlock : sw.cases)
        originBlock.indirectTargets.push_back(caseBlock);
    switchTo(sw.cases.front());
    return sw;
}

std::uint64_t
ProgramBuilder::alloc(std::uint64_t words)
{
    SIQ_ASSERT(allocPtr + words <= prog.memWords,
               "data segment overflow: need ", allocPtr + words,
               " words, have ", prog.memWords);
    const std::uint64_t base = allocPtr;
    allocPtr += words;
    return base;
}

void
ProgramBuilder::initMem(std::uint64_t wordAddr, std::int64_t value)
{
    prog.memInit.emplace_back(wordAddr, value);
}

Program
ProgramBuilder::build()
{
    SIQ_ASSERT(!built, "build() called twice");
    built = true;
    prog.finalize();
    return std::move(prog);
}

} // namespace siq
