/**
 * @file
 * specfp family: SPECfp-profile long floating-point loop nests in the
 * style of swim/art/equake — `streams` independent array streams per
 * iteration with regular `stride` walks, a `depth`-long dependent fp
 * chain per element, and counted (perfectly predictable) loop control.
 * High ILP at wide/shallow settings, fp-latency-bound at deep ones;
 * either way the IQ demand is steady, the opposite of `phased`.
 *
 * Parameters (family.cc): streams (ILP width), depth (dependent chain
 * length), stride (words between accesses).
 */

#include "workloads/detail.hh"
#include "workloads/family.hh"

namespace siq::workloads
{

Program
genSpecfp(const WorkloadParams &params, const FamilyParams &fp)
{
    const std::int64_t streams = fp.at("streams"); // 1..8
    const std::int64_t depth = fp.at("depth");     // 1..8
    const std::int64_t stride = fp.at("stride");   // 1..64
    constexpr std::int64_t elems = 4096;

    // data image sized to the parameters: one strided source and one
    // dense destination array per stream
    const std::uint64_t words =
        64 + static_cast<std::uint64_t>(streams) *
                 static_cast<std::uint64_t>(elems * (stride + 1)) +
        1024;
    ProgramBuilder b("specfp", words);

    std::vector<std::uint64_t> src(static_cast<std::size_t>(streams));
    std::vector<std::uint64_t> dst(static_cast<std::size_t>(streams));
    for (std::int64_t s = 0; s < streams; s++) {
        src[static_cast<std::size_t>(s)] =
            b.alloc(static_cast<std::uint64_t>(elems * stride));
        dst[static_cast<std::size_t>(s)] =
            b.alloc(static_cast<std::uint64_t>(elems));
        // small masked values bit-cast to tiny doubles (as twolf's
        // penalty table does): pure dataflow, no control effect
        detail::emitFillArray(b, src[static_cast<std::size_t>(s)],
                              elems * stride, 0xffff,
                              params.seed + 7919 *
                                  static_cast<std::uint64_t>(s + 1));
    }

    b.newProc("main");

    // fp registers: per-stream accumulator and chain temporary, plus
    // one shared gain constant
    const int fGain = fpRegBase + 1;
    auto fAcc = [](std::int64_t s) {
        return fpRegBase + 2 + static_cast<int>(s);
    };
    auto fTmp = [](std::int64_t s) {
        return fpRegBase + 10 + static_cast<int>(s);
    };
    b.emit(makeFMovImm(fGain, 3));
    for (std::int64_t s = 0; s < streams; s++)
        b.emit(makeFMovImm(fAcc(s), 0));

    // int registers: per-stream source/destination cursors
    auto rSrc = [](std::int64_t s) { return 8 + static_cast<int>(s); };
    auto rDst = [](std::int64_t s) { return 16 + static_cast<int>(s); };

    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(24)));
    auto rep = b.beginLoop(21, 20);

    for (std::int64_t s = 0; s < streams; s++) {
        b.emit(makeMovImm(
            rSrc(s),
            static_cast<std::int64_t>(src[static_cast<std::size_t>(s)])));
        b.emit(makeMovImm(
            rDst(s),
            static_cast<std::int64_t>(dst[static_cast<std::size_t>(s)])));
    }

    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, elems));
    auto sweep = b.beginLoop(1, 2);
    for (std::int64_t s = 0; s < streams; s++) {
        // load, run the dependent chain, accumulate, store back —
        // streams are mutually independent, so the achievable ILP
        // scales with `streams` while `depth` sets the critical path
        b.emit(makeFLoad(fTmp(s), rSrc(s), 0));
        for (std::int64_t d = 0; d < depth; d++) {
            if (d % 2 == 0)
                b.emit(makeFMul(fTmp(s), fTmp(s), fGain));
            else
                b.emit(makeFAdd(fTmp(s), fTmp(s), fGain));
        }
        b.emit(makeFAdd(fAcc(s), fAcc(s), fTmp(s)));
        b.emit(makeFStore(rDst(s), fTmp(s), 0));
        b.emit(makeAddImm(rSrc(s), rSrc(s), stride));
        b.emit(makeAddImm(rDst(s), rDst(s), 1));
    }
    b.endLoop(sweep);

    b.endLoop(rep);

    // fold the per-stream accumulators and publish the checksum
    for (std::int64_t s = 1; s < streams; s++)
        b.emit(makeFAdd(fAcc(0), fAcc(0), fAcc(s)));
    b.emit(makeMovImm(5, 8));
    b.emit(makeFStore(5, fAcc(0), 0));
    b.emit(makeHalt());
    return b.build();
}

} // namespace siq::workloads
