/**
 * @file
 * gzip profile: LZ-style window hashing. High ILP (three independent
 * loads feed a shift/xor hash), a short data-dependent match check,
 * mostly L1-resident working set, almost no procedure calls. In the
 * paper gzip shows low IPC loss and solid power savings because its
 * wide-but-shallow DDG regions need only a modest number of IQ
 * entries.
 */

#include "workloads/detail.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{

Program
genGzip(const WorkloadParams &params)
{
    constexpr std::int64_t window = 4096;
    constexpr std::int64_t hashSize = 2048;

    ProgramBuilder b("gzip", 1 << 15);
    const std::uint64_t winBase = b.alloc(window);
    const std::uint64_t headBase = b.alloc(hashSize);
    const std::uint64_t prevBase = b.alloc(hashSize);

    b.newProc("main");

    // fill the window with 16-bit noise
    detail::emitFillArray(b, winBase, window, 0xFFFF, params.seed);

    // r21 = repetition counter, r20 = bound
    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(20)));
    auto rep = b.beginLoop(21, 20);

    // per-position deflate pass
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, window - 3));
    b.emit(makeMovImm(6, static_cast<std::int64_t>(winBase)));
    auto pos = b.beginLoop(1, 2);

    b.emit(makeAdd(3, 6, 1));          // addr = window + i
    b.emit(makeLoad(7, 3, 0));         // w0
    b.emit(makeLoad(8, 3, 1));         // w1
    b.emit(makeLoad(9, 3, 2));         // w2
    b.emit(makeShl(10, 8, 5));
    b.emit(makeShl(11, 9, 10));
    b.emit(makeXor(12, 7, 10));
    b.emit(makeXor(12, 12, 11));
    b.emit(makeMovImm(13, hashSize - 1));
    b.emit(makeAnd(12, 12, 13));       // hash
    b.emit(makeMovImm(14, static_cast<std::int64_t>(headBase)));
    b.emit(makeAdd(14, 14, 12));
    b.emit(makeLoad(15, 14, 0));       // h = head[hash]
    b.emit(makeMovImm(16, static_cast<std::int64_t>(prevBase)));
    b.emit(makeAnd(18, 1, 13));
    b.emit(makeAdd(16, 16, 18));
    b.emit(makeStore(16, 15, 0));      // prev[i & mask] = h
    b.emit(makeStore(14, 1, 0));       // head[hash] = i

    // match check when a chain head exists (usually taken: ~94%)
    auto d = b.beginIf(makeBne(15, 0, -1));
    b.emit(makeAnd(19, 15, 13));       // clamp candidate into window
    b.emit(makeAdd(22, 6, 19));
    b.emit(makeLoad(23, 22, 0));
    b.emit(makeLoad(24, 22, 1));
    b.emit(makeSub(25, 23, 7));
    b.emit(makeSub(26, 24, 8));
    b.emit(makeAdd(27, 25, 26));
    b.emit(makeAdd(28, 28, 27));       // accumulate match metric
    b.elseBranch(d);
    b.emit(makeAddImm(28, 28, 1));
    b.joinUp(d);

    b.endLoop(pos);
    b.endLoop(rep);

    // publish the checksum so the functional tests can observe it
    b.emit(makeMovImm(5, 8));
    b.emit(makeStore(5, 28, 0));
    b.emit(makeHalt());
    return b.build();
}

} // namespace siq::workloads
