/**
 * @file
 * phased family: composable alternation of a high-ILP streaming
 * phase and a serial memory-bound phase, with a configurable period
 * and duty cycle. The ILP phase runs eight independent accumulator
 * streams over a cache-resident array (instructions issue almost as
 * fast as they dispatch — low IQ occupancy, small IQ suffices); the
 * memory phase is an mcf-style serial chase through an L2-busting
 * cycle (dependents pile up behind outstanding misses — high IQ
 * occupancy). The alternation is exactly the time-varying IQ demand
 * that software-directed resizing targets and a fixed SPECint-style
 * profile cannot express; the per-phase occupancy split is asserted
 * by test_family.cc via the IQ occupancy counters.
 *
 * Parameters (family.cc): period (iterations per phase), duty
 * (percent of the period spent in the ILP phase), memStride (chase
 * cycle stride; odd values give one full cycle).
 */

#include "workloads/detail.hh"
#include "workloads/family.hh"

namespace siq::workloads
{

Program
genPhased(const WorkloadParams &params, const FamilyParams &fp)
{
    const std::int64_t period = fp.at("period");       // 64..1M
    const std::int64_t duty = fp.at("duty");           // 5..95
    const std::int64_t memStride = fp.at("memStride"); // 1..65535

    std::int64_t ilpIters = period * duty / 100;
    if (ilpIters < 1)
        ilpIters = 1;
    std::int64_t memIters = period - ilpIters;
    if (memIters < 1)
        memIters = 1;

    constexpr std::int64_t chaseWords = 1 << 17; // 1 MiB, 2x L2
    constexpr std::int64_t streamWords = 4096;   // cache-resident
    ProgramBuilder b("phased", 64 + chaseWords + streamWords + 1024);
    const std::uint64_t chaseBase =
        b.alloc(static_cast<std::uint64_t>(chaseWords));
    const std::uint64_t streamBase =
        b.alloc(static_cast<std::uint64_t>(streamWords));

    // chase image: one strided cycle (memStride forced odd => the
    // walk visits every word before repeating)
    {
        const std::int64_t stride = memStride | 1;
        for (std::int64_t i = 0; i < chaseWords; i++) {
            b.initMem(chaseBase + static_cast<std::uint64_t>(i),
                      (i + stride) & (chaseWords - 1));
        }
    }
    detail::emitFillArray(b, streamBase, streamWords, 0xffffff,
                          params.seed);

    b.newProc("main");
    b.emit(makeMovImm(6, static_cast<std::int64_t>(chaseBase)));
    b.emit(makeMovImm(7, static_cast<std::int64_t>(streamBase)));
    b.emit(makeMovImm(17, streamWords - 1)); // stream index mask
    b.emit(makeMovImm(15, static_cast<std::int64_t>(
                              params.seed & (chaseWords - 1)))); // chase pos
    b.emit(makeMovImm(28, 0)); // checksum

    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(64)));
    auto rep = b.beginLoop(21, 20);

    // --- high-ILP phase: independent streams over a hot array ------
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, ilpIters));
    auto ilp = b.beginLoop(1, 2);
    b.emit(makeShl(9, 1, 2));     // wrap four-word window into the
    b.emit(makeAnd(9, 9, 17));    // stream array
    b.emit(makeAdd(8, 7, 9));
    b.emit(makeLoad(10, 8, 0));
    b.emit(makeAdd(24, 24, 10));
    b.emit(makeLoad(11, 8, 1));
    b.emit(makeAdd(25, 25, 11));
    b.emit(makeLoad(12, 8, 2));
    b.emit(makeXor(26, 26, 12));
    b.emit(makeLoad(13, 8, 3));
    b.emit(makeAdd(27, 27, 13));
    b.emit(makeShl(14, 10, 1));
    b.emit(makeAdd(28, 28, 14));
    b.endLoop(ilp);

    // --- serial memory-bound phase: chase the strided cycle --------
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, memIters));
    auto chase = b.beginLoop(1, 2);
    b.emit(makeAdd(3, 6, 15));
    b.emit(makeLoad(15, 3, 0)); // serial: next position
    b.emit(makeAdd(28, 28, 15));
    b.endLoop(chase);

    b.endLoop(rep);

    // fold the stream accumulators and publish the checksum
    b.emit(makeAdd(28, 28, 24));
    b.emit(makeAdd(28, 28, 25));
    b.emit(makeAdd(28, 28, 26));
    b.emit(makeAdd(28, 28, 27));
    b.emit(makeMovImm(5, 8));
    b.emit(makeStore(5, 28, 0));
    b.emit(makeHalt());
    return b.build();
}

} // namespace siq::workloads
