/**
 * @file
 * Shared emission helpers for the workload generators. Internal to the
 * workloads library.
 */

#ifndef SIQ_WORKLOADS_DETAIL_HH
#define SIQ_WORKLOADS_DETAIL_HH

#include <cstdint>

#include "common/random.hh"
#include "workloads/builder.hh"

namespace siq::workloads::detail
{

/** Stack pointer register used by recursive workloads. */
constexpr int spReg = 30;

/**
 * Emit an in-register linear congruential step:
 * state = state * mulConst + addConst (clobbers @p tmp).
 */
inline void
emitLcg(ProgramBuilder &b, int state, int tmp,
        std::int64_t mulConst = 6364136223846793005ll,
        std::int64_t addConst = 1442695040888963407ll)
{
    b.emit(makeMovImm(tmp, mulConst));
    b.emit(makeMul(state, state, tmp));
    b.emit(makeAddImm(state, state, addConst));
}

/**
 * Fill @p words words at @p base with masked LCG noise through the
 * initial memory image (host-side, not simulated code). The paper
 * skips each benchmark's initialisation phase; building the data
 * image here keeps the simulated instruction budget on the kernels.
 * Values are (state >> shift) & mask with the emitLcg constants.
 */
inline void
emitFillArray(ProgramBuilder &b, std::uint64_t base,
              std::int64_t words, std::int64_t mask,
              std::uint64_t seed, int shift = 32)
{
    std::uint64_t state = seed | 1;
    for (std::int64_t i = 0; i < words; i++) {
        state = state * 6364136223846793005ull +
                1442695040888963407ull;
        const auto value = static_cast<std::int64_t>(
            (state >> shift) &
            static_cast<std::uint64_t>(mask));
        b.initMem(base + static_cast<std::uint64_t>(i), value);
    }
}

/** Push @p reg to the software stack (grows upward). */
inline void
emitPush(ProgramBuilder &b, int reg)
{
    b.emit(makeStore(spReg, reg, 0));
    b.emit(makeAddImm(spReg, spReg, 1));
}

/** Pop the top of the software stack into @p reg. */
inline void
emitPop(ProgramBuilder &b, int reg)
{
    b.emit(makeAddImm(spReg, spReg, -1));
    b.emit(makeLoad(reg, spReg, 0));
}

} // namespace siq::workloads::detail

#endif // SIQ_WORKLOADS_DETAIL_HH
