/**
 * @file
 * gap profile: computer-algebra digit arithmetic. Multiply-accumulate
 * over digit arrays with a serial carry chain — steady IntMul pressure
 * and a medium, L2-resident working set.
 */

#include "workloads/detail.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{

Program
genGap(const WorkloadParams &params)
{
    constexpr std::int64_t poolWords = 4096; // digit pool, L1-resident
    constexpr std::int64_t digits = 64;

    ProgramBuilder b("gap", 1 << 16);
    const std::uint64_t poolBase = b.alloc(poolWords);
    const std::uint64_t resultBase = b.alloc(2 * digits);

    b.newProc("main");
    detail::emitFillArray(b, poolBase, poolWords, 0xFFFFFFFFll,
                          params.seed);

    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(9)));
    auto rep = b.beginLoop(21, 20);

    // 256 number pairs per repetition
    b.emit(makeMovImm(22, 0));
    b.emit(makeMovImm(23, 256));
    auto pair = b.beginLoop(22, 23);

    // select operand bases from the pool
    b.emit(makeMovImm(5, 2654435761ll));
    b.emit(makeMul(6, 22, 5));
    b.emit(makeMovImm(7, poolWords - 2 * digits - 1));
    b.emit(makeAnd(6, 6, 7));
    b.emit(makeMovImm(8, static_cast<std::int64_t>(poolBase)));
    b.emit(makeAdd(9, 8, 6));          // a base
    b.emit(makeAddImm(10, 9, digits)); // b base
    b.emit(makeMovImm(11, static_cast<std::int64_t>(resultBase)));
    b.emit(makeMovImm(12, 0));         // carry

    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, digits));
    auto mac = b.beginLoop(1, 2);
    b.emit(makeAdd(13, 9, 1));
    b.emit(makeLoad(14, 13, 0));       // da
    b.emit(makeMovImm(15, 7));
    b.emit(makeMul(16, 1, 15));
    b.emit(makeMovImm(15, digits - 1));
    b.emit(makeAnd(16, 16, 15));
    b.emit(makeAdd(16, 10, 16));
    b.emit(makeLoad(17, 16, 0));       // db (permuted index)
    b.emit(makeMul(18, 14, 17));       // p = da * db
    b.emit(makeAdd(19, 11, 1));
    b.emit(makeLoad(24, 19, 0));       // c[i]
    b.emit(makeAdd(25, 24, 18));
    b.emit(makeAdd(25, 25, 12));       // + carry (serial chain)
    b.emit(makeShr(12, 25, 32));       // carry out
    b.emit(makeMovImm(26, 0xFFFFFFFFll));
    b.emit(makeAnd(25, 25, 26));
    b.emit(makeStore(19, 25, 0));      // c[i] = low digit
    b.endLoop(mac);

    b.emit(makeAdd(28, 28, 12));       // fold final carries
    b.endLoop(pair);
    b.endLoop(rep);

    b.emit(makeMovImm(5, 8));
    b.emit(makeStore(5, 28, 0));
    b.emit(makeHalt());
    return b.build();
}

} // namespace siq::workloads
