/**
 * @file
 * server family: OLTP-style hash-index probing. Each probe draws a
 * key from an in-register LCG, hashes it into a large node table and
 * walks `probeDepth` pointer hops; consecutive probes are mutually
 * independent (memory-level parallelism across short dependent
 * chains, unlike mcf's single serial chase). The walked payloads
 * feed ~50/50 data-dependent branches, so branch prediction is hard;
 * the `footprintLog2`-word table busts the cache hierarchy; and
 * `hotPct` redirects a slice of the probes to a cache-resident hot
 * subset, modelling skewed (Zipf-ish) key popularity.
 *
 * Parameters (family.cc): footprintLog2, probeDepth, hotPct.
 */

#include "workloads/detail.hh"
#include "workloads/family.hh"

namespace siq::workloads
{

Program
genServer(const WorkloadParams &params, const FamilyParams &fp)
{
    const std::int64_t footprintLog2 = fp.at("footprintLog2"); // 14..21
    const std::int64_t probeDepth = fp.at("probeDepth");       // 1..8
    const std::int64_t hotPct = fp.at("hotPct");               // 0..90

    // 4 words per node: [next index, payload, key, pad]
    const std::int64_t numNodes = std::int64_t{1} << (footprintLog2 - 2);
    const std::uint64_t tableWords =
        static_cast<std::uint64_t>(4 * numNodes);
    ProgramBuilder b("server", 64 + tableWords + 1024);
    const std::uint64_t nodeBase = b.alloc(tableWords);

    b.newProc("main");

    // initial image: next pointers are seed-dependent noise (a random
    // functional graph — probes walk a few hops, not full cycles),
    // payloads are 16-bit noise for the comparison branches
    {
        std::uint64_t state = params.seed | 1;
        for (std::int64_t i = 0; i < numNodes; i++) {
            const auto addr =
                nodeBase + static_cast<std::uint64_t>(4 * i);
            state = state * 6364136223846793005ull +
                    1442695040888963407ull;
            b.initMem(addr, static_cast<std::int64_t>(
                                (state >> 24) &
                                static_cast<std::uint64_t>(numNodes - 1)));
            state = state * 6364136223846793005ull +
                    1442695040888963407ull;
            b.initMem(addr + 1,
                      static_cast<std::int64_t>(state >> 48));
        }
    }

    b.emit(makeMovImm(6, static_cast<std::int64_t>(nodeBase)));
    b.emit(makeMovImm(17, numNodes - 1)); // index mask
    // hot subset: numNodes/64 nodes ≈ footprint/64, cache-resident
    b.emit(makeMovImm(18, numNodes / 64 - 1)); // hot mask
    b.emit(makeMovImm(19, (hotPct << 7) / 100)); // threshold of 128
    b.emit(makeMovImm(7, static_cast<std::int64_t>(
                             (params.seed >> 1) | 1))); // key state
    b.emit(makeMovImm(28, 0)); // checksum

    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(20)));
    auto rep = b.beginLoop(21, 20);

    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 4096)); // probes per pass
    auto probe = b.beginLoop(1, 2);

    // next key (in-register LCG) and its hash-index
    detail::emitLcg(b, 7, 9);
    b.emit(makeShr(10, 7, 33));
    b.emit(makeAnd(10, 10, 17));

    if (hotPct > 0) {
        // skewed popularity: redirect (key noise < threshold) probes
        // into the hot subset — a data-dependent, biased branch
        b.emit(makeShr(11, 7, 8));
        b.emit(makeMovImm(12, 127));
        b.emit(makeAnd(11, 11, 12));
        auto hot = b.beginIf(makeBlt(11, 19, -1));
        b.emit(makeAnd(10, 10, 18));
        b.elseBranch(hot);
        b.emit(makeNop());
        b.joinUp(hot);
    }

    // walk probeDepth hops: short dependent chain, but the *next*
    // probe's hash does not depend on this walk, so independent
    // probes overlap in the machine (server-style MLP)
    for (std::int64_t d = 0; d < probeDepth; d++) {
        b.emit(makeShl(3, 10, 2));
        b.emit(makeAdd(3, 3, 6));
        b.emit(makeLoad(10, 3, 0));  // next node index
        b.emit(makeLoad(13, 3, 1));  // payload
        b.emit(makeAdd(28, 28, 13));
    }

    // ~50/50 payload comparison: the hard-to-predict branch per probe
    b.emit(makeMovImm(14, 32768));
    auto d = b.beginIf(makeBlt(13, 14, -1));
    b.emit(makeAddImm(28, 28, 1));
    b.elseBranch(d);
    b.emit(makeXor(28, 28, 13));
    b.joinUp(d);

    b.endLoop(probe);
    b.endLoop(rep);

    b.emit(makeMovImm(5, 8));
    b.emit(makeStore(5, 28, 0));
    b.emit(makeHalt());
    return b.build();
}

} // namespace siq::workloads
