#include "workloads/workloads.hh"

#include "common/logging.hh"

namespace siq::workloads
{

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "gzip", "vpr",     "gcc", "mcf",    "crafty", "parser",
        "perlbmk", "gap", "vortex", "bzip2", "twolf",
    };
    return names;
}

Program
generate(const std::string &name, const WorkloadParams &params)
{
    if (name == "gzip")
        return genGzip(params);
    if (name == "vpr")
        return genVpr(params);
    if (name == "gcc")
        return genGcc(params);
    if (name == "mcf")
        return genMcf(params);
    if (name == "crafty")
        return genCrafty(params);
    if (name == "parser")
        return genParser(params);
    if (name == "perlbmk")
        return genPerlbmk(params);
    if (name == "gap")
        return genGap(params);
    if (name == "vortex")
        return genVortex(params);
    if (name == "bzip2")
        return genBzip2(params);
    if (name == "twolf")
        return genTwolf(params);
    fatal("unknown workload: ", name);
}

} // namespace siq::workloads
