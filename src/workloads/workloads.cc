#include "workloads/workloads.hh"

#include "workloads/family.hh"

namespace siq::workloads
{

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "gzip", "vpr",     "gcc", "mcf",    "crafty", "parser",
        "perlbmk", "gap", "vortex", "bzip2", "twolf",
    };
    return names;
}

Program
generate(const std::string &name, const WorkloadParams &params)
{
    // one lookup path for every workload: plain benchmark names and
    // parameterized family specs both resolve through the registry
    return generate(WorkloadSpec::parse(name), params);
}

} // namespace siq::workloads
