/**
 * @file
 * bzip2 profile: block sorting. An insertion-style sort pass with
 * data-dependent compare branches, plus a hot rank() helper called
 * from inside the inner loop whose multiplies contend with the
 * caller's — the second Improved-scheme target in the paper (bzip2
 * "previously had the highest IPC loss showing that inter-procedural
 * functional unit contention was significant").
 */

#include "workloads/detail.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{

Program
genBzip2(const WorkloadParams &params)
{
    constexpr std::int64_t blockWords = 4096; // 32 KiB, L1-resident

    ProgramBuilder b("bzip2", 1 << 17);
    const std::uint64_t blockBase = b.alloc(blockWords);

    // rank(v in r11) -> r12: key ranking whose bucket divide holds an
    // IntMul unit across the return — the inter-procedural contention
    // the paper's Improved analysis recovers for bzip2
    const int rankProc = b.newProc("rank");
    {
        b.emit(makeMovImm(13, 2654435761ll));
        b.emit(makeMul(12, 11, 13));
        b.emit(makeMovImm(14, 255));
        b.emit(makeDiv(15, 12, 14));       // bucket divide
        b.emit(makeShr(14, 12, 16));
        b.emit(makeMovImm(13, 40503ll));
        b.emit(makeMul(14, 14, 13));
        b.emit(makeXor(12, 12, 14));
        b.emit(makeAdd(12, 12, 15));
        b.emit(makeRet());
    }

    const int mainProc = b.newProc("main");
    detail::emitFillArray(b, blockBase, blockWords, 0xFFFFFll,
                          params.seed);

    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(11)));
    auto rep = b.beginLoop(21, 20);

    // one sorting pass over a sliding window of the block
    b.emit(makeMovImm(1, 1));
    b.emit(makeMovImm(2, blockWords - 1));
    b.emit(makeMovImm(6, static_cast<std::int64_t>(blockBase)));
    auto pass = b.beginLoop(1, 2);

    b.emit(makeAdd(3, 6, 1));
    b.emit(makeLoad(7, 3, 0));         // key = block[i]
    b.emit(makeLoad(8, 3, -1));        // prev = block[i-1]

    // caller-side multiply and bucket divide feeding the comparison
    b.emit(makeMovImm(9, 65599ll));
    b.emit(makeMul(10, 7, 9));
    b.emit(makeMovImm(9, 127));
    b.emit(makeDiv(9, 8, 9));

    // rank every other key — hot enough that
    // its divide tail dominates bzip2's IPC loss until the Improved
    // scheme provisions across the boundary
    b.emit(makeMovImm(11, 1));
    b.emit(makeAnd(11, 1, 11));
    auto dCall = b.beginIf(makeBne(11, 0, -1));
    b.emit(makeOr(12, 7, 0));          // unranked: key passes through
    b.elseBranch(dCall);
    b.emit(makeOr(11, 7, 0));
    b.callProc(rankProc);              // hot callee with divides
    b.joinUp(dCall);

    // data-dependent compare-and-swap (~50/50 on noise); only the
    // keep-path consumes the rank, so half the iterations can run
    // ahead of the callee's tail
    auto d = b.beginIf(makeBlt(7, 8, -1));
    b.emit(makeStore(3, 8, 0));        // swap
    b.emit(makeStore(3, 7, -1));
    b.emit(makeAddImm(28, 28, 1));
    b.elseBranch(d);
    b.emit(makeAdd(10, 10, 12));
    b.emit(makeAdd(10, 10, 9));
    b.emit(makeAdd(28, 28, 10));
    b.joinUp(d);

    b.endLoop(pass);
    b.endLoop(rep);

    b.emit(makeMovImm(5, 8));
    b.emit(makeStore(5, 28, 0));
    b.emit(makeHalt());

    Program prog = b.build();
    prog.entryProc = mainProc;
    return prog;
}

} // namespace siq::workloads
