/**
 * @file
 * perlbmk profile: bytecode interpreter. A 16-way indirect dispatch
 * over random opcodes (hard for the BTB's last-target prediction),
 * operand-stack traffic through memory, and helper procedures — one of
 * them flagged as a library routine to exercise the paper's §4.4 rule
 * (library calls force the IQ to its maximum).
 */

#include "workloads/detail.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{

Program
genPerlbmk(const WorkloadParams &params)
{
    constexpr std::int64_t codeWords = 8192;
    constexpr int numOps = 16;
    constexpr std::int64_t stackWords = 8192;

    ProgramBuilder b("perlbmk", 1 << 16);
    const std::uint64_t codeBase = b.alloc(codeWords);
    const std::uint64_t stackBase = b.alloc(stackWords);

    // helper: string-hash-ish math on r11 -> r12
    const int helperProc = b.newProc("sv_magic");
    {
        b.emit(makeMovImm(13, 1099511628211ll));
        b.emit(makeMul(12, 11, 13));
        b.emit(makeShr(14, 12, 7));
        b.emit(makeXor(12, 12, 14));
        b.emit(makeRet());
    }

    // library allocation stub (paper §4.4: IQ maxed before the call)
    const int allocProc = b.newProc("perl_malloc", /*isLibrary=*/true);
    {
        b.emit(makeAddImm(24, 24, 16)); // bump a fake heap pointer
        b.emit(makeOr(12, 24, 0));
        b.emit(makeRet());
    }

    // interpreter: runs the whole bytecode buffer once
    const int interpProc = b.newProc("interp");
    {
        b.emit(makeMovImm(15, 0));             // pc
        b.emit(makeMovImm(16, codeWords));
        b.emit(makeMovImm(17, static_cast<std::int64_t>(codeBase)));
        auto loop = b.beginLoop(15, 16);
        b.emit(makeAdd(18, 17, 15));
        b.emit(makeLoad(10, 18, 0));           // opcode
        auto sw = b.beginSwitch(10, numOps);
        for (int c = 0; c < numOps; c++) {
            b.switchTo(sw.cases[static_cast<std::size_t>(c)]);
            switch (c % 5) {
              case 0: // push constant
                b.emit(makeMovImm(19, c * 3 + 1));
                detail::emitPush(b, 19);
                break;
              case 1: // pop two, add, push
                detail::emitPop(b, 19);
                detail::emitPop(b, 22);
                b.emit(makeAdd(19, 19, 22));
                detail::emitPush(b, 19);
                break;
              case 2: // arithmetic on the accumulator
                b.emit(makeAddImm(28, 28, c));
                b.emit(makeXor(28, 28, 10));
                break;
              case 3: // helper call
                b.emit(makeOr(11, 28, 0));
                b.callProc(helperProc);
                b.emit(makeAdd(28, 28, 12));
                break;
              default: // library call
                b.callProc(allocProc);
                b.emit(makeAdd(28, 28, 12));
                break;
            }
            b.jumpTo(sw.join);
        }
        b.switchTo(sw.join);
        // keep the operand stack from drifting out of its region
        b.emit(makeMovImm(19, static_cast<std::int64_t>(
            stackBase + stackWords / 2)));
        b.emit(makeMovImm(22, 1023));
        b.emit(makeAnd(23, detail::spReg, 22));
        b.emit(makeAdd(detail::spReg, 19, 23));
        b.endLoop(loop);
        b.emit(makeRet());
    }

    const int mainProc = b.newProc("main");
    detail::emitFillArray(b, codeBase, codeWords, numOps - 1,
                          params.seed);
    b.emit(makeMovImm(detail::spReg, static_cast<std::int64_t>(
        stackBase + stackWords / 2)));
    b.emit(makeMovImm(24, 0));

    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(14)));
    auto rep = b.beginLoop(21, 20);
    b.callProc(interpProc);
    b.endLoop(rep);

    b.emit(makeMovImm(5, 8));
    b.emit(makeStore(5, 28, 0));
    b.emit(makeHalt());

    Program prog = b.build();
    prog.entryProc = mainProc;
    return prog;
}

} // namespace siq::workloads
