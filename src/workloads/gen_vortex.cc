/**
 * @file
 * vortex profile: object-database transactions. The defining property
 * (per the paper) is functional-unit contention *across procedure
 * boundaries*: tiny accessor procedures do multiply-heavy address
 * arithmetic while their callers are also multiplying, so an analysis
 * that stops at the call boundary under-provisions the IQ. vortex has
 * the worst IPC loss under the NOOP scheme and improves dramatically
 * under the Improved scheme's inter-procedural contention analysis.
 */

#include "workloads/detail.hh"
#include "workloads/workloads.hh"

namespace siq::workloads
{

Program
genVortex(const WorkloadParams &params)
{
    constexpr std::int64_t objWords = 65536; // 512 KiB object heap
    constexpr int numAccessors = 8;

    ProgramBuilder b("vortex", 1 << 17);
    const std::uint64_t objBase = b.alloc(objWords);

    // accessors: get_field_k(handle r11) -> r12; the hash-modulo
    // divide occupies an IntMul unit for its full latency, so callers
    // whose own multiplies follow the return contend with it — the
    // paper's cross-procedure FU contention
    std::vector<int> accessors;
    for (int k = 0; k < numAccessors; k++) {
        const int proc = b.newProc("get_field" + std::to_string(k));
        accessors.push_back(proc);
        b.emit(makeMovImm(13, 16 + k * 8));
        b.emit(makeMul(14, 11, 13));       // slot = handle * objSize
        b.emit(makeMovImm(15, objWords - 1));
        b.emit(makeAnd(14, 14, 15));
        b.emit(makeMovImm(16, static_cast<std::int64_t>(objBase)));
        b.emit(makeAdd(14, 14, 16));
        b.emit(makeLoad(12, 14, k % 4));
        b.emit(makeMovImm(15, 97 + k));
        b.emit(makeDiv(18, 11, 15));       // chain = handle / prime
        b.emit(makeMovImm(13, 2246822519ll));
        b.emit(makeMul(12, 12, 13));       // field checksum
        b.emit(makeAdd(12, 12, 18));
        b.emit(makeRet());
    }

    // commit: marked library (paper §4.4)
    const int commitProc = b.newProc("db_commit", /*isLibrary=*/true);
    {
        b.emit(makeMovImm(13, static_cast<std::int64_t>(objBase)));
        b.emit(makeMovImm(14, objWords - 1));
        b.emit(makeAnd(15, 28, 14));
        b.emit(makeAdd(13, 13, 15));
        b.emit(makeStore(13, 28, 0));
        b.emit(makeRet());
    }

    const int mainProc = b.newProc("main");
    detail::emitFillArray(b, objBase, objWords, 0x3FFFFFll,
                          params.seed);

    b.emit(makeMovImm(21, 0));
    b.emit(makeMovImm(20, params.reps(900)));
    auto rep = b.beginLoop(21, 20);

    // one "transaction": 24 object touches, each bracketed by caller-
    // side multiplies that contend with the accessor's multiplies
    b.emit(makeMovImm(1, 0));
    b.emit(makeMovImm(2, 24));
    auto txn = b.beginLoop(1, 2);
    b.emit(makeMovImm(5, 40503ll));
    b.emit(makeMul(11, 21, 5));        // caller-side mul
    b.emit(makeAdd(11, 11, 1));
    b.emit(makeMovImm(6, 65599ll));
    b.emit(makeMul(7, 11, 6));         // caller-side mul (dead-ish)
    b.callProc(accessors[0]);
    b.emit(makeAdd(26, 12, 7));
    b.emit(makeMul(27, 26, 6));        // caller-side mul after return
    b.callProc(accessors[1]);
    b.emit(makeAdd(26, 26, 12));
    b.callProc(accessors[2]);
    b.emit(makeXor(26, 26, 12));
    b.emit(makeMul(27, 27, 26));
    b.callProc(accessors[3]);
    b.emit(makeAdd(28, 28, 12));
    b.emit(makeAdd(28, 28, 27));
    // rotate through the remaining accessors by transaction parity
    b.emit(makeMovImm(8, 3));
    b.emit(makeAnd(8, 1, 8));
    auto d = b.beginIf(makeBne(8, 0, -1));
    b.callProc(accessors[4]);
    b.emit(makeAdd(28, 28, 12));
    b.callProc(accessors[5]);
    b.emit(makeAdd(28, 28, 12));
    b.elseBranch(d);
    b.callProc(accessors[6]);
    b.emit(makeAdd(28, 28, 12));
    b.callProc(accessors[7]);
    b.emit(makeSub(28, 28, 12));
    b.joinUp(d);
    b.endLoop(txn);

    // commit via the library stub every transaction batch
    b.callProc(commitProc);
    b.endLoop(rep);

    b.emit(makeMovImm(5, 8));
    b.emit(makeStore(5, 28, 0));
    b.emit(makeHalt());

    Program prog = b.build();
    prog.entryProc = mainProc;
    return prog;
}

} // namespace siq::workloads
