/**
 * @file
 * Abella & González power-aware adaptive issue queue and reorder
 * buffer ("IqRob64", HiPC 2003 / UPC-DAC-2002-31) — the paper's main
 * hardware comparator ("abella").
 *
 * Reconstruction note: the HPCA paper cites but does not reproduce the
 * exact heuristic tables, and the original report is not distributed
 * with this repository. This implementation follows the published
 * family: interval-based monitoring of occupancy and of the
 * performance pressure caused by the current limit, joint IQ+ROB
 * resizing at bank granularity, and a 64-entry ROB floor (the "64" in
 * IqRob64). Thresholds are calibrated so the baseline machine lands at
 * the operating point the paper reports for abella (~3% IPC loss with
 * ~39%/30% dynamic/static IQ savings); EXPERIMENTS.md records the
 * calibration.
 */

#ifndef SIQ_ADAPTIVE_ABELLA_HH
#define SIQ_ADAPTIVE_ABELLA_HH

#include <cstdint>

#include "cpu/resize.hh"

namespace siq
{

/** Tuning knobs for the Abella&González-style resizer. */
struct AbellaConfig
{
    int iqSize = 80;
    int robSize = 128;
    int portion = 8;      ///< IQ resize granularity
    int minIq = 16;
    int robFloor = 64;    ///< the "64" in IqRob64
    std::uint64_t intervalCycles = 16384;
    /**
     * Shrink when the interval's average occupancy leaves at least
     * one spare portion under the current limit. Averages react
     * slowly to phase changes — the "inevitable delay in sensing"
     * the paper holds against hardware-only adaptation.
     */
    int slackPortions = 1;
    /** Grow when limit-induced dispatch stalls exceed this fraction. */
    double stallFractionToGrow = 0.05;
};

/** Joint IQ/ROB occupancy limiter. */
class AbellaResizer : public IqLimitController
{
  public:
    explicit AbellaResizer(const AbellaConfig &config);

    void tick(const ResizeSignals &signals) override;
    int iqLimit() const override { return limit; }
    int robLimit() const override;

    std::uint64_t
    decisionHorizon() const override
    {
        return cfg.intervalCycles - cycleInInterval;
    }

  private:
    AbellaConfig cfg;
    int limit;
    std::uint64_t cycleInInterval = 0;
    std::uint64_t occupancySum = 0;
    std::uint64_t limitStallCycles = 0;
};

} // namespace siq

#endif // SIQ_ADAPTIVE_ABELLA_HH
