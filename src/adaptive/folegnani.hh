/**
 * @file
 * Folegnani & González adaptive issue queue resizing (ISCA 2001,
 * "Energy-effective issue logic") as a hardware comparator.
 *
 * Their heuristic: the queue is viewed in portions (one bank here);
 * every interval, if the youngest portion contributed almost nothing
 * to the instructions issued, the effective size shrinks by one
 * portion; the size is re-expanded by one portion periodically so the
 * queue can react to new phases. This is the family of "inevitable
 * delay in sensing rapid phase changes" techniques the paper contrasts
 * against.
 */

#ifndef SIQ_ADAPTIVE_FOLEGNANI_HH
#define SIQ_ADAPTIVE_FOLEGNANI_HH

#include <cstdint>

#include "cpu/resize.hh"

namespace siq
{

/** Tuning knobs for the Folegnani&González resizer. */
struct FolegnaniConfig
{
    int iqSize = 80;
    int portion = 8;          ///< resize granularity (one bank)
    int minSize = 16;
    std::uint64_t intervalCycles = 1000;
    /** Shrink when youngest-portion issues fall at/below this. */
    std::uint64_t contributionThreshold = 4;
    /** Grow one portion every this many intervals. */
    int expandPeriod = 4;
};

/** The resizer; limits IQ occupancy only (ROB untouched). */
class FolegnaniResizer : public IqLimitController
{
  public:
    explicit FolegnaniResizer(const FolegnaniConfig &config);

    void tick(const ResizeSignals &signals) override;
    int iqLimit() const override { return limit; }
    int robLimit() const override { return 1 << 30; }

    std::uint64_t
    decisionHorizon() const override
    {
        return cfg.intervalCycles - cycleInInterval;
    }

  private:
    FolegnaniConfig cfg;
    int limit;
    std::uint64_t cycleInInterval = 0;
    std::uint64_t youngIssues = 0;
    int intervalsSinceExpand = 0;
};

} // namespace siq

#endif // SIQ_ADAPTIVE_FOLEGNANI_HH
