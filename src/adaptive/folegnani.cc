#include "adaptive/folegnani.hh"

#include <algorithm>

namespace siq
{

FolegnaniResizer::FolegnaniResizer(const FolegnaniConfig &config)
    : cfg(config), limit(config.iqSize)
{}

void
FolegnaniResizer::tick(const ResizeSignals &signals)
{
    youngIssues +=
        static_cast<std::uint64_t>(signals.issuedFromYoungestBank);
    if (++cycleInInterval < cfg.intervalCycles)
        return;

    if (youngIssues <= cfg.contributionThreshold) {
        limit = std::max(cfg.minSize, limit - cfg.portion);
    }
    if (++intervalsSinceExpand >= cfg.expandPeriod) {
        limit = std::min(cfg.iqSize, limit + cfg.portion);
        intervalsSinceExpand = 0;
    }
    cycleInInterval = 0;
    youngIssues = 0;
}

} // namespace siq
