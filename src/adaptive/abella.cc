#include "adaptive/abella.hh"

#include <algorithm>

namespace siq
{

AbellaResizer::AbellaResizer(const AbellaConfig &config)
    : cfg(config), limit(config.iqSize)
{}

int
AbellaResizer::robLimit() const
{
    // the ROB limit scales with the IQ limit but never drops below
    // the 64-entry floor that names the IqRob64 configuration
    const int scaled = limit * cfg.robSize / cfg.iqSize;
    return std::max(cfg.robFloor, scaled);
}

void
AbellaResizer::tick(const ResizeSignals &signals)
{
    occupancySum += static_cast<std::uint64_t>(signals.iqValid);
    if (signals.dispatchStalledByLimit)
        limitStallCycles++;
    if (++cycleInInterval < cfg.intervalCycles)
        return;

    const double stallFrac =
        static_cast<double>(limitStallCycles) /
        static_cast<double>(cfg.intervalCycles);
    const auto avgOccupancy = static_cast<int>(
        occupancySum / cfg.intervalCycles);

    if (stallFrac > cfg.stallFractionToGrow) {
        // the limit is hurting: back off
        limit = std::min(cfg.iqSize, limit + cfg.portion);
    } else if (avgOccupancy <=
               limit - cfg.slackPortions * cfg.portion) {
        // on average a whole portion sat unused: shrink toward the
        // average plus one portion of headroom (bursts above the
        // average pay the adaptation-lag price)
        const int target = avgOccupancy + cfg.portion;
        limit = std::max(cfg.minIq,
                         std::max(target, limit - 2 * cfg.portion));
    }

    cycleInInterval = 0;
    occupancySum = 0;
    limitStallCycles = 0;
}

} // namespace siq
