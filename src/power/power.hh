/**
 * @file
 * Event-based power models for the issue queue and register files.
 *
 * Wattch-style accounting: dynamic energy is a weighted sum of event
 * counts (CAM comparisons, tag drives, queue reads/writes, selection,
 * and per-powered-bank conditional clocking); static power is leakage
 * per powered bank plus an ungateable floor (selection and control
 * logic stay on — paper §3.1). The paper reports *relative* savings,
 * which depend on the event counts and bank occupancy the simulator
 * measures exactly, not on absolute capacitances; the default weights
 * below follow Wattch's relative magnitudes for an 80-entry CAM/RAM
 * queue (wakeup dominates, then payload reads/writes, then select).
 *
 * Three accounting modes reproduce the paper's comparisons from the
 * same run:
 *  - Conventional: every operand slot precharges on every broadcast
 *    and every bank is clocked/leaking — the savings baseline;
 *  - NonEmptyGated: empty and ready operands are precharge-gated
 *    (Folegnani&González), banks all on — figure 8's "nonEmpty" bar
 *    when applied to the baseline run;
 *  - Resized: operand gating plus bank power gating — the accounting
 *    for the compiler-directed and adaptive techniques.
 */

#ifndef SIQ_POWER_POWER_HH
#define SIQ_POWER_POWER_HH

#include <cstdint>

#include "cpu/core.hh"
#include "cpu/iq.hh"

namespace siq::power
{

/** Accounting mode; see file comment. */
enum class IqMode
{
    Conventional,
    NonEmptyGated,
    Resized,
};

/** Issue queue energy weights (arbitrary units). */
struct IqPowerParams
{
    double wakeupCmpEnergy = 1.0;     ///< per operand comparison
    double tagDriveEnergyPerBank = 1.0; ///< per broadcast, per bank on
    double dispatchWriteEnergy = 40.0; ///< per instruction written
    double issueReadEnergy = 40.0;    ///< per instruction read out
    double selectEnergyPerCycle = 15.0; ///< selection logic, always on
    double bankClockEnergyPerCycle = 12.0; ///< per powered bank
    double bankLeakPerCycle = 1.0;    ///< static, per powered bank
    double floorLeakPerCycle = 10.0;  ///< static, never gated
};

/** Register file energy weights. */
struct RfPowerParams
{
    double readEnergy = 1.0;
    double writeEnergy = 1.3;
    double bankClockEnergyPerCycle = 0.25; ///< per powered bank
    double bankLeakPerCycle = 1.0;
    double floorLeakPerCycle = 11.0;
};

/** Power result: energies plus per-cycle (power) figures. */
struct PowerBreakdown
{
    double dynamicEnergy = 0.0;
    double staticEnergy = 0.0;
    std::uint64_t cycles = 0;

    double
    dynamicPower() const
    {
        return cycles ? dynamicEnergy / static_cast<double>(cycles)
                      : 0.0;
    }

    double
    staticPower() const
    {
        return cycles ? staticEnergy / static_cast<double>(cycles)
                      : 0.0;
    }
};

/** Issue queue power for one run under the chosen accounting mode. */
PowerBreakdown iqPower(const IqEventCounts &events,
                       const IqPowerParams &params, IqMode mode);

/** RF inputs distilled from CoreStats (one file). */
struct RfEventCounts
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t poweredBankCycles = 0;
    std::uint64_t totalBankCycles = 0;
    std::uint64_t cycles = 0;
};

/** Extract the integer register file's events from core stats. */
RfEventCounts intRfEvents(const CoreStats &stats);

/** Register file power; @p gated selects bank power gating. */
PowerBreakdown rfPower(const RfEventCounts &events,
                       const RfPowerParams &params, bool gated);

/** Relative saving of @p technique against @p baseline (fraction). */
double saving(double baseline, double technique);

} // namespace siq::power

#endif // SIQ_POWER_POWER_HH
