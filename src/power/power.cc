#include "power/power.hh"

namespace siq::power
{

PowerBreakdown
iqPower(const IqEventCounts &events, const IqPowerParams &params,
        IqMode mode)
{
    PowerBreakdown pb;
    pb.cycles = events.cycles;

    std::uint64_t comparisons = 0;
    std::uint64_t bankCycles = 0;
    std::uint64_t tagDriveBankBroadcasts = 0;
    const std::uint64_t nbanks =
        events.cycles ? events.totalBankCycles / events.cycles : 0;

    switch (mode) {
      case IqMode::Conventional:
        comparisons = events.cmpConventional;
        bankCycles = events.totalBankCycles;
        tagDriveBankBroadcasts = events.broadcasts * nbanks;
        break;
      case IqMode::NonEmptyGated:
        comparisons = events.cmpGated;
        bankCycles = events.totalBankCycles;
        tagDriveBankBroadcasts = events.broadcasts * nbanks;
        break;
      case IqMode::Resized:
        comparisons = events.cmpGated;
        bankCycles = events.poweredBankCycles;
        // tag drive reaches powered banks only
        tagDriveBankBroadcasts = events.cycles
            ? events.broadcasts * events.poweredBankCycles /
                  events.cycles
            : 0;
        break;
    }

    pb.dynamicEnergy =
        params.wakeupCmpEnergy * static_cast<double>(comparisons) +
        params.tagDriveEnergyPerBank *
            static_cast<double>(tagDriveBankBroadcasts) +
        params.dispatchWriteEnergy *
            static_cast<double>(events.dispatchWrites) +
        params.issueReadEnergy *
            static_cast<double>(events.issueReads) +
        params.selectEnergyPerCycle *
            static_cast<double>(events.cycles) +
        params.bankClockEnergyPerCycle *
            static_cast<double>(bankCycles);

    pb.staticEnergy =
        params.bankLeakPerCycle * static_cast<double>(bankCycles) +
        params.floorLeakPerCycle * static_cast<double>(events.cycles);
    return pb;
}

RfEventCounts
intRfEvents(const CoreStats &stats)
{
    RfEventCounts ev;
    ev.reads = stats.rfIntReads;
    ev.writes = stats.rfIntWrites;
    ev.poweredBankCycles = stats.rfIntPoweredBankCycles;
    ev.totalBankCycles = stats.rfIntBankCycles;
    ev.cycles = stats.cycles;
    return ev;
}

PowerBreakdown
rfPower(const RfEventCounts &events, const RfPowerParams &params,
        bool gated)
{
    PowerBreakdown pb;
    pb.cycles = events.cycles;
    const std::uint64_t bankCycles =
        gated ? events.poweredBankCycles : events.totalBankCycles;

    pb.dynamicEnergy =
        params.readEnergy * static_cast<double>(events.reads) +
        params.writeEnergy * static_cast<double>(events.writes) +
        params.bankClockEnergyPerCycle *
            static_cast<double>(bankCycles);
    pb.staticEnergy =
        params.bankLeakPerCycle * static_cast<double>(bankCycles) +
        params.floorLeakPerCycle * static_cast<double>(events.cycles);
    return pb;
}

double
saving(double baseline, double technique)
{
    if (baseline <= 0.0)
        return 0.0;
    return 1.0 - technique / baseline;
}

} // namespace siq::power
